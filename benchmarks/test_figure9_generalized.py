"""Benchmark F9 — Figure 9: generalized-distributed-index-batching vs
batch-shuffling DDP (epoch time, comm split, aggregate memory)."""

import pytest

from repro.experiments.figure9 import run_figure9


@pytest.fixture(scope="module")
def result():
    return run_figure9()


def test_figure9(benchmark):
    fresh = benchmark(run_figure9)
    for check in (test_ddp_epoch_matches_paper_start,
                  test_index_beats_ddp_everywhere,
                  test_index_cuts_communication_volume,
                  test_ddp_comm_dominated_index_compute_dominated,
                  test_aggregate_memory):
        check(fresh)


def test_ddp_epoch_matches_paper_start(result):
    """Paper: baseline epoch 303 s at 4 GPUs, improving only to 231 s."""
    assert result.by("ddp")[4].epoch_seconds == pytest.approx(303, rel=0.1)
    # DDP improves far less than linearly (communication-bound).
    improvement = (result.by("ddp")[4].epoch_seconds
                   / result.by("ddp")[128].epoch_seconds)
    assert improvement < 32 / 4  # nowhere near linear


def test_index_beats_ddp_everywhere(result):
    """Paper: generalized-index outperforms DDP by up to 2.28x; our
    simulator reproduces >= 1.5x at 4 GPUs, growing with scale (see
    EXPERIMENTS.md for the divergence at 64/128)."""
    for g in (4, 8, 16, 32, 64, 128):
        assert result.speedup(g) > 1.5
    assert result.speedup(4) == pytest.approx(2.28, rel=0.35)


def test_index_cuts_communication_volume(result):
    """The figure's caption: index lowers comm cost by decreasing volume
    (~2*horizon less data per batch)."""
    for g in (4, 16, 64):
        ddp = result.by("ddp")[g]
        idx = result.by("index")[g]
        assert ddp.comm_seconds > 8 * idx.comm_seconds


def test_ddp_comm_dominated_index_compute_dominated(result):
    ddp4 = result.by("ddp")[4]
    idx4 = result.by("index")[4]
    assert ddp4.comm_seconds > 0.3 * ddp4.epoch_seconds
    assert idx4.comm_seconds < 0.2 * idx4.epoch_seconds


def test_aggregate_memory(result):
    """Paper: 53.28 GB (index) vs 479.66 GB (DDP) with four workers —
    a ~9x reduction."""
    ratio = result.ddp_total_memory_gb / result.index_total_memory_gb
    assert 6 < ratio < 15
    assert result.ddp_total_memory_gb == pytest.approx(479.66, rel=0.15)
    assert result.index_total_memory_gb == pytest.approx(53.28, rel=0.35)
