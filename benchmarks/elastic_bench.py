"""Elastic-scale benchmark: reshard cost, autoscale convergence, planning.

Measures what the elastic subsystem guarantees and costs, and merges the
numbers as an ``"elastic"`` section into a ``BENCH_<n>.json`` snapshot
(see ``benchmarks/README.md`` for the ``repro-elastic/v1`` schema)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.elastic_bench

    # explicit target / CI smoke mode
    python -m benchmarks.elastic_bench --out BENCH_10.json
    python -m benchmarks.elastic_bench --quick --out /tmp/elastic.json

    # compare two snapshots' elastic sections / gate the guarantees
    python -m benchmarks.elastic_bench --diff BENCH_9.json BENCH_10.json
    python -m benchmarks.elastic_bench --fail-on-regression

Scenarios:

- ``reshard_roundtrip`` — per DDP strategy: checkpoint at world 2,
  reshard 2 -> 4 -> 2, resume, and require the continuation **bitwise
  identical** to the uninterrupted run; records the archive-rewrite wall
  cost and the state bytes moved.
- ``reshard_fresh_match`` — under the world-invariant global shuffle,
  reshard 2 -> W' (W' in {1, 4}) and require the resumed curve to match
  a *fresh* W' run within 1e-6.
- ``reshard_process_fabric`` — resume a resharded archive on the
  process-rank fabric and require bitwise parity with the sim fabric.
  Needs >= 2 cores; a single-core box records the scenario gate-skipped
  (same convention as ``dist_bench``).
- ``autoscale_2_4_2`` — the canonical traffic-step demo on the manual
  clock: a 2-shard fleet under a 500 -> 2200 -> 500 qps trace must
  scale 2 -> 4 -> 2, hold the 4.5 ms p99 SLO outside the transition
  tick, and converge; the whole trace is pinned bit-for-bit.
- ``planner`` — capacity plans from the analytic models: training world
  from a runtime budget, serving fleet from a traffic/SLO budget, the
  derived autoscaler setpoints, and the simulated cost of the 2 -> 4
  world change itself.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

ELASTIC_SCHEMA = "repro-elastic/v1"

#: Fixed seed — part of the benchmark definition.
SEED = 0

#: Fresh-run curve match bound after a global-shuffle reshard.
FRESH_MATCH_ATOL = 1e-6

#: The pinned autoscale trace: fleet size after each tick's decision.
PINNED_SHARDS_PATH = [2, 2, 2, 4, 4, 4, 4, 4, 2, 2, 2, 2]

GLOBAL_BATCH = 16


def _cores() -> int:
    from repro.hardware import usable_cores
    return usable_cores()


# ---------------------------------------------------------------------------
# Training-side workload (shared by the reshard scenarios)
# ---------------------------------------------------------------------------
def _training_setup():
    from repro.datasets import load_dataset
    from repro.graph import dual_random_walk_supports
    from repro.preprocessing import IndexDataset

    ds = load_dataset("pems-bay", nodes=10, entries=260, seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def _make_trainer(setup, *, world, strategy, transport="sim", ckpt=None):
    from repro.batching import IndexBatchLoader
    from repro.models import PGTDCRNN
    from repro.optim import Adam
    from repro.runtime import ProcessGroup
    from repro.training import DDPTrainer

    idx, supports = setup
    model = PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                     seed=SEED)
    pg = {"sim": ProcessGroup.sim,
          "process": ProcessGroup.processes}[transport](world)
    return DDPTrainer(
        model, Adam(model.parameters(), lr=0.01), pg,
        IndexBatchLoader(idx, "train", GLOBAL_BATCH // world),
        IndexBatchLoader(idx, "val", GLOBAL_BATCH // world),
        strategy=strategy, seed=SEED, clip_norm=0.0,
        checkpoint_path=ckpt)


def _curve(history):
    return [(h.train_loss, h.val_mae) for h in history]


def _boundary_checkpoint(setup, path, *, strategy):
    trainer = _make_trainer(setup, world=2, strategy=strategy)
    trainer.fit(1)
    trainer.save_training_checkpoint(path, epoch=1, step=0)


# ---------------------------------------------------------------------------
# Scenario 1: round-trip resharding, bitwise, per strategy
# ---------------------------------------------------------------------------
def bench_reshard_roundtrip(*, quick: bool = False) -> dict:
    from repro.elastic import read_reshard_history, reshard_checkpoint
    from repro.training import DDPStrategy

    setup = _training_setup()
    epochs = 1 if quick else 2
    strategies = ([DDPStrategy.DIST_INDEX] if quick
                  else list(DDPStrategy))
    per_strategy = {}
    with tempfile.TemporaryDirectory(prefix="elastic-bench-") as d:
        for strategy in strategies:
            reference = _curve(
                _make_trainer(setup, world=2, strategy=strategy).fit(
                    1 + epochs))
            ckpt = os.path.join(d, f"{strategy.value}.npz")
            _boundary_checkpoint(setup, ckpt, strategy=strategy)
            up = reshard_checkpoint(ckpt, 4)
            down = reshard_checkpoint(ckpt, 2)
            resumed = _make_trainer(setup, world=2, strategy=strategy)
            resumed.resume(ckpt)
            continued = _curve(resumed.fit(1 + epochs))
            per_strategy[strategy.value] = {
                "roundtrip_bitwise": continued == reference,
                "reshard_wall_ms": 1e3 * (up.seconds + down.seconds) / 2,
                "state_bytes": up.param_bytes + up.slot_bytes,
                "reshard_history": [h["to_world"]
                                    for h in read_reshard_history(ckpt)],
            }
    return {
        "worlds": [2, 4, 2],
        "epochs_after_reshard": epochs,
        "global_batch": GLOBAL_BATCH,
        "strategies": per_strategy,
    }


# ---------------------------------------------------------------------------
# Scenario 2: fresh-run equivalence at the new world (global shuffle)
# ---------------------------------------------------------------------------
def bench_fresh_match(*, quick: bool = False) -> dict:
    from repro.elastic import reshard_checkpoint
    from repro.training import DDPStrategy

    setup = _training_setup()
    epochs = 1 if quick else 2
    new_worlds = [4] if quick else [1, 4]
    per_world = {}
    with tempfile.TemporaryDirectory(prefix="elastic-bench-") as d:
        for new_world in new_worlds:
            fresh = _curve(_make_trainer(
                setup, world=new_world,
                strategy=DDPStrategy.DIST_INDEX).fit(1 + epochs))[1:]
            ckpt = os.path.join(d, f"w{new_world}.npz")
            _boundary_checkpoint(setup, ckpt,
                                 strategy=DDPStrategy.DIST_INDEX)
            reshard_checkpoint(ckpt, new_world)
            resumed = _make_trainer(setup, world=new_world,
                                    strategy=DDPStrategy.DIST_INDEX)
            resumed.resume(ckpt)
            got = _curve(resumed.fit(1 + epochs))[1:]
            per_world[str(new_world)] = {
                "max_abs_diff": float(np.max(np.abs(
                    np.asarray(got) - np.asarray(fresh)))),
            }
    return {
        "strategy": "dist-index",
        "shuffle": "global",
        "from_world": 2,
        "epochs_compared": epochs,
        "atol": FRESH_MATCH_ATOL,
        "worlds": per_world,
    }


# ---------------------------------------------------------------------------
# Scenario 3: resharded archives are fabric-agnostic (needs >= 2 cores)
# ---------------------------------------------------------------------------
def bench_process_fabric(*, quick: bool = False) -> dict:
    from repro.elastic import reshard_checkpoint
    from repro.training import DDPStrategy

    cores = _cores()
    gate_applied = cores >= 2 and not quick
    result = {"cores": cores, "gate_applied": gate_applied}
    if not gate_applied:
        result["skipped"] = True
        return result

    setup = _training_setup()
    with tempfile.TemporaryDirectory(prefix="elastic-bench-") as d:
        ckpt = os.path.join(d, "fabric.npz")
        _boundary_checkpoint(setup, ckpt, strategy=DDPStrategy.DIST_INDEX)
        reshard_checkpoint(ckpt, 4)
        sim = _make_trainer(setup, world=4, strategy=DDPStrategy.DIST_INDEX)
        sim.resume(ckpt)
        reference = _curve(sim.fit(2))
        proc = _make_trainer(setup, world=4,
                             strategy=DDPStrategy.DIST_INDEX,
                             transport="process")
        try:
            proc.resume(ckpt)
            t0 = time.perf_counter()
            got = _curve(proc.fit(2))
            wall = time.perf_counter() - t0
        finally:
            proc.comm.transport.shutdown()
    result.update({
        "skipped": False,
        "curve_bitwise_equal": got == reference,
        "wall_seconds": wall,
    })
    return result


# ---------------------------------------------------------------------------
# Scenario 4: the pinned 2 -> 4 -> 2 autoscale demo
# ---------------------------------------------------------------------------
def bench_autoscale(*, quick: bool = False) -> dict:
    from repro.api import RunSpec, run
    from repro.elastic import (
        AutoscalerPolicy,
        ShardAutoscaler,
        run_autoscaled_trace,
        shard_scaled_service_time,
    )
    from repro.serving import ShardedSession
    from repro.serving.service import ForecastService

    result = run(RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                         batching="index", scale="tiny", seed=SEED,
                         epochs=1))
    test = result.artifacts.loaders.test
    pool, _ = test.batch_at(np.arange(test.batch_size))
    pool = pool.copy()

    sess = ShardedSession(result.artifacts.model,
                          result.artifacts.loaders.scaler,
                          result.artifacts.dataset.graph,
                          spec=result.spec, num_shards=2, num_standby=2)
    svc = ForecastService(
        sess, max_batch=8, max_wait=5e-4,
        service_time=shard_scaled_service_time(sess, base=2e-3,
                                               per_item=1e-3))
    policy = AutoscalerPolicy(slo_p99=4.5e-3, min_shards=2, max_shards=4,
                              scale_down_at=0.4, transition_seconds=0.02)
    auto = ShardAutoscaler(sess, policy, svc.clock)
    t0 = time.perf_counter()
    report = run_autoscaled_trace(
        svc, pool, auto, [(500.0, 3), (2200.0, 5), (500.0, 4)],
        seed=SEED, tick_requests=40)
    wall = time.perf_counter() - t0
    return {
        "slo_p99_ms": policy.slo_p99 * 1e3,
        "segments_qps": [500.0, 2200.0, 500.0],
        "shards_path": report.shards_path,
        "requests": report.requests,
        "deadline_misses": report.deadline_misses,
        "slo_compliance": report.slo_compliance,
        "events": [{"from": e.from_shards, "to": e.to_shards,
                    "p99_ms": e.p99 * 1e3} for e in report.events],
        "scale_up_convergence_ms": report.convergence_seconds[0] * 1e3
            if report.convergence_seconds else None,
        "scale_down_convergence_ms": report.convergence_seconds[1] * 1e3
            if len(report.convergence_seconds) > 1 else None,
        "standby_after": sess.standby,
        "wall_seconds": wall,
        "summary": report.summary(),
    }


# ---------------------------------------------------------------------------
# Scenario 5: the capacity planner's picks
# ---------------------------------------------------------------------------
def bench_planner(*, quick: bool = False) -> dict:
    from repro.datasets.catalog import get_spec
    from repro.elastic import (
        autoscaler_setpoints,
        plan_serving,
        plan_training,
    )
    from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf

    spec = get_spec("pems-bay")
    perf = TrainingPerfModel(
        spec, pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                             spec.train_features), batch_size=64)
    single = perf.run("dist-index", 1, epochs=10).total_seconds
    train_plan = plan_training(perf, strategy="dist-index", epochs=10,
                               total_budget_seconds=single * 0.75,
                               worlds=(1, 2, 4, 8))

    def service_time(batch, shards):
        return (2e-3 + 1e-3 * batch) / shards

    serve_plan = plan_serving(traffic_qps=2200.0, slo_p99=9e-3,
                              service_time=service_time, max_batch=8)
    setpoints = autoscaler_setpoints(low_qps=500.0, peak_qps=2200.0,
                                     slo_p99=9e-3,
                                     service_time=service_time, max_batch=8)
    return {
        "training": {
            "budget_seconds": single * 0.75,
            "world_size": train_plan.world_size,
            "total_seconds": train_plan.total_seconds,
            "gpu_seconds": train_plan.gpu_seconds,
            "meets_budget": train_plan.meets_budget,
        },
        "serving": {
            "traffic_qps": serve_plan.traffic_qps,
            "slo_p99_ms": serve_plan.slo_p99 * 1e3,
            "shards": serve_plan.shards,
            "utilization": serve_plan.utilization,
            "projected_latency_ms": serve_plan.projected_latency * 1e3,
            "meets_slo": serve_plan.meets_slo,
        },
        "setpoints": {
            "min_shards": setpoints.min_shards,
            "max_shards": setpoints.max_shards,
        },
        "reshard_2_to_4_sim_seconds": perf.reshard_seconds(2, 4),
    }


def collect_elastic(*, quick: bool = False, label: str = "") -> dict:
    """Measure the elastic scenario suite; returns the section dict."""
    scenarios = {
        "reshard_roundtrip": bench_reshard_roundtrip(quick=quick),
        "reshard_fresh_match": bench_fresh_match(quick=quick),
        "reshard_process_fabric": bench_process_fabric(quick=quick),
        "autoscale_2_4_2": bench_autoscale(quick=quick),
        "planner": bench_planner(quick=quick),
    }
    return {
        "schema": ELASTIC_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"seed": SEED, "quick": bool(quick),
                   "fresh_match_atol": FRESH_MATCH_ATOL,
                   "cores": _cores()},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing (shared conventions with serve/dist/fault benches)
# ---------------------------------------------------------------------------
def validate_elastic(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid elastic section."""
    if not isinstance(section, dict) \
            or section.get("schema") != ELASTIC_SCHEMA:
        raise ValueError(f"not a {ELASTIC_SCHEMA} elastic section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"elastic section missing {key!r}")
    scen = section["scenarios"]
    rt = scen.get("reshard_roundtrip", {})
    if "strategies" not in rt or not rt["strategies"]:
        raise ValueError("reshard_roundtrip scenario missing strategies")
    for name, s in rt["strategies"].items():
        for field in ("roundtrip_bitwise", "reshard_wall_ms", "state_bytes"):
            if field not in s:
                raise ValueError(f"roundtrip strategy {name!r} missing "
                                 f"{field!r}")
    fm = scen.get("reshard_fresh_match", {})
    if "worlds" not in fm or not fm["worlds"]:
        raise ValueError("reshard_fresh_match scenario missing worlds")
    for field in ("shards_path", "requests", "deadline_misses",
                  "slo_compliance", "events"):
        if field not in scen.get("autoscale_2_4_2", {}):
            raise ValueError(f"autoscale scenario missing {field!r}")
    pl = scen.get("planner", {})
    for field in ("training", "serving", "setpoints",
                  "reshard_2_to_4_sim_seconds"):
        if field not in pl:
            raise ValueError(f"planner scenario missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``elastic`` key of the snapshot, creating
    a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_elastic(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["elastic"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    from benchmarks.serve_bench import default_target as _default
    return _default(root)


# ---------------------------------------------------------------------------
# Diffing / gating
# ---------------------------------------------------------------------------
def check_regression(section: dict) -> list[str]:
    """Failure messages for the section's own gates (empty = green).

    Every gate is a determinism/equivalence pin, not a timing threshold,
    so they hold at any core count; only the process-fabric parity check
    is skipped where it cannot run (single-core boxes, quick mode)."""
    validate_elastic(section)
    failures = []
    scen = section["scenarios"]
    for name, s in scen["reshard_roundtrip"]["strategies"].items():
        if not s["roundtrip_bitwise"]:
            failures.append(
                f"reshard round-trip under {name} diverged from the "
                f"uninterrupted run (fixed-seed curves differ)")
    atol = section["config"].get("fresh_match_atol", FRESH_MATCH_ATOL)
    for world, s in scen["reshard_fresh_match"]["worlds"].items():
        if s["max_abs_diff"] > atol:
            failures.append(
                f"resumed-at-world-{world} curve drifted "
                f"{s['max_abs_diff']:g} from the fresh run "
                f"(bound {atol:g})")
    fabric = scen["reshard_process_fabric"]
    if fabric.get("gate_applied") and not fabric.get("curve_bitwise_equal"):
        failures.append("process-fabric resume of a resharded archive "
                        "diverged from the sim fabric")
    auto = scen["autoscale_2_4_2"]
    if auto["shards_path"] != PINNED_SHARDS_PATH:
        failures.append(
            f"autoscale trace took path {auto['shards_path']} instead of "
            f"the pinned {PINNED_SHARDS_PATH}")
    if auto["deadline_misses"] != 32:
        failures.append(
            f"autoscale trace missed {auto['deadline_misses']} deadlines "
            f"instead of the pinned 32 (all in the pre-scale-up tick)")
    for key in ("scale_up_convergence_ms", "scale_down_convergence_ms"):
        v = auto.get(key)
        if v is None or not np.isfinite(v):
            failures.append(f"autoscale {key} never converged ({v})")
    pl = scen["planner"]
    if not pl["training"]["meets_budget"]:
        failures.append("training plan no longer meets its runtime budget")
    if not pl["serving"]["meets_slo"]:
        failures.append("serving plan no longer meets its latency SLO")
    return failures


def diff_elastic(old: dict, new: dict) -> dict:
    """Headline-metric comparison between two snapshots.

    The *new* snapshot must carry an elastic section; the old one may
    predate the subsystem (e.g. ``BENCH_9.json``), in which case its
    values are reported as ``None`` instead of failing the diff.
    """
    if "elastic" not in new:
        raise ValueError("new snapshot has no elastic section")
    validate_elastic(new["elastic"])
    o = None
    if "elastic" in old:
        validate_elastic(old["elastic"])
        o = old["elastic"]["scenarios"]
    n = new["elastic"]["scenarios"]

    def auto(field: str) -> dict:
        return {"old": o["autoscale_2_4_2"][field] if o is not None
                else None,
                "new": n["autoscale_2_4_2"][field]}

    def mean_reshard(scen) -> float:
        ss = scen["reshard_roundtrip"]["strategies"].values()
        return float(np.mean([s["reshard_wall_ms"] for s in ss]))

    return {
        "reshard_wall_ms": {
            "old": mean_reshard(o) if o is not None else None,
            "new": mean_reshard(n)},
        "slo_compliance": auto("slo_compliance"),
        "scale_up_convergence_ms": auto("scale_up_convergence_ms"),
    }


def _format_section(section: dict) -> str:
    scen = section["scenarios"]
    lines = [f"elastic suite "
             f"({'quick' if section['config']['quick'] else 'full'}, "
             f"{section['config']['cores']} cores)"]
    for name, s in scen["reshard_roundtrip"]["strategies"].items():
        lines.append(
            f"  reshard_roundtrip[{name}]: 2->4->2 "
            f"{'bitwise OK' if s['roundtrip_bitwise'] else 'BROKEN'}, "
            f"{s['state_bytes']} state bytes in "
            f"{s['reshard_wall_ms']:.1f} ms")
    for world, s in scen["reshard_fresh_match"]["worlds"].items():
        lines.append(f"  reshard_fresh_match[w{world}]: max diff "
                     f"{s['max_abs_diff']:.2e} (bound "
                     f"{scen['reshard_fresh_match']['atol']:g})")
    fabric = scen["reshard_process_fabric"]
    if fabric.get("skipped"):
        lines.append(f"  reshard_process_fabric: gate skipped "
                     f"({fabric['cores']} core(s))")
    else:
        lines.append(
            f"  reshard_process_fabric: "
            f"{'bitwise OK' if fabric['curve_bitwise_equal'] else 'BROKEN'}"
            f" in {fabric['wall_seconds']:.1f} s")
    auto = scen["autoscale_2_4_2"]
    lines.append(f"  autoscale_2_4_2: {auto['summary']}, "
                 f"{auto['deadline_misses']} misses, convergence up "
                 f"{auto['scale_up_convergence_ms']:.1f} ms / down "
                 f"{auto['scale_down_convergence_ms']:.1f} ms")
    pl = scen["planner"]
    verdict = ("meets budget" if pl["training"]["meets_budget"]
               else "BEST EFFORT")
    lines.append(
        f"  planner: train world {pl['training']['world_size']} "
        f"({verdict}), serve {pl['serving']['shards']} shards "
        f"(rho {pl['serving']['utilization']:.2f}), setpoints "
        f"[{pl['setpoints']['min_shards']}, {pl['setpoints']['max_shards']}]"
        f", reshard 2->4 costs {pl['reshard_2_to_4_sim_seconds']:.1f} "
        f"sim-s")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="elastic_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: fewer strategies/worlds")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the elastic section into "
                             "(default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' elastic sections")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 unless every reshard/autoscale/"
                             "planner pin holds")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        for name, d in diff_elastic(old, new).items():
            was = "(absent)" if d["old"] is None else f"{d['old']:.3f}"
            print(f"  {name}: {was} -> {d['new']:.3f}")
        return 0

    section = collect_elastic(quick=args.quick, label=args.label)
    print(_format_section(section))
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged elastic section into {target}")
    if args.fail_on_regression:
        failures = check_regression(section)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print("regression gate green (bitwise round-trips + pinned "
              "autoscale trace + planner budgets)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
