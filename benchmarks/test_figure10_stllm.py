"""Benchmark F10 — Figure 10: ST-LLM distributed-index-batching scaling."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figure10 import run_figure10, run_figure10_real


@pytest.fixture(scope="module")
def points():
    return run_figure10()


def test_figure10(benchmark):
    fresh = benchmark(run_figure10)
    test_speedups_match_paper(fresh)
    test_near_linear_scaling(fresh)
    test_preprocessing_negligible(fresh)


def test_speedups_match_paper(points):
    """Paper: 3.92x with 4 GPUs, 30.01x with 32 GPUs vs single-GPU
    index-batching."""
    by = {p.gpus: p for p in points}
    s4 = by[1].total_minutes / by[4].total_minutes
    s32 = by[1].total_minutes / by[32].total_minutes
    assert s4 == pytest.approx(3.92, rel=0.15)
    assert s32 == pytest.approx(30.01, rel=0.2)


def test_near_linear_scaling(points):
    """Paper: 'the overall workflow demonstrates near-linear scaling'."""
    by = {p.gpus: p for p in points}
    for g in (4, 8, 16, 32):
        efficiency = (by[1].total_minutes / by[g].total_minutes) / g
        assert efficiency > 0.75


def test_preprocessing_negligible(points):
    """Paper: preprocessing at most 1.35 s on PeMS-BAY."""
    for p in points:
        assert p.preprocess_seconds < 2.0


def test_stllm_actually_trains_distributed(benchmark):
    """Real scaled-down ST-LLM under distributed-index-batching."""
    results = run_once(benchmark, run_figure10_real, scale="tiny", seed=0,
                       gpu_counts=(1, 4))
    for r in results:
        assert 0 < r.best_val_mae < 100
    # Both world sizes converge to working models.
    assert all(r.final_train_loss < 2.0 for r in results)
