"""Gateway benchmark: multi-tenant goodput, shedding, caching, swaps.

Runs a fixed-seed scenario suite against a freshly trained tiny model
behind the multi-tenant gateway and merges the results as a
``"gateway"`` section into a ``BENCH_<n>.json`` snapshot (see
``benchmarks/README.md`` for the ``repro-gateway/v1`` schema)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.gateway_bench

    # explicit target / CI smoke mode
    python -m benchmarks.gateway_bench --out BENCH_6.json
    python -m benchmarks.gateway_bench --quick --out /tmp/gateway.json

    # compare two snapshots' gateway sections / gate the guarantees
    python -m benchmarks.gateway_bench --diff BENCH_5.json BENCH_6.json
    python -m benchmarks.gateway_bench --fail-on-regression

Unlike the serving suite (which measures honest wall-clock forwards),
every scenario here runs a *synthetic* service-time model on the
simulated clock, so the entire section — every latency, every shed
decision, every cache hit — is bit-reproducible across machines.  That
is what lets ``--fail-on-regression`` gate exact guarantees rather than
timing thresholds:

- ``baseline_1k`` — two tenants at today's offered load (1000 qps total,
  the ``open_loop_1k`` reference from the serving suite): **zero** shed,
  zero deadline misses.
- ``overload_10k`` — one tenant at 10x the baseline: admission control
  must fire (shed > 0) but stay bounded, and goodput must hold at the
  deployment's capacity instead of collapsing.
- ``cache_roundtrip`` — result-cache hits must be bitwise equal to the
  original computation *and* to an uncached recomputation.
- ``bluegreen_swap`` — a mid-traffic checkpoint swap must drain every
  in-flight request (zero drops) and answer everything submitted.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

GATEWAY_SCHEMA = "repro-gateway/v1"

#: Fixed request-stream seed — part of the benchmark definition.
SEED = 0

#: Synthetic per-batch service time (seconds for a batch of n): a fixed
#: model with batch-8 capacity ~4000 qps, between the 1000 qps baseline
#: and the 10x overload point.  Part of the benchmark definition.
SERVICE_TIME = (4e-4, 2e-4)          # base, per-request

#: Offered loads (qps).  ``overload`` is 10x the serving suite's
#: ``open_loop_1k`` reference scenario.
BASELINE_QPS = 1000.0
OVERLOAD_QPS = 10.0 * BASELINE_QPS

#: Overload gates: admission must shed, but boundedly, while goodput
#: holds near capacity.
MAX_SHED_RATE = 0.8
MIN_OVERLOAD_GOODPUT = 2000.0


def _service_time(n: int) -> float:
    base, per = SERVICE_TIME
    return base + per * n


def _make_gateway(result, *, cache_ttl=None, default_deadline=None):
    from repro.api import build_gateway
    from repro.serving import ManualClock

    return build_gateway(
        {"bay": result}, tenants=["ops", "research"], clock=ManualClock(),
        max_batch=8, max_wait=0.002, service_time=_service_time,
        cache_ttl=cache_ttl, default_deadline=default_deadline)


def _train(quick: bool):
    from repro.api import RunSpec, run

    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale="tiny", seed=SEED, epochs=1 if quick else 2)
    result = run(spec)
    test = result.artifacts.loaders.test
    pool = test.batch_at(np.arange(test.num_snapshots
                                   if test.num_snapshots < 64 else 64))[0]
    return spec, result, pool.copy()


# ---------------------------------------------------------------------------
# Load scenarios
# ---------------------------------------------------------------------------
def bench_baseline(result, pool, *, quick: bool) -> dict:
    from repro.serving import GatewayLoadGenerator, TenantStream

    n = 150 if quick else 600
    gw = _make_gateway(result)
    streams = [
        TenantStream(api_key="key-ops", deployment="bay",
                     rate_qps=0.7 * BASELINE_QPS, requests=(7 * n) // 10,
                     deadline=0.05),
        TenantStream(api_key="key-research", deployment="bay",
                     rate_qps=0.3 * BASELINE_QPS, requests=(3 * n) // 10,
                     deadline=0.05),
    ]
    report = GatewayLoadGenerator(gw, pool, seed=SEED).open_loop(
        streams, scenario="baseline_1k")
    d = report.to_dict()
    d["shed_by_reason"] = gw.admission.shed_by_reason()
    return d


def bench_overload(result, pool, *, quick: bool) -> dict:
    from repro.serving import GatewayLoadGenerator, TenantStream

    n = 400 if quick else 1500
    gw = _make_gateway(result)
    streams = [TenantStream(api_key="key-ops", deployment="bay",
                            rate_qps=OVERLOAD_QPS, requests=n,
                            deadline=0.025)]
    report = GatewayLoadGenerator(gw, pool, seed=SEED).open_loop(
        streams, scenario="overload_10k")
    d = report.to_dict()
    d["shed_by_reason"] = gw.admission.shed_by_reason()
    return d


# ---------------------------------------------------------------------------
# Guarantee scenarios
# ---------------------------------------------------------------------------
def bench_cache(result, pool) -> dict:
    """Cache hits must be bitwise equal to recomputation."""
    window = pool[0]
    cold = _make_gateway(result, cache_ttl=None)
    uncached = cold.request("key-ops", "bay", window)

    warm = _make_gateway(result, cache_ttl=60.0)
    first = warm.request("key-ops", "bay", window)
    second = warm.request("key-ops", "bay", window)
    # Cross-tenant hit: the cache keys on (deployment, version, window),
    # so research's identical window is served from ops' computation.
    third = warm.request("key-research", "bay", window)

    bitwise = (second.cached and third.cached
               and np.array_equal(second.forecast.predictions,
                                  first.forecast.predictions)
               and np.array_equal(third.forecast.predictions,
                                  first.forecast.predictions)
               and np.array_equal(first.forecast.predictions,
                                  uncached.forecast.predictions))
    stats = warm.cache.stats
    return {
        "bitwise_equal": bool(bitwise),
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "hit_rate": float(stats.hit_rate),
        "resident_nbytes": int(warm.cache.resident_nbytes),
    }


def bench_swap(result, pool) -> dict:
    """Blue-green swap mid-traffic: zero dropped in-flight requests."""
    gw = _make_gateway(result)
    session = gw.deployments.get("bay").session
    admitted = []
    for i in range(6):                      # partial batch stays queued
        admitted.append(gw.submit("key-ops", "bay", pool[i % len(pool)]))
    in_flight = gw.deployments.get("bay").in_flight
    record = gw.swap("bay", lambda: session, version="v2")
    after = [gw.request("key-ops", "bay", pool[i % len(pool)])
             for i in range(4)]
    completed = gw.flush() + gw.poll()
    answered = (gw.stats.completed == gw.stats.admitted)
    return {
        "in_flight_at_swap": int(in_flight),
        "drained": int(record.drained),
        "dropped": int(record.dropped),
        "swap_seconds": float(record.seconds),
        "old_version": record.old_version,
        "new_version": record.new_version,
        "post_swap_version": after[0].version,
        "all_answered": bool(answered and len(admitted) == 6
                             and all(r.ok for r in after)),
    }


def collect_gateway(*, quick: bool = False, label: str = "") -> dict:
    """Measure the gateway scenario suite; returns the section dict."""
    spec, result, pool = _train(quick)
    scenarios = {
        "baseline_1k": bench_baseline(result, pool, quick=quick),
        "overload_10k": bench_overload(result, pool, quick=quick),
        "cache_roundtrip": bench_cache(result, pool),
        "bluegreen_swap": bench_swap(result, pool),
    }
    return {
        "schema": GATEWAY_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"spec": spec.to_dict(), "seed": SEED,
                   "max_batch": 8, "max_wait": 0.002,
                   "service_time": list(SERVICE_TIME),
                   "baseline_qps": BASELINE_QPS,
                   "overload_qps": OVERLOAD_QPS,
                   "max_shed_rate": MAX_SHED_RATE,
                   "min_overload_goodput": MIN_OVERLOAD_GOODPUT,
                   "pool_windows": int(len(pool)), "quick": bool(quick)},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing (shared conventions with serve/dist/fault benches)
# ---------------------------------------------------------------------------
def validate_gateway(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid gateway section."""
    if not isinstance(section, dict) or section.get("schema") != GATEWAY_SCHEMA:
        raise ValueError(f"not a {GATEWAY_SCHEMA} gateway section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"gateway section missing {key!r}")
    scen = section["scenarios"]
    for name in ("baseline_1k", "overload_10k"):
        for field in ("requests", "offered_qps", "goodput_qps", "shed_rate",
                      "latency_p99", "deadline_misses", "per_tenant"):
            if field not in scen.get(name, {}):
                raise ValueError(f"scenario {name!r} missing {field!r}")
    for field in ("bitwise_equal", "hits", "hit_rate"):
        if field not in scen.get("cache_roundtrip", {}):
            raise ValueError(f"cache_roundtrip missing {field!r}")
    for field in ("dropped", "drained", "all_answered"):
        if field not in scen.get("bluegreen_swap", {}):
            raise ValueError(f"bluegreen_swap missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``gateway`` key of the snapshot, creating
    a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_gateway(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["gateway"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    from benchmarks.serve_bench import default_target as _default
    return _default(root)


# ---------------------------------------------------------------------------
# Diffing / gating
# ---------------------------------------------------------------------------
def check_regression(section: dict) -> list[str]:
    """Failure messages for the section's own gates (empty = green).

    The gates are the subsystem's guarantees, deterministic under the
    synthetic service-time model, not machine-dependent thresholds."""
    validate_gateway(section)
    cfg = section["config"]
    failures = []
    base = section["scenarios"]["baseline_1k"]
    if base["shed_rate"] > 0:
        failures.append(f"baseline load shed {base['shed_rate']:.1%}; "
                        f"admission must not fire below capacity")
    if base["deadline_misses"] > 0:
        failures.append(f"baseline load missed {base['deadline_misses']} "
                        f"deadlines")
    over = section["scenarios"]["overload_10k"]
    if over["shed_rate"] <= 0:
        failures.append("overload never shed; admission control is inert")
    max_shed = cfg.get("max_shed_rate", MAX_SHED_RATE)
    if over["shed_rate"] > max_shed:
        failures.append(f"overload shed {over['shed_rate']:.1%} "
                        f"(bound {max_shed:.0%})")
    floor = cfg.get("min_overload_goodput", MIN_OVERLOAD_GOODPUT)
    if over["goodput_qps"] < floor:
        failures.append(f"overload goodput collapsed to "
                        f"{over['goodput_qps']:.0f} qps (floor {floor:.0f})")
    if over["deadline_misses"] > 0:
        failures.append(f"overload missed {over['deadline_misses']} "
                        f"deadlines on admitted requests; the projection "
                        f"under-estimates")
    cache = section["scenarios"]["cache_roundtrip"]
    if not cache["bitwise_equal"]:
        failures.append("cache hit differed from recomputation (must be "
                        "bitwise equal)")
    if cache["hits"] < 1:
        failures.append("cache scenario never hit")
    swap = section["scenarios"]["bluegreen_swap"]
    if swap["dropped"] != 0:
        failures.append(f"blue-green swap dropped {swap['dropped']} "
                        f"in-flight requests")
    if not swap["all_answered"]:
        failures.append("requests around the swap went unanswered")
    return failures


def diff_gateway(old: dict, new: dict) -> dict:
    """Headline-metric comparison between two snapshots.

    The *new* snapshot must carry a gateway section; the old one may
    predate the subsystem (e.g. ``BENCH_5.json``), in which case its
    values are reported as ``None`` instead of failing the diff.
    """
    if "gateway" not in new:
        raise ValueError("new snapshot has no gateway section")
    validate_gateway(new["gateway"])
    o = None
    if "gateway" in old:
        validate_gateway(old["gateway"])
        o = old["gateway"]["scenarios"]
    n = new["gateway"]["scenarios"]

    def pick(scenario: str, field: str) -> dict:
        return {"old": o[scenario][field] if o is not None else None,
                "new": n[scenario][field]}

    return {
        "baseline_goodput_qps": pick("baseline_1k", "goodput_qps"),
        "overload_goodput_qps": pick("overload_10k", "goodput_qps"),
        "overload_shed_rate": pick("overload_10k", "shed_rate"),
        "cache_hit_rate": pick("cache_roundtrip", "hit_rate"),
    }


def _format_section(section: dict) -> str:
    scen = section["scenarios"]
    base, over = scen["baseline_1k"], scen["overload_10k"]
    cache, swap = scen["cache_roundtrip"], scen["bluegreen_swap"]
    return "\n".join([
        f"gateway suite ({'quick' if section['config']['quick'] else 'full'})",
        f"  baseline_1k: {base['requests']} reqs offered "
        f"{base['offered_qps']:.0f} qps -> goodput "
        f"{base['goodput_qps']:.0f} qps, shed {base['shed_rate']:.1%}, "
        f"p99 {base['latency_p99'] * 1e3:.2f} ms, "
        f"misses {base['deadline_misses']}",
        f"  overload_10k: {over['requests']} reqs offered "
        f"{over['offered_qps']:.0f} qps -> goodput "
        f"{over['goodput_qps']:.0f} qps, shed {over['shed_rate']:.1%}, "
        f"p99 {over['latency_p99'] * 1e3:.2f} ms, "
        f"misses {over['deadline_misses']}",
        f"  cache_roundtrip: {cache['hits']} hit(s), hit rate "
        f"{cache['hit_rate']:.0%}, bitwise "
        f"{'OK' if cache['bitwise_equal'] else 'BROKEN'}",
        f"  bluegreen_swap: {swap['in_flight_at_swap']} in flight -> "
        f"{swap['drained']} drained, {swap['dropped']} dropped, "
        f"{swap['old_version']} -> {swap['new_version']}, answered "
        f"{'OK' if swap['all_answered'] else 'BROKEN'}",
    ])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gateway_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: fewer requests, 1 epoch")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the gateway section into "
                             "(default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' gateway sections")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 unless shedding, caching and swap "
                             "guarantees hold")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        for name, d in diff_gateway(old, new).items():
            was = "(absent)" if d["old"] is None else f"{d['old']:.2f}"
            print(f"  {name}: {was} -> {d['new']:.2f}")
        return 0

    section = collect_gateway(quick=args.quick, label=args.label)
    print(_format_section(section))
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged gateway section into {target}")
    if args.fail_on_regression:
        failures = check_regression(section)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print("regression gate green (no shed below capacity, bounded "
              "overload shed, bitwise cache, zero-drop swap)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
