"""Gateway benchmark: multi-tenant goodput, shedding, caching, swaps.

Runs a fixed-seed scenario suite against a freshly trained tiny model
behind the multi-tenant gateway and merges the results as a
``"gateway"`` section into a ``BENCH_<n>.json`` snapshot (see
``benchmarks/README.md`` for the ``repro-gateway/v1`` schema)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.gateway_bench

    # explicit target / CI smoke mode
    python -m benchmarks.gateway_bench --out BENCH_6.json
    python -m benchmarks.gateway_bench --quick --out /tmp/gateway.json

    # compare two snapshots' gateway sections / gate the guarantees
    python -m benchmarks.gateway_bench --diff BENCH_5.json BENCH_6.json
    python -m benchmarks.gateway_bench --fail-on-regression

Unlike the serving suite (which measures honest wall-clock forwards),
every scenario here runs a *synthetic* service-time model on the
simulated clock, so the entire section — every latency, every shed
decision, every cache hit — is bit-reproducible across machines.  That
is what lets ``--fail-on-regression`` gate exact guarantees rather than
timing thresholds:

- ``baseline_1k`` — two tenants at today's offered load (1000 qps total,
  the ``open_loop_1k`` reference from the serving suite): **zero** shed,
  zero deadline misses.
- ``overload_10k`` — one tenant at 10x the baseline: admission control
  must fire (shed > 0) but stay bounded, and goodput must hold at the
  deployment's capacity instead of collapsing.
- ``cache_roundtrip`` — result-cache hits must be bitwise equal to the
  original computation *and* to an uncached recomputation.
- ``bluegreen_swap`` — a mid-traffic checkpoint swap must drain every
  in-flight request (zero drops) and answer everything submitted.

Schema ``v2`` adds the self-healing scenarios (``--chaos-only`` runs
just these two):

- ``chaos_selfheal`` — a ``session_crash`` plus a 4x ``session_straggler``
  injected into the primary deployment at **2x** the baseline offered
  load, with a fallback deployment configured: every admitted request
  must be answered (``failed == 0``) with **zero** deadline misses,
  degraded answers must be bitwise equal to their cache/fallback
  source, and the circuit-transition log must be identical across two
  runs of the same seed.
- ``canary_rollback`` — a swap to a broken checkpoint must fail its
  synthetic canary and auto-roll back with zero dropped requests,
  after which the blue session serves bitwise-identical answers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

GATEWAY_SCHEMA = "repro-gateway/v2"

#: Fixed request-stream seed — part of the benchmark definition.
SEED = 0

#: Synthetic per-batch service time (seconds for a batch of n): a fixed
#: model with batch-8 capacity ~4000 qps, between the 1000 qps baseline
#: and the 10x overload point.  Part of the benchmark definition.
SERVICE_TIME = (4e-4, 2e-4)          # base, per-request

#: Offered loads (qps).  ``overload`` is 10x the serving suite's
#: ``open_loop_1k`` reference scenario.
BASELINE_QPS = 1000.0
OVERLOAD_QPS = 10.0 * BASELINE_QPS

#: Overload gates: admission must shed, but boundedly, while goodput
#: holds near capacity.
MAX_SHED_RATE = 0.8
MIN_OVERLOAD_GOODPUT = 2000.0

#: Chaos scenario: crash + straggler at 2x the baseline offered load
#: (still under the deployment's ~4000 qps capacity, so the self-healing
#: machinery — not admission control — is what keeps requests answered).
CHAOS_QPS = 2.0 * BASELINE_QPS


def _service_time(n: int) -> float:
    base, per = SERVICE_TIME
    return base + per * n


def _make_gateway(result, *, cache_ttl=None, default_deadline=None):
    from repro.api import build_gateway
    from repro.serving import ManualClock

    return build_gateway(
        {"bay": result}, tenants=["ops", "research"], clock=ManualClock(),
        max_batch=8, max_wait=0.002, service_time=_service_time,
        cache_ttl=cache_ttl, default_deadline=default_deadline)


def _train(quick: bool):
    from repro.api import RunSpec, run

    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale="tiny", seed=SEED, epochs=1 if quick else 2)
    result = run(spec)
    test = result.artifacts.loaders.test
    pool = test.batch_at(np.arange(test.num_snapshots
                                   if test.num_snapshots < 64 else 64))[0]
    return spec, result, pool.copy()


# ---------------------------------------------------------------------------
# Load scenarios
# ---------------------------------------------------------------------------
def bench_baseline(result, pool, *, quick: bool) -> dict:
    from repro.serving import GatewayLoadGenerator, TenantStream

    n = 150 if quick else 600
    gw = _make_gateway(result)
    streams = [
        TenantStream(api_key="key-ops", deployment="bay",
                     rate_qps=0.7 * BASELINE_QPS, requests=(7 * n) // 10,
                     deadline=0.05),
        TenantStream(api_key="key-research", deployment="bay",
                     rate_qps=0.3 * BASELINE_QPS, requests=(3 * n) // 10,
                     deadline=0.05),
    ]
    report = GatewayLoadGenerator(gw, pool, seed=SEED).open_loop(
        streams, scenario="baseline_1k")
    d = report.to_dict()
    d["shed_by_reason"] = gw.admission.shed_by_reason()
    return d


def bench_overload(result, pool, *, quick: bool) -> dict:
    from repro.serving import GatewayLoadGenerator, TenantStream

    n = 400 if quick else 1500
    gw = _make_gateway(result)
    streams = [TenantStream(api_key="key-ops", deployment="bay",
                            rate_qps=OVERLOAD_QPS, requests=n,
                            deadline=0.025)]
    report = GatewayLoadGenerator(gw, pool, seed=SEED).open_loop(
        streams, scenario="overload_10k")
    d = report.to_dict()
    d["shed_by_reason"] = gw.admission.shed_by_reason()
    return d


# ---------------------------------------------------------------------------
# Guarantee scenarios
# ---------------------------------------------------------------------------
def bench_cache(result, pool) -> dict:
    """Cache hits must be bitwise equal to recomputation."""
    window = pool[0]
    cold = _make_gateway(result, cache_ttl=None)
    uncached = cold.request("key-ops", "bay", window)

    warm = _make_gateway(result, cache_ttl=60.0)
    first = warm.request("key-ops", "bay", window)
    second = warm.request("key-ops", "bay", window)
    # Cross-tenant hit: the cache keys on (deployment, version, window),
    # so research's identical window is served from ops' computation.
    third = warm.request("key-research", "bay", window)

    bitwise = (second.cached and third.cached
               and np.array_equal(second.forecast.predictions,
                                  first.forecast.predictions)
               and np.array_equal(third.forecast.predictions,
                                  first.forecast.predictions)
               and np.array_equal(first.forecast.predictions,
                                  uncached.forecast.predictions))
    stats = warm.cache.stats
    return {
        "bitwise_equal": bool(bitwise),
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "hit_rate": float(stats.hit_rate),
        "resident_nbytes": int(warm.cache.resident_nbytes),
    }


def bench_swap(result, pool) -> dict:
    """Blue-green swap mid-traffic: zero dropped in-flight requests."""
    gw = _make_gateway(result)
    session = gw.deployments.get("bay").session
    admitted = []
    for i in range(6):                      # partial batch stays queued
        admitted.append(gw.submit("key-ops", "bay", pool[i % len(pool)]))
    in_flight = gw.deployments.get("bay").in_flight
    record = gw.swap("bay", lambda: session, version="v2")
    after = [gw.request("key-ops", "bay", pool[i % len(pool)])
             for i in range(4)]
    completed = gw.flush() + gw.poll()
    answered = (gw.stats.completed == gw.stats.admitted)
    return {
        "in_flight_at_swap": int(in_flight),
        "drained": int(record.drained),
        "dropped": int(record.dropped),
        "swap_seconds": float(record.seconds),
        "old_version": record.old_version,
        "new_version": record.new_version,
        "post_swap_version": after[0].version,
        "all_answered": bool(answered and len(admitted) == 6
                             and all(r.ok for r in after)),
    }


# ---------------------------------------------------------------------------
# Self-healing scenarios (schema v2)
# ---------------------------------------------------------------------------
def _make_resilient_gateway(result, *, fault_plan=None, cache_ttl=None):
    """Primary ``bay`` with fallback ``standby``, both serving the same
    checkpoint — which is what makes fallback answers bitwise-comparable
    to the primary's."""
    from repro.api import build_gateway
    from repro.serving import ManualClock

    return build_gateway(
        {"bay": result, "standby": result}, tenants=["ops"],
        clock=ManualClock(), max_batch=8, max_wait=0.002,
        service_time=_service_time, cache_ttl=cache_ttl,
        fallbacks={"bay": "standby"}, fault_plan=fault_plan)


def bench_chaos(result, pool, *, quick: bool) -> dict:
    """Crash + straggler at 2x offered load: the gateway must answer
    every admitted request, deterministically, with bitwise-faithful
    degraded answers."""
    from repro.runtime import FaultPlan
    from repro.serving import GatewayLoadGenerator, TenantStream

    n = 150 if quick else 600
    plan = (FaultPlan()
            .session_crash("bay", at_dispatch=4)
            .session_straggler("bay", 4.0, start_dispatch=10,
                               end_dispatch=14))

    def drive():
        gw = _make_resilient_gateway(result, fault_plan=plan)
        streams = [TenantStream(api_key="key-ops", deployment="bay",
                                rate_qps=CHAOS_QPS, requests=n,
                                deadline=0.1)]
        report = GatewayLoadGenerator(gw, pool, seed=SEED).open_loop(
            streams, scenario="chaos_selfheal")
        return gw, report

    gw, report = drive()
    gw2, report2 = drive()
    transitions = gw.resilience.transitions()
    deterministic = (transitions == gw2.resilience.transitions()
                     and report.to_dict() == report2.to_dict())

    # Bitwise fidelity of the degradation ladder, both rungs, against a
    # fault-free gateway answering the same windows.
    calm = _make_resilient_gateway(result)
    refs = [calm.request("key-ops", "bay", pool[i]).forecast.predictions
            for i in range(2)]
    crash = _make_resilient_gateway(
        result, fault_plan=FaultPlan().session_crash("bay"))
    via_fallback = crash.request("key-ops", "bay", pool[0])
    stale_gw = _make_resilient_gateway(
        result, cache_ttl=0.01,
        fault_plan=FaultPlan().session_crash("bay", at_dispatch=1))
    warm = stale_gw.request("key-ops", "bay", pool[1])
    stale_gw.clock.advance(0.02)            # expire; entry stays resident
    via_stale = stale_gw.request("key-ops", "bay", pool[1])
    bitwise = (via_fallback.status == "degraded"
               and via_fallback.degraded_source == "fallback:standby"
               and np.array_equal(via_fallback.forecast.predictions,
                                  refs[0])
               and via_stale.status == "degraded"
               and via_stale.degraded_source == "stale_cache"
               and np.array_equal(via_stale.forecast.predictions,
                                  warm.forecast.predictions)
               and np.array_equal(warm.forecast.predictions, refs[1]))

    d = report.to_dict()
    d["shed_by_reason"] = gw.admission.shed_by_reason()
    d["transitions"] = transitions
    d["transitions_deterministic"] = bool(deterministic)
    d["degraded_bitwise_equal"] = bool(bitwise)
    d["restarts"] = int(gw.resilience.restarts)
    d["all_answered"] = bool(gw.stats.completed == gw.stats.admitted
                             and not gw._pending)
    return d


def bench_canary(result, pool) -> dict:
    """A broken green checkpoint must fail its canary and auto-roll
    back: zero drops, blue serving bitwise-identical answers after."""
    from repro.serving.resilience import RollbackRecord
    from repro.utils.errors import SessionFailure

    gw = _make_resilient_gateway(result)
    before = gw.request("key-ops", "bay", pool[0])
    blue = gw.deployments.get("bay").session

    class _Broken:
        def __getattr__(self, name):
            return getattr(blue, name)

        def predict(self, x):
            raise SessionFailure("green checkpoint is broken")

    record = gw.swap("bay", lambda: _Broken(), version="v2-broken")
    rolled = isinstance(record, RollbackRecord)
    after = gw.request("key-ops", "bay", pool[0])
    return {
        "rolled_back": bool(rolled),
        "reason": record.reason if rolled else "",
        "probes_run": int(record.probes_run) if rolled else 0,
        "dropped": int(record.dropped),
        "restored_version": (record.restored_version if rolled
                             else record.new_version),
        "post_swap_bitwise": bool(
            after.version == before.version
            and np.array_equal(after.forecast.predictions,
                               before.forecast.predictions)),
        "all_answered": bool(gw.stats.failed == 0),
    }


def collect_gateway(*, quick: bool = False, label: str = "",
                    chaos_only: bool = False) -> dict:
    """Measure the gateway scenario suite; returns the section dict.

    ``chaos_only`` runs just the two self-healing scenarios — the CI
    chaos job's quick gate — producing a section that is **not** meant
    to be merged into a snapshot (it fails validation by design).
    """
    spec, result, pool = _train(quick)
    scenarios = {}
    if not chaos_only:
        scenarios.update({
            "baseline_1k": bench_baseline(result, pool, quick=quick),
            "overload_10k": bench_overload(result, pool, quick=quick),
            "cache_roundtrip": bench_cache(result, pool),
            "bluegreen_swap": bench_swap(result, pool),
        })
    scenarios.update({
        "chaos_selfheal": bench_chaos(result, pool, quick=quick),
        "canary_rollback": bench_canary(result, pool),
    })
    return {
        "schema": GATEWAY_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"spec": spec.to_dict(), "seed": SEED,
                   "max_batch": 8, "max_wait": 0.002,
                   "service_time": list(SERVICE_TIME),
                   "baseline_qps": BASELINE_QPS,
                   "overload_qps": OVERLOAD_QPS,
                   "chaos_qps": CHAOS_QPS,
                   "max_shed_rate": MAX_SHED_RATE,
                   "min_overload_goodput": MIN_OVERLOAD_GOODPUT,
                   "pool_windows": int(len(pool)), "quick": bool(quick),
                   "chaos_only": bool(chaos_only)},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing (shared conventions with serve/dist/fault benches)
# ---------------------------------------------------------------------------
#: Still-valid historical schemas (committed snapshots predating the
#: self-healing scenarios keep validating).
GATEWAY_SCHEMAS = ("repro-gateway/v1", GATEWAY_SCHEMA)


def validate_gateway(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid gateway section.

    Accepts both the current ``v2`` shape and historical ``v1`` sections
    (which predate ``chaos_selfheal``/``canary_rollback``)."""
    if (not isinstance(section, dict)
            or section.get("schema") not in GATEWAY_SCHEMAS):
        raise ValueError(f"not a {GATEWAY_SCHEMA} gateway section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"gateway section missing {key!r}")
    scen = section["scenarios"]
    for name in ("baseline_1k", "overload_10k"):
        for field in ("requests", "offered_qps", "goodput_qps", "shed_rate",
                      "latency_p99", "deadline_misses", "per_tenant"):
            if field not in scen.get(name, {}):
                raise ValueError(f"scenario {name!r} missing {field!r}")
    for field in ("bitwise_equal", "hits", "hit_rate"):
        if field not in scen.get("cache_roundtrip", {}):
            raise ValueError(f"cache_roundtrip missing {field!r}")
    for field in ("dropped", "drained", "all_answered"):
        if field not in scen.get("bluegreen_swap", {}):
            raise ValueError(f"bluegreen_swap missing {field!r}")
    if section["schema"] == GATEWAY_SCHEMA:        # v2: self-healing
        for field in ("failed", "deadline_misses", "degraded",
                      "transitions", "transitions_deterministic",
                      "degraded_bitwise_equal", "restarts",
                      "all_answered"):
            if field not in scen.get("chaos_selfheal", {}):
                raise ValueError(f"chaos_selfheal missing {field!r}")
        for field in ("rolled_back", "dropped", "post_swap_bitwise"):
            if field not in scen.get("canary_rollback", {}):
                raise ValueError(f"canary_rollback missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``gateway`` key of the snapshot, creating
    a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_gateway(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["gateway"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    from benchmarks.serve_bench import default_target as _default
    return _default(root)


# ---------------------------------------------------------------------------
# Diffing / gating
# ---------------------------------------------------------------------------
def check_regression(section: dict) -> list[str]:
    """Failure messages for the section's own gates (empty = green).

    The gates are the subsystem's guarantees, deterministic under the
    synthetic service-time model, not machine-dependent thresholds."""
    validate_gateway(section)
    cfg = section["config"]
    failures = []
    base = section["scenarios"]["baseline_1k"]
    if base["shed_rate"] > 0:
        failures.append(f"baseline load shed {base['shed_rate']:.1%}; "
                        f"admission must not fire below capacity")
    if base["deadline_misses"] > 0:
        failures.append(f"baseline load missed {base['deadline_misses']} "
                        f"deadlines")
    over = section["scenarios"]["overload_10k"]
    if over["shed_rate"] <= 0:
        failures.append("overload never shed; admission control is inert")
    max_shed = cfg.get("max_shed_rate", MAX_SHED_RATE)
    if over["shed_rate"] > max_shed:
        failures.append(f"overload shed {over['shed_rate']:.1%} "
                        f"(bound {max_shed:.0%})")
    floor = cfg.get("min_overload_goodput", MIN_OVERLOAD_GOODPUT)
    if over["goodput_qps"] < floor:
        failures.append(f"overload goodput collapsed to "
                        f"{over['goodput_qps']:.0f} qps (floor {floor:.0f})")
    if over["deadline_misses"] > 0:
        failures.append(f"overload missed {over['deadline_misses']} "
                        f"deadlines on admitted requests; the projection "
                        f"under-estimates")
    cache = section["scenarios"]["cache_roundtrip"]
    if not cache["bitwise_equal"]:
        failures.append("cache hit differed from recomputation (must be "
                        "bitwise equal)")
    if cache["hits"] < 1:
        failures.append("cache scenario never hit")
    swap = section["scenarios"]["bluegreen_swap"]
    if swap["dropped"] != 0:
        failures.append(f"blue-green swap dropped {swap['dropped']} "
                        f"in-flight requests")
    if not swap["all_answered"]:
        failures.append("requests around the swap went unanswered")
    failures.extend(check_chaos_regression(section["scenarios"]))
    return failures


def check_chaos_regression(scen: dict) -> list[str]:
    """Exact gates for the two self-healing scenarios (empty = green)."""
    failures = []
    chaos = scen["chaos_selfheal"]
    if chaos["failed"] != 0:
        failures.append(f"chaos run exhausted the degradation ladder on "
                        f"{chaos['failed']} requests (must answer every "
                        f"admitted request)")
    if chaos["deadline_misses"] != 0:
        failures.append(f"chaos run missed {chaos['deadline_misses']} "
                        f"deadlines on admitted requests")
    if not chaos["all_answered"]:
        failures.append("chaos run left admitted requests unanswered")
    if chaos["degraded"] < 1:
        failures.append("chaos never degraded a request; the fault plan "
                        "did not bite")
    if chaos["restarts"] < 1:
        failures.append("chaos probe never restarted the crashed session")
    if not chaos["transitions_deterministic"]:
        failures.append("circuit transitions differed across two runs of "
                        "the same seed")
    if not chaos["degraded_bitwise_equal"]:
        failures.append("degraded answer differed from its cache/fallback "
                        "source (must be bitwise equal)")
    canary = scen["canary_rollback"]
    if not canary["rolled_back"]:
        failures.append("broken green checkpoint passed its canary")
    if canary["dropped"] != 0:
        failures.append(f"canary rollback dropped {canary['dropped']} "
                        f"in-flight requests")
    if not canary["post_swap_bitwise"]:
        failures.append("blue did not serve bitwise-identical answers "
                        "after the rollback")
    if not canary["all_answered"]:
        failures.append("requests around the rollback went unanswered")
    return failures


def diff_gateway(old: dict, new: dict) -> dict:
    """Headline-metric comparison between two snapshots.

    The *new* snapshot must carry a gateway section; either side may
    predate the subsystem (e.g. ``BENCH_5.json``) or carry the v1
    schema (``BENCH_6.json``, before the self-healing scenarios), in
    which case the missing values are reported as ``None`` instead of
    failing the diff.
    """
    if "gateway" not in new:
        raise ValueError("new snapshot has no gateway section")
    validate_gateway(new["gateway"])
    o = None
    if "gateway" in old:
        o = old["gateway"].get("scenarios")
    n = new["gateway"]["scenarios"]

    def grab(scen, scenario: str, field: str):
        if scen is None or field not in scen.get(scenario, {}):
            return None
        return scen[scenario][field]

    def pick(scenario: str, field: str) -> dict:
        return {"old": grab(o, scenario, field),
                "new": grab(n, scenario, field)}

    return {
        "baseline_goodput_qps": pick("baseline_1k", "goodput_qps"),
        "overload_goodput_qps": pick("overload_10k", "goodput_qps"),
        "overload_shed_rate": pick("overload_10k", "shed_rate"),
        "cache_hit_rate": pick("cache_roundtrip", "hit_rate"),
        "chaos_goodput_qps": pick("chaos_selfheal", "goodput_qps"),
        "chaos_degraded": pick("chaos_selfheal", "degraded"),
    }


def _format_section(section: dict) -> str:
    scen = section["scenarios"]
    lines = [f"gateway suite "
             f"({'quick' if section['config']['quick'] else 'full'}"
             f"{', chaos only' if section['config'].get('chaos_only') else ''})"]
    if "baseline_1k" in scen:
        base, over = scen["baseline_1k"], scen["overload_10k"]
        cache, swap = scen["cache_roundtrip"], scen["bluegreen_swap"]
        lines += [
            f"  baseline_1k: {base['requests']} reqs offered "
            f"{base['offered_qps']:.0f} qps -> goodput "
            f"{base['goodput_qps']:.0f} qps, shed {base['shed_rate']:.1%}, "
            f"p99 {base['latency_p99'] * 1e3:.2f} ms, "
            f"misses {base['deadline_misses']}",
            f"  overload_10k: {over['requests']} reqs offered "
            f"{over['offered_qps']:.0f} qps -> goodput "
            f"{over['goodput_qps']:.0f} qps, shed {over['shed_rate']:.1%}, "
            f"p99 {over['latency_p99'] * 1e3:.2f} ms, "
            f"misses {over['deadline_misses']}",
            f"  cache_roundtrip: {cache['hits']} hit(s), hit rate "
            f"{cache['hit_rate']:.0%}, bitwise "
            f"{'OK' if cache['bitwise_equal'] else 'BROKEN'}",
            f"  bluegreen_swap: {swap['in_flight_at_swap']} in flight -> "
            f"{swap['drained']} drained, {swap['dropped']} dropped, "
            f"{swap['old_version']} -> {swap['new_version']}, answered "
            f"{'OK' if swap['all_answered'] else 'BROKEN'}",
        ]
    chaos, canary = scen["chaos_selfheal"], scen["canary_rollback"]
    lines += [
        f"  chaos_selfheal: {chaos['requests']} reqs offered "
        f"{chaos['offered_qps']:.0f} qps -> goodput "
        f"{chaos['goodput_qps']:.0f} qps, degraded {chaos['degraded']}, "
        f"failed {chaos['failed']}, misses {chaos['deadline_misses']}, "
        f"{len(chaos['transitions'])} circuit transition(s) "
        f"({'deterministic' if chaos['transitions_deterministic'] else 'NON-DETERMINISTIC'}), "
        f"restarts {chaos['restarts']}, degraded bitwise "
        f"{'OK' if chaos['degraded_bitwise_equal'] else 'BROKEN'}",
        f"  canary_rollback: "
        f"{'rolled back' if canary['rolled_back'] else 'NOT ROLLED BACK'} "
        f"({canary['reason'] or 'n/a'}) after {canary['probes_run']} "
        f"probe(s), {canary['dropped']} dropped, blue bitwise "
        f"{'OK' if canary['post_swap_bitwise'] else 'BROKEN'}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gateway_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: fewer requests, 1 epoch")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the gateway section into "
                             "(default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' gateway sections")
    parser.add_argument("--chaos-only", action="store_true",
                        help="run only the self-healing scenarios "
                             "(chaos_selfheal + canary_rollback); no "
                             "snapshot merge")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 unless shedding, caching, swap and "
                             "self-healing guarantees hold")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        for name, d in diff_gateway(old, new).items():
            was = "(absent)" if d["old"] is None else f"{d['old']:.2f}"
            now = "(absent)" if d["new"] is None else f"{d['new']:.2f}"
            print(f"  {name}: {was} -> {now}")
        return 0

    section = collect_gateway(quick=args.quick, label=args.label,
                              chaos_only=args.chaos_only)
    print(_format_section(section))
    if args.chaos_only:
        failures = check_chaos_regression(section["scenarios"])
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print("self-healing gate green (every admitted request answered, "
              "deterministic transitions, bitwise degradation, zero-drop "
              "rollback)")
        return 0
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged gateway section into {target}")
    if args.fail_on_regression:
        failures = check_regression(section)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print("regression gate green (no shed below capacity, bounded "
              "overload shed, bitwise cache, zero-drop swap, self-healing "
              "chaos + rollback)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
