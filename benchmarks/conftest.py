"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact and asserts the paper's
qualitative shape (who wins, by roughly what factor, where crossovers
fall).  Real-training benchmarks run at the ``tiny`` scale preset and are
executed once per session (``pedantic`` mode) since a training run is not
a microbenchmark.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavyweight experiment exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
