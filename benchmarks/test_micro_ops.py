"""Micro-benchmarks of the mechanisms behind the headline results.

Not a paper artifact per se, but these measure the primitives whose costs
the paper's design exploits: zero-copy snapshot construction, batch
gathering, sparse diffusion propagation, and gradient all-reduce.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.graph import dual_random_walk_supports, random_sensor_network
from repro.preprocessing import IndexDataset, standard_preprocess


@pytest.fixture(scope="module")
def index_ds():
    ds = load_dataset("pems-bay", nodes=64, entries=3000, seed=0)
    return IndexDataset.from_dataset(ds)


def test_snapshot_view_construction(benchmark, index_ds):
    """Index-batching's core primitive: O(1) zero-copy window views."""
    out = benchmark(index_ds.snapshot, 100)
    assert out[0].base is index_ds.data


def test_batch_gather(benchmark, index_ds):
    """Runtime batch assembly (the only copying step in index-batching)."""
    starts = index_ds.split_starts("train")[:64]
    x, y = benchmark(index_ds.gather, starts)
    assert x.shape[0] == 64


def test_standard_preprocess_small(benchmark):
    """The whole Algorithm-1 pipeline on a small dataset, for reference."""
    ds = load_dataset("pems-bay", nodes=24, entries=1000, seed=1)
    pre = benchmark(standard_preprocess, ds)
    assert pre.x_train.shape[0] > 0


def test_index_preprocess_small(benchmark):
    """Index-batching preprocessing of the same dataset (no window stacks)."""
    ds = load_dataset("pems-bay", nodes=24, entries=1000, seed=1)
    idx = benchmark(IndexDataset.from_dataset, ds)
    assert idx.num_snapshots > 0


def test_sparse_diffusion_propagation(benchmark):
    """One diffusion hop over a 512-sensor graph, batch of 32."""
    g = random_sensor_network(512, seed=2)
    support = dual_random_walk_supports(g.weights)[0]
    x = Tensor(np.random.default_rng(0).standard_normal(
        (32, 512, 64)).astype(np.float32))
    out = benchmark(F.sparse_matmul, support, x)
    assert out.shape == (32, 512, 64)


def test_gradient_allreduce(benchmark):
    """Ring all-reduce of a PGT-DCRNN-sized gradient across 8 ranks."""
    comm = SimCommunicator(8)
    grads = [np.random.default_rng(r).standard_normal(63_617).astype(
        np.float32) for r in range(8)]

    def reduce():
        return comm.allreduce(grads, op="mean")

    out = benchmark(reduce)
    np.testing.assert_allclose(out[0], np.mean(grads, axis=0), rtol=1e-5)
