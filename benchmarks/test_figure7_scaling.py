"""Benchmark F7 — Figure 7: the 4-128 GPU scaling study on PeMS."""

import pytest

from repro.experiments.figure7 import run_figure7


@pytest.fixture(scope="module")
def result():
    return run_figure7()


def test_figure7(benchmark):
    fresh = benchmark(run_figure7)
    for check in (test_speedup_vs_ddp_endpoints, test_speedup_vs_single_gpu,
                  test_near_linear_to_32_knee_after,
                  test_ddp_becomes_communication_bound,
                  test_dist_index_communication_negligible,
                  test_ddp_preprocessing_stable):
        check(fresh)


def test_speedup_vs_ddp_endpoints(result):
    """Paper: 2.16x at 4 GPUs and 11.78x at 128 GPUs."""
    assert result.speedup_vs_ddp(4) == pytest.approx(2.16, rel=0.15)
    assert result.speedup_vs_ddp(128) == pytest.approx(11.78, rel=0.25)
    # Monotonically widening gap.
    speedups = [result.speedup_vs_ddp(g) for g in (4, 8, 16, 32, 64, 128)]
    assert speedups == sorted(speedups)


def test_speedup_vs_single_gpu(result):
    """Paper: up to 79.41x total speedup with 128 GPUs."""
    assert result.speedup_vs_single(128) == pytest.approx(79.41, rel=0.2)


def test_near_linear_to_32_knee_after(result):
    """Paper §5.3.1: near-linear at 4-32 GPUs, sublinear at 64/128."""
    base = result.by("dist-index")[4].total_minutes
    def efficiency(g):
        return (base / result.by("dist-index")[g].total_minutes) / (g / 4)
    assert efficiency(8) > 0.9
    assert efficiency(16) > 0.85
    assert efficiency(32) > 0.75
    assert efficiency(128) < efficiency(32)  # the knee


def test_ddp_becomes_communication_bound(result):
    """Fig. 7 left: the comm segment dominates DDP at scale."""
    for g in (16, 32, 64, 128):
        p = result.by("baseline-ddp")[g]
        assert p.comm_minutes > p.compute_minutes


def test_dist_index_communication_negligible(result):
    """Fig. 7 right: dist-index bars are essentially all compute."""
    for g in (4, 8, 16, 32):
        p = result.by("dist-index")[g]
        assert p.comm_minutes < 0.2 * p.total_minutes


def test_ddp_preprocessing_stable(result):
    """Paper: DDP preprocessing stays flat (max ~305 s at 128 workers)."""
    pre = [result.by("baseline-ddp")[g].preprocess_seconds
           for g in (4, 8, 16, 32, 64, 128)]
    assert max(pre) < 1.5 * min(pre)
    # Index preprocessing is tens of seconds, not hundreds.
    for g in (4, 32, 128):
        assert result.by("dist-index")[g].preprocess_seconds < 60
