"""Benchmark T4 — Table 4: index vs GPU-index batching on full PeMS."""

import pytest

from repro.experiments.table4 import run_table4


def test_table4(benchmark):
    rows = benchmark(run_table4)
    by = {r.implementation: r for r in rows}
    idx, gpu = by["index-batching"], by["gpu-index-batching"]

    # Paper: 333.58 min vs 290.65 min (12.87% reduction).
    assert idx.runtime_minutes == pytest.approx(333.58, rel=0.05)
    assert gpu.runtime_minutes == pytest.approx(290.65, rel=0.05)
    saving = 1 - gpu.runtime_minutes / idx.runtime_minutes
    assert 0.08 < saving < 0.20

    # Paper: CPU 45.84 -> 18.20 GB (60.3% reduction); GPU 5.50 -> 18.60 GB.
    assert idx.cpu_peak_gb == pytest.approx(45.84, rel=0.1)
    assert gpu.cpu_peak_gb == pytest.approx(18.20, rel=0.15)
    cpu_saving = 1 - gpu.cpu_peak_gb / idx.cpu_peak_gb
    assert 0.45 < cpu_saving < 0.70

    assert gpu.gpu_peak_gb > 3 * idx.gpu_peak_gb  # dataset now on device
    assert gpu.gpu_peak_gb < 40                   # still fits an A100
