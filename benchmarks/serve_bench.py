"""Serving benchmark: measured QPS + latency percentiles for BENCH JSONs.

Runs a fixed-seed scenario suite against a freshly trained tiny model and
merges the results as a ``"serving"`` section into a ``BENCH_<n>.json``
snapshot (see ``benchmarks/README.md`` for the schema)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.serve_bench

    # explicit target / CI smoke mode
    python -m benchmarks.serve_bench --out BENCH_3.json
    python -m benchmarks.serve_bench --quick --out /tmp/serve.json

    # compare the serving sections of two snapshots
    python -m benchmarks.serve_bench --diff BENCH_3.json BENCH_4.json

Latency numbers are honest wall-clock measurements of the model forward
(simulated time only stitches the request schedule together); arrival
schedules and window choices are fixed-seeded, so two runs on one machine
batch identically and differ only by timer noise.
"""

from __future__ import annotations

import argparse
import json
import re
import time
from pathlib import Path

import numpy as np

SERVING_SCHEMA = "repro-serve/v2"

#: Accepted on read: v2 added the gateway-era LoadReport fields
#: (``goodput_qps`` / ``shed_rate`` / ``per_tenant``, ``None`` for plain
#: service runs) to every scenario dict; committed v1 sections stay valid.
ACCEPTED_SCHEMAS = ("repro-serve/v1", SERVING_SCHEMA)

#: Fixed request-stream seed — part of the benchmark definition.
SEED = 0


def _scenario_dict(report, extra: dict | None = None) -> dict:
    d = report.to_dict()
    if extra:
        d.update(extra)
    return d


def collect_serving(*, quick: bool = False, label: str = "") -> dict:
    """Measure the serving scenario suite; returns the section dict."""
    from repro.api import RunSpec, run, serve
    from repro.serving import LoadGenerator

    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale="tiny", seed=SEED, epochs=1 if quick else 2)
    result = run(spec)
    test = result.artifacts.loaders.test
    pool = test.batch_at(np.arange(test.num_snapshots
                                   if test.num_snapshots < 64 else 64))[0].copy()

    n_closed = 60 if quick else 600
    n_open = 40 if quick else 400
    max_batch, max_wait = 8, 0.002
    scenarios: dict[str, dict] = {}

    # Batch-of-1 reference: no coalescing delay, one request in flight.
    svc = serve(result, max_batch=max_batch, max_wait=0.0)
    gen = LoadGenerator(svc, pool, seed=SEED)
    scenarios["single_stream"] = _scenario_dict(
        gen.closed_loop(requests=n_closed // 2, concurrency=1,
                        scenario="single_stream"))

    # Micro-batched closed loop: 8 clients keep the batcher saturated.
    svc = serve(result, max_batch=max_batch, max_wait=max_wait)
    gen = LoadGenerator(svc, pool, seed=SEED)
    scenarios["closed_loop_c8"] = _scenario_dict(
        gen.closed_loop(requests=n_closed, concurrency=8,
                        scenario="closed_loop_c8"))

    # Open loop at a fixed offered rate: latency under constant pressure.
    svc = serve(result, max_batch=max_batch, max_wait=max_wait)
    gen = LoadGenerator(svc, pool, seed=SEED)
    scenarios["open_loop_1k"] = _scenario_dict(
        gen.open_loop(requests=n_open, rate_qps=1000.0,
                      scenario="open_loop_1k"))

    # Sharded workers (2 shards, exact halo) under the closed loop.
    svc = serve(result, server="sharded", num_shards=2,
                max_batch=max_batch, max_wait=max_wait)
    gen = LoadGenerator(svc, pool, seed=SEED)
    report = gen.closed_loop(requests=n_closed // 2, concurrency=8,
                             scenario="sharded_2_c8")
    scenarios["sharded_2_c8"] = _scenario_dict(
        report, extra={"halo": svc.session.halo_stats()})

    return {
        "schema": SERVING_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"spec": spec.to_dict(), "max_batch": max_batch,
                   "max_wait": max_wait, "seed": SEED,
                   "pool_windows": int(len(pool)), "quick": bool(quick)},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing
# ---------------------------------------------------------------------------
def validate_serving(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid serving section."""
    if (not isinstance(section, dict)
            or section.get("schema") not in ACCEPTED_SCHEMAS):
        raise ValueError(f"not a {SERVING_SCHEMA} serving section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"serving section missing {key!r}")
    for name, s in section["scenarios"].items():
        for field in ("mode", "requests", "qps", "latency_p50",
                      "latency_p95", "latency_p99", "mean_batch_size",
                      "deadline_misses"):
            if field not in s:
                raise ValueError(f"scenario {name!r} missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``serving`` key of the snapshot at ``path``,
    creating a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_serving(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["serving"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    """Newest existing ``BENCH_<n>.json`` (or a fresh ``BENCH_1.json``)."""
    root = Path(root)
    best, best_n = None, 0
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best if best is not None else root / "BENCH_1.json"


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------
def diff_serving(old: dict, new: dict) -> dict:
    """Per-scenario ``qps`` / tail-latency ratios (``>1`` = new is better)."""
    for d in (old, new):
        if "serving" not in d:
            raise ValueError("snapshot has no serving section")
        validate_serving(d["serving"])
    out = {}
    shared = (set(old["serving"]["scenarios"])
              & set(new["serving"]["scenarios"]))
    for name in sorted(shared):
        o = old["serving"]["scenarios"][name]
        n = new["serving"]["scenarios"][name]
        out[name] = {
            "old_qps": o["qps"], "new_qps": n["qps"],
            "qps_speedup": n["qps"] / o["qps"] if o["qps"] else float("inf"),
            "old_p99": o["latency_p99"], "new_p99": n["latency_p99"],
            "p99_speedup": (o["latency_p99"] / n["latency_p99"]
                            if n["latency_p99"] else float("inf")),
        }
    return out


def format_serving_diff(diff: dict) -> str:
    lines = ["== serving (qps / p99) =="]
    width = max([len(n) for n in diff] or [4])
    for name, d in diff.items():
        lines.append(
            f"  {name:<{width}}  {d['old_qps']:>8.0f} -> {d['new_qps']:>8.0f}"
            f" qps  x{d['qps_speedup']:.2f}   p99 "
            f"{d['old_p99'] * 1e3:.2f} -> {d['new_p99'] * 1e3:.2f} ms  "
            f"x{d['p99_speedup']:.2f}")
    return "\n".join(lines)


def _format_section(section: dict) -> str:
    lines = [f"serving suite ({'quick' if section['config']['quick'] else 'full'})"]
    for name, s in section["scenarios"].items():
        lines.append(
            f"  {name}: {s['qps']:.0f} qps, p50/p95/p99 "
            f"{s['latency_p50'] * 1e3:.2f}/{s['latency_p95'] * 1e3:.2f}/"
            f"{s['latency_p99'] * 1e3:.2f} ms, mean batch "
            f"{s['mean_batch_size']:.1f}, misses {s['deadline_misses']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="serve_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: fewer requests, 1 epoch")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the serving section into "
                             "(default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' serving sections")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        print(format_serving_diff(diff_serving(old, new)))
        return 0

    section = collect_serving(quick=args.quick, label=args.label)
    print(_format_section(section))
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged serving section into {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
