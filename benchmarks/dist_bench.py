"""Distributed-runtime benchmark: bucketing + real rank fabrics for BENCH JSONs.

Measures the wins the ``repro.runtime`` layer claims and merges them as a
``"distributed"`` section (schema ``repro-dist/v2``) into a
``BENCH_<n>.json`` snapshot (see ``benchmarks/README.md``)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.dist_bench

    # explicit target / CI smoke mode
    python -m benchmarks.dist_bench --out BENCH_8.json
    python -m benchmarks.dist_bench --quick --out /tmp/dist.json

    # compare the distributed sections of two snapshots / gate a claim
    python -m benchmarks.dist_bench --diff BENCH_7.json BENCH_8.json
    python -m benchmarks.dist_bench --fail-on-regression 1.5

Scenarios:

- ``allreduce_bucketed_w4`` — per-tensor vs bucketed gradient all-reduce
  on the simulated fabric: one all-reduce per parameter tensor pays the
  ring latency term once per tensor, the bucketer pays it once per
  bucket.  Simulated seconds are deterministic; wall seconds of the
  in-process data movement ride along.
- ``thread_scaling_w4`` / ``process_scaling_w4`` /
  ``socket_scaling_w4`` (full mode only) — fixed-seed world-4
  ``DDPTrainer`` training on the named fabric, parallel vs sequential
  rank execution, measured in wall-clock optimizer steps/sec.  The
  fixed-seed loss curves of both runs must match bitwise in every
  scenario (the parity gate).  The achievable speedup is bounded by
  ``usable_cores()``, which the section records as
  ``config.cores_detected``: each scaling scenario carries a
  ``speedup_gate_applied`` flag, true only for full-mode thread/process
  runs on a multi-core machine — ``--fail-on-regression`` enforces the
  speedup threshold exactly where that flag is set, so a single-core
  box records parity-green, gate-skipped runs instead of false alarms.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

DIST_SCHEMA = "repro-dist/v2"

#: Previous schema still accepted by :func:`validate_distributed` so
#: committed snapshots from earlier PRs keep validating.
DIST_SCHEMA_V1 = "repro-dist/v1"

#: Fixed seed — part of the benchmark definition.
SEED = 0

#: Default threshold for the parallel-rank wall-speedup gate (multi-core).
SPEEDUP_FLOOR = 1.5

#: Fabrics the scaling scenarios cover; socket rides along in full mode.
SCALING_TRANSPORTS = ("thread", "process", "socket")


def _cores() -> int:
    from repro.hardware import usable_cores
    return usable_cores()


# ---------------------------------------------------------------------------
# Scenario 1: per-tensor vs bucketed all-reduce (simulated gradient time)
# ---------------------------------------------------------------------------
def bench_allreduce(*, world: int = 4, quick: bool = False) -> dict:
    from repro.api.builders import ModelContext
    from repro.api.registry import MODELS
    from repro.datasets import load_dataset
    from repro.runtime import GradientBucketer, ProcessGroup

    ds = load_dataset("pems-bay", nodes=32 if quick else 64,
                      entries=300, seed=SEED)
    ctx = ModelContext(graph=ds.graph, horizon=4, in_features=2,
                       hidden_dim=32 if quick else 64, seed=SEED)
    model = MODELS.get("dcrnn")(ctx)  # many parameter tensors (enc+dec)
    params = [p for p in model.parameters() if p.requires_grad]
    rng = np.random.default_rng(SEED)
    for p in params:
        p.grad = rng.standard_normal(p.data.shape).astype(p.data.dtype)
    steps = 3 if quick else 10

    # Per-tensor: one all-reduce per parameter, every step.
    pg_tensor = ProcessGroup.sim(world)
    t0 = time.perf_counter()
    for _ in range(steps):
        for p in params:
            pg_tensor.allreduce([p.grad] * world, category="gradient")
    per_tensor_wall = time.perf_counter() - t0

    # Bucketed: pack once per rank, one all-reduce per bucket.
    bucketer = GradientBucketer(params)
    bufs = [bucketer.make_buffers() for _ in range(world)]
    pg_bucket = ProcessGroup.sim(world)
    t0 = time.perf_counter()
    for _ in range(steps):
        for r in range(world):
            bucketer.pack(params, bufs[r])
        for b in range(bucketer.num_buckets):
            pg_bucket.allreduce([bufs[r][b] for r in range(world)],
                                category="gradient")
    bucketed_wall = time.perf_counter() - t0

    per_tensor_sim = pg_tensor.now
    bucketed_sim = pg_bucket.now
    assert (pg_tensor.stats.bytes_by_category["gradient"]
            == pg_bucket.stats.bytes_by_category["gradient"])
    return {
        "world": world,
        "steps": steps,
        "num_tensors": len(params),
        "buckets": bucketer.num_buckets,
        "gradient_mb": bucketer.total_bytes / (1 << 20),
        "per_tensor_sim_seconds": per_tensor_sim,
        "bucketed_sim_seconds": bucketed_sim,
        "sim_speedup": (per_tensor_sim / bucketed_sim
                        if bucketed_sim else float("inf")),
        "per_tensor_wall_seconds": per_tensor_wall,
        "bucketed_wall_seconds": bucketed_wall,
        "wall_speedup": (per_tensor_wall / bucketed_wall
                         if bucketed_wall else float("inf")),
        # The claim this scenario gates is the *simulated* gradient time
        # (ring latency per tensor vs per bucket).  The wall numbers time
        # in-process memcpy of the same bytes plus the bucketer's pack
        # pass — on a single-core box that extra pass can make the wall
        # ratio dip below 1.0 without contradicting the claim.  Flagged
        # so snapshot readers and diff tooling don't misread it.
        "wall_informational": True,
    }


# ---------------------------------------------------------------------------
# Scenario family 2: parallel vs sequential rank execution per fabric
# ---------------------------------------------------------------------------
def _make_group(transport: str, world: int, parallel: bool):
    from repro.runtime import ProcessGroup

    if transport == "thread":
        return ProcessGroup.threads(world, parallel=parallel)
    if transport == "process":
        return ProcessGroup.processes(world, parallel=parallel)
    if transport == "socket":
        return ProcessGroup.sockets(world, parallel=parallel)
    raise ValueError(f"unknown scaling transport {transport!r}")


def _train_ddp(transport: str, parallel: bool, *, world: int, epochs: int,
               nodes: int, hidden: int, batch: int
               ) -> tuple[float, int, list[float]]:
    """One fixed-seed DDP run; returns (seconds, global steps, curve)."""
    from repro.batching import IndexBatchLoader
    from repro.datasets import load_dataset
    from repro.graph import dual_random_walk_supports
    from repro.models import PGTDCRNN
    from repro.optim import Adam
    from repro.preprocessing import IndexDataset
    from repro.training import DDPStrategy, DDPTrainer

    ds = load_dataset("pems-bay", nodes=nodes, entries=40 * batch + 40,
                      seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)

    def factory():
        return PGTDCRNN(supports, horizon=4, in_features=2,
                        hidden_dim=hidden, seed=SEED)

    model = factory()
    opt = Adam(model.parameters(), lr=0.01)
    # Threads need per-rank replicas to overlap; the forked fabrics get
    # their replica for free (the copy-on-write fork snapshot).
    tr = DDPTrainer(model, opt, _make_group(transport, world, parallel),
                    IndexBatchLoader(idx, "train", batch),
                    strategy=DDPStrategy.DIST_INDEX, seed=SEED,
                    model_factory=factory if transport == "thread" else None)
    steps = min(len(b) for b in tr.sampler.epoch_plan(0)) * epochs
    t0 = time.perf_counter()
    hist = tr.fit(epochs)
    seconds = time.perf_counter() - t0
    shutdown = getattr(tr.comm.transport, "shutdown", None)
    if shutdown is not None:
        shutdown()
    return seconds, steps, [h.train_loss for h in hist]


def bench_fabric_scaling(transport: str, *, world: int = 4,
                         quick: bool = False) -> dict:
    kw = dict(world=world, epochs=1 if quick else 2,
              nodes=16 if quick else 48, hidden=16 if quick else 48,
              batch=8 if quick else 16)
    seq_seconds, steps, seq_curve = _train_ddp(transport, False, **kw)
    par_seconds, _, par_curve = _train_ddp(transport, True, **kw)
    cores = _cores()
    return {
        "transport": transport,
        "world": world,
        "cores": cores,
        "steps": steps,
        "nodes": kw["nodes"],
        "hidden": kw["hidden"],
        "batch": kw["batch"],
        "seq_steps_per_sec": steps / seq_seconds if seq_seconds else 0.0,
        "par_steps_per_sec": steps / par_seconds if par_seconds else 0.0,
        "wall_speedup": (seq_seconds / par_seconds
                         if par_seconds else float("inf")),
        "curve_bitwise_equal": bool(seq_curve == par_curve),
        "train_curve": par_curve,
        # The wall-speedup gate only means something where parallel rank
        # execution *can* win: full-mode workloads, >1 usable core, and a
        # fabric whose parallelism the claim covers (socket pays framing
        # overhead and rides along parity-gated only).
        "speedup_gate_applied": bool(cores > 1 and not quick
                                     and transport in ("thread", "process")),
    }


def collect_distributed(*, quick: bool = False, label: str = "") -> dict:
    """Measure the distributed scenario suite; returns the section dict."""
    scenarios = {
        "allreduce_bucketed_w4": bench_allreduce(quick=quick),
        "thread_scaling_w4": bench_fabric_scaling("thread", quick=quick),
        "process_scaling_w4": bench_fabric_scaling("process", quick=quick),
    }
    if not quick:
        scenarios["socket_scaling_w4"] = bench_fabric_scaling(
            "socket", quick=quick)
    return {
        "schema": DIST_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"seed": SEED, "quick": bool(quick),
                   "cores_detected": _cores()},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing (shared conventions with serve_bench)
# ---------------------------------------------------------------------------
def _scaling_scenarios(section: dict) -> dict[str, dict]:
    """The per-fabric scaling scenarios of a v1 or v2 section."""
    return {name: scen for name, scen in section["scenarios"].items()
            if name.endswith("_scaling_w4")}


def _par_steps_per_sec(scen: dict) -> float:
    """Parallel-rank throughput, across schema versions (v1 named the
    field after its only fabric)."""
    return scen.get("par_steps_per_sec",
                    scen.get("thread_steps_per_sec", 0.0))


def validate_distributed(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid dist section.

    Accepts the current ``repro-dist/v2`` schema and the committed
    ``repro-dist/v1`` snapshots from earlier PRs.
    """
    if not isinstance(section, dict):
        raise ValueError(f"not a {DIST_SCHEMA} distributed section")
    schema = section.get("schema")
    if schema not in (DIST_SCHEMA, DIST_SCHEMA_V1):
        raise ValueError(f"not a {DIST_SCHEMA} distributed section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"distributed section missing {key!r}")
    scen = section["scenarios"]
    for field in ("per_tensor_sim_seconds", "bucketed_sim_seconds",
                  "sim_speedup", "buckets", "num_tensors"):
        if field not in scen.get("allreduce_bucketed_w4", {}):
            raise ValueError(f"allreduce scenario missing {field!r}")
    if schema == DIST_SCHEMA_V1:
        for field in ("cores", "seq_steps_per_sec", "thread_steps_per_sec",
                      "wall_speedup", "curve_bitwise_equal"):
            if field not in scen.get("thread_scaling_w4", {}):
                raise ValueError(f"thread scenario missing {field!r}")
        return
    if "cores_detected" not in section["config"]:
        raise ValueError("v2 config missing 'cores_detected'")
    scaling = _scaling_scenarios(section)
    for required in ("thread_scaling_w4", "process_scaling_w4"):
        if required not in scaling:
            raise ValueError(f"v2 section missing {required!r}")
    for name, sc in scaling.items():
        for field in ("transport", "cores", "seq_steps_per_sec",
                      "par_steps_per_sec", "wall_speedup",
                      "curve_bitwise_equal", "speedup_gate_applied"):
            if field not in sc:
                raise ValueError(f"{name} scenario missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``distributed`` key of the snapshot,
    creating a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_distributed(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["distributed"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    from benchmarks.serve_bench import default_target as _default
    return _default(root)


# ---------------------------------------------------------------------------
# Diffing / gating
# ---------------------------------------------------------------------------
def check_regression(section: dict, threshold: float) -> list[str]:
    """Failure messages for the section's own gates (empty = green).

    Parity and the bucketing win are gated in every mode and on every
    fabric.  The wall-speedup threshold applies exactly where the
    section recorded ``speedup_gate_applied`` (full-mode thread/process
    scenarios on a multi-core machine) — a single-core box therefore
    reports parity-green, gate-skipped runs rather than failing a
    speedup it cannot physically reach.
    """
    validate_distributed(section)
    failures = []
    ar = section["scenarios"]["allreduce_bucketed_w4"]
    if ar["sim_speedup"] <= 1.0:
        failures.append(
            f"bucketed all-reduce does not beat per-tensor on simulated "
            f"gradient time (x{ar['sim_speedup']:.2f})")
    for name, scen in _scaling_scenarios(section).items():
        fabric = scen.get("transport", "thread")
        if not scen["curve_bitwise_equal"]:
            failures.append(
                f"{fabric} ranks diverged from sequential execution "
                f"(fixed-seed curves differ)")
        gated = scen.get("speedup_gate_applied",
                         scen["cores"] >= 2
                         and not section["config"].get("quick"))
        if gated and scen["wall_speedup"] < threshold:
            failures.append(
                f"{fabric} speedup x{scen['wall_speedup']:.2f} below "
                f"x{threshold} on {scen['cores']} cores")
    return failures


def diff_distributed(old: dict, new: dict) -> dict:
    """Scenario-metric ratios between two snapshots (``>1`` = new better).

    Works across schema versions; fabrics present on only one side are
    skipped.
    """
    for d in (old, new):
        if "distributed" not in d:
            raise ValueError("snapshot has no distributed section")
        validate_distributed(d["distributed"])
    o = old["distributed"]["scenarios"]
    n = new["distributed"]["scenarios"]
    oa, na = o["allreduce_bucketed_w4"], n["allreduce_bucketed_w4"]
    out = {
        "allreduce_sim_speedup": {"old": oa["sim_speedup"],
                                  "new": na["sim_speedup"]},
    }
    old_scaling = _scaling_scenarios(old["distributed"])
    new_scaling = _scaling_scenarios(new["distributed"])
    for name in sorted(set(old_scaling) & set(new_scaling)):
        ov = _par_steps_per_sec(old_scaling[name])
        nv = _par_steps_per_sec(new_scaling[name])
        out[name.replace("_w4", "_steps_per_sec")] = {
            "old": ov, "new": nv,
            "ratio": nv / ov if ov else float("inf")}
    return out


def _format_section(section: dict) -> str:
    ar = section["scenarios"]["allreduce_bucketed_w4"]
    lines = [
        f"distributed suite "
        f"({'quick' if section['config']['quick'] else 'full'}, "
        f"{section['config']['cores_detected']} usable core(s))",
        f"  allreduce_bucketed_w4: {ar['num_tensors']} tensors -> "
        f"{ar['buckets']} bucket(s), sim {ar['per_tensor_sim_seconds'] * 1e3:.3f}"
        f" -> {ar['bucketed_sim_seconds'] * 1e3:.3f} ms  "
        f"x{ar['sim_speedup']:.2f} (wall x{ar['wall_speedup']:.2f}"
        f"{', informational' if ar.get('wall_informational') else ''})",
    ]
    for name, scen in sorted(_scaling_scenarios(section).items()):
        gate = ("gated" if scen["speedup_gate_applied"] else "gate skipped")
        lines.append(
            f"  {name}: {scen['seq_steps_per_sec']:.1f} -> "
            f"{scen['par_steps_per_sec']:.1f} steps/s  "
            f"x{scen['wall_speedup']:.2f} on {scen['cores']} core(s), "
            f"parity {'OK' if scen['curve_bitwise_equal'] else 'BROKEN'} "
            f"({gate})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dist_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: tiny workloads, no socket "
                             "scenario")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the distributed section "
                             "into (default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' distributed sections")
    parser.add_argument("--fail-on-regression", nargs="?", type=float,
                        const=SPEEDUP_FLOOR, default=None,
                        metavar="SPEEDUP",
                        help="exit 1 unless bucketing wins, parity holds on "
                             "every fabric, and gated scenarios reach "
                             f"SPEEDUP (default {SPEEDUP_FLOOR})")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        diff = diff_distributed(old, new)
        for name, d in diff.items():
            line = f"  {name}: {d['old']:.2f} -> {d['new']:.2f}"
            if "ratio" in d:
                line += f"  x{d['ratio']:.2f}"
            print(line)
        return 0

    section = collect_distributed(quick=args.quick, label=args.label)
    print(_format_section(section))
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged distributed section into {target}")
    if args.fail_on_regression is not None:
        failures = check_regression(section, args.fail_on_regression)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print(f"regression gate green (threshold "
              f"x{args.fail_on_regression:.2f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
