"""Benchmark F5 — Figure 5: validation-MAE convergence curves.

Baseline and index-batching runs must produce *identical* convergence
curves (they consume the same snapshots with the same seeds), and the
curves must actually converge.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def results():
    return run_table3(scale="tiny", seed=3, datasets=("pems-bay",))


def test_figure5_curves(benchmark):
    fresh = run_once(benchmark, run_table3, scale="tiny", seed=4,
                     datasets=("pems-bay",))
    test_curves_identical(fresh)
    test_curves_converge(fresh)


def test_curves_identical(results):
    base = next(r for r in results if r.mode == "base")
    index = next(r for r in results if r.mode == "index")
    np.testing.assert_allclose(base.val_curve, index.val_curve, rtol=1e-6)


def test_curves_converge(results):
    for r in results:
        curve = r.val_curve
        assert len(curve) >= 3
        # Validation MAE improves over training.
        assert min(curve[2:]) < curve[0]
        assert all(np.isfinite(v) for v in curve)
