"""Benchmarks package: pytest-benchmark paper artifacts plus the
``python -m benchmarks.run_bench`` measured-perf snapshot CLI."""
