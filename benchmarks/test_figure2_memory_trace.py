"""Benchmark F2 — Figure 2: memory traces and OOM of DCRNN / PGT-DCRNN."""

from repro.experiments.figure2 import run_figure2
from repro.utils.sizes import GB


def test_figure2(benchmark):
    traces = benchmark(run_figure2)
    by_key = {(t.model, t.dataset): t for t in traces}

    # PeMS-All-LA fits on a 512 GB node for both implementations...
    assert not by_key[("dcrnn", "pems-all-la")].oom
    assert not by_key[("pgt-dcrnn", "pems-all-la")].oom
    # ...but full PeMS crashes for both (the paper's headline OOM).
    assert by_key[("dcrnn", "pems")].oom
    assert by_key[("pgt-dcrnn", "pems")].oom

    # DCRNN uses substantially more memory than PGT-DCRNN (Table 2 order).
    assert (by_key[("dcrnn", "pems-all-la")].peak
            > by_key[("pgt-dcrnn", "pems-all-la")].peak + 50 * GB)

    # The OOM happens close to the 512 GB line, as Fig. 2 shows.
    for t in traces:
        if t.oom:
            assert t.peak > 350 * GB
        assert t.peak <= 512 * GB

    # Traces are non-trivial usage curves (OOM runs end early).
    for t in traces:
        assert len(t.trace) >= 4
        assert max(u for _, u in t.trace) == t.peak
