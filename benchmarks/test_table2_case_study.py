"""Benchmark T2 — Table 2: single-epoch DCRNN vs PGT-DCRNN on PeMS-All-LA."""

import pytest

from repro.experiments.table2 import run_table2


def test_table2(benchmark):
    rows = benchmark(run_table2)
    by_model = {r.model: r for r in rows}
    dcrnn, pgt = by_model["dcrnn"], by_model["pgt-dcrnn"]

    # Paper: 68.48 min vs 4.48 min (15.3x); we assert a 10-25x gap with
    # absolute values within ~20% of the paper's.
    assert dcrnn.runtime_minutes == pytest.approx(68.48, rel=0.2)
    assert pgt.runtime_minutes == pytest.approx(4.48, rel=0.25)
    ratio = dcrnn.runtime_minutes / pgt.runtime_minutes
    assert 10 < ratio < 25

    # Memory ordering and rough magnitudes (371.25 / 259.84 GB system,
    # 24.84 / 1.58 GB GPU).
    assert dcrnn.peak_system_gb > pgt.peak_system_gb
    assert 250 < dcrnn.peak_system_gb < 420
    assert 180 < pgt.peak_system_gb < 300
    assert dcrnn.peak_gpu_gb == pytest.approx(24.84, rel=0.2)
    assert pgt.peak_gpu_gb == pytest.approx(1.58, rel=0.25)
    # Both fit the node (PeMS-All-LA does not OOM).
    assert dcrnn.peak_system_gb < 512 and dcrnn.peak_gpu_gb < 40
