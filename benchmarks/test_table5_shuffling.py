"""Benchmark T5 — Table 5: global vs local batch shuffling accuracy."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table5 import run_table5


@pytest.fixture(scope="module")
def results():
    return run_table5(scale="tiny", seed=0, gpu_counts=(4, 8, 16))


def test_table5_training(benchmark):
    fresh = run_once(benchmark, run_table5, scale="tiny", seed=0,
                     gpu_counts=(4, 8, 16))
    test_batch_shuffling_matches_global(fresh)
    test_all_runs_converge(fresh)


def test_batch_shuffling_matches_global(results):
    """Paper: local batch-level shuffling obtains accuracy similar to
    global shuffling (within a few percent at every worker count)."""
    by = {(r.shuffle, r.gpus): r.best_val_mae for r in results}
    for gpus in (4, 8, 16):
        g, b = by[("global", gpus)], by[("batch", gpus)]
        assert abs(g - b) / g < 0.10


def test_all_runs_converge(results):
    for r in results:
        assert 0 < r.best_val_mae < 50
