"""Benchmark F6 — Figure 6: PeMS memory traces (standard OOM, index spike,
GPU-index low plateau)."""

from repro.experiments.table4 import run_figure6
from repro.utils.sizes import GB


def test_figure6(benchmark):
    traces = benchmark(run_figure6)
    by = {t.implementation: t for t in traces}

    # Standard PGT crashes; both index variants survive.
    assert by["pgt-standard"].oom
    assert not by["pgt-index-batching"].oom
    assert not by["pgt-gpu-index-batching"].oom

    # Paper numbers: index spikes to ~46 GB then settles ~18-20 GB;
    # GPU-index keeps the host below ~20 GB throughout.
    idx = by["pgt-index-batching"]
    assert 40 * GB < idx.peak < 50 * GB
    final_usage = idx.trace[-1][1]
    assert 17 * GB < final_usage < 22 * GB
    assert idx.peak > 2 * final_usage  # the preprocessing spike

    gpu = by["pgt-gpu-index-batching"]
    assert gpu.peak < 22 * GB
    assert gpu.peak < 0.5 * idx.peak   # 60.3% CPU reduction claim

    # Ordering of the three curves matches the figure.
    assert by["pgt-standard"].peak > idx.peak > gpu.peak
