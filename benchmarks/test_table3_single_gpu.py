"""Benchmark T3 — Table 3: base vs index-batching, single GPU (real runs).

The paper's claims: accuracy unchanged, runtime within ~1%, memory
reduced proportionally to dataset size (up to 70% on PeMS-BAY).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def results():
    # Warm process-level caches (BLAS init, dataset/supports memos) so the
    # first measured run is not charged for them.
    run_table3(scale="tiny", seed=0, datasets=("chickenpox-hungary",))
    return run_table3(scale="tiny", seed=0)


def test_table3_training(benchmark):
    fresh = run_once(benchmark, run_table3, scale="tiny", seed=1)
    # All shape claims must hold on the freshly benchmarked run too.
    test_accuracy_identical(fresh)
    test_runtime_comparable(fresh)
    test_memory_reduction(fresh)


def test_accuracy_identical(results):
    """Index-batching feeds the same snapshots -> identical best MAE."""
    by = {(r.dataset, r.mode): r for r in results}
    for dataset in ("chickenpox-hungary", "windmill-large", "pems-bay"):
        base = by[(dataset, "base")]
        index = by[(dataset, "index")]
        assert base.best_val_mae == pytest.approx(index.best_val_mae,
                                                  rel=1e-6)


def _runtime_gap(results):
    by = {(r.dataset, r.mode): r for r in results}
    datasets = ("chickenpox-hungary", "windmill-large", "pems-bay")
    base = sum(by[(d, "base")].runtime_seconds for d in datasets)
    index = sum(by[(d, "index")].runtime_seconds for d in datasets)
    return abs(index - base) / base


def test_runtime_comparable(results):
    """Paper: <1% absolute runtime difference.  The fast-path work cut
    tiny-scale runs to ~0.3s, where single-run OS jitter is tens of
    percent, so compare the *total* across the three datasets (noise
    averages out) with a 40% band.  The workload is deterministic, only
    the clock is noisy: one re-measure on a miss filters scheduler
    spikes that exceed even the wide band."""
    gap = _runtime_gap(results)
    if gap >= 0.40:
        gap = min(gap, _runtime_gap(run_table3(scale="tiny", seed=0)))
    assert gap < 0.40


def test_memory_reduction(results):
    """Index-batching's preprocessing footprint is a fraction of base."""
    by = {(r.dataset, r.mode): r for r in results}
    for dataset in ("windmill-large", "pems-bay"):
        base = by[(dataset, "base")].peak_bytes
        index = by[(dataset, "index")].peak_bytes
        assert index < 0.5 * base  # paper: 46.9% / 70.3% reductions
