"""Benchmark T1 — Table 1: dataset sizes before/after preprocessing."""

import pytest

from repro.experiments.table1 import run_table1
from repro.utils.sizes import GB

PAPER_AFTER_GB = {
    "metr-la": 2.54,
    "pems-bay": 6.05,
    "pems-all-la": 102.08,
    "pems": 419.46,
}


def test_table1(benchmark):
    rows = benchmark(run_table1)
    by_name = {r.spec.name: r for r in rows}

    # Exact reproduction of the GB rows (binary units).
    for name, gb in PAPER_AFTER_GB.items():
        assert by_name[name].after_bytes / GB == pytest.approx(gb, rel=0.005)

    # Growth factor is ~2 * horizon (x the added time-of-day channel for
    # traffic data) for every dataset — the eq. (1) shape.
    for r in rows:
        expected = (2 * r.spec.horizon * r.spec.train_features
                    / r.spec.raw_features)
        assert r.growth_factor == pytest.approx(expected, rel=0.02)

    # PeMS: a modest ~9 GB file grows to ~420 GB — close enough to the
    # 512 GB node limit that the pipeline's transient copies overflow it
    # (the OOM itself is asserted in the Figure 2 benchmark).
    pems = by_name["pems"]
    assert pems.before_bytes < 16 * GB
    assert pems.after_bytes > 400 * GB
