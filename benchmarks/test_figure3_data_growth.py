"""Benchmark F3 — Figure 3: stage-by-stage data growth (PeMS-All-LA)."""

import pytest

from repro.experiments.figure3 import run_figure3
from repro.utils.sizes import GB


def test_figure3(benchmark):
    stages = benchmark(run_figure3)

    # The figure's four bars: 2.12 -> 4.25 -> ~51 -> 102.08 GB.
    assert stages["raw"] / GB == pytest.approx(2.12, rel=0.01)
    assert stages["stage1_time_feature"] == 2 * stages["raw"]
    assert stages["stage2_swa"] / GB == pytest.approx(51.04, rel=0.01)
    assert stages["stage3_xy_split"] / GB == pytest.approx(102.08, rel=0.005)

    # "The majority of the postprocessed data is redundant": the final
    # size is tens of times the information content.
    assert stages["stage3_xy_split"] / stages["stage1_time_feature"] == \
        pytest.approx(24.0, rel=0.02)
