"""Fault-tolerance benchmark: recovery overhead + failover latency.

Measures what the chaos subsystem costs and merges the numbers as a
``"faults"`` section into a ``BENCH_<n>.json`` snapshot (see
``benchmarks/README.md`` for the ``repro-faults/v1`` schema)::

    # merge into the newest existing snapshot (or create BENCH_1.json)
    python -m benchmarks.fault_bench

    # explicit target / CI smoke mode
    python -m benchmarks.fault_bench --out BENCH_5.json
    python -m benchmarks.fault_bench --quick --out /tmp/faults.json

    # compare two snapshots' fault sections / gate the guarantees
    python -m benchmarks.fault_bench --diff BENCH_4.json BENCH_5.json
    python -m benchmarks.fault_bench --fail-on-regression

Scenarios:

- ``recovery_dist_index_w4`` — fixed-seed world-4 DDP training, clean
  vs. ``rank_crash`` + checkpoint-resume through
  :func:`~repro.training.recovery.train_with_recovery`.  The recovered
  curve must be bitwise identical to the clean one; the overhead
  percentages (simulated fabric seconds and measured wall seconds,
  including periodic checkpoint writes and the replayed lost work) are
  the recovery price.
- ``failover_shard4_c8`` — closed-loop load against a 4-shard serving
  session with a scheduled mid-stream ``worker_crash``.  Records the
  failover p99 rebuild latency and the post-failover prediction parity
  versus an unsharded session (must stay within 1e-6).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

FAULT_SCHEMA = "repro-faults/v1"

#: Fixed seed — part of the benchmark definition.
SEED = 0

#: Post-failover prediction parity bound (absolute).
PARITY_ATOL = 1e-6


# ---------------------------------------------------------------------------
# Scenario 1: crash + checkpoint-resume recovery overhead
# ---------------------------------------------------------------------------
def bench_recovery(*, world: int = 4, quick: bool = False) -> dict:
    from repro.batching import IndexBatchLoader
    from repro.datasets import load_dataset
    from repro.graph import dual_random_walk_supports
    from repro.models import PGTDCRNN
    from repro.optim import Adam
    from repro.preprocessing import IndexDataset
    from repro.runtime import FaultPlan, FaultyTransport, ProcessGroup, \
        SimTransport
    from repro.training import DDPStrategy, DDPTrainer, train_with_recovery

    nodes = 12 if quick else 24
    hidden = 8 if quick else 16
    batch = 8
    epochs = 1 if quick else 2
    ds = load_dataset("pems-bay", nodes=nodes, entries=40 * batch + 40,
                      seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)

    def make_trainer(plan=None, ckpt=None, checkpoint_every=4):
        model = PGTDCRNN(supports, horizon=4, in_features=2,
                         hidden_dim=hidden, seed=SEED)
        opt = Adam(model.parameters(), lr=0.01)
        transport = SimTransport(world)
        if plan is not None:
            transport = FaultyTransport(transport, plan)
        return DDPTrainer(
            model, opt, ProcessGroup(transport),
            IndexBatchLoader(idx, "train", batch),
            IndexBatchLoader(idx, "val", batch),
            strategy=DDPStrategy.DIST_INDEX, seed=SEED,
            checkpoint_every=checkpoint_every if ckpt else None,
            checkpoint_path=ckpt)

    steps_per_epoch = make_trainer().sampler.steps_per_epoch()
    crash_step = max(1, (steps_per_epoch * epochs) // 2)
    checkpoint_every = max(1, steps_per_epoch // 4)

    # Warm the process (kernel caches, loader buffers) outside the
    # measured window; whichever run went first used to absorb the
    # cold-start cost and skew the wall overhead either way.
    make_trainer().fit(1)

    clean_trainer = make_trainer()
    t0 = time.perf_counter()
    clean_hist = clean_trainer.fit(epochs)
    clean_wall = time.perf_counter() - t0
    clean_sim = clean_trainer.comm.now
    clean_curve = [(h.train_loss, h.val_mae) for h in clean_hist]

    plan = FaultPlan().rank_crash(step=crash_step, rank=1)
    import tempfile
    with tempfile.TemporaryDirectory(prefix="fault-bench-") as d:
        ckpt = os.path.join(d, "recovery.npz")
        t0 = time.perf_counter()
        _, hist, report = train_with_recovery(
            lambda: make_trainer(plan, ckpt, checkpoint_every), epochs)
        faulted_wall = time.perf_counter() - t0
    faulted_sim = report.total_seconds
    faulted_curve = [(h.train_loss, h.val_mae) for h in hist]

    return {
        "world": world,
        "epochs": epochs,
        "steps_per_epoch": steps_per_epoch,
        "crash_step": crash_step,
        "checkpoint_every": checkpoint_every,
        "restarts": report.restarts,
        "curve_bitwise_equal": bool(clean_curve == faulted_curve),
        "clean_sim_seconds": clean_sim,
        "faulted_sim_seconds": faulted_sim,
        "recovery_overhead_sim_pct":
            100.0 * (faulted_sim - clean_sim) / clean_sim,
        "clean_wall_seconds": clean_wall,
        "faulted_wall_seconds": faulted_wall,
        "recovery_overhead_wall_pct":
            100.0 * (faulted_wall - clean_wall) / clean_wall,
        "train_curve": [h.train_loss for h in hist],
    }


# ---------------------------------------------------------------------------
# Scenario 2: serving failover latency + parity under load
# ---------------------------------------------------------------------------
def bench_failover(*, shards: int = 4, quick: bool = False) -> dict:
    from repro.api import RunSpec, run, serve
    from repro.runtime import FaultPlan
    from repro.serving import LoadGenerator, ModelSession

    requests = 80 if quick else 400
    crash_at = requests // 2
    result = run(RunSpec(dataset="pems-bay", scale="tiny", seed=SEED,
                         epochs=1))
    test = result.artifacts.loaders.test
    pool, _ = test.batch_at(np.arange(test.batch_size))
    pool = pool.copy()

    local = ModelSession(result.artifacts.model,
                         result.artifacts.loaders.scaler, spec=result.spec)
    reference = local.predict(pool).copy()

    plan = FaultPlan().worker_crash(shard=1, at_request=crash_at)
    svc = serve(result, server="sharded", num_shards=shards, max_batch=8,
                max_wait=0.002, fault_plan=plan,
                service_time=lambda n: 0.0005 + 0.0001 * n)
    gen = LoadGenerator(svc, pool, seed=SEED)
    report = gen.closed_loop(requests=requests, concurrency=8,
                             scenario="failover")

    parity = float(np.max(np.abs(
        svc.session.predict(pool) - reference)))
    events = svc.failover_events
    return {
        "shards": shards,
        "requests": requests,
        "crash_at_request": crash_at,
        "failovers": report.failovers,
        "failover_p99_ms": report.failover_p99 * 1e3,
        "failover_mode": events[0].mode if events else None,
        "shards_after": events[0].num_shards_after if events else shards,
        "parity_max_abs_err": parity,
        "qps": report.qps,
        "latency_p99_ms": report.latency_p99 * 1e3,
        "mean_batch_size": report.mean_batch_size,
    }


def collect_faults(*, quick: bool = False, label: str = "") -> dict:
    """Measure the fault scenario suite; returns the section dict."""
    scenarios = {
        "recovery_dist_index_w4": bench_recovery(quick=quick),
        "failover_shard4_c8": bench_failover(quick=quick),
    }
    return {
        "schema": FAULT_SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"seed": SEED, "quick": bool(quick),
                   "parity_atol": PARITY_ATOL},
        "scenarios": scenarios,
    }


# ---------------------------------------------------------------------------
# Snapshot plumbing (shared conventions with serve_bench / dist_bench)
# ---------------------------------------------------------------------------
def validate_faults(section: dict) -> None:
    """Raise ``ValueError`` unless ``section`` is a valid faults section."""
    if not isinstance(section, dict) or section.get("schema") != FAULT_SCHEMA:
        raise ValueError(f"not a {FAULT_SCHEMA} faults section")
    for key in ("created", "config", "scenarios"):
        if key not in section:
            raise ValueError(f"faults section missing {key!r}")
    scen = section["scenarios"]
    for field in ("restarts", "curve_bitwise_equal",
                  "recovery_overhead_sim_pct", "recovery_overhead_wall_pct",
                  "checkpoint_every", "crash_step"):
        if field not in scen.get("recovery_dist_index_w4", {}):
            raise ValueError(f"recovery scenario missing {field!r}")
    for field in ("failovers", "failover_p99_ms", "parity_max_abs_err",
                  "qps"):
        if field not in scen.get("failover_shard4_c8", {}):
            raise ValueError(f"failover scenario missing {field!r}")


def merge_into_snapshot(section: dict, path: str | Path) -> Path:
    """Write ``section`` as the ``faults`` key of the snapshot, creating
    a minimal (micro/training-empty) snapshot if none exists."""
    from repro.profiling.bench import load_or_init_snapshot

    validate_faults(section)
    path = Path(path)
    data = load_or_init_snapshot(path, label=section.get("label", ""),
                                 created=section["created"])
    data["faults"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def default_target(root: str | Path = ".") -> Path:
    from benchmarks.serve_bench import default_target as _default
    return _default(root)


# ---------------------------------------------------------------------------
# Diffing / gating
# ---------------------------------------------------------------------------
def check_regression(section: dict) -> list[str]:
    """Failure messages for the section's own gates (empty = green).

    The gates are the subsystem's two guarantees, not timing thresholds:
    the recovered curve must be bitwise identical to the clean run, and
    post-failover predictions must stay within the parity bound."""
    validate_faults(section)
    failures = []
    rec = section["scenarios"]["recovery_dist_index_w4"]
    if not rec["curve_bitwise_equal"]:
        failures.append("checkpoint-resume diverged from the uninterrupted "
                        "run (fixed-seed curves differ)")
    if rec["restarts"] < 1:
        failures.append("recovery scenario never crashed; the injected "
                        "fault did not fire")
    fo = section["scenarios"]["failover_shard4_c8"]
    atol = section["config"].get("parity_atol", PARITY_ATOL)
    if fo["parity_max_abs_err"] > atol:
        failures.append(
            f"post-failover predictions drifted {fo['parity_max_abs_err']:g}"
            f" from the unsharded session (bound {atol:g})")
    if fo["failovers"] < 1:
        failures.append("failover scenario never failed over; the "
                        "scheduled worker crash did not fire")
    return failures


def diff_faults(old: dict, new: dict) -> dict:
    """Headline-metric comparison between two snapshots (lower = better).

    The *new* snapshot must carry a faults section; the old one may
    predate the subsystem (e.g. ``BENCH_4.json``), in which case its
    values are reported as ``None`` instead of failing the diff.
    """
    if "faults" not in new:
        raise ValueError("new snapshot has no faults section")
    validate_faults(new["faults"])
    o = None
    if "faults" in old:
        validate_faults(old["faults"])
        o = old["faults"]["scenarios"]
    n = new["faults"]["scenarios"]

    def pick(scenario: str, field: str) -> dict:
        return {"old": o[scenario][field] if o is not None else None,
                "new": n[scenario][field]}

    return {
        "recovery_overhead_sim_pct":
            pick("recovery_dist_index_w4", "recovery_overhead_sim_pct"),
        "failover_p99_ms": pick("failover_shard4_c8", "failover_p99_ms"),
    }


def _format_section(section: dict) -> str:
    rec = section["scenarios"]["recovery_dist_index_w4"]
    fo = section["scenarios"]["failover_shard4_c8"]
    return "\n".join([
        f"fault suite ({'quick' if section['config']['quick'] else 'full'})",
        f"  recovery_dist_index_w4: crash@{rec['crash_step']} "
        f"ckpt-every-{rec['checkpoint_every']} -> {rec['restarts']} "
        f"restart(s), overhead sim {rec['recovery_overhead_sim_pct']:+.1f}% "
        f"wall {rec['recovery_overhead_wall_pct']:+.1f}%, parity "
        f"{'OK' if rec['curve_bitwise_equal'] else 'BROKEN'}",
        f"  failover_shard4_c8: {fo['failovers']} failover(s) "
        f"({fo['failover_mode']}, {fo['shards_after']} shards after) "
        f"p99 {fo['failover_p99_ms']:.2f} ms, parity err "
        f"{fo['parity_max_abs_err']:.2e}, {fo['qps']:.0f} qps",
    ])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fault_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: tiny workloads")
    parser.add_argument("--out", type=Path, default=None,
                        help="snapshot to merge the faults section into "
                             "(default: newest BENCH_<n>.json here)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the section")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots' fault sections")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 unless recovery is bitwise and "
                             "failover parity holds")
    args = parser.parse_args(argv)

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        for name, d in diff_faults(old, new).items():
            was = "(absent)" if d["old"] is None else f"{d['old']:.2f}"
            print(f"  {name}: {was} -> {d['new']:.2f}")
        return 0

    section = collect_faults(quick=args.quick, label=args.label)
    print(_format_section(section))
    target = args.out if args.out is not None else default_target()
    merge_into_snapshot(section, target)
    print(f"merged faults section into {target}")
    if args.fail_on_regression:
        failures = check_regression(section)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            return 1
        print("regression gate green (bitwise recovery + failover parity)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
