"""Benchmark F8 — Figure 8: MAE vs GPU count (real distributed training)."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.figure8 import run_figure8


@pytest.fixture(scope="module")
def points():
    return run_figure8(scale="tiny", seed=0, gpu_counts=(1, 2, 4, 8))


def test_figure8_training(benchmark):
    fresh = run_once(benchmark, run_figure8, scale="tiny", seed=0,
                     gpu_counts=(1, 2, 4, 8))
    test_accuracy_degrades_with_gpus(fresh)
    test_lr_scaling_mitigates(fresh)
    test_curves_finite_and_converging(fresh)


def test_accuracy_degrades_with_gpus(points):
    """Paper: optimal MAE rises from 1.66 (1 GPU) to 2.23 (128 GPUs);
    at our scale the same monotone degradation must appear."""
    unscaled = [p for p in points if not p.lr_scaled]
    maes = {p.gpus: p.best_val_mae for p in unscaled}
    assert maes[1] < maes[4] < maes[8]
    # The effect is material, not noise.
    assert maes[8] > 1.05 * maes[1]


def test_lr_scaling_mitigates(points):
    """Paper §5.3.3: learning-rate scaling reduces the MAE increase."""
    biggest = max(p.gpus for p in points)
    plain = next(p for p in points if p.gpus == biggest and not p.lr_scaled)
    scaled = next(p for p in points if p.gpus == biggest and p.lr_scaled)
    assert scaled.best_val_mae < plain.best_val_mae


def test_curves_finite_and_converging(points):
    for p in points:
        assert all(np.isfinite(v) for v in p.val_curve)
        assert min(p.val_curve) <= p.val_curve[0]
