"""CLI for the measured-performance snapshot harness.

Usage::

    # full run, writes the next free BENCH_<n>.json in the repo root
    python -m benchmarks.run_bench

    # fast smoke run (CI): fewer timing iterations, 1 training epoch
    python -m benchmarks.run_bench --quick --out /tmp/bench.json

    # compare two snapshots (exit code 1 if a training point regressed)
    python -m benchmarks.run_bench --diff BENCH_1.json BENCH_2.json

See ``benchmarks/README.md`` for the JSON schema and conventions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.profiling.bench import (
    check_kernel_gates,
    collect,
    diff_benches,
    format_diff,
    load_snapshot,
    next_bench_path,
    write_snapshot,
)


def _print_kernels(k: dict) -> None:
    """Render the v2 kernels section: per-backend numbers + gate states."""
    print(f"  kernel backends: {', '.join(k['backends_available'])} "
          f"(default {k['default_backend']})")
    for backend, t in k["training"].items():
        print(f"    {backend}: {t['steps_per_sec']:.1f} steps/s")
    cs = k["compiled_speedup"]
    if cs["applied"]:
        print(f"    compiled speedup x{cs['speedup']:.2f} "
              f"(gate x{cs['threshold']}), parity drift "
              f"{k['parity']['max_drift']:.2e}")
    else:
        print(f"    compiled gate skipped: {cs['reason']}")
    mp = k["mixed_precision"]
    print(f"    f16 storage: resident x{mp['resident_ratio']:.2f} smaller "
          f"(gate x{mp['floor']}), curve drift vs f32 "
          f"{mp['f16_curve_drift_vs_f32']:.2e} (informational)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke mode: short timing windows, "
                             "1 training epoch")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: next free BENCH_<n>.json "
                             "in the current directory)")
    parser.add_argument("--label", default="",
                        help="free-form note recorded in the snapshot")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two snapshots instead of measuring")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="RATIO",
                        help="with --diff: exit 1 if any training "
                             "steps/sec speedup falls below RATIO")
    args = parser.parse_args(argv)

    if args.diff:
        old = load_snapshot(args.diff[0])
        new = load_snapshot(args.diff[1])
        d = diff_benches(old, new)
        print(format_diff(d))
        if args.fail_on_regression is not None:
            bad = [k for k, v in d["training"].items()
                   if v["speedup"] < args.fail_on_regression]
            if bad:
                print(f"REGRESSION: {', '.join(bad)} below "
                      f"x{args.fail_on_regression}", file=sys.stderr)
                return 1
        return 0

    data = collect(quick=args.quick, label=args.label)
    out = args.out if args.out is not None else next_bench_path(".")
    write_snapshot(data, out)
    train = data["training"]["dcrnn_index_adam"]
    print(f"wrote {out}")
    print(f"  dcrnn/index/adam: {train['steps_per_sec']:.1f} steps/s, "
          f"peak {train['peak_bytes']} B")
    for m in data["micro"]:
        print(f"  {m['name']}: {m['ops_per_sec']:.1f} ops/s")
    _print_kernels(data["kernels"])
    failures = check_kernel_gates(data["kernels"])
    for f in failures:
        print(f"KERNEL GATE: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
