"""Tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.graph import dual_random_walk_supports, random_sensor_network
from repro.models import PGTDCRNN
from repro.optim import SGD, Adam
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.autograd.tensor import Tensor


@pytest.fixture
def setup():
    g = random_sensor_network(8, seed=0)
    supports = dual_random_walk_supports(g.weights)

    def factory(seed=0):
        return PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=seed)
    return factory


def _train_steps(model, opt, n=3, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = rng.standard_normal((4, 4, 8, 2)).astype(np.float32)
        y = rng.standard_normal((4, 4, 8, 1)).astype(np.float32)
        loss = ((model(Tensor(x)) - y) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()


class TestCheckpoint:
    def test_roundtrip_parameters(self, setup, tmp_path):
        model = setup()
        opt = Adam(model.parameters(), lr=0.01)
        _train_steps(model, opt)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, opt, epoch=3, extra={"note": "x"})

        model2 = setup(seed=99)  # different init
        opt2 = Adam(model2.parameters(), lr=0.5)
        meta = load_checkpoint(path, model2, opt2)
        assert meta["epoch"] == 3
        assert meta["extra"] == {"note": "x"}
        for (n1, p1), (n2, p2) in zip(model.named_parameters(),
                                      model2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
        assert opt2.lr == 0.01
        assert opt2.step_count == opt.step_count

    def test_resume_training_continues_identically(self, setup, tmp_path):
        """Train 6 steps straight vs 3 + checkpoint + 3 — identical."""
        straight = setup()
        opt_s = Adam(straight.parameters(), lr=0.01)
        _train_steps(straight, opt_s, n=6, seed=1)

        part1 = setup()
        opt_1 = Adam(part1.parameters(), lr=0.01)
        rng = np.random.default_rng(1)
        def step(model, opt):
            x = rng.standard_normal((4, 4, 8, 2)).astype(np.float32)
            y = rng.standard_normal((4, 4, 8, 1)).astype(np.float32)
            loss = ((model(Tensor(x)) - y) ** 2).mean()
            opt.zero_grad(); loss.backward(); opt.step()
        for _ in range(3):
            step(part1, opt_1)
        path = str(tmp_path / "resume.npz")
        save_checkpoint(path, part1, opt_1)

        part2 = setup(seed=5)
        opt_2 = Adam(part2.parameters(), lr=0.9)
        load_checkpoint(path, part2, opt_2)
        for _ in range(3):
            step(part2, opt_2)

        for (n1, p1), (n2, p2) in zip(straight.named_parameters(),
                                      part2.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, rtol=1e-6,
                                       err_msg=n1)

    def test_model_only_checkpoint(self, setup, tmp_path):
        model = setup()
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, model)
        meta = load_checkpoint(path, setup(seed=3))
        assert meta["optimizer"] is None

    def test_optimizer_type_mismatch(self, setup, tmp_path):
        model = setup()
        opt = Adam(model.parameters(), lr=0.01)
        _train_steps(model, opt, n=1)
        path = str(tmp_path / "adam.npz")
        save_checkpoint(path, model, opt)
        with pytest.raises(ValueError):
            load_checkpoint(path, setup(), SGD(setup().parameters(), lr=0.1))

    def test_loading_optimizer_from_model_only(self, setup, tmp_path):
        model = setup()
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        with pytest.raises(ValueError):
            load_checkpoint(path, setup(), Adam(setup().parameters(), lr=0.1))

    def test_sgd_momentum_roundtrip(self, setup, tmp_path):
        model = setup()
        opt = SGD(model.parameters(), lr=0.01, momentum=0.9)
        _train_steps(model, opt, n=2)
        path = str(tmp_path / "sgd.npz")
        save_checkpoint(path, model, opt)
        model2 = setup(seed=4)
        opt2 = SGD(model2.parameters(), lr=0.5, momentum=0.9)
        load_checkpoint(path, model2, opt2)
        for v1, v2 in zip(opt._velocity, opt2._velocity):
            if v1 is None:
                assert v2 is None
            else:
                np.testing.assert_array_equal(v1, v2)


class TestAtomicWrite:
    """The save path stages through a tempfile in the target directory and
    promotes it with one ``os.replace`` — readers never see partial files,
    and no stray temp files survive, even for ``.npz``-suffixed paths."""

    def test_no_stray_files(self, setup, tmp_path):
        model = setup()
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, model)
        save_checkpoint(path, model)  # overwrite in place
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_failure_leaves_no_temp(self, setup, tmp_path, monkeypatch):
        import numpy as _np
        def boom(*a, **k):
            raise OSError("disk full")
        monkeypatch.setattr(_np, "savez", boom)
        with pytest.raises(OSError):
            save_checkpoint(str(tmp_path / "model.npz"), setup())
        assert list(tmp_path.iterdir()) == []

    def test_respects_umask(self, setup, tmp_path):
        """The mkstemp staging must not leak its 0600 mode into the final
        checkpoint: other ranks on a shared cluster read these files."""
        import os
        path = str(tmp_path / "model.npz")
        old = os.umask(0o022)
        try:
            save_checkpoint(path, setup())
        finally:
            os.umask(old)
        assert os.stat(path).st_mode & 0o777 == 0o644

    def test_adam_moment_slots_roundtrip(self, setup, tmp_path):
        model = setup()
        opt = Adam(model.parameters(), lr=0.01)
        _train_steps(model, opt, n=3)
        path = str(tmp_path / "adam.npz")
        save_checkpoint(path, model, opt)
        model2 = setup(seed=9)
        opt2 = Adam(model2.parameters(), lr=0.2)
        load_checkpoint(path, model2, opt2)
        for m1, m2, v1, v2 in zip(opt._m, opt2._m, opt._v, opt2._v):
            np.testing.assert_array_equal(m1, m2)
            np.testing.assert_array_equal(v1, v2)

    def test_sgd_velocity_roundtrip_after_atomic_write(self, setup, tmp_path):
        model = setup()
        opt = SGD(model.parameters(), lr=0.01, momentum=0.9)
        _train_steps(model, opt, n=2)
        path = str(tmp_path / "sgd.npz")
        save_checkpoint(path, model, opt)
        opt2 = SGD(setup(seed=7).parameters(), lr=0.5, momentum=0.9)
        load_checkpoint(path, setup(seed=7), opt2)
        for v1, v2 in zip(opt._velocity, opt2._velocity):
            np.testing.assert_array_equal(v1, v2)


class TestSelfDescribingCheckpoint:
    """``spec=`` / ``scaler=`` make a checkpoint the serving layer can
    reconstruct a full session from."""

    def test_spec_and_scaler_roundtrip(self, setup, tmp_path):
        from repro.api import RunSpec
        from repro.preprocessing.scaler import StandardScaler
        from repro.training.checkpoint import (
            read_checkpoint_meta, read_checkpoint_scaler)
        model = setup()
        spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", scale="tiny")
        scaler = StandardScaler().fit(
            np.random.default_rng(0).normal(50, 10, size=(100, 2)))
        path = str(tmp_path / "full.npz")
        save_checkpoint(path, model, spec=spec, scaler=scaler)
        meta = read_checkpoint_meta(path)
        assert RunSpec.from_dict(meta["spec"]) == spec
        restored = read_checkpoint_scaler(path)
        np.testing.assert_array_equal(restored.mean_, scaler.mean_)
        np.testing.assert_array_equal(restored.std_, scaler.std_)

    def test_plain_dict_spec_accepted(self, setup, tmp_path):
        path = str(tmp_path / "dict.npz")
        save_checkpoint(path, setup(), spec={"dataset": "pems-bay"})
        from repro.training.checkpoint import read_checkpoint_meta
        assert read_checkpoint_meta(path)["spec"] == {"dataset": "pems-bay"}

    def test_legacy_checkpoint_defaults(self, setup, tmp_path):
        from repro.training.checkpoint import (
            read_checkpoint_meta, read_checkpoint_scaler)
        path = str(tmp_path / "legacy.npz")
        save_checkpoint(path, setup())
        assert read_checkpoint_meta(path)["spec"] is None
        assert read_checkpoint_scaler(path) is None

    def test_unfitted_scaler_rejected(self, setup, tmp_path):
        from repro.preprocessing.scaler import StandardScaler
        with pytest.raises(ValueError, match="unfitted"):
            save_checkpoint(str(tmp_path / "x.npz"), setup(),
                            scaler=StandardScaler())


class TestCorruptCheckpoints:
    """Damaged archives must fail with a CheckpointError naming the
    path — never a raw zipfile/zlib/JSON traceback from lazy np.load."""

    def save(self, setup, tmp_path, name="victim.npz"):
        path = str(tmp_path / name)
        save_checkpoint(path, setup(), epoch=1)
        return path

    def test_missing_file(self, setup, tmp_path):
        from repro.training.checkpoint import read_checkpoint_meta
        from repro.utils.errors import CheckpointError
        path = str(tmp_path / "nope.npz")
        with pytest.raises(CheckpointError, match="nope.npz"):
            read_checkpoint_meta(path)

    def test_truncated_archive(self, setup, tmp_path):
        from repro.utils.errors import CheckpointError
        path = self.save(setup, tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        with pytest.raises(CheckpointError, match="victim.npz"):
            load_checkpoint(path, setup())

    def test_bitflipped_member(self, setup, tmp_path):
        from repro.utils.errors import CheckpointError
        path = self.save(setup, tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF       # flip one payload byte
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CheckpointError, match="victim.npz"):
            load_checkpoint(path, setup())

    def test_not_a_zipfile(self, setup, tmp_path):
        from repro.utils.errors import CheckpointError
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as fh:
            fh.write(b"this was never an archive")
        with pytest.raises(CheckpointError,
                           match="corrupted or truncated"):
            load_checkpoint(path, setup())

    def test_npz_without_meta_record(self, setup, tmp_path):
        from repro.training.checkpoint import read_checkpoint_meta
        from repro.utils.errors import CheckpointError
        path = str(tmp_path / "alien.npz")
        np.savez(path, foo=np.arange(3))
        with pytest.raises(CheckpointError, match="__meta__"):
            read_checkpoint_meta(path)

    def test_scaler_reader_guards_too(self, setup, tmp_path):
        from repro.training.checkpoint import read_checkpoint_scaler
        from repro.utils.errors import CheckpointError
        path = str(tmp_path / "half.npz")
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04broken")
        with pytest.raises(CheckpointError, match="half.npz"):
            read_checkpoint_scaler(path)

    def test_checkpoint_error_is_runtime_error(self):
        from repro.utils.errors import CheckpointError
        assert issubclass(CheckpointError, RuntimeError)


class TestResumeEdgeCases:
    """Resume across execution environments: a transport swap must
    reproduce bitwise; a world-size (or run-shape) swap must fail loudly
    — both behaviours are pinned here."""

    WORLD = 2
    EPOCHS = 2

    @pytest.fixture(scope="class")
    def ddp_setup(self):
        from repro.batching import IndexBatchLoader
        from repro.datasets import load_dataset
        from repro.preprocessing import IndexDataset

        ds = load_dataset("pems-bay", nodes=10, entries=260, seed=0)
        idx = IndexDataset.from_dataset(ds, horizon=4)
        supports = dual_random_walk_supports(ds.graph.weights)

        def make(transport="sim", world=self.WORLD, ckpt=None, every=2,
                 **kw):
            from repro.runtime import ProcessGroup
            from repro.training import DDPTrainer

            def build_model():
                return PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=0)

            model = build_model()
            opt = Adam(model.parameters(), lr=0.01)
            pg = (ProcessGroup.threads(world) if transport == "thread"
                  else ProcessGroup.sim(world))
            return DDPTrainer(
                model, opt, pg, IndexBatchLoader(idx, "train", 8),
                IndexBatchLoader(idx, "val", 8), seed=0,
                model_factory=build_model if transport == "thread" else None,
                checkpoint_every=every if ckpt else None,
                checkpoint_path=ckpt, **kw)

        return make

    def curve(self, history):
        return [(h.train_loss, h.val_mae) for h in history]

    @pytest.mark.parametrize("first,second", [("sim", "thread"),
                                              ("thread", "sim")])
    def test_transport_swap_resumes_bitwise(self, ddp_setup, tmp_path,
                                            first, second):
        """A run checkpointed under one transport resumes under the
        other with a bitwise-identical curve (collectives reduce in rank
        order on every fabric)."""
        reference = self.curve(ddp_setup(transport=second).fit(self.EPOCHS))
        ckpt = str(tmp_path / f"{first}-to-{second}.npz")
        partial = ddp_setup(transport=first, ckpt=ckpt)
        partial.fit(1)                      # leaves a mid-run checkpoint
        resumed = ddp_setup(transport=second, ckpt=ckpt)
        resumed.resume(ckpt)
        assert self.curve(resumed.fit(self.EPOCHS)) == reference

    def test_world_size_change_fails_loudly(self, ddp_setup, tmp_path):
        ckpt = str(tmp_path / "w2.npz")
        ddp_setup(ckpt=ckpt).fit(1)
        bigger = ddp_setup(world=4)
        with pytest.raises(ValueError,
                           match="world of 2 ranks.*world_size=2"):
            bigger.resume(ckpt)
        # The failed resume must not have half-restored the trainer.
        assert bigger.global_step == 0 and bigger.history == []

    def test_run_shape_changes_fail_loudly(self, ddp_setup, tmp_path):
        from repro.training import DDPStrategy

        ckpt = str(tmp_path / "shape.npz")
        ddp_setup(ckpt=ckpt).fit(1)
        with pytest.raises(ValueError, match="strategy"):
            ddp_setup(strategy=DDPStrategy.BASELINE_DDP).resume(ckpt)
        with pytest.raises(ValueError, match="shuffle"):
            ddp_setup(shuffle="local").resume(ckpt)
        with pytest.raises(ValueError, match="seed"):
            tr = ddp_setup()
            tr.seed = 1
            tr.resume(ckpt)
