"""Tests pinning the memory model to the paper's equations and to reality."""

import numpy as np
import pytest

from repro.datasets import CATALOG, get_spec, load_dataset
from repro.datasets.loaders import scaled_spec
from repro.hardware.memory import MemorySpace
from repro.hardware.specs import polaris_host
from repro.preprocessing import (
    IndexDataset,
    figure3_stages,
    index_nbytes,
    num_snapshots,
    simulate_index_pipeline,
    simulate_standard_pipeline,
    standard_preprocess,
    standard_preprocessed_nbytes,
)
from repro.preprocessing.memory_model import (
    simulate_dcrnn_loader,
    simulate_gpu_index_pipeline,
    table1_sizes,
)
from repro.utils.errors import OutOfMemoryError
from repro.utils.sizes import GB


class TestEquations:
    def test_eq1_matches_materialized_bytes(self):
        """Eq. (1) must equal the actual nbytes of the stacked arrays."""
        ds = load_dataset("pems-bay", nodes=6, entries=120, seed=0)
        pre = standard_preprocess(ds)
        expected = standard_preprocessed_nbytes(120, 6, 2, 12)
        assert pre.total_nbytes == expected

    def test_eq2_matches_materialized_bytes(self):
        ds = load_dataset("pems-bay", nodes=6, entries=120, seed=0)
        idx = IndexDataset.from_dataset(ds)
        assert idx.resident_nbytes == index_nbytes(120, 6, 2, 12)

    def test_eq1_growth_factor(self):
        """Standard preprocessing multiplies size by ~2*horizon."""
        before = 10_000 * 50 * 2 * 8
        after = standard_preprocessed_nbytes(10_000, 50, 2, 12)
        assert after / before == pytest.approx(2 * 12, rel=0.01)

    def test_index_overhead_is_tiny(self):
        after = index_nbytes(10_000, 50, 2, 12)
        data = 10_000 * 50 * 2 * 8
        assert (after - data) / data < 0.01


class TestTable1:
    # (name, after GB from the paper) — GB rows use binary units.
    PAPER_AFTER_GB = {
        "metr-la": 2.54,
        "pems-bay": 6.05,
        "pems-all-la": 102.08,
        "pems": 419.46,
    }

    @pytest.mark.parametrize("name,after_gb", sorted(PAPER_AFTER_GB.items()))
    def test_after_sizes_match_paper(self, name, after_gb):
        _, after = table1_sizes(get_spec(name))
        assert after / GB == pytest.approx(after_gb, rel=0.005)

    def test_small_rows_within_unit_slack(self):
        # Chickenpox/Windmill rows were printed in decimal units.
        _, chick = table1_sizes(get_spec("chickenpox-hungary"))
        assert chick == 659_200  # 657.92 decimal KB / 643.75 binary KB
        _, wind = table1_sizes(get_spec("windmill-large"))
        assert wind == 712_804_224  # 712.80 decimal MB

    def test_ascending_order_preserved(self):
        sizes = [table1_sizes(s)[1] for s in CATALOG.values()]
        # Catalog insertion order follows the paper's ascending listing.
        assert sizes == sorted(sizes)


class TestFigure3:
    def test_stages_for_pems_all_la(self):
        stages = figure3_stages(get_spec("pems-all-la"))
        assert stages["raw"] == pytest.approx(2.12 * GB, rel=0.01)
        assert stages["stage1_time_feature"] == 2 * stages["raw"]
        assert stages["stage3_xy_split"] == 2 * stages["stage2_swa"]
        assert stages["stage3_xy_split"] == pytest.approx(102.08 * GB, rel=0.005)

    def test_stages_monotone(self):
        for spec in CATALOG.values():
            st = figure3_stages(spec)
            assert (st["raw"] <= st["stage1_time_feature"]
                    < st["stage2_swa"] < st["stage3_xy_split"])


class TestSimulatorsPinnedToReality:
    """Full-scale simulators must replay the real pipelines' event logs."""

    def _events(self, space):
        return [(e.label, e.delta) for e in space.events]

    def test_standard_simulator_matches_real_pipeline(self):
        ds = load_dataset("pems-bay", nodes=7, entries=130, seed=1)
        real = MemorySpace("real")
        standard_preprocess(ds, space=real)
        sim = MemorySpace("sim")
        simulate_standard_pipeline(scaled_spec(ds.spec, 7, 130), sim)
        assert self._events(real) == self._events(sim)
        assert real.peak == sim.peak

    def test_index_simulator_matches_real_pipeline(self):
        ds = load_dataset("pems-bay", nodes=7, entries=130, seed=1)
        real = MemorySpace("real")
        IndexDataset.from_dataset(ds, space=real)
        sim = MemorySpace("sim")
        simulate_index_pipeline(scaled_spec(ds.spec, 7, 130), sim)
        assert self._events(real) == self._events(sim)
        assert real.peak == sim.peak


class TestFullScaleBehaviour:
    """The paper's OOM and peak-memory claims at true PeMS scale."""

    def test_pems_standard_pipeline_ooms_on_polaris(self):
        """Fig. 2: standard preprocessing of PeMS exceeds 512 GB."""
        space = polaris_host()
        with pytest.raises(OutOfMemoryError):
            simulate_standard_pipeline(get_spec("pems"), space)

    def test_pems_oom_happens_during_windowing(self):
        space = polaris_host()
        try:
            simulate_standard_pipeline(get_spec("pems"), space)
        except OutOfMemoryError as e:
            assert "window" in str(e) or "stack" in str(e)

    def test_pems_all_la_standard_fits(self):
        """Fig. 2: PeMS-All-LA is hard but does not OOM on 512 GB."""
        space = polaris_host()
        foot = simulate_standard_pipeline(get_spec("pems-all-la"), space)
        assert foot.peak < 512 * GB

    def test_pems_all_la_pgt_peak_near_paper(self):
        """Table 2 reports 259.84 GB peak for PGT-DCRNN."""
        space = polaris_host()
        foot = simulate_standard_pipeline(get_spec("pems-all-la"), space)
        assert 180 * GB < foot.peak < 300 * GB

    def test_pems_all_la_dcrnn_peak_above_pgt(self):
        """Table 2: DCRNN (padded loader copies) uses more than PGT."""
        pgt = polaris_host()
        simulate_standard_pipeline(get_spec("pems-all-la"), pgt)
        dcrnn = polaris_host()
        simulate_dcrnn_loader(get_spec("pems-all-la"), dcrnn)
        assert dcrnn.peak > pgt.peak + 50 * GB
        assert 280 * GB < dcrnn.peak < 420 * GB  # paper: 371.25 GB

    def test_pems_index_peak_near_46gb(self):
        """Fig. 6 / Table 4: index-batching peaks around 46 GB on PeMS."""
        space = polaris_host()
        foot = simulate_index_pipeline(get_spec("pems"), space)
        assert 40 * GB < foot.peak < 50 * GB
        # Plateau after the spike: the single augmented copy (~18-20 GB).
        assert 17 * GB < foot.resident < 22 * GB

    def test_pems_gpu_index_splits_host_device(self):
        """Table 4: GPU-index cuts host memory, grows device memory."""
        host = polaris_host()
        gpu = MemorySpace("gpu", capacity=40 * GB)
        h_foot, g_foot = simulate_gpu_index_pipeline(get_spec("pems"),
                                                     host, gpu)
        assert 15 * GB < h_foot.peak < 22 * GB      # paper: 18.20 GB
        assert 17 * GB < g_foot.peak < 40 * GB      # paper: 18.60 GB resident
        # CPU savings vs plain index-batching ~60%.
        idx = polaris_host()
        i_foot = simulate_index_pipeline(get_spec("pems"), idx)
        assert h_foot.peak < 0.5 * i_foot.peak

    def test_memory_reduction_89_percent(self):
        """Abstract: up to 89% peak memory reduction (PeMS-All-LA scale)."""
        std = polaris_host()
        s = simulate_standard_pipeline(get_spec("pems-all-la"), std)
        idx = polaris_host()
        i = simulate_index_pipeline(get_spec("pems-all-la"), idx)
        reduction = 1.0 - i.peak / s.peak
        assert reduction > 0.85
