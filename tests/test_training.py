"""Unit tests for metrics, the single-device trainer and DDP training."""

import numpy as np
import pytest

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.training import (
    DDPStrategy,
    DDPTrainer,
    Trainer,
    mae,
    mape,
    masked_mae,
    mse,
    rmse,
)
from repro.utils.errors import CommunicatorError


class TestMetrics:
    def test_mae(self):
        assert mae([1.0, 3.0], [0.0, 1.0]) == pytest.approx(1.5)

    def test_mse_rmse(self):
        assert mse([3.0], [0.0]) == pytest.approx(9.0)
        assert rmse([3.0, 4.0], [0.0, 0.0]) == pytest.approx(
            np.sqrt(12.5))

    def test_masked_mae_skips_nulls(self):
        assert masked_mae([1.0, 9.0], [0.0, 10.0]) == pytest.approx(1.0)

    def test_masked_mae_all_null(self):
        assert masked_mae([1.0], [0.0]) == 0.0

    def test_mape(self):
        assert mape([110.0], [100.0]) == pytest.approx(0.1)
        assert mape([1.0], [0.0]) == 0.0  # near-zero target skipped


@pytest.fixture(scope="module")
def tiny_setup():
    """Small real dataset + index pipeline + model, shared across tests."""
    ds = load_dataset("pems-bay", nodes=8, entries=220, seed=3)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return ds, idx, supports


def _model(supports, seed=0):
    return PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                    seed=seed)


class TestTrainer:
    def test_fit_reduces_loss_and_tracks_history(self, tiny_setup):
        ds, idx, supports = tiny_setup
        model = _model(supports)
        opt = Adam(model.parameters(), lr=0.01)
        tr = Trainer(model, opt,
                     IndexBatchLoader(idx, "train", 16),
                     IndexBatchLoader(idx, "val", 16),
                     scaler=idx.scaler, seed=0)
        history = tr.fit(4)
        assert len(history) == 4
        losses = [h.train_loss for h in history]
        assert losses[-1] < losses[0]
        assert all(np.isfinite(h.val_mae) for h in history)
        assert all(h.seconds > 0 for h in history)

    def test_val_mae_in_original_units(self, tiny_setup):
        ds, idx, supports = tiny_setup
        model = _model(supports)
        tr = Trainer(model, Adam(model.parameters(), lr=0.01),
                     IndexBatchLoader(idx, "train", 16),
                     IndexBatchLoader(idx, "val", 16), scaler=idx.scaler)
        v = tr.evaluate()
        # Traffic speeds are tens of mph; an untrained model must be off
        # by miles-per-hour, not standardized units.
        assert 1.0 < v < 100.0

    def test_best_val_mae(self, tiny_setup):
        ds, idx, supports = tiny_setup
        model = _model(supports)
        tr = Trainer(model, Adam(model.parameters(), lr=0.01),
                     IndexBatchLoader(idx, "train", 16),
                     IndexBatchLoader(idx, "val", 16), scaler=idx.scaler)
        tr.fit(2)
        assert tr.best_val_mae() == min(h.val_mae for h in tr.history)

    def test_evaluate_without_loader_raises(self, tiny_setup):
        ds, idx, supports = tiny_setup
        model = _model(supports)
        tr = Trainer(model, Adam(model.parameters(), lr=0.01),
                     IndexBatchLoader(idx, "train", 16))
        with pytest.raises(ValueError):
            tr.evaluate()


class TestDDPTrainer:
    def _trainer(self, tiny_setup, world, strategy=DDPStrategy.DIST_INDEX,
                 shuffle=None, seed=0):
        ds, idx, supports = tiny_setup
        model = _model(supports, seed=seed)
        opt = Adam(model.parameters(), lr=0.01)
        comm = SimCommunicator(world)
        return DDPTrainer(
            model, opt, comm,
            IndexBatchLoader(idx, "train", 8),
            IndexBatchLoader(idx, "val", 8),
            strategy=strategy, shuffle=shuffle, scaler=idx.scaler, seed=seed)

    def test_training_reduces_loss(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=4)
        hist = tr.fit(3)
        assert hist[-1].train_loss < hist[0].train_loss

    def test_sim_time_recorded(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=4)
        hist = tr.fit(1)
        assert hist[0].sim_seconds > 0
        assert hist[0].compute_seconds > 0

    def test_dist_index_has_no_data_traffic(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=4,
                           strategy=DDPStrategy.DIST_INDEX)
        tr.fit(1)
        assert "data" not in tr.comm.stats.bytes_by_category
        assert tr.comm.stats.bytes_by_category["gradient"] > 0

    def test_baseline_ddp_pays_data_traffic(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=4,
                           strategy=DDPStrategy.BASELINE_DDP)
        tr.fit(1)
        assert tr.comm.stats.bytes_by_category["data"] > 0

    def test_generalized_moves_less_data_than_baseline(self, tiny_setup):
        """Fig. 9's volume claim: raw-range fetches << windowed fetches."""
        base = self._trainer(tiny_setup, world=4,
                             strategy=DDPStrategy.BASELINE_DDP)
        base.fit(1)
        gen = self._trainer(tiny_setup, world=4,
                            strategy=DDPStrategy.GENERALIZED_INDEX)
        gen.fit(1)
        ratio = (base.comm.stats.bytes_by_category["data"]
                 / gen.comm.stats.bytes_by_category["data"])
        assert ratio > 4  # ~2*horizon with horizon 4

    def test_default_shuffle_per_strategy(self, tiny_setup):
        assert self._trainer(tiny_setup, 2).shuffle == "global"
        assert self._trainer(
            tiny_setup, 2,
            strategy=DDPStrategy.GENERALIZED_INDEX).shuffle == "batch"

    def test_invalid_shuffle(self, tiny_setup):
        with pytest.raises(ValueError):
            self._trainer(tiny_setup, 2, shuffle="sorted")

    def test_evaluate_distributed(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=4)
        v = tr.evaluate()
        assert np.isfinite(v) and v > 0
        assert tr.comm.stats.bytes_by_category.get("metric", 0) > 0

    def test_evaluate_partition_invariant(self, tiny_setup):
        """Val MAE must not depend on how ranks partition the split, even
        when the world is so large that some ranks get no snapshots.

        Tolerance is float32-level: the model computes end-to-end in the
        input dtype now, and BLAS reduction order across different batch
        shapes differs at f32 epsilon.
        """
        values = {w: self._trainer(tiny_setup, world=w).evaluate()
                  for w in (1, 4, 32)}  # val split has ~21 snapshots < 32
        assert values[1] == pytest.approx(values[4], rel=1e-5)
        assert values[1] == pytest.approx(values[32], rel=1e-5)

    def test_world1_matches_semantics(self, tiny_setup):
        tr = self._trainer(tiny_setup, world=1)
        hist = tr.fit(1)
        assert np.isfinite(hist[0].train_loss)


class TestDDPEquivalence:
    """DDP with R ranks must match single-rank training on the same global
    batches: averaged microbatch gradients == global-batch gradient."""

    def test_4rank_matches_1rank_global_batch(self, tiny_setup):
        ds, idx, supports = tiny_setup

        def run(world, batch):
            model = _model(supports, seed=42)
            opt = Adam(model.parameters(), lr=0.01)
            comm = SimCommunicator(world)
            tr = DDPTrainer(model, opt, comm,
                            IndexBatchLoader(idx, "train", batch),
                            shuffle="global", seed=7, clip_norm=0.0)
            tr.train_epoch(0)
            return model.state_dict()

        # 4 ranks x batch 4 consume the same permutation as 1 rank x 16:
        # GlobalShuffleSampler deals perm[r::4] to rank r, so step s of the
        # 4-rank run covers perm[16s : 16s+16] exactly (as 4 microbatches).
        multi = run(4, 4)
        single = run(1, 16)
        for name in multi:
            np.testing.assert_allclose(multi[name], single[name],
                                       rtol=2e-4, atol=2e-5,
                                       err_msg=f"divergence in {name}")

    def test_fewer_steps_with_more_workers(self, tiny_setup):
        """The Fig. 8 mechanism: scaling workers at fixed per-worker batch
        size cuts optimizer steps per epoch."""
        ds, idx, supports = tiny_setup
        from repro.batching.samplers import GlobalShuffleSampler
        n = len(idx.split_starts("train"))
        s1 = GlobalShuffleSampler(n, 8, 1).steps_per_epoch()
        s4 = GlobalShuffleSampler(n, 8, 4).steps_per_epoch()
        assert s4 <= s1 // 3
