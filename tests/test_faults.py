"""Unit tests for the fault-injection layer (``repro.runtime.faults``).

The chaos *scenarios* (crash → resume → bitwise curve, serving
failover) live in ``tests/chaos/``; this module pins the mechanism:
plan serialization, event triggering at transport boundaries, recovery
pricing in the performance model, and ``RunSpec.faults`` validation.
"""

import numpy as np
import pytest

from repro.api import RunSpec
from repro.runtime import ProcessGroup
from repro.runtime.faults import (
    FaultEvent,
    FaultPlan,
    FaultyTransport,
    RankFailure,
)
from repro.runtime.transport import SimTransport


def plan_crash_straggler() -> FaultPlan:
    return (FaultPlan(seed=3)
            .rank_crash(step=2, rank=1)
            .straggler(rank=0, slowdown=3.0, start_step=1, end_step=4)
            .message_delay(0.5, category="gradient", start_step=0)
            .worker_crash(shard=1, at_request=10))


class TestFaultPlan:
    def test_builders_are_immutable(self):
        base = FaultPlan(seed=1)
        grown = base.rank_crash(step=5)
        assert len(base) == 0 and len(grown) == 1
        assert grown.seed == 1

    def test_spec_round_trip(self):
        plan = plan_crash_straggler()
        spec = plan.to_spec()
        assert all(isinstance(s, str) for s in spec)
        back = FaultPlan.from_spec(spec, seed=plan.seed)
        assert back == plan

    def test_dict_round_trip_through_json(self):
        import json
        plan = plan_crash_straggler()
        back = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back == plan

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("power_surge")
        with pytest.raises(ValueError, match="slowdown"):
            FaultEvent("straggler", slowdown=0.5)
        with pytest.raises(ValueError, match="until"):
            FaultEvent("message_delay", step=5, until=5)
        with pytest.raises(ValueError, match="bad fault event field"):
            FaultEvent.decode("rank_crash:bogus=1")

    def test_views_split_by_layer(self):
        plan = plan_crash_straggler()
        transport_kinds = {ev.kind for _, ev in plan.transport_events()}
        serving_kinds = {ev.kind for _, ev in plan.serving_events()}
        assert "worker_crash" not in transport_kinds
        assert serving_kinds == {"worker_crash"}

    def test_randomized_is_deterministic(self):
        a = FaultPlan.randomized(7, world=4, steps=20)
        b = FaultPlan.randomized(7, world=4, steps=20)
        c = FaultPlan.randomized(8, world=4, steps=20)
        assert a == b
        assert a != c
        kinds = [ev.kind for ev in a.events]
        assert kinds.count("rank_crash") == 1
        assert kinds.count("straggler") == 1


class TestFaultyTransport:
    def make(self, plan, world=2):
        return FaultyTransport(SimTransport(world), plan)

    def test_satisfies_transport_protocol(self):
        from repro.runtime.transport import Transport
        t = self.make(FaultPlan())
        assert isinstance(t, Transport)
        # as_process_group accepts it like any other fabric.
        from repro.runtime.process_group import as_process_group
        assert as_process_group(t).world_size == 2

    def test_crash_fires_once_in_doomed_ranks_compute(self):
        t = self.make(FaultPlan().rank_crash(step=2, rank=1))
        for step in range(2):
            t.begin_step(step)
            t.advance_compute(0, 1.0)
            t.advance_compute(1, 1.0)
        t.begin_step(2)
        t.advance_compute(0, 1.0)          # healthy rank keeps computing
        with pytest.raises(RankFailure) as exc:
            t.advance_compute(1, 1.0)
        assert exc.value.rank == 1 and exc.value.step == 2
        assert t.fired == {0}
        # Already-fired events never refire (the recovery-replay contract).
        t.advance_compute(1, 1.0)

    def test_crash_backstop_fires_in_collective(self):
        t = self.make(FaultPlan().rank_crash(step=1, rank=0))
        t.begin_step(1)
        with pytest.raises(RankFailure):
            t.collective("allreduce", 64, "gradient")

    def test_straggler_slows_only_its_rank_in_range(self):
        t = self.make(FaultPlan().straggler(rank=1, slowdown=4.0,
                                            start_step=1, end_step=2))
        t.begin_step(0)
        t.advance_compute(1, 1.0)
        assert t.inner.clocks[1].now == 1.0          # before range: normal
        t.begin_step(1)
        t.advance_compute(0, 1.0)
        t.advance_compute(1, 1.0)
        assert t.inner.clocks[0].now == 1.0          # peer unaffected
        assert t.inner.clocks[1].now == 5.0          # 1 + 4x1
        t.begin_step(2)
        t.advance_compute(1, 1.0)
        assert t.inner.clocks[1].now == 6.0          # after range: normal

    def test_message_delay_charges_fabric_time(self):
        clean = ProcessGroup.sim(2)
        faulty = ProcessGroup(self.make(
            FaultPlan().message_delay(0.25, category="gradient")))
        payload = [np.ones(8, np.float32)] * 2
        clean.allreduce(payload, category="gradient")
        faulty.allreduce(payload, category="gradient")
        extra = faulty.now - clean.now
        assert extra == pytest.approx(0.25)
        # Bytes are untouched: a delay costs time, not traffic.
        assert (clean.stats.bytes_by_category
                == faulty.stats.bytes_by_category)

    def test_message_drop_charges_timeout_and_retransmits(self):
        faulty = self.make(FaultPlan().message_drop(0.5, category="data"))
        before = faulty.now
        faulty.p2p(0, 1, 1024, "data")
        assert faulty.dropped_messages == 1
        assert faulty.now - before > 0.5             # timeout + retransmit
        assert faulty.stats.bytes_by_category["data"] == 1024

    def test_delay_ignores_other_categories(self):
        faulty = self.make(FaultPlan().message_delay(9.0, category="data"))
        faulty.collective("allreduce", 64, "gradient")
        assert faulty.now < 9.0

    def test_drop_byte_accounting_pins(self):
        """A dropped send costs exactly the timeout in time and exactly
        one copy in bytes — the retransmission moves the payload through
        the real fabric, the lost copy never counts as traffic."""
        clean = SimTransport(2)
        clean.p2p(0, 1, 4096, "data")
        transfer = clean.now
        faulty = self.make(FaultPlan().message_drop(0.5, category="data"))
        faulty.p2p(0, 1, 4096, "data")
        assert faulty.now == pytest.approx(0.5 + transfer)
        assert faulty.stats.bytes_by_category["data"] == 4096  # not doubled
        assert faulty.dropped_messages == 1

    def test_self_and_empty_sends_never_drop(self):
        faulty = self.make(FaultPlan().message_drop(0.5, category="data"))
        faulty.p2p(1, 1, 4096, "data")      # local move: nothing on the wire
        faulty.p2p(0, 1, 0, "data")         # empty: nothing to lose
        assert faulty.dropped_messages == 0

    def test_every_matching_send_drops_once(self):
        faulty = self.make(FaultPlan().message_drop(0.25, category="data"))
        for _ in range(3):
            faulty.p2p(0, 1, 128, "data")
        assert faulty.dropped_messages == 3
        assert faulty.stats.bytes_by_category["data"] == 3 * 128


class TestServingFaultKinds:
    """The gateway-side event kinds added for the self-healing serving
    layer: compact encoding, target validation, and the view split."""

    def gateway_plan(self):
        return (FaultPlan(seed=5)
                .session_crash("bay", at_dispatch=3)
                .session_straggler("bay", 2.5, start_dispatch=1,
                                   end_dispatch=4)
                .store_corruption("standby", at_insert=2)
                .rank_crash(step=1))

    def test_builders_encode_compactly(self):
        spec = self.gateway_plan().to_spec()
        assert spec[0] == "session_crash:request=3,target=bay"
        assert spec[1] == ("session_straggler:step=1,until=4,"
                          "slowdown=2.5,target=bay")
        assert spec[2] == "store_corruption:request=2,target=standby"

    def test_spec_round_trip_with_targets(self):
        plan = self.gateway_plan()
        assert FaultPlan.from_spec(plan.to_spec(), seed=5) == plan

    def test_gateway_events_filter_by_deployment(self):
        plan = self.gateway_plan()
        assert [i for i, _ in plan.gateway_events()] == [0, 1, 2]
        assert [i for i, _ in plan.gateway_events("bay")] == [0, 1]
        assert [i for i, _ in plan.gateway_events("standby")] == [2]
        assert [i for i, _ in plan.gateway_events("nope")] == []
        # the transport never consumes serving-side events
        assert [ev.kind for _, ev in plan.transport_events()] \
            == ["rank_crash"]

    def test_target_is_required(self):
        for kind in ("session_crash", "session_straggler",
                     "store_corruption"):
            with pytest.raises(ValueError, match="target"):
                FaultEvent(kind)

    def test_target_rejects_encoding_delimiters(self):
        for bad in ("a,b", "a=b", "a:b"):
            with pytest.raises(ValueError, match="target"):
                FaultEvent("session_crash", target=bad)

    def test_session_straggler_slowdown_validated(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultPlan().session_straggler("bay", 0.5)


class TestRunSpecFaults:
    def test_faults_require_distributed_strategy(self):
        with pytest.raises(ValueError, match="distributed strategy"):
            RunSpec(dataset="pems-bay", faults=("rank_crash:step=1",))

    def test_faults_validated_against_world_size(self):
        with pytest.raises(ValueError, match="world_size"):
            RunSpec(dataset="pems-bay", strategy="dist-index", world_size=2,
                    faults=("rank_crash:step=1,rank=5",))

    def test_bad_event_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            RunSpec(dataset="pems-bay", strategy="dist-index", world_size=2,
                    faults=("meteor_strike:step=1",))

    def test_lists_normalise_to_tuples(self):
        spec = RunSpec(dataset="pems-bay", strategy="dist-index",
                       world_size=2, faults=["rank_crash:step=1,rank=1"])
        assert spec.faults == ("rank_crash:step=1,rank=1",)
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestRecoveryPricing:
    @pytest.fixture(scope="class")
    def model(self):
        from repro.datasets.catalog import CATALOG
        from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf
        spec = CATALOG["pems-bay"]
        perf = pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                              spec.train_features)
        return TrainingPerfModel(spec, perf, batch_size=64)

    def test_breakdown_unchanged_without_mtbf(self, model):
        br = model.epoch_breakdown("dist-index", 8)
        assert br.recovery == 0.0

    def test_recovery_grows_with_failure_rate(self, model):
        often = model.epoch_breakdown("dist-index", 8, mtbf_hours=1.0,
                                      checkpoint_every_steps=50)
        rarely = model.epoch_breakdown("dist-index", 8, mtbf_hours=100.0,
                                       checkpoint_every_steps=50)
        assert often.recovery > rarely.recovery > 0.0
        assert often.total > model.epoch_breakdown("dist-index", 8).total

    def test_overhead_pieces_are_consistent(self, model):
        o = model.recovery_overhead("dist-index", 8, mtbf_hours=24.0,
                                    checkpoint_every_steps=10)
        expected = (o["checkpoint_seconds_per_epoch"]
                    + o["expected_failures_per_epoch"]
                    * o["seconds_per_failure"])
        assert o["recovery_seconds_per_epoch"] == pytest.approx(expected)
        assert 0.0 < o["overhead_fraction"] < 1.0

    def test_checkpoint_cadence_tradeoff(self, model):
        # Checkpointing every step pays writes; rarely pays lost work —
        # the model must price both directions.
        eager = model.recovery_overhead("dist-index", 8, mtbf_hours=24.0,
                                        checkpoint_every_steps=1)
        lazy = model.recovery_overhead("dist-index", 8, mtbf_hours=24.0,
                                       checkpoint_every_steps=10_000)
        assert (eager["checkpoint_seconds_per_epoch"]
                > lazy["checkpoint_seconds_per_epoch"])
        assert (eager["lost_work_seconds_per_failure"]
                < lazy["lost_work_seconds_per_failure"])

    def test_validation(self, model):
        with pytest.raises(ValueError, match="mtbf"):
            model.recovery_overhead("dist-index", 8, mtbf_hours=0.0,
                                    checkpoint_every_steps=1)
        with pytest.raises(ValueError, match="checkpoint_every_steps"):
            model.recovery_overhead("dist-index", 8, mtbf_hours=1.0,
                                    checkpoint_every_steps=0)
