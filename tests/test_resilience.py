"""Self-healing gateway: circuit breakers, fault injection, degradation.

Runs entirely on deterministic toy sessions (predictions = window x
scale) and a ManualClock, so every trip, probe, retry, hedge and
rollback in here is exact — no wall-clock thresholds, no flakiness.
"""

import numpy as np
import pytest

from repro.api import build_gateway
from repro.runtime.faults import FaultPlan
from repro.serving.gateway import Gateway
from repro.serving.gateway.result_cache import ResultCache, cache_key
from repro.serving.resilience import (
    CLOSED,
    DeploymentFaultInjector,
    HALF_OPEN,
    HealthMonitor,
    OPEN,
    CircuitBreaker,
    ResiliencePolicy,
)
from repro.serving.service import ManualClock
from repro.utils.errors import SessionFailure

H, N, F = 4, 3, 2


def service_time(n: int) -> float:
    # batch of 1: 1.1ms; baseline (batch of 4): 1.4ms
    return 1e-3 + 1e-4 * n


BASELINE = service_time(4)


class ToySession:
    """Deterministic in-memory session: predictions = window * scale.

    A pure function of the input window, so two sessions with the same
    ``scale`` produce bitwise-identical forecasts — the property the
    fallback/stale degradation tests pin.
    """

    def __init__(self, *, scale: float = 2.0, max_batch: int = 8):
        self.horizon, self.num_nodes, self.in_features = H, N, F
        self.max_batch = max_batch
        self.scaler = None
        self.scale = float(scale)
        self._staging = np.zeros((max_batch, H, N, F))
        self.predicts = 0

    def stage(self, n):
        return self._staging[:n]

    def predict(self, x):
        self.predicts += 1
        return np.asarray(x) * self.scale


class DoomedSession:
    """Delegates everything to an inner session but dies on predict."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def predict(self, x):
        raise SessionFailure("green session is broken")


class NaNSession:
    """Predicts fine — except the numbers are garbage."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def predict(self, x):
        out = np.asarray(x) * 2.0
        out = out.copy()
        out[..., 0] = np.nan
        return out


def expected(window, scale=2.0):
    return np.asarray(window) * scale


def make_windows(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(H, N, F)) for _ in range(n)]


KEY = "k-ops"


def make_gw(*, fallback=False, scale=2.0, **kw):
    kw.setdefault("clock", ManualClock())
    kw.setdefault("max_batch", 4)
    kw.setdefault("max_wait", 0.002)
    kw.setdefault("service_time", service_time)
    gw = Gateway(**kw)
    gw.add_deployment("a", ToySession(scale=scale),
                      fallback="b" if fallback else None)
    if fallback:
        gw.add_deployment("b", ToySession(scale=scale))
    gw.add_tenant("ops", api_key=KEY)
    return gw


def reasons(gw, deployment=None):
    return [t["reason"] for t in gw.resilience.transitions(deployment)]


# ======================================================================
class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        p = ResiliencePolicy()
        assert p.failure_threshold == 2 and p.serve_stale and not p.hedge

    @pytest.mark.parametrize("kw", [
        dict(failure_threshold=0),
        dict(latency_blowout=1.0),
        dict(latency_alpha=0.0),
        dict(latency_alpha=1.5),
        dict(reset_timeout=0.0),
        dict(max_retries=-1),
        dict(hedge_latency_factor=1.0),
        dict(canary_probes=-1),
    ])
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kw)


class TestHealthMonitor:
    def test_ewma(self):
        m = HealthMonitor(alpha=0.5)
        m.observe_latency(1.0)
        m.observe_latency(2.0)
        assert m.ewma_latency == pytest.approx(1.5)

    def test_never_trips_without_baseline(self):
        m = HealthMonitor(alpha=0.5)
        m.observe_latency(1e9)
        assert not m.latency_blown(2.0)

    def test_blowout_against_baseline(self):
        m = HealthMonitor(alpha=1.0, baseline=1.0)
        m.observe_latency(5.0)
        assert m.latency_blown(4.0)
        assert not m.latency_blown(6.0)
        assert m.latency_blown(4.0, seconds=4.1)
        assert not m.latency_blown(4.0, seconds=3.9)

    def test_streaks_and_reset(self):
        m = HealthMonitor(baseline=1.0)
        m.record_failure()
        m.record_failure()
        assert m.consecutive_failures == 2 and m.failures == 2
        m.record_success()
        assert m.consecutive_failures == 0 and m.successes == 1
        m.observe_latency(9.0)
        m.reset(latency=1.0)
        assert m.ewma_latency == 1.0 and m.baseline == 1.0


# ======================================================================
class TestCircuitBreaker:
    def make(self, **pol):
        pol.setdefault("failure_threshold", 2)
        pol.setdefault("reset_timeout", 0.05)
        clock = ManualClock()
        b = CircuitBreaker("a", ResiliencePolicy(**pol), clock, baseline=1.0)
        return b, clock

    def test_opens_on_failure_streak(self):
        b, clock = self.make()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert [t.reason for t in b.transitions] == ["failures"]
        assert b.before_request() == OPEN          # timeout not yet served
        clock.advance(0.05)
        assert b.before_request() == HALF_OPEN
        assert [t.reason for t in b.transitions] == ["failures", "timeout"]

    def test_success_resets_streak(self):
        b, _ = self.make()
        b.record_failure()
        b.record_success(0.5)
        b.record_failure()
        assert b.state == CLOSED

    def test_probe_slot_is_single(self):
        b, clock = self.make()
        b.record_failure(), b.record_failure()
        clock.advance(0.05)
        assert b.before_request() == HALF_OPEN
        assert b.try_probe()
        assert not b.try_probe()                   # one probe at a time
        b.cancel_probe()
        assert b.try_probe()                       # shed probes release it

    def test_probe_success_closes(self):
        b, clock = self.make()
        b.record_failure(), b.record_failure()
        clock.advance(0.05)
        b.before_request(), b.try_probe()
        b.record_success(0.5)
        assert b.state == CLOSED
        assert b.monitor.ewma_latency == 0.5       # fresh slate post-recovery
        assert b.monitor.consecutive_failures == 0
        assert [t.reason for t in b.transitions][-1] == "probe_ok"

    def test_probe_failure_reopens(self):
        b, clock = self.make()
        b.record_failure(), b.record_failure()
        clock.advance(0.05)
        b.before_request(), b.try_probe()
        b.record_failure()
        assert b.state == OPEN
        assert [t.reason for t in b.transitions][-1] == "probe_failed"

    def test_straggling_probe_reopens(self):
        b, clock = self.make(latency_blowout=4.0)
        b.record_failure(), b.record_failure()
        clock.advance(0.05)
        b.before_request(), b.try_probe()
        b.record_success(10.0)                     # 10x the 1.0 baseline
        assert b.state == OPEN
        assert [t.reason for t in b.transitions][-1] == "latency"

    def test_latency_blowout_opens_closed_circuit(self):
        b, _ = self.make(latency_blowout=4.0)
        b.record_success(10.0)
        assert b.state == OPEN
        assert [t.reason for t in b.transitions] == ["latency"]

    def test_no_baseline_means_no_latency_trip(self):
        clock = ManualClock()
        b = CircuitBreaker("a", ResiliencePolicy(), clock)   # no baseline
        for _ in range(5):
            b.record_success(100.0)
        assert b.state == CLOSED

    def test_degraded_is_slow_but_closed(self):
        b, _ = self.make(latency_blowout=8.0, hedge_latency_factor=2.0)
        assert not b.degraded()                    # no EWMA yet
        b.record_success(3.0)
        assert b.degraded()
        b2, _ = self.make(latency_blowout=2.5, hedge_latency_factor=2.0)
        b2.record_success(3.0)                     # blows the circuit open
        assert b2.state == OPEN and not b2.degraded()


# ======================================================================
class TestDeploymentFaultInjector:
    def test_crash_latches_until_revive(self):
        plan = FaultPlan().session_crash("a", at_dispatch=2)
        inj = DeploymentFaultInjector("a", plan)
        inj.on_dispatch(1)
        inj.on_dispatch(1)
        with pytest.raises(SessionFailure):
            inj.on_dispatch(1)                     # ordinal 2 fires
        with pytest.raises(SessionFailure):
            inj.on_dispatch(1)                     # stays down
        inj.revive()
        inj.on_dispatch(1)                         # one-shot: no refire
        assert inj.crashes == 1 and not inj.dead

    def test_straggler_scales_a_dispatch_range(self):
        plan = FaultPlan().session_straggler("a", 4.0, start_dispatch=1,
                                             end_dispatch=3)
        inj = DeploymentFaultInjector("a", plan)
        scales = []
        for _ in range(4):
            inj.on_dispatch(1)
            scales.append(inj.scale_service_time(1.0))
        assert scales == [1.0, 4.0, 4.0, 1.0]

    def test_corruption_fires_at_insert_ordinal(self):
        clock = ManualClock()
        plan = FaultPlan().store_corruption("a", at_insert=1)
        inj = DeploymentFaultInjector("a", plan)
        cache = ResultCache(ttl=10.0, clock=clock)
        w0, w1 = make_windows(2)
        k0 = cache_key("a", "v1", w0)
        k1 = cache_key("a", "v1", w1)
        cache.put(k0, w0[..., 0])
        assert not inj.maybe_corrupt(cache, k0)    # insert ordinal 0: clean
        cache.put(k1, w1[..., 0])
        assert inj.maybe_corrupt(cache, k1)        # ordinal 1 fires
        assert cache.get(k0) is not None
        assert cache.get(k1) is None               # integrity check caught it
        assert cache.stats.corruptions_detected == 1

    def test_events_filter_by_deployment(self):
        plan = (FaultPlan().session_crash("a").session_straggler("b", 2.0)
                .rank_crash(5, rank=0))
        inj = DeploymentFaultInjector("b", plan)
        assert [ev.kind for _, ev in inj._events] == ["session_straggler"]
        assert all(ev.kind not in ("session_crash", "session_straggler",
                                   "store_corruption")
                   for _, ev in plan.transport_events())


# ======================================================================
class TestStaleCache:
    def test_expired_entries_stay_for_stale_serving(self):
        clock = ManualClock()
        cache = ResultCache(ttl=1.0, clock=clock)
        (w,) = make_windows(1)
        key = cache_key("a", "v1", w)
        cache.put(key, w[..., 0])
        clock.advance(2.0)
        assert cache.get(key) is None
        assert cache.get(key) is None
        assert cache.stats.expirations == 1        # counted once per entry
        stale = cache.get_stale(key)
        assert stale is not None
        np.testing.assert_array_equal(stale, w[..., 0])
        assert cache.stats.stale_hits == 1

    def test_stale_reads_are_integrity_checked(self):
        clock = ManualClock()
        cache = ResultCache(ttl=1.0, clock=clock)
        (w,) = make_windows(1)
        key = cache_key("a", "v1", w)
        cache.put(key, w[..., 0])
        clock.advance(2.0)
        assert cache.corrupt(key)
        assert cache.get_stale(key) is None
        assert cache.stats.corruptions_detected == 1
        assert len(cache) == 0                     # dropped, never served


# ======================================================================
class TestSelfHealingGateway:
    def test_crash_retry_exhaustion_then_probe_recovery(self):
        policy = ResiliencePolicy(failure_threshold=2, max_retries=1,
                                  reset_timeout=0.01)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(resilience=policy, fault_plan=plan)
        clock = gw.clock
        w0, w1 = make_windows(2)

        r1 = gw.request(KEY, "a", w0)
        assert r1.status == "failed" and r1.reason == "session_failure"
        assert not r1.ok
        assert gw.resilience.retries == 1          # one budgeted retry
        assert reasons(gw) == ["failures"]
        with pytest.raises(RuntimeError):
            r1.latency                             # no forecast to stamp

        clock.advance(0.02)                        # past reset_timeout
        r2 = gw.request(KEY, "a", w1)
        assert r2.status == "ok"
        np.testing.assert_array_equal(r2.forecast.predictions,
                                      expected(w1)[..., 0])
        assert reasons(gw) == ["failures", "timeout", "probe_ok"]
        assert gw.resilience.restarts == 1
        assert gw.deployments.get("a").restarts == 1
        assert gw.resilience.breaker("a").state == CLOSED

    def test_stale_cache_degradation_is_bitwise(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0,
                                  reset_timeout=100.0)
        plan = FaultPlan().session_crash("a", at_dispatch=1)
        gw = make_gw(resilience=policy, fault_plan=plan, cache_ttl=0.5)
        w0, w1 = make_windows(2)

        r1 = gw.request(KEY, "a", w0)              # dispatch 0: healthy
        assert r1.status == "ok"
        r2 = gw.request(KEY, "a", w1)              # dispatch 1: crash
        assert r2.status == "failed"               # no stale entry for w1
        assert gw.resilience.breaker("a").state == OPEN

        gw.clock.advance(1.0)                      # w0's entry expires
        r3 = gw.submit(KEY, "a", w0)
        assert r3.status == "degraded"
        assert r3.degraded_source == "stale_cache"
        assert r3.ok
        np.testing.assert_array_equal(r3.forecast.predictions,
                                      r1.forecast.predictions)
        assert gw.cache.stats.stale_hits == 1
        assert gw.resilience.degraded_stale == 1
        assert gw.stats.degraded == 1

    def test_fallback_reroute_keeps_the_ticket(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(fallback=True, resilience=policy, fault_plan=plan)
        (w,) = make_windows(1)

        r = gw.request(KEY, "a", w)
        assert r.status == "degraded"
        assert r.degraded_source == "fallback:b"
        # completion reports the original admission ticket, not b's queue
        assert r.deployment == "a"
        np.testing.assert_array_equal(r.forecast.predictions,
                                      expected(w)[..., 0])
        assert gw.resilience.degraded_fallback == 1
        assert gw.stats.failed == 0                # the ladder answered

    def test_open_circuit_degrades_at_submit(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0,
                                  reset_timeout=100.0)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(fallback=True, resilience=policy, fault_plan=plan)
        w0, w1 = make_windows(2)

        r1 = gw.request(KEY, "a", w0)              # trips the circuit
        assert r1.status == "degraded"
        r2 = gw.submit(KEY, "a", w1)               # open: routed at the door
        assert r2.status == "admitted"
        assert r2.deployment == "b"
        assert r2.degraded_source == "fallback:b"
        (done,) = gw.flush()
        assert done.status == "degraded"
        np.testing.assert_array_equal(done.forecast.predictions,
                                      expected(w1)[..., 0])
        assert gw.resilience.degraded_fallback == 2

    def test_exhausted_ladder_fails_explicitly(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0,
                                  serve_stale=False)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(resilience=policy, fault_plan=plan)
        (w,) = make_windows(1)
        r = gw.request(KEY, "a", w)
        assert r.status == "failed"
        assert gw.stats.failed == 1
        assert gw.resilience.failed == 1
        # nothing hangs, nothing is silently dropped
        assert gw.stats.requests == 1
        assert not gw._pending

    def test_straggler_opens_circuit_then_recovers(self):
        policy = ResiliencePolicy(reset_timeout=0.01)
        plan = FaultPlan().session_straggler("a", 10.0, start_dispatch=0,
                                             end_dispatch=1)
        gw = make_gw(resilience=policy, fault_plan=plan)
        w0, w1 = make_windows(2)
        r1 = gw.request(KEY, "a", w0)
        assert r1.status == "ok"                   # slow, not wrong
        assert gw.resilience.breaker("a").state == OPEN
        assert reasons(gw) == ["latency"]
        gw.clock.advance(0.02)
        r2 = gw.request(KEY, "a", w1)              # probe: straggle is over
        assert r2.status == "ok"
        assert reasons(gw) == ["latency", "timeout", "probe_ok"]

    def test_straggling_probe_keeps_circuit_open(self):
        policy = ResiliencePolicy(reset_timeout=0.01)
        plan = FaultPlan().session_straggler("a", 10.0, start_dispatch=0,
                                             end_dispatch=2)
        gw = make_gw(resilience=policy, fault_plan=plan)
        w = make_windows(3)
        gw.request(KEY, "a", w[0])                 # trips on latency
        gw.clock.advance(0.02)
        gw.request(KEY, "a", w[1])                 # probe still straggling
        assert reasons(gw) == ["latency", "timeout", "latency"]
        assert gw.resilience.breaker("a").state == OPEN
        gw.clock.advance(0.02)
        gw.request(KEY, "a", w[2])                 # healthy probe
        assert reasons(gw) == ["latency", "timeout", "latency",
                               "timeout", "probe_ok"]
        assert gw.resilience.breaker("a").state == CLOSED

    def test_transitions_deterministic_under_fixed_plan(self):
        def run():
            policy = ResiliencePolicy(failure_threshold=2, max_retries=1,
                                      reset_timeout=0.01)
            plan = (FaultPlan().session_crash("a", at_dispatch=0)
                    .session_straggler("a", 10.0, start_dispatch=3,
                                       end_dispatch=4))
            gw = make_gw(resilience=policy, fault_plan=plan)
            for w in make_windows(5, seed=42):
                gw.request(KEY, "a", w)
                gw.clock.advance(0.02)
            return gw.resilience.transitions()

        first, second = run(), run()
        assert first == second                     # bit-for-bit replay
        assert len(first) >= 3

    def test_probe_in_flight_degrades_second_request(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0,
                                  reset_timeout=0.01, serve_stale=False)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(resilience=policy, fault_plan=plan)
        w0, w1, w2 = make_windows(3)
        assert gw.request(KEY, "a", w0).status == "failed"
        gw.clock.advance(0.02)
        s1 = gw.submit(KEY, "a", w1)               # claims the probe slot
        assert s1.status == "admitted"
        s2 = gw.submit(KEY, "a", w2)               # slot taken: walk ladder
        assert s2.status == "failed" and s2.reason == "probe_in_flight"
        done = gw.flush()
        assert [r.status for r in done] == ["ok"]
        assert gw.resilience.breaker("a").state == CLOSED

    def test_shed_probe_releases_the_slot(self):
        policy = ResiliencePolicy(failure_threshold=1, max_retries=0,
                                  reset_timeout=0.01, serve_stale=False)
        plan = FaultPlan().session_crash("a", at_dispatch=0)
        gw = make_gw(resilience=policy, fault_plan=plan)
        w0, w1, w2 = make_windows(3)
        gw.request(KEY, "a", w0)
        gw.clock.advance(0.02)
        # a probe with no deadline budget is shed by admission control...
        s1 = gw.submit(KEY, "a", w1, deadline=gw.clock())
        assert s1.status == "shed"
        breaker = gw.resilience.breaker("a")
        assert breaker.state == HALF_OPEN and not breaker.probe_in_flight
        # ...and the released slot lets the next request probe
        s2 = gw.submit(KEY, "a", w2)
        assert s2.status == "admitted"
        gw.flush()
        assert breaker.state == CLOSED

    def test_corrupted_cache_entry_is_recomputed(self):
        plan = FaultPlan().store_corruption("a", at_insert=0)
        gw = make_gw(fault_plan=plan, cache_ttl=60.0)
        (w,) = make_windows(1)
        r1 = gw.request(KEY, "a", w)
        assert r1.status == "ok"                   # corruption hits the copy
        r2 = gw.request(KEY, "a", w)               # integrity check: recompute
        assert r2.status == "ok"
        np.testing.assert_array_equal(r2.forecast.predictions,
                                      r1.forecast.predictions)
        assert gw.cache.stats.corruptions_detected == 1
        r3 = gw.request(KEY, "a", w)               # clean reinsert: cache hit
        assert r3.status == "cached"
        np.testing.assert_array_equal(r3.forecast.predictions,
                                      r1.forecast.predictions)


# ======================================================================
class TestHedging:
    def hedging_gw(self, plan):
        policy = ResiliencePolicy(hedge=True, hedge_latency_factor=2.0,
                                  latency_blowout=30.0)
        return make_gw(fallback=True, resilience=policy, fault_plan=plan)

    def test_primary_wins_twin_is_discarded(self):
        plan = FaultPlan().session_straggler("a", 5.0, start_dispatch=0,
                                             end_dispatch=10)
        gw = self.hedging_gw(plan)
        w0, w1 = make_windows(2)
        assert gw.request(KEY, "a", w0).status == "ok"   # seeds the EWMA
        r = gw.request(KEY, "a", w1)               # degraded -> hedged
        assert r.status == "ok" and r.hedged
        np.testing.assert_array_equal(r.forecast.predictions,
                                      expected(w1)[..., 0])
        assert gw.flush() == []                    # losing twin is silent
        assert gw.resilience.hedges == 1
        assert gw.resilience.hedges_wasted == 1

    def test_fallback_wins_when_primary_crashes(self):
        plan = (FaultPlan().session_straggler("a", 5.0, start_dispatch=0,
                                              end_dispatch=10)
                .session_crash("a", at_dispatch=1))
        gw = self.hedging_gw(plan)
        w0, w1 = make_windows(2)
        gw.request(KEY, "a", w0)
        r = gw.request(KEY, "a", w1)               # primary dies mid-race
        assert r.status == "degraded"
        assert r.degraded_source == "fallback:b"
        assert r.deployment == "a"                 # still the original ticket
        np.testing.assert_array_equal(r.forecast.predictions,
                                      expected(w1)[..., 0])
        assert gw.resilience.hedges == 1
        assert gw.resilience.hedges_wasted == 0
        assert gw.resilience.retries == 0          # the twin covered it

    def test_no_hedge_when_primary_is_healthy(self):
        gw = self.hedging_gw(FaultPlan())
        for w in make_windows(3):
            assert gw.request(KEY, "a", w).status == "ok"
        assert gw.resilience.hedges == 0


# ======================================================================
class TestCanaryRollback:
    def serve_some(self, gw, n=2):
        for w in make_windows(n, seed=9):
            assert gw.request(KEY, "a", w).status == "ok"

    def test_failing_canary_rolls_back_with_zero_drops(self):
        gw = make_gw(cache_ttl=60.0)
        dep = gw.deployments.get("a")
        blue = dep.service.session
        self.serve_some(gw)
        record = gw.swap("a", DoomedSession(ToySession()), version="v2")
        assert record.reason == "session_failure"
        assert record.dropped == 0
        assert record.failed_version == "v2"
        assert record.restored_version == "v1"
        assert dep.version == "v1"
        assert dep.service.session is blue
        assert gw.stats.rollbacks == 1 and gw.stats.swaps == 1
        assert gw.resilience.rollbacks == [record]
        # blue serves on, bitwise-identical to before the failed swap
        (w,) = make_windows(1, seed=77)
        r = gw.request(KEY, "a", w)
        assert r.status == "ok" and r.version == "v1"
        np.testing.assert_array_equal(r.forecast.predictions,
                                      expected(w)[..., 0])

    def test_non_finite_canary_rolls_back(self):
        gw = make_gw()
        self.serve_some(gw)
        record = gw.swap("a", NaNSession(ToySession()), version="v2")
        assert record.reason == "non_finite"
        assert gw.deployments.get("a").version == "v1"

    def test_healthy_swap_survives_its_canary(self):
        gw = make_gw()
        self.serve_some(gw)
        record = gw.swap("a", ToySession(scale=3.0), version="v2")
        assert record.new_version == "v2" and record.dropped == 0
        assert gw.stats.rollbacks == 0
        (w,) = make_windows(1, seed=5)
        r = gw.request(KEY, "a", w)
        np.testing.assert_array_equal(r.forecast.predictions,
                                      expected(w, scale=3.0)[..., 0])

    def test_no_canary_material_passes_trivially(self):
        gw = make_gw()                             # nothing served yet
        record = gw.swap("a", DoomedSession(ToySession()), version="v2")
        assert record.new_version == "v2"          # a SwapRecord, not rollback
        assert gw.stats.rollbacks == 0


# ======================================================================
class TestBuildGatewayResilience:
    def test_fallback_routes_thread_through(self):
        gw = build_gateway(
            {"a": ToySession(), "b": ToySession()}, tenants=["ops"],
            clock=ManualClock(), max_batch=4, service_time=service_time,
            fallbacks={"a": "b"},
            resilience=ResiliencePolicy(failure_threshold=1, max_retries=0),
            fault_plan=FaultPlan().session_crash("a", at_dispatch=0))
        key = gw.tenants.get("ops").api_key
        (w,) = make_windows(1)
        r = gw.request(key, "a", w)
        assert r.status == "degraded"
        assert r.degraded_source == "fallback:b"
        desc = gw.describe()["resilience"]
        assert desc["degraded_fallback"] == 1
        assert desc["breakers"]["a"]["state"] == OPEN

    def test_rejects_unknown_fallback(self):
        with pytest.raises(ValueError, match="unknown"):
            build_gateway({"a": ToySession()}, fallbacks={"a": "zzz"})

    def test_rejects_self_fallback(self):
        with pytest.raises(ValueError, match="own"):
            build_gateway({"a": ToySession()}, fallbacks={"a": "a"})
