"""Tests for the online forecast-serving subsystem (``repro.serving``).

The load-bearing guarantees:

- micro-batched and sharded predictions match single-request single-shard
  inference (the batching/sharding layers are pure plumbing);
- the streaming feature store reproduces the offline preprocessing
  pipeline bitwise;
- load-generator runs are deterministic given a seed and a synthetic
  service-time model.
"""

import os

import numpy as np
import pytest

from repro.api import RunSpec, list_servers, run, serve
from repro.preprocessing.index_batching import IndexDataset
from repro.serving import (
    FeatureStore,
    LoadGenerator,
    ManualClock,
    MicroBatchQueue,
    ModelSession,
    ShardedSession,
)
from repro.training.checkpoint import save_checkpoint
from repro.utils.errors import ShapeError

SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(test.batch_size))
    return xb.copy()


@pytest.fixture(scope="module")
def ckpt(trained, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "model.npz")
    save_checkpoint(path, trained.artifacts.model, epoch=1,
                    spec=trained.spec, scaler=trained.artifacts.loaders.scaler)
    return path


def make_session(trained, **kw):
    return ModelSession(trained.artifacts.model,
                        trained.artifacts.loaders.scaler,
                        spec=trained.spec, **kw)


class TestModelSession:
    def test_restores_exact_parameters(self, trained, ckpt):
        session = ModelSession.from_checkpoint(ckpt)
        restored = dict(session.model.named_parameters())
        for name, p in trained.artifacts.model.named_parameters():
            np.testing.assert_array_equal(p.data, restored[name].data,
                                          err_msg=name)

    def test_predict_matches_model(self, trained, pool):
        session = make_session(trained)
        direct = trained.artifacts.model.predict(pool)
        np.testing.assert_array_equal(session.predict(pool).copy(), direct)

    def test_predict_rejects_bad_shapes(self, trained, pool):
        session = make_session(trained, max_batch=4)
        with pytest.raises(ShapeError):
            session.predict(pool[:, :2])
        with pytest.raises(ValueError, match="max_batch"):
            session.predict(pool[:5])

    def test_staging_buffer_reused(self, trained, pool):
        session = make_session(trained)
        buf = session._in_buf
        session.predict(pool[:2])
        session.predict(pool[:2])
        assert session._in_buf is buf
        assert session.requests_served == 4

    def test_inference_guard_refuses_train_mode(self, trained, pool):
        session = make_session(trained)
        session.model.train()
        try:
            with pytest.raises(RuntimeError, match="eval mode"):
                session.predict(pool[:1])
        finally:
            session.model.eval()

    def test_refuses_non_self_describing_checkpoint(self, trained, tmp_path):
        path = str(tmp_path / "bare.npz")
        save_checkpoint(path, trained.artifacts.model)
        with pytest.raises(ValueError, match="self-describing"):
            ModelSession.from_checkpoint(path)


class TestMicroBatchParity:
    def test_batched_equals_single(self, trained, pool):
        """Acceptance: micro-batched == batch-of-1 inference (<= 1e-6)."""
        session = make_session(trained, max_batch=8)
        singles = np.stack([session.predict(pool[i:i + 1])[0].copy()
                            for i in range(8)])
        svc = serve(trained, max_batch=8, max_wait=0.005)
        ids = [svc.submit(pool[i]) for i in range(8)]
        done = {fc.request_id: fc for fc in svc.poll() + svc.flush()}
        assert sorted(done) == sorted(ids)
        expected = svc.session.to_original_units(singles)
        for i, rid in enumerate(ids):
            np.testing.assert_allclose(done[rid].predictions, expected[i],
                                       atol=1e-6, rtol=0)
        assert svc.stats.batches == 1 and svc.stats.requests == 8

    def test_forecast_immediate_is_batch_of_one(self, trained, pool):
        svc = serve(trained, max_batch=8)
        fc = svc.forecast(pool[0])
        assert fc.batch_size == 1
        single = svc.session.to_original_units(
            svc.session.predict(pool[:1])[0])
        np.testing.assert_allclose(fc.predictions, single, atol=1e-6, rtol=0)

    def test_forecast_keeps_pending_completions(self, trained, pool):
        """forecast() must not swallow other requests' results: anything
        it coalesces with stays buffered for the next poll/flush."""
        svc = serve(trained, max_batch=8, max_wait=10.0)
        pending = svc.submit(pool[0])
        fc = svc.forecast(pool[1])
        assert fc.batch_size == 2       # coalesced into one forward
        held = svc.poll() + svc.flush()
        assert [f.request_id for f in held] == [pending]
        single = svc.session.to_original_units(
            svc.session.predict(pool[:1])[0])
        np.testing.assert_allclose(held[0].predictions, single,
                                   atol=1e-6, rtol=0)

    def test_bad_window_rejected_at_submit(self, trained, pool):
        """A malformed window fails its own caller at the door; requests
        already coalesced with it are unaffected."""
        svc = serve(trained, max_batch=8, max_wait=10.0)
        ok = svc.submit(pool[0])
        with pytest.raises(ShapeError):
            svc.submit(pool[0, :2])
        with pytest.raises(ShapeError):
            svc.forecast(pool[0, :, :3])
        done = svc.flush()
        assert [fc.request_id for fc in done] == [ok]

    def test_materialise_fills_session_staging(self, trained, pool):
        """The service stacks micro-batches straight into the session's
        persistent staging buffer — no intermediate batch copy."""
        svc = serve(trained, max_batch=8)
        staged = svc.session.stage(3)
        assert staged.base is svc.session._in_buf
        for i in range(3):
            svc.submit(pool[i])
        done = svc.flush()
        assert len(done) == 3 and svc.stats.batches == 1


class TestSharding:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_shard_count_invariance(self, trained, pool, shards):
        """Acceptance: predictions are invariant in the shard count."""
        local = make_session(trained).predict(pool).copy()
        sharded = ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            trained.artifacts.dataset.graph, num_shards=shards,
            spec=trained.spec)
        np.testing.assert_array_equal(sharded.predict(pool), local)

    def test_streamed_state_matches_local(self, trained):
        ds = trained.artifacts.dataset
        scaler = trained.artifacts.loaders.scaler
        local = serve(trained, max_batch=4)
        sharded = serve(trained, server="sharded", num_shards=2, max_batch=4)
        warm = 2 * local.session.horizon
        for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
            local.ingest(values, float(ts))
            sharded.ingest(values, float(ts))
        np.testing.assert_array_equal(sharded.forecast_streamed(),
                                      local.forecast_streamed())
        stats = sharded.session.halo_stats()
        assert stats["bytes_by_category"].get("halo", 0) > 0
        assert sum(stats["owned_sizes"]) == ds.num_nodes

    def test_forecast_nodes_routes_to_owners(self, trained):
        ds = trained.artifacts.dataset
        sharded = ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            ds.graph, num_shards=2, spec=trained.spec)
        warm = 2 * sharded.horizon
        for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
            sharded.ingest(values, float(ts))
        full = sharded.forecast_current().copy()
        nodes = np.array([sharded.workers[0].owned[0],
                          sharded.workers[1].owned[0]])
        routed = sharded.forecast_nodes(nodes)
        np.testing.assert_array_equal(routed, full[:, nodes, 0])

    def test_truncated_halo_is_cheaper(self, trained):
        ds = trained.artifacts.dataset
        exact = ShardedSession(trained.artifacts.model,
                               trained.artifacts.loaders.scaler, ds.graph,
                               num_shards=2, spec=trained.spec)
        trunc = ShardedSession(trained.artifacts.model,
                               trained.artifacts.loaders.scaler, ds.graph,
                               num_shards=2, spec=trained.spec,
                               receptive_hops=0)
        assert all(len(w.halo) == 0 for w in trunc.workers)
        assert all(len(w.halo) > 0 for w in exact.workers)

    def test_window_none_served_on_sharded_path(self, trained):
        """A ``window=None`` request works on a sharded service: the
        current window assembles from the shards' owned columns and the
        answer matches the streamed (halo-exchange) forecast."""
        ds = trained.artifacts.dataset
        local = serve(trained, max_batch=4)
        sharded = serve(trained, server="sharded", num_shards=2, max_batch=4)
        warm = 2 * local.session.horizon
        for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
            local.ingest(values, float(ts))
            sharded.ingest(values, float(ts))
        fc = sharded.forecast(None)
        np.testing.assert_array_equal(fc.predictions,
                                      sharded.forecast_streamed())
        np.testing.assert_array_equal(fc.predictions,
                                      local.forecast(None).predictions)

    def test_current_window_is_a_snapshot(self, trained):
        """A queued request keeps the window it was submitted with: later
        ingests must not mutate it (current_window returns a copy)."""
        ds = trained.artifacts.dataset
        svc = serve(trained, server="sharded", num_shards=2,
                    max_batch=4, max_wait=10.0)
        warm = 2 * svc.session.horizon
        for values, ts in zip(ds.signals[:warm], ds.timestamps[:warm]):
            svc.ingest(values, float(ts))
        snap = svc.session.current_window().copy()
        queued = svc.submit(svc.session.current_window())
        for values, ts in zip(ds.signals[warm:2 * warm],
                              ds.timestamps[warm:2 * warm]):
            svc.ingest(values, float(ts))
        done = {fc.request_id: fc for fc in svc.flush()}
        expected = svc.session.to_original_units(
            svc.session.predict(snap[None])[0])
        np.testing.assert_array_equal(done[queued].predictions, expected)

    def test_sharded_predict_allocates_no_broadcast_copies(self, trained,
                                                           pool):
        """Request fan-out is charged to the communicator without
        materialising per-shard batch copies."""
        sharded = ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            trained.artifacts.dataset.graph, num_shards=2,
            spec=trained.spec)
        sharded.predict(pool)
        stats = sharded.halo_stats()
        assert stats["bytes_by_category"]["serve-request"] \
            == pool.astype(np.float32).nbytes

    def test_builder_passes_domain_not_feature_guess(self, trained):
        """repro.api builds shard stores from the dataset's domain; the
        in_features==2 heuristic is only the direct-construction
        fallback."""
        sharded = serve(trained, server="sharded", num_shards=2)
        assert sharded.session.add_time_feature \
            == (trained.artifacts.dataset.spec.domain == "traffic")
        explicit = ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            trained.artifacts.dataset.graph, num_shards=2,
            spec=trained.spec, add_time_feature=True)
        assert all(w.store.add_time_feature for w in explicit.workers)

    def test_owner_of_bounds(self, trained):
        sharded = ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            trained.artifacts.dataset.graph, num_shards=2, spec=trained.spec)
        owners = {sharded.owner_of(n) for n in range(sharded.num_nodes)}
        assert owners == {0, 1}
        with pytest.raises(IndexError):
            sharded.owner_of(sharded.num_nodes)


class TestFeatureStore:
    def test_matches_offline_pipeline_bitwise(self, trained):
        """Acceptance: streamed windows == IndexDataset windows, bitwise."""
        ds = trained.artifacts.dataset
        idx = IndexDataset.from_dataset(ds, horizon=4,
                                        store_dtype=np.float32)
        store = FeatureStore.for_dataset(ds, idx.scaler,
                                         capacity=ds.num_entries)
        for values, ts in zip(ds.signals, ds.timestamps):
            store.ingest(values, float(ts))
        for h in (1, 4, 8):
            np.testing.assert_array_equal(store.window(h), idx.data[-h:])

    def test_ring_wraparound(self, trained):
        ds = trained.artifacts.dataset
        scaler = trained.artifacts.loaders.scaler
        store = FeatureStore.for_dataset(ds, scaler, capacity=5)
        for values, ts in zip(ds.signals[:12], ds.timestamps[:12]):
            store.ingest(values, float(ts))
        assert store.size == 5 and store.total_ingested == 12
        reference = FeatureStore.for_dataset(ds, scaler, capacity=12)
        for values, ts in zip(ds.signals[:12], ds.timestamps[:12]):
            reference.ingest(values, float(ts))
        np.testing.assert_array_equal(store.window(5), reference.window(5))

    def test_errors(self, trained):
        ds = trained.artifacts.dataset
        scaler = trained.artifacts.loaders.scaler
        store = FeatureStore.for_dataset(ds, scaler, capacity=4)
        with pytest.raises(RuntimeError, match="ingest more history"):
            store.window(1)
        with pytest.raises(ShapeError):
            store.ingest(np.zeros((ds.num_nodes + 1, ds.raw_features)), 0.0)
        from repro.preprocessing.scaler import StandardScaler
        with pytest.raises(ValueError, match="fitted"):
            FeatureStore(StandardScaler(), num_nodes=4, raw_features=1,
                         capacity=4)


class TestMicroBatchQueue:
    def test_coalesces_by_size(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_batch=3, max_wait=1.0, clock=clock)
        for i in range(3):
            q.submit(np.zeros(1))
        assert q.ready() and q.time_until_ready() == 0.0
        batch = q.next_batch()
        assert [r.batch_size for r in batch] == [3, 3, 3]
        assert len(q) == 0 and q.time_until_ready() is None

    def test_coalesces_by_time(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_batch=8, max_wait=0.010, clock=clock)
        q.submit(np.zeros(1))
        assert not q.ready()
        assert q.time_until_ready() == pytest.approx(0.010)
        clock.advance(0.004)
        assert q.time_until_ready() == pytest.approx(0.006)
        clock.advance(0.006)
        assert q.ready()
        assert q.next_batch()[0].batch_size == 1

    def test_deadline_accounting(self, trained, pool):
        svc = serve(trained, max_batch=4, max_wait=0.0,
                    service_time=lambda n: 0.010)
        ok = svc.forecast(pool[0], deadline=svc.clock() + 1.0)
        late = svc.forecast(pool[0], deadline=svc.clock() + 0.001)
        assert not ok.deadline_missed and late.deadline_missed
        assert svc.stats.deadline_misses == 1

    def test_zero_max_wait_is_batch_of_one(self):
        """max_wait=0: every submit is immediately dispatchable — the
        no-coalescing limit of the batching/latency trade-off."""
        clock = ManualClock()
        q = MicroBatchQueue(max_batch=8, max_wait=0.0, clock=clock)
        q.submit(np.zeros(1))
        assert q.ready() and q.time_until_ready() == 0.0
        assert q.next_batch()[0].batch_size == 1
        assert q.time_until_ready() is None

    def test_deadline_expired_at_submit_still_queues(self):
        """A request whose deadline already passed is queued and served
        (and counted as a miss at completion), never silently dropped."""
        clock = ManualClock(start=10.0)
        q = MicroBatchQueue(max_batch=2, max_wait=1.0, clock=clock)
        req = q.submit(np.zeros(1), deadline=5.0)
        assert len(q) == 1
        q.submit(np.zeros(1))
        batch = q.next_batch()
        assert batch[0] is req
        req.completed = clock()
        assert req.deadline_missed

    def test_forced_flush_of_partial_batch(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_batch=8, max_wait=1.0, clock=clock)
        for _ in range(3):
            q.submit(np.zeros(1))
        assert not q.ready() and q.next_batch() == []
        batch = q.next_batch(force=True)
        assert [r.batch_size for r in batch] == [3, 3, 3]
        assert len(q) == 0

    def test_service_stats_count_expired_at_submit(self, trained, pool):
        """ServiceStats.deadline_misses includes requests that were
        already hopeless when submitted."""
        svc = serve(trained, max_batch=4, max_wait=0.002,
                    service_time=lambda n: 0.001)
        svc.submit(pool[0], deadline=svc.clock() - 1.0)   # born expired
        svc.submit(pool[0], deadline=svc.clock() + 10.0)
        done = svc.flush()
        assert [fc.deadline_missed for fc in done] == [True, False]
        assert svc.stats.deadline_misses == 1
        assert svc.stats.requests == 2


class TestServeAPI:
    def test_registry_lists_servers(self):
        assert {"local", "sharded"} <= set(list_servers())

    def test_serve_unknown_server(self, trained):
        with pytest.raises(KeyError, match="unknown server"):
            serve(trained, server="nope")

    def test_serve_rejects_other_types(self):
        with pytest.raises(TypeError, match="checkpoint path"):
            serve(123)

    def test_checkpoint_and_result_agree(self, trained, ckpt, pool):
        """Acceptance: checkpoint -> serve -> query == in-memory model."""
        from_ckpt = serve(ckpt, max_batch=8)
        from_result = serve(trained, max_batch=8)
        a = from_ckpt.forecast(pool[0]).predictions
        b = from_result.forecast(pool[0]).predictions
        np.testing.assert_array_equal(a, b)

    def test_restore_reuses_runner_dataset_cache(self, trained, ckpt):
        """serve(ckpt) right after run(spec) must not regenerate the
        dataset: both go through the runner's dataset cache."""
        from repro.api.serving import restore_checkpoint
        _, _, _, ds = restore_checkpoint(ckpt)
        assert ds is trained.artifacts.dataset

    def test_serve_spec_trains_then_serves(self, pool):
        svc = serve(RunSpec(**SPEC), max_batch=4)
        fc = svc.forecast(pool[0])
        assert fc.predictions.shape == (4, 8)
        assert np.isfinite(fc.predictions).all()

    def test_sharded_serve_from_checkpoint(self, trained, ckpt, pool):
        local = serve(ckpt, max_batch=8)
        sharded = serve(ckpt, server="sharded", num_shards=2, max_batch=8)
        np.testing.assert_array_equal(
            sharded.forecast(pool[0]).predictions,
            local.forecast(pool[0]).predictions)


def synthetic_service(trained, **kw):
    kw.setdefault("max_batch", 8)
    kw.setdefault("max_wait", 0.002)
    return serve(trained, service_time=lambda n: 0.0005 + 0.0001 * n, **kw)


class TestLoadGenerator:
    def test_open_loop_deterministic(self, trained, pool):
        """Acceptance: fixed seed + synthetic service time => identical
        reports, down to the last percentile."""
        reports = []
        for _ in range(2):
            gen = LoadGenerator(synthetic_service(trained), pool, seed=7)
            reports.append(gen.open_loop(requests=150, rate_qps=1500.0))
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_closed_loop_deterministic(self, trained, pool):
        reports = []
        for _ in range(2):
            gen = LoadGenerator(synthetic_service(trained), pool, seed=3)
            reports.append(gen.closed_loop(requests=100, concurrency=8))
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_closed_loop_completes_exactly(self, trained, pool):
        gen = LoadGenerator(synthetic_service(trained), pool, seed=0)
        report = gen.closed_loop(requests=64, concurrency=4)
        assert report.requests == 64
        assert report.qps > 0
        assert 1.0 <= report.mean_batch_size <= 8.0
        assert report.mode == "closed" and report.offered_qps is None

    def test_open_loop_respects_offered_rate(self, trained, pool):
        gen = LoadGenerator(synthetic_service(trained), pool, seed=0)
        report = gen.open_loop(requests=200, rate_qps=800.0,
                               arrival="uniform")
        assert report.requests == 200
        # Served throughput tracks the offered rate when under capacity.
        assert report.qps == pytest.approx(800.0, rel=0.1)

    def test_deadlines_counted(self, trained, pool):
        svc = serve(trained, max_batch=8, max_wait=0.002,
                    service_time=lambda n: 0.005)
        gen = LoadGenerator(svc, pool, seed=0)
        report = gen.open_loop(requests=50, rate_qps=1000.0, deadline=0.004)
        assert report.deadline_misses > 0

    def test_requires_manual_clock(self, trained, pool):
        import time
        svc = serve(trained, clock=time.perf_counter)
        with pytest.raises(TypeError, match="ManualClock"):
            LoadGenerator(svc, pool)

    def test_rejects_bad_pool(self, trained):
        with pytest.raises(ShapeError):
            LoadGenerator(synthetic_service(trained), np.zeros((4, 8, 2)))


class TestServeBenchHarness:
    def test_quick_suite_writes_valid_section(self, tmp_path):
        from benchmarks.serve_bench import (
            collect_serving, diff_serving, merge_into_snapshot,
            validate_serving)
        section = collect_serving(quick=True)
        validate_serving(section)
        target = tmp_path / "BENCH_T.json"
        merge_into_snapshot(section, target)
        merged = __import__("json").loads(target.read_text())
        assert merged["serving"]["scenarios"].keys() == \
            section["scenarios"].keys()
        d = diff_serving(merged, merged)
        assert all(v["qps_speedup"] == 1.0 for v in d.values())
