"""Unit tests for the Tensor autograd core."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, unbroadcast
from repro.autograd.grad_mode import enable_grad, is_grad_enabled

from tests.helpers import check_gradient

RNG = np.random.default_rng(7)


class TestBasics:
    def test_construction_defaults_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_float_dtype_preserved(self):
        t = Tensor(np.ones(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_repr_and_props(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "requires_grad=True" in repr(t)
        assert t.ndim == 2 and t.size == 6 and t.nbytes == 6 * 8

    def test_detach_shares_data(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_requires_grad_error(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_enable_grad_inside_no_grad(self):
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: t + t * 2.0, RNG.standard_normal((3, 4)))

    def test_sub_rsub(self):
        check_gradient(lambda t: (1.0 - t) - t, RNG.standard_normal((2, 5)))

    def test_mul_broadcast(self):
        b = RNG.standard_normal((1, 4))
        check_gradient(lambda t: t * Tensor(b, dtype=np.float64),
                       RNG.standard_normal((3, 4)))

    def test_div(self):
        x = RNG.standard_normal((3, 3)) + 5.0
        check_gradient(lambda t: 2.0 / t + t / 3.0, x)

    def test_neg_pow(self):
        x = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda t: -(t ** 3), x)

    def test_pow_requires_scalar(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            t ** np.ones(2)

    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        (t + t + t).sum().backward()
        np.testing.assert_allclose(t.grad, 3 * np.ones(3))

    def test_comparison_returns_numpy_bool(self):
        t = Tensor(np.array([1.0, 2.0]))
        assert isinstance(t > 1.5, np.ndarray)
        assert (t > 1.5).tolist() == [False, True]


class TestMatmulGradients:
    def test_2d_2d(self):
        w = RNG.standard_normal((4, 5))
        check_gradient(lambda t: t @ Tensor(w, dtype=np.float64),
                       RNG.standard_normal((3, 4)))

    def test_batched(self):
        w = RNG.standard_normal((2, 4, 5))
        check_gradient(lambda t: t @ Tensor(w, dtype=np.float64),
                       RNG.standard_normal((2, 3, 4)))

    def test_broadcast_batched_weight_grad(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)), dtype=np.float64)
        w = Tensor(RNG.standard_normal((4, 5)), requires_grad=True,
                   dtype=np.float64)
        (x @ w).sum().backward()
        expected = sum(x.data[i].T @ np.ones((3, 5)) for i in range(2))
        np.testing.assert_allclose(w.grad, expected, rtol=1e-6)

    def test_vec_mat(self):
        w = RNG.standard_normal((4, 5))
        check_gradient(lambda t: t @ Tensor(w, dtype=np.float64),
                       RNG.standard_normal(4))

    def test_mat_vec(self):
        v = RNG.standard_normal(4)
        check_gradient(lambda t: t @ Tensor(v, dtype=np.float64),
                       RNG.standard_normal((3, 4)))

    def test_dot(self):
        v = RNG.standard_normal(6)
        check_gradient(lambda t: t @ Tensor(v, dtype=np.float64),
                       RNG.standard_normal(6))


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda t: t.reshape(6, 2) * 2.0,
                       RNG.standard_normal((3, 4)))

    def test_transpose_default(self):
        check_gradient(lambda t: t.T @ Tensor(np.ones((3, 2)), dtype=np.float64),
                       RNG.standard_normal((3, 4)))

    def test_transpose_axes(self):
        check_gradient(lambda t: t.transpose(2, 0, 1).sum(axis=0),
                       RNG.standard_normal((2, 3, 4)))

    def test_swapaxes(self):
        t = Tensor(RNG.standard_normal((2, 3, 4)))
        assert t.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_slice(self):
        check_gradient(lambda t: t[1:3] * 3.0, RNG.standard_normal((5, 2)))

    def test_getitem_fancy_accumulates_duplicates(self):
        t = Tensor(np.zeros(4), requires_grad=True, dtype=np.float64)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=1), RNG.standard_normal((3, 4)))

    def test_sum_keepdims(self):
        check_gradient(lambda t: t * t.sum(axis=-1, keepdims=True),
                       RNG.standard_normal((3, 4)))

    def test_mean(self):
        check_gradient(lambda t: t.mean(axis=0) * 5.0,
                       RNG.standard_normal((4, 3)))

    def test_mean_all(self):
        check_gradient(lambda t: t.mean(), RNG.standard_normal((3, 4)))

    def test_max_grad_distributes_at_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True,
                   dtype=np.float64)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestNonlinearities:
    def test_exp_log(self):
        x = np.abs(RNG.standard_normal((3, 3))) + 0.5
        check_gradient(lambda t: (t.exp() + t.log()), x)

    def test_sqrt(self):
        x = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda t: t.sqrt(), x)

    def test_tanh_sigmoid(self):
        check_gradient(lambda t: t.tanh() * t.sigmoid(),
                       RNG.standard_normal((3, 4)))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        s = t.sigmoid().data
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s, [0.0, 0.5, 1.0], atol=1e-6)

    def test_relu(self):
        x = RNG.standard_normal((5, 5))
        x[np.abs(x) < 0.1] = 0.5  # avoid the kink
        check_gradient(lambda t: t.relu(), x)

    def test_abs(self):
        x = RNG.standard_normal((4, 4))
        x[np.abs(x) < 0.1] = 0.7
        check_gradient(lambda t: t.abs(), x)

    def test_astype_roundtrip_grad(self):
        t = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        t.astype(np.float32).sum().backward()
        assert t.grad.dtype == np.float64
        np.testing.assert_allclose(t.grad, np.ones(3))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_prepended_axes(self):
        g = np.ones((2, 3, 4))
        np.testing.assert_allclose(unbroadcast(g, (3, 4)), 2 * np.ones((3, 4)))

    def test_stretched_axes(self):
        g = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(g, (3, 1)), 4 * np.ones((3, 1)))

    def test_incompatible_raises(self):
        from repro.utils.errors import ShapeError
        with pytest.raises(ShapeError):
            unbroadcast(np.ones((3, 4)), (2, 4))


class TestGraphMemoryRelease:
    def test_interior_nodes_freed_after_backward(self):
        t = Tensor(np.ones(3), requires_grad=True)
        mid = t * 2
        out = mid.sum()
        out.backward()
        assert mid.grad is None          # interior grad released
        assert mid._parents == ()
        assert t.grad is not None        # leaf grad kept
