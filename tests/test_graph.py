"""Unit tests for graph construction, supports and partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    SensorGraph,
    chebyshev_supports,
    dual_random_walk_supports,
    gaussian_kernel_adjacency,
    partition_graph,
    random_sensor_network,
    random_walk_matrix,
    scaled_laplacian,
    symmetric_normalized_adjacency,
)
from repro.graph.adjacency import pairwise_distances
from repro.graph.partition import edge_cut
from repro.utils.errors import ShapeError


class TestAdjacency:
    def test_pairwise_distances_symmetric_zero_diag(self):
        coords = np.random.default_rng(0).random((10, 2))
        d = pairwise_distances(coords)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_gaussian_kernel_thresholds(self):
        d = pairwise_distances(np.random.default_rng(1).random((20, 2)) * 10)
        w = gaussian_kernel_adjacency(d, threshold=0.5)
        dense = w.toarray()
        off = dense[~np.eye(20, dtype=bool)]
        assert np.all((off == 0) | (off >= 0.5))
        np.testing.assert_allclose(np.diag(dense), 1.0)

    def test_gaussian_kernel_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            gaussian_kernel_adjacency(np.zeros((3, 4)))

    def test_gaussian_kernel_degenerate_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(np.zeros((3, 3)))

    def test_sensor_graph_shape_check(self):
        with pytest.raises(ShapeError):
            SensorGraph(coords=np.zeros((5, 2)),
                        weights=sp.eye(4, format="csr"))


class TestRandomSensorNetwork:
    def test_deterministic_in_seed(self):
        a = random_sensor_network(50, seed=9)
        b = random_sensor_network(50, seed=9)
        np.testing.assert_array_equal(a.coords, b.coords)
        assert (a.weights != b.weights).nnz == 0

    def test_different_seeds_differ(self):
        a = random_sensor_network(50, seed=1)
        b = random_sensor_network(50, seed=2)
        assert not np.array_equal(a.coords, b.coords)

    def test_size_and_sparsity(self):
        g = random_sensor_network(200, seed=0)
        assert g.num_nodes == 200
        assert 0 < g.density() < 0.3  # sparse, corridor-like

    def test_min_nodes(self):
        with pytest.raises(ValueError):
            random_sensor_network(1)

    @pytest.mark.parametrize("n", [10, 64, 150])
    def test_every_node_connected(self, n):
        g = random_sensor_network(n, seed=4)
        deg = np.asarray(g.weights.sum(axis=1)).ravel()
        assert np.all(deg > 0)


class TestSupports:
    def _graph(self, n=30):
        return random_sensor_network(n, seed=5).weights

    def test_random_walk_rows_sum_to_one(self):
        P = random_walk_matrix(self._graph())
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0,
                                   rtol=1e-9)

    def test_random_walk_zero_degree_row(self):
        w = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        P = random_walk_matrix(w)
        np.testing.assert_allclose(P.toarray()[1], 0.0)

    def test_dual_supports_are_forward_and_backward(self):
        w = self._graph()
        fwd, bwd = dual_random_walk_supports(w)
        np.testing.assert_allclose(np.asarray(fwd.sum(axis=1)).ravel(), 1.0,
                                   rtol=1e-9)
        np.testing.assert_allclose(np.asarray(bwd.sum(axis=1)).ravel(), 1.0,
                                   rtol=1e-9)
        # Backward support is the row-normalised transpose.
        expected = random_walk_matrix(w.T.tocsr())
        assert (bwd != expected).nnz == 0

    def test_symmetric_normalized_eigen_range(self):
        A = symmetric_normalized_adjacency(self._graph())
        vals = np.linalg.eigvalsh(A.toarray())
        assert vals.max() <= 1.0 + 1e-8
        assert vals.min() >= -1.0 - 1e-8

    def test_scaled_laplacian_spectrum_in_unit_ball(self):
        L = scaled_laplacian(self._graph())
        vals = np.linalg.eigvalsh(L.toarray())
        assert vals.max() <= 1.0 + 1e-6
        assert vals.min() >= -1.0 - 1e-6

    def test_chebyshev_recurrence(self):
        w = self._graph(20)
        supports = chebyshev_supports(w, 4)
        assert len(supports) == 4
        L = scaled_laplacian(w).toarray()
        t2 = supports[2].toarray()
        np.testing.assert_allclose(t2, 2 * L @ L - np.eye(20), rtol=1e-6,
                                   atol=1e-8)

    def test_chebyshev_k1_identity(self):
        sups = chebyshev_supports(self._graph(10), 1)
        assert len(sups) == 1
        np.testing.assert_allclose(sups[0].toarray(), np.eye(10))

    def test_chebyshev_invalid_k(self):
        with pytest.raises(ValueError):
            chebyshev_supports(self._graph(10), 0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            random_walk_matrix(sp.random(3, 4, format="csr"))


class TestPartition:
    def test_balanced_parts(self):
        g = random_sensor_network(64, seed=6)
        assignment = partition_graph(g.weights, 4)
        counts = np.bincount(assignment, minlength=4)
        assert counts.max() - counts.min() <= 2

    def test_all_parts_used(self):
        g = random_sensor_network(40, seed=7)
        assignment = partition_graph(g.weights, 8)
        assert set(assignment) == set(range(8))

    def test_single_part(self):
        g = random_sensor_network(10, seed=8)
        assert np.all(partition_graph(g.weights, 1) == 0)

    def test_non_power_of_two_rejected(self):
        g = random_sensor_network(10, seed=8)
        with pytest.raises(ValueError):
            partition_graph(g.weights, 3)

    def test_too_many_parts_rejected(self):
        g = random_sensor_network(4, seed=8)
        with pytest.raises(ValueError):
            partition_graph(g.weights, 8)

    def test_edge_cut_less_than_total(self):
        g = random_sensor_network(64, seed=9)
        assignment = partition_graph(g.weights, 2)
        cut = edge_cut(g.weights, assignment)
        assert 0 <= cut < g.weights.nnz

    def test_spectral_beats_random_split(self):
        g = random_sensor_network(100, seed=10)
        spectral = edge_cut(g.weights, partition_graph(g.weights, 2))
        rng = np.random.default_rng(0)
        random_cuts = []
        for _ in range(5):
            assign = rng.permutation(np.repeat([0, 1], 50))
            random_cuts.append(edge_cut(g.weights, assign))
        assert spectral < np.mean(random_cuts)
