"""Unit tests for the simulated communicator."""

import numpy as np
import pytest

from repro.cluster import ClusterTopology, CommCostModel
from repro.distributed import SimCommunicator
from repro.utils.errors import CommunicatorError


class TestAllreduce:
    def test_mean_semantics(self):
        comm = SimCommunicator(4)
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(arrays, op="mean")
        for o in out:
            np.testing.assert_allclose(o, 1.5)

    def test_sum_and_max(self):
        comm = SimCommunicator(3)
        arrays = [np.array([1.0, -2.0]) * (r + 1) for r in range(3)]
        np.testing.assert_allclose(comm.allreduce(arrays, op="sum")[0],
                                   [6.0, -12.0])
        np.testing.assert_allclose(comm.allreduce(arrays, op="max")[0],
                                   [3.0, -2.0])

    def test_results_are_independent_copies(self):
        comm = SimCommunicator(2)
        out = comm.allreduce([np.zeros(2), np.ones(2)])
        out[0][0] = 99.0
        assert out[1][0] != 99.0

    def test_dtype_preserved(self):
        comm = SimCommunicator(2)
        out = comm.allreduce([np.zeros(2, np.float32), np.ones(2, np.float32)])
        assert out[0].dtype == np.float32

    def test_shape_mismatch_rejected(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError):
            comm.allreduce([np.zeros(2), np.zeros(3)])

    def test_wrong_list_length_rejected(self):
        comm = SimCommunicator(3)
        with pytest.raises(CommunicatorError):
            comm.allreduce([np.zeros(2)] * 2)

    def test_unsupported_op(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError):
            comm.allreduce([np.zeros(2)] * 2, op="prod")


class TestClockSemantics:
    def test_collective_synchronizes_to_slowest(self):
        comm = SimCommunicator(3)
        comm.advance_compute(0, 1.0)
        comm.advance_compute(1, 5.0)  # straggler
        comm.allreduce([np.zeros(1)] * 3)
        times = [c.now for c in comm.clocks]
        assert len(set(times)) == 1
        assert times[0] > 5.0

    def test_comm_time_includes_waiting(self):
        comm = SimCommunicator(2)
        comm.advance_compute(0, 10.0)
        comm.allreduce([np.zeros(1)] * 2)
        # Rank 1 waited ~10 s for rank 0.
        assert comm.comm_time[1] > 9.9
        assert comm.comm_time[0] < 1.0

    def test_compute_attribution(self):
        comm = SimCommunicator(2)
        comm.advance_compute(0, 2.5)
        assert comm.compute_time[0] == 2.5
        assert comm.compute_time[1] == 0.0

    def test_now_is_max_clock(self):
        comm = SimCommunicator(2)
        comm.advance_compute(1, 7.0)
        assert comm.now == 7.0

    def test_breakdown_keys(self):
        comm = SimCommunicator(2)
        b = comm.elapsed_breakdown()
        assert set(b) == {"compute", "comm", "wall"}


class TestDataPlane:
    def test_fetch_advances_both_endpoints(self):
        comm = SimCommunicator(4)
        comm.fetch(0, 3, 10**8)
        assert comm.clocks[0].now == comm.clocks[3].now > 0
        assert comm.clocks[1].now == 0.0

    def test_fetch_self_is_free(self):
        comm = SimCommunicator(2)
        comm.fetch(1, 1, 10**9)
        assert comm.now == 0.0
        assert comm.stats.total_bytes() == 0

    def test_fetch_all_contended(self):
        comm = SimCommunicator(8)
        comm.fetch_all(100e9, messages_per_rank=1)
        expected = comm.cost.contended_fetch_time(100e9, 1)
        assert comm.now == pytest.approx(expected)

    def test_byte_accounting_by_category(self):
        comm = SimCommunicator(2)
        comm.allreduce([np.zeros(100)] * 2, category="gradient")
        comm.fetch(0, 1, 500, category="data")
        assert comm.stats.bytes_by_category["gradient"] == 800
        assert comm.stats.bytes_by_category["data"] == 500
        assert comm.stats.ops == 2

    def test_broadcast(self):
        comm = SimCommunicator(4)
        out = comm.broadcast(np.arange(5), root=2)
        assert len(out) == 4
        for o in out:
            np.testing.assert_array_equal(o, np.arange(5))

    def test_allgather(self):
        comm = SimCommunicator(3)
        arrays = [np.full(2, r) for r in range(3)]
        out = comm.allgather(arrays)
        assert len(out) == 3 and len(out[0]) == 3
        np.testing.assert_array_equal(out[1][2], [2, 2])

    def test_barrier_synchronizes(self):
        comm = SimCommunicator(2)
        comm.advance_compute(0, 3.0)
        comm.barrier()
        assert comm.clocks[1].now >= 3.0

    def test_invalid_rank(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError):
            comm.fetch(0, 5, 100)
        with pytest.raises(CommunicatorError):
            comm.advance_compute(-1, 1.0)

    def test_mismatched_cost_model_rejected(self):
        cm = CommCostModel(ClusterTopology(4))
        with pytest.raises(CommunicatorError):
            SimCommunicator(8, cm)


class TestGradientAveragingEquivalence:
    """DDP invariant: allreduce(mean) of per-rank grads equals the grad of
    the concatenated global batch."""

    def test_mean_of_microbatch_grads(self):
        rng = np.random.default_rng(0)
        # Per-rank gradients of a linear model on disjoint microbatches.
        world = 4
        grads = [rng.standard_normal(10) for _ in range(world)]
        comm = SimCommunicator(world)
        reduced = comm.allreduce(grads, op="mean")[0]
        np.testing.assert_allclose(reduced, np.mean(grads, axis=0), rtol=1e-12)
