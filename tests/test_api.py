"""Tests for the declarative ``repro.api`` pipeline: registries, RunSpec
validation/round-tripping, the BatchSource protocol, and the run() executor."""

import numpy as np
import pytest

from repro import api
from repro.api import (
    BATCHINGS,
    DATASETS,
    MODELS,
    OPTIMIZERS,
    BatchSource,
    Registry,
    RunSpec,
    Scale,
    ensure_batch_source,
    run,
)

#: Sub-tiny preset so the executor smoke tests stay fast; registered so
#: specs can name it.
UNIT = Scale("unit-test", nodes=6, entries=120, epochs=2, hidden_dim=4,
             batch_size=8, horizon=4)
api.resolve_name(UNIT)


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")

        @reg.register("a")
        def build():
            return 1

        assert reg.get("a") is build
        assert "a" in reg and reg.names() == ["a"] and len(reg) == 1

    def test_unknown_key_lists_alternatives(self):
        reg = Registry("thing")
        reg.register("known", object())
        with pytest.raises(KeyError, match="unknown thing 'nope'.*known"):
            reg.get("nope")

    def test_duplicate_rejected_unless_overwrite(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            Registry("thing").register("", 1)

    def test_default_entries_present(self):
        assert "pgt-dcrnn" in api.list_models()
        assert "st-llm" in api.list_models()
        assert api.list_batchings() == ["base", "index", "index-f16"]
        assert "pems-bay" in api.list_datasets()
        assert set(api.list_optimizers()) >= {"adam", "sgd"}

    def test_registries_back_the_listings(self):
        assert api.list_models() == MODELS.names()
        assert api.list_batchings() == BATCHINGS.names()
        assert api.list_datasets() == DATASETS.names()
        assert api.list_optimizers() == OPTIMIZERS.names()


class TestScaleResolution:
    def test_adhoc_names_are_last_write_wins(self):
        first = Scale("rerun-me", nodes=6, entries=120, epochs=1,
                      hidden_dim=4, batch_size=8, horizon=4)
        tweaked = Scale("rerun-me", nodes=6, entries=120, epochs=2,
                        hidden_dim=4, batch_size=8, horizon=4)
        assert api.resolve_name(first) == "rerun-me"
        assert api.resolve_name(tweaked) == "rerun-me"  # rerun workflows
        assert api.get_scale("rerun-me") == tweaked

    def test_builtin_names_are_immutable(self):
        impostor = Scale("tiny", nodes=64, entries=4000, epochs=30,
                         hidden_dim=32, batch_size=32)
        with pytest.raises(ValueError, match="builtin preset"):
            api.resolve_name(impostor)
        assert api.get_scale("tiny").nodes == 8

    def test_resolving_builtin_itself_is_fine(self):
        assert api.resolve_name(api.TINY) == "tiny"


class TestRunSpec:
    def test_dict_round_trip(self):
        spec = RunSpec(dataset="pems-bay", model="a3tgcn", batching="base",
                       scale="small", seed=3, lr=0.005,
                       strategy="dist-index", world_size=4, shuffle="batch",
                       epochs=7)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(KeyError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"dataset": "pems-bay", "bogus": 1})

    def test_frozen(self):
        spec = RunSpec(dataset="pems-bay")
        with pytest.raises(AttributeError):
            spec.model = "tgcn"

    def test_replace_revalidates(self):
        spec = RunSpec(dataset="pems-bay")
        assert spec.replace(model="tgcn").model == "tgcn"
        with pytest.raises(KeyError):
            spec.replace(model="resnet")

    @pytest.mark.parametrize("bad", [
        dict(dataset="no-such-data"),
        dict(dataset="pems-bay", model="no-such-model"),
        dict(dataset="pems-bay", batching="gpu"),
        dict(dataset="pems-bay", optimizer="lion"),
        dict(dataset="pems-bay", scale="huge"),
    ])
    def test_unknown_registry_keys_raise(self, bad):
        with pytest.raises(KeyError):
            RunSpec(**bad)

    @pytest.mark.parametrize("bad", [
        dict(dataset="pems-bay", strategy="pipeline"),
        dict(dataset="pems-bay", world_size=0),
        dict(dataset="pems-bay", strategy="single", world_size=2),
        dict(dataset="pems-bay", shuffle="sorted"),
        dict(dataset="pems-bay", epochs=0),
        dict(dataset="pems-bay", lr=-1.0),
    ])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(ValueError):
            RunSpec(**bad)


class TestBatchSourceProtocol:
    def test_loaders_satisfy_protocol(self):
        spec = RunSpec(dataset="pems-bay")
        result = run(spec, scale=UNIT)
        for loader in (result.artifacts.loaders.train,
                       result.artifacts.loaders.val,
                       result.artifacts.loaders.test):
            assert isinstance(loader, BatchSource)
            assert ensure_batch_source(loader) is loader

    def test_non_source_rejected_with_missing_attrs(self):
        with pytest.raises(TypeError, match="batch_at"):
            ensure_batch_source(object())

    def test_trainer_validates_loaders(self):
        from repro.training import Trainer
        with pytest.raises(TypeError, match="BatchSource"):
            Trainer(None, None, train_loader=[1, 2, 3])


class TestRun:
    @pytest.fixture(scope="class")
    def results(self):
        """Base and index runs of the same scenario."""
        out = {}
        for mode in ("base", "index"):
            spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                           batching=mode, scale="unit-test", seed=11)
            out[mode] = run(spec, scale=UNIT)
        return out

    def test_requires_runspec(self):
        with pytest.raises(TypeError, match="RunSpec"):
            run({"dataset": "pems-bay"})

    def test_result_shape(self, results):
        r = results["index"]
        assert r.epochs_run == UNIT.epochs
        assert len(r.val_curve) == len(r.train_curve) == r.epochs_run
        assert np.isfinite(r.best_val_mae)
        assert r.best_val_mae == min(r.val_curve)
        assert r.final_train_loss == r.train_curve[-1]
        assert r.runtime_seconds > 0
        assert r.peak_bytes > 0
        assert r.to_dict()["spec"]["batching"] == "index"
        assert "artifacts" not in r.to_dict()

    def test_base_and_index_modes_identical_accuracy(self, results):
        """The paper's core equivalence: both modes consume the same
        snapshots, so validation curves match exactly."""
        np.testing.assert_allclose(results["base"].val_curve,
                                   results["index"].val_curve, rtol=1e-9)

    def test_index_mode_uses_less_memory(self, results):
        assert results["index"].peak_bytes < results["base"].peak_bytes

    def test_deterministic_in_seed(self, results):
        spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                       batching="index", scale="unit-test", seed=11)
        again = run(spec, scale=UNIT)
        np.testing.assert_array_equal(again.val_curve,
                                      results["index"].val_curve)

    def test_distributed_strategy_runs(self):
        spec = RunSpec(dataset="pems-bay", strategy="dist-index",
                       world_size=2, scale="unit-test")
        result = run(spec, scale=UNIT)
        assert np.isfinite(result.best_val_mae)
        # Dist-index shuffling is communication-free: gradient traffic only.
        stats = result.artifacts.trainer.comm.stats.bytes_by_category
        assert "data" not in stats and stats["gradient"] > 0

    def test_acceptance_example(self):
        """The ISSUE's acceptance line, verbatim keys, at tiny scale."""
        result = run(RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                             batching="index", scale="tiny"))
        assert np.isfinite(result.best_val_mae)
        assert result.epochs_run == 4
