"""Tests for the true-replica DDP verification mode."""

import numpy as np
import pytest

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.preprocessing import IndexDataset
from repro.training.replicated import ReplicatedDDPTrainer
from repro.utils.errors import CommunicatorError


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("pems-bay", nodes=8, entries=200, seed=9)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)

    def factory():
        return PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=42)

    return idx, factory


class TestReplicatedDDP:
    def test_replicas_stay_in_sync_through_training(self, setup):
        idx, factory = setup
        trainer = ReplicatedDDPTrainer(
            factory, SimCommunicator(4),
            IndexBatchLoader(idx, "train", 8), seed=0, sync_check=True)
        loss = trainer.train_epoch(0)
        assert np.isfinite(loss)
        trainer.assert_replicas_in_sync()  # explicit re-check

    def test_matches_shared_model_ddp(self, setup):
        """The literal replicated implementation must produce the same
        parameters as the shared-model DDPTrainer fast path."""
        from repro.optim import Adam
        from repro.training import DDPTrainer

        idx, factory = setup
        rep = ReplicatedDDPTrainer(
            factory, SimCommunicator(4),
            IndexBatchLoader(idx, "train", 8), lr=0.01, seed=11,
            sync_check=False)
        rep.train_epoch(0)

        shared_model = factory()
        shared = DDPTrainer(
            shared_model, Adam(shared_model.parameters(), lr=0.01),
            SimCommunicator(4), IndexBatchLoader(idx, "train", 8),
            shuffle="global", seed=11, clip_norm=0.0)
        shared.train_epoch(0)

        ref = rep.replicas[0].state_dict()
        for name, arr in shared_model.state_dict().items():
            np.testing.assert_allclose(arr, ref[name], rtol=1e-5, atol=1e-7,
                                       err_msg=name)

    def test_divergent_factory_rejected(self, setup):
        idx, _ = setup
        ds = load_dataset("pems-bay", nodes=8, entries=200, seed=9)
        supports = dual_random_walk_supports(ds.graph.weights)
        counter = {"n": 0}

        def bad_factory():
            counter["n"] += 1
            return PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=counter["n"])

        with pytest.raises(CommunicatorError):
            ReplicatedDDPTrainer(bad_factory, SimCommunicator(2),
                                 IndexBatchLoader(idx, "train", 8))

    def test_sync_assert_catches_drift(self, setup):
        idx, factory = setup
        trainer = ReplicatedDDPTrainer(
            factory, SimCommunicator(2),
            IndexBatchLoader(idx, "train", 8), sync_check=False)
        trainer.replicas[1].proj.weight.data += 1.0  # inject drift
        with pytest.raises(CommunicatorError):
            trainer.assert_replicas_in_sync()
