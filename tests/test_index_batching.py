"""Unit tests for index-batching — the paper's core contribution."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.hardware.memory import MemorySpace
from repro.preprocessing import (
    IndexDataset,
    num_snapshots,
    standard_preprocess,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("pems-bay", nodes=10, entries=200, seed=2)


@pytest.fixture(scope="module")
def index_ds(dataset):
    return IndexDataset.from_dataset(dataset)


class TestConstruction:
    def test_counts(self, dataset, index_ds):
        assert index_ds.num_snapshots == num_snapshots(200, 12)
        assert index_ds.num_nodes == 10
        assert index_ds.num_features == 2  # time-of-day appended

    def test_split_sizes_follow_70_10_20(self, index_ds):
        n = index_ds.num_snapshots
        assert len(index_ds.split_starts("train")) == round(n * 0.7)
        assert (len(index_ds.split_starts("train"))
                + len(index_ds.split_starts("val"))
                + len(index_ds.split_starts("test"))) == n

    def test_splits_disjoint_and_ordered(self, index_ds):
        tr = index_ds.split_starts("train")
        va = index_ds.split_starts("val")
        te = index_ds.split_starts("test")
        assert tr[-1] < va[0] <= va[-1] < te[0]

    def test_unknown_split(self, index_ds):
        with pytest.raises(KeyError):
            index_ds.split_starts("validation")

    def test_resident_bytes_matches_eq2(self, dataset, index_ds):
        from repro.preprocessing import index_nbytes
        expected = index_nbytes(200, 10, 2, 12)
        assert index_ds.resident_nbytes == expected


class TestZeroCopy:
    def test_snapshot_views_share_base(self, index_ds):
        x, y = index_ds.snapshot(3)
        assert x.base is index_ds.data
        assert y.base is index_ds.data

    def test_snapshot_allocates_nothing(self, index_ds):
        x, y = index_ds.snapshot(0)
        assert x.flags.owndata is False and y.flags.owndata is False

    def test_snapshot_window_semantics(self, index_ds):
        h = index_ds.horizon
        x, y = index_ds.snapshot(7)
        np.testing.assert_array_equal(x, index_ds.data[7:7 + h])
        np.testing.assert_array_equal(y, index_ds.data[7 + h:7 + 2 * h])

    def test_out_of_range_snapshot(self, index_ds):
        with pytest.raises(IndexError):
            index_ds.snapshot(index_ds.num_snapshots)
        with pytest.raises(IndexError):
            index_ds.snapshot(-1)


class TestEquivalenceWithStandard:
    """Index-batching must feed the model the exact same snapshots."""

    @pytest.mark.parametrize("split", ["train", "val", "test"])
    def test_bitwise_equal_splits(self, dataset, index_ds, split):
        std = standard_preprocess(dataset)
        xs, ys = std.split(split)
        xi, yi = index_ds.materialize_split(split)
        np.testing.assert_array_equal(xs, xi)
        np.testing.assert_array_equal(ys, yi)

    def test_scaler_statistics_identical(self, dataset, index_ds):
        std = standard_preprocess(dataset)
        np.testing.assert_array_equal(std.scaler.mean_, index_ds.scaler.mean_)
        np.testing.assert_array_equal(std.scaler.std_, index_ds.scaler.std_)

    @pytest.mark.parametrize("horizon", [1, 3, 12, 24])
    def test_equivalence_across_horizons(self, dataset, horizon):
        std = standard_preprocess(dataset, horizon=horizon)
        idx = IndexDataset.from_dataset(dataset, horizon=horizon)
        xs, ys = std.split("train")
        xi, yi = idx.materialize_split("train")
        np.testing.assert_array_equal(xs, xi)
        np.testing.assert_array_equal(ys, yi)


class TestGather:
    def test_gather_shapes(self, index_ds):
        x, y = index_ds.gather(np.array([0, 5, 9]))
        h, n, f = index_ds.horizon, index_ds.num_nodes, index_ds.num_features
        assert x.shape == (3, h, n, f) and y.shape == (3, h, n, f)

    def test_gather_matches_snapshots(self, index_ds):
        starts = np.array([2, 17, 40])
        x, y = index_ds.gather(starts)
        for i, s in enumerate(starts):
            xs, ys = index_ds.snapshot(int(s))
            np.testing.assert_array_equal(x[i], xs)
            np.testing.assert_array_equal(y[i], ys)

    def test_gather_charges_transient_batch(self, dataset):
        space = MemorySpace("gpu")
        idx = IndexDataset.from_dataset(dataset)
        before_peak = space.peak
        x, y = idx.gather(np.arange(4), space=space)
        assert space.in_use == 0          # batch charged then released
        assert space.peak >= before_peak + x.nbytes + y.nbytes


class TestMemoryCharging:
    def test_resident_is_single_copy_plus_indices(self, dataset):
        space = MemorySpace("host")
        idx = IndexDataset.from_dataset(dataset, space=space)
        assert space.in_use == idx.data.nbytes + idx.starts.nbytes

    def test_peak_includes_spike(self, dataset):
        """The transient spike: raw + augmented + standardize scratch."""
        space = MemorySpace("host")
        idx = IndexDataset.from_dataset(dataset, space=space)
        expected_peak = (dataset.signals.nbytes + 2 * idx.data.nbytes
                         + idx.starts.nbytes)
        assert space.peak == expected_peak

    def test_release(self, dataset):
        space = MemorySpace("host")
        idx = IndexDataset.from_dataset(dataset, space=space)
        idx.release(space)
        assert space.in_use == 0

    def test_index_far_smaller_than_standard(self, dataset):
        """The headline claim at small scale: index << standard bytes."""
        s1 = MemorySpace("std")
        s2 = MemorySpace("idx")
        standard_preprocess(dataset, space=s1)
        IndexDataset.from_dataset(dataset, space=s2)
        # Standard pipeline resident (split copies) dwarfs index resident.
        assert s1.in_use > 5 * s2.in_use
        assert s1.peak > 3 * s2.peak
