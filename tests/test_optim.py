"""Unit tests for optimizers, schedules and losses."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    Adam,
    ConstantLR,
    LinearWarmupLR,
    MultiStepLR,
    clip_grad_norm,
    l1_loss,
    masked_mae_loss,
    mse_loss,
    scale_lr_linear,
)


def _quadratic_params():
    return [Parameter(np.array([5.0, -3.0], dtype=np.float32))]


def _quadratic_step(p):
    loss = (p * p).sum()
    loss.backward()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        params = _quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            _quadratic_step(params[0])
            opt.step()
        assert np.abs(params[0].data).max() < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            params = _quadratic_params()
            opt = SGD(params, lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                _quadratic_step(params[0])
                opt.step()
            return np.abs(params[0].data).max()
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: no crash, no change
        np.testing.assert_array_equal(p.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        params = _quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_step(params[0])
            opt.step()
        assert np.abs(params[0].data).max() < 1e-2

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # With bias correction the first step is ~lr regardless of betas.
        assert abs((1.0 - p.data[0]) - 0.1) < 1e-3

    def test_state_nbytes_counts_moments(self):
        p = Parameter(np.ones(10, dtype=np.float32))
        opt = Adam([p], lr=0.1)
        assert opt.state_nbytes() == 0
        p.grad = np.ones(10, dtype=np.float32)
        opt.step()
        assert opt.state_nbytes() == 2 * p.nbytes


class TestClipGradNorm:
    def test_scales_down(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4, dtype=np.float32) * 10.0
        norm = clip_grad_norm([p], 5.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(5.0, rel=1e-5)

    def test_leaves_small_grads(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4, dtype=np.float32) * 0.1
        clip_grad_norm([p], 5.0)
        np.testing.assert_allclose(p.grad, 0.1, rtol=1e-6)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], 5.0) == 0.0


class TestSchedules:
    def _opt(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_constant(self):
        opt = self._opt(0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.5

    def test_multistep(self):
        opt = self._opt(1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_linear_warmup_reaches_target(self):
        opt = self._opt(0.1)
        sched = LinearWarmupLR(opt, warmup_epochs=5, target_lr=0.8)
        assert opt.lr == pytest.approx(0.1)  # starts at base
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.8)

    def test_scale_lr_linear(self):
        assert scale_lr_linear(0.01, 8) == pytest.approx(0.08)
        assert scale_lr_linear(0.01, 8, base_world_size=4) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            scale_lr_linear(0.01, 0)


class TestLosses:
    def test_l1(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert l1_loss(pred, np.array([0.0, 4.0])).item() == pytest.approx(1.5)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 3.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(5.0)

    def test_masked_mae_ignores_nulls(self):
        pred = Tensor(np.array([1.0, 1.0, 1.0, 1.0]))
        target = np.array([0.0, 0.0, 2.0, 2.0])  # half missing
        loss = masked_mae_loss(pred, target, null_value=0.0)
        assert loss.item() == pytest.approx(1.0)

    def test_masked_mae_all_missing(self):
        pred = Tensor(np.ones(3), requires_grad=True)
        loss = masked_mae_loss(pred, np.zeros(3))
        assert loss.item() == 0.0
        loss.backward()  # must be differentiable even when fully masked

    def test_losses_backprop(self):
        for fn in (l1_loss, mse_loss, masked_mae_loss):
            p = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            fn(p, np.array([0.5, 2.5])).backward()
            assert p.grad is not None
