"""Parity and buffer-reuse tests for the allocation-free training hot path.

Three guarantees are pinned here:

1. **Numerical parity** — the fused kernels (DiffusionConv, gru_update),
   the in-place optimizers and the buffer-reusing loaders compute the same
   values as their naive/allocating reference formulations, and standard
   vs index batching produce identical fixed-seed training curves.
2. **Buffer identity** — loader batches, parameter gradients and optimizer
   scratch really are the *same arrays* step after step (``a is b``), so
   the steady-state loop is allocation-free by construction, not by luck.
3. **Gradient-pool hygiene** — interior gradients recycle through
   ``GRAD_POOL`` without corrupting results.
"""

import math

import numpy as np
import pytest

from repro.autograd import GRAD_POOL, Tensor, functional as F
from repro.batching.loaders import IndexBatchLoader, StandardBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports, random_sensor_network
from repro.models.dconv import DiffusionConv
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, clip_grad_norm
from repro.preprocessing import IndexDataset, standard_preprocess


# ---------------------------------------------------------------------------
# Fused kernels vs naive reference
# ---------------------------------------------------------------------------
class TestDiffusionConvFused:
    @pytest.fixture(scope="class")
    def supports(self):
        g = random_sensor_network(12, seed=2)
        return dual_random_walk_supports(g.weights)

    @pytest.mark.parametrize("dtype,tol", [(np.float32, 1e-5),
                                           (np.float64, 1e-12)])
    @pytest.mark.parametrize("k_hops", [0, 1, 2, 3])
    def test_matches_naive(self, supports, dtype, tol, k_hops):
        fused = DiffusionConv(supports, 5, 7, k_hops=k_hops, fused=True)
        naive = DiffusionConv(supports, 5, 7, k_hops=k_hops, fused=False)
        x = np.random.default_rng(0).standard_normal((4, 12, 5)).astype(dtype)
        xf = Tensor(x.copy(), requires_grad=True)
        xn = Tensor(x.copy(), requires_grad=True)
        of, on = fused(xf), naive(xn)
        np.testing.assert_allclose(of.data, on.data, atol=tol)
        g = np.random.default_rng(1).standard_normal(of.shape).astype(dtype)
        of.backward(g.copy())
        on.backward(g.copy())
        np.testing.assert_allclose(xf.grad, xn.grad, atol=tol)
        # Parameter grads are float32 regardless of compute dtype.
        np.testing.assert_allclose(fused.weight.grad, naive.weight.grad,
                                   rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(fused.bias.grad, naive.bias.grad,
                                   rtol=1e-4, atol=1e-4)

    def test_scratch_reused_across_calls(self, supports):
        conv = DiffusionConv(supports, 5, 7, k_hops=2, fused=True)
        x = Tensor(np.random.default_rng(0).standard_normal(
            (4, 12, 5)).astype(np.float32), requires_grad=True)
        conv(x).backward(np.ones((4, 12, 7), np.float32))
        scr1 = conv._scratch[(4, np.dtype(np.float32).str)]
        g1 = x.grad.copy()
        x.grad = None
        conv(x).backward(np.ones((4, 12, 7), np.float32))
        scr2 = conv._scratch[(4, np.dtype(np.float32).str)]
        assert scr1 is scr2                     # persistent scratch object
        assert scr1.x0 is scr2.x0               # and its buffers
        np.testing.assert_allclose(x.grad, g1, rtol=1e-6)

    def test_grad_accumulates_over_calls(self, supports):
        conv = DiffusionConv(supports, 3, 4, k_hops=2, fused=True)
        x = Tensor(np.random.default_rng(5).standard_normal(
            (2, 12, 3)).astype(np.float32), requires_grad=True)
        g = np.ones((2, 12, 4), np.float32)
        conv(x).backward(g)
        once = x.grad.copy()
        conv(x).backward(g)
        np.testing.assert_allclose(x.grad, 2 * once, rtol=1e-5)


class TestGRUUpdateFused:
    def test_bitwise_matches_composition(self):
        rng = np.random.default_rng(3)
        shape = (3, 4, 5)
        vals = [rng.standard_normal(shape).astype(np.float32)
                for _ in range(3)]
        a = [Tensor(v.copy(), requires_grad=True) for v in vals]
        b = [Tensor(v.copy(), requires_grad=True) for v in vals]
        out_fused = F.gru_update(a[0], a[1], a[2])
        u, h, c = b
        out_naive = u * h + (1.0 - u) * c
        np.testing.assert_array_equal(out_fused.data, out_naive.data)
        g = rng.standard_normal(shape).astype(np.float32)
        out_fused.backward(g.copy())
        out_naive.backward(g.copy())
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.grad, tb.grad)


# ---------------------------------------------------------------------------
# Loader buffer reuse + loader parity
# ---------------------------------------------------------------------------
class TestLoaderBuffers:
    @pytest.fixture(scope="class")
    def data(self):
        ds = load_dataset("pems-bay", nodes=6, entries=150, seed=1)
        return (standard_preprocess(ds),
                IndexDataset.from_dataset(ds, store_dtype=np.float32))

    def test_index_loader_returns_same_views(self, data):
        _, idx = data
        loader = IndexBatchLoader(idx, "train", 8)
        x1, y1 = loader.batch_at(np.arange(8))
        x2, y2 = loader.batch_at(np.arange(8, 16))
        assert x1 is x2 and y1 is y2            # same view objects
        assert x1.base is loader._block or x1.base.base is loader._block

    def test_index_loader_buffer_contents_refresh(self, data):
        _, idx = data
        loader = IndexBatchLoader(idx, "train", 4)
        fresh = IndexBatchLoader(idx, "train", 4, reuse_buffers=False)
        for sel in (np.arange(4), np.array([9, 2, 11, 5])):
            xb, yb = loader.batch_at(sel)
            xo, yo = fresh.batch_at(sel)
            np.testing.assert_array_equal(xb, xo)
            np.testing.assert_array_equal(yb, yo)

    def test_standard_loader_returns_same_buffers(self, data):
        std, _ = data
        loader = StandardBatchLoader(std, "train", 8)
        x1, _ = loader.batch_at(np.arange(8))
        x2, _ = loader.batch_at(np.arange(8, 16))
        assert x1 is x2

    def test_standard_loader_rejects_out_of_range(self, data):
        """The buffered np.take path must stay as loud as fancy indexing."""
        std, _ = data
        loader = StandardBatchLoader(std, "train", 4)
        n = loader.num_snapshots
        with pytest.raises(IndexError):
            loader.batch_at(np.array([0, 1, n + 50, 2]))
        # Negative indices keep standard NumPy meaning.
        xb, _ = loader.batch_at(np.array([0, 1, 2, -1]))
        np.testing.assert_array_equal(xb[3], loader.x[n - 1])

    def test_odd_sized_requests_get_owned_arrays(self, data):
        _, idx = data
        loader = IndexBatchLoader(idx, "train", 8)
        x1, _ = loader.batch_at(np.arange(3))   # DDP-style microbatch
        x2, _ = loader.batch_at(np.arange(3))
        assert x1 is not x2

    def test_reuse_off_gets_owned_arrays(self, data):
        _, idx = data
        loader = IndexBatchLoader(idx, "train", 8, reuse_buffers=False)
        x1, _ = loader.batch_at(np.arange(8))
        x2, _ = loader.batch_at(np.arange(8))
        assert x1 is not x2

    def test_standard_and_index_loaders_bitwise_agree(self, data):
        std, idx = data
        sl = StandardBatchLoader(std, "train", 8)
        il = IndexBatchLoader(idx, "train", 8)
        for (xs, ys), (xi, yi) in zip(sl.batches(), il.batches()):
            np.testing.assert_array_equal(xs, xi)
            np.testing.assert_array_equal(ys, yi)

    def test_float32_store_matches_per_batch_cast(self):
        """data stored at float32 == float64-standardized cast per batch."""
        ds = load_dataset("pems-bay", nodes=6, entries=150, seed=1)
        f64 = IndexDataset.from_dataset(ds)
        f32 = IndexDataset.from_dataset(ds, store_dtype=np.float32)
        l64 = IndexBatchLoader(f64, "train", 8)   # casts per batch
        l32 = IndexBatchLoader(f32, "train", 8)   # gathers pre-cast data
        x64, y64 = l64.batch_at(np.arange(8))
        x32, y32 = l32.batch_at(np.arange(8))
        np.testing.assert_array_equal(x64, x32)
        np.testing.assert_array_equal(y64, y32)

    def test_gather_out_buffer(self, data):
        _, idx = data
        h = idx.horizon
        out = np.empty((4, 2 * h) + idx.data.shape[1:], idx.data.dtype)
        x, y = idx.gather(idx.starts[:4], out=out)
        assert x.base is out and y.base is out
        xr, yr = idx.gather(idx.starts[:4])
        np.testing.assert_array_equal(x, xr)
        np.testing.assert_array_equal(y, yr)

    def test_gather_out_bounds_checked(self, data):
        _, idx = data
        h = idx.horizon
        out = np.empty((1, 2 * h) + idx.data.shape[1:], idx.data.dtype)
        with pytest.raises(IndexError):
            idx.gather(np.array([len(idx.data)]), out=out)


# ---------------------------------------------------------------------------
# Gradient buffers: zero_grad identity + pool recycling
# ---------------------------------------------------------------------------
class TestGradientBuffers:
    def _loss(self, p):
        return (p * p).sum()

    def test_zero_grad_keeps_buffer_identity(self):
        p = Parameter(np.array([1.0, 2.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        self._loss(p).backward()
        buf = p.grad
        assert buf is not None
        opt.zero_grad(set_to_none=False)
        assert p.grad is buf                    # zeroed in place
        np.testing.assert_array_equal(buf, 0.0)
        self._loss(p).backward()
        assert p.grad is buf                    # backward reused it

    def test_zero_grad_set_to_none(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        self._loss(p).backward()
        opt.zero_grad(set_to_none=True)
        assert p.grad is None

    def test_param_grad_buffer_stable_across_steps(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        bufs = set()
        for _ in range(4):
            opt.zero_grad()
            self._loss(p).backward()
            bufs.add(id(p.grad))
            opt.step()
        assert len(bufs) == 1                   # one buffer, forever

    def test_pool_recycles_interior_grads(self):
        GRAD_POOL.clear()
        x = Tensor(np.ones((7, 3), np.float32), requires_grad=True)
        ((x * 2.0).tanh().sum()).backward()
        assert len(GRAD_POOL) > 0               # interior grads parked
        g1 = x.grad.copy()
        x.grad = None
        ((x * 2.0).tanh().sum()).backward()     # drawn from the pool
        np.testing.assert_array_equal(x.grad, g1)

    def test_pool_ignores_views(self):
        GRAD_POOL.clear()
        arr = np.zeros((4, 4), np.float32)
        GRAD_POOL.give(arr[:2])                 # view: must be rejected
        assert len(GRAD_POOL) == 0


# ---------------------------------------------------------------------------
# In-place optimizers vs allocating reference implementations
# ---------------------------------------------------------------------------
def _reference_clip(grads, max_norm):
    """The seed implementation: float64 copies of every gradient."""
    total = 0.0
    for g in grads:
        total += float(np.sum(g.astype(np.float64) ** 2))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        for g in grads:
            g *= max_norm / norm
    return norm


def _reference_adam_step(p, g, m, v, t, lr=1e-3, b1=0.9, b2=0.999, eps=1e-8):
    m[:] = b1 * m + (1 - b1) * g
    v[:] = b2 * v + (1 - b2) * (g * g)
    m_hat = m / (1 - b1 ** t)
    v_hat = v / (1 - b2 ** t)
    p -= lr * m_hat / (np.sqrt(v_hat) + eps)


class TestOptimizerParity:
    def test_clip_matches_reference(self):
        rng = np.random.default_rng(0)
        shapes = [(40, 16), (16,), (8256,)]
        fast = [Parameter(np.zeros(s, np.float32)) for s in shapes]
        for p in fast:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32) * 3
        ref_grads = [p.grad.copy() for p in fast]
        norm_fast = clip_grad_norm(fast, 5.0)
        norm_ref = _reference_clip(ref_grads, 5.0)
        assert norm_fast == pytest.approx(norm_ref, rel=1e-5)
        for p, rg in zip(fast, ref_grads):
            np.testing.assert_allclose(p.grad, rg, rtol=1e-5)

    def test_clip_survives_float32_overflow(self):
        """Exploding f32 gradients must be scaled to max_norm, not zeroed
        by an overflowing float32 dot product."""
        p = Parameter(np.zeros(1024, np.float32))
        p.grad = np.full(1024, 1e20, dtype=np.float32)
        with np.errstate(over="ignore"):
            norm = clip_grad_norm([p], 5.0)
        assert math.isfinite(norm) and norm == pytest.approx(32e20, rel=1e-6)
        assert np.linalg.norm(p.grad.astype(np.float64)) == pytest.approx(
            5.0, rel=1e-5)

    def test_clip_no_copies_returns_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4, dtype=np.float32) * 10.0
        buf = p.grad
        clip_grad_norm([p], 5.0)
        assert p.grad is buf                    # scaled in place

    def test_adam_matches_reference_trajectory(self):
        rng = np.random.default_rng(1)
        p = Parameter(rng.standard_normal(64).astype(np.float32))
        ref_p = p.data.copy()
        m = np.zeros_like(ref_p)
        v = np.zeros_like(ref_p)
        opt = Adam([p], lr=1e-2)
        for t in range(1, 21):
            g = rng.standard_normal(64).astype(np.float32)
            p.grad = g.copy()
            opt.step()
            _reference_adam_step(ref_p, g, m, v, t, lr=1e-2)
        np.testing.assert_allclose(p.data, ref_p, rtol=1e-6, atol=1e-7)

    def test_sgd_matches_reference_trajectory(self):
        rng = np.random.default_rng(2)
        p = Parameter(rng.standard_normal(32).astype(np.float32))
        ref_p = p.data.copy()
        vel = np.zeros_like(ref_p)
        opt = SGD([p], lr=0.05, momentum=0.9, weight_decay=0.01)
        for _ in range(20):
            g = rng.standard_normal(32).astype(np.float32)
            p.grad = g.copy()
            opt.step()
            gr = g + 0.01 * ref_p
            vel[:] = 0.9 * vel + gr
            ref_p -= 0.05 * vel
        np.testing.assert_allclose(p.data, ref_p, rtol=1e-5, atol=1e-6)

    def test_adam_scratch_is_persistent(self):
        p = Parameter(np.ones(8, np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(8, np.float32)
        opt.step()
        s1 = opt._scratch[0]
        p.grad = np.ones(8, np.float32)
        opt.step()
        assert opt._scratch[0] is s1


# ---------------------------------------------------------------------------
# Consumers that collect batches must not alias the reused buffers
# ---------------------------------------------------------------------------
class TestEvaluationBufferSafety:
    def test_evaluate_by_horizon_without_scaler(self):
        """Collected truths must be owned copies, not views of the loader
        buffer (which the next iteration overwrites)."""
        from repro.nn.module import Module
        from repro.training.evaluation import evaluate_by_horizon

        class Echo(Module):
            def forward(self, x):
                return Tensor(x.data[..., :1] * 0.9)

        ds = load_dataset("pems-bay", nodes=6, entries=150, seed=1)
        idx = IndexDataset.from_dataset(ds, store_dtype=np.float32)
        reused = IndexBatchLoader(idx, "val", 4)
        owned = IndexBatchLoader(idx, "val", 4, reuse_buffers=False)
        m_reused = evaluate_by_horizon(Echo(), reused)
        m_owned = evaluate_by_horizon(Echo(), owned)
        np.testing.assert_allclose(m_reused.mae, m_owned.mae, rtol=1e-6)


# ---------------------------------------------------------------------------
# End-to-end fixed-seed parity: standard vs index, SGD and Adam
# ---------------------------------------------------------------------------
class TestEndToEndParity:
    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_standard_vs_index_training_curves(self, optimizer):
        from repro.api import RunSpec, run

        curves = {}
        for batching in ("base", "index"):
            spec = RunSpec(model="dcrnn", dataset="pems-bay",
                           batching=batching, optimizer=optimizer,
                           epochs=2, seed=0)
            curves[batching] = run(spec).train_curve
        np.testing.assert_allclose(curves["base"], curves["index"],
                                   rtol=0, atol=1e-7)
