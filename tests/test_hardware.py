"""Unit tests for the simulated hardware substrate."""

import numpy as np
import pytest

from repro.hardware import (
    Device,
    MemorySpace,
    POLARIS_NODE,
    TransferLink,
    polaris_gpu,
    polaris_host,
)
from repro.profiling import SimClock
from repro.utils.errors import OutOfMemoryError
from repro.utils.sizes import GB, format_bytes


class TestMemorySpace:
    def test_alloc_free_accounting(self):
        m = MemorySpace("m", capacity=100)
        a = m.allocate("x", 60)
        assert m.in_use == 60 and m.peak == 60 and m.available == 40
        m.free(a)
        assert m.in_use == 0 and m.peak == 60

    def test_oom_raises_with_details(self):
        m = MemorySpace("m", capacity=100)
        m.allocate("x", 80)
        with pytest.raises(OutOfMemoryError) as e:
            m.allocate("y", 30)
        assert e.value.requested == 30
        assert e.value.in_use == 80
        assert e.value.capacity == 100
        assert e.value.space == "m"

    def test_oom_boundary_exact_fit_ok(self):
        m = MemorySpace("m", capacity=100)
        m.allocate("x", 100)  # exactly full is allowed
        assert m.available == 0

    def test_double_free_rejected(self):
        m = MemorySpace("m")
        a = m.allocate("x", 10)
        m.free(a)
        with pytest.raises(KeyError):
            m.free(a)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemorySpace("m").allocate("x", -1)

    def test_unlimited_capacity(self):
        m = MemorySpace("m")
        m.allocate("x", 10**15)
        assert m.available is None

    def test_baseline_counts_toward_capacity(self):
        m = MemorySpace("m", capacity=100, baseline=40)
        assert m.in_use == 40
        with pytest.raises(OutOfMemoryError):
            m.allocate("x", 70)

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            MemorySpace("m", capacity=10, baseline=20)
        with pytest.raises(ValueError):
            MemorySpace("m", capacity=0)

    def test_peak_tracks_high_water_mark(self):
        m = MemorySpace("m")
        a = m.allocate("x", 50)
        b = m.allocate("y", 30)
        m.free(a)
        m.allocate("z", 10)
        assert m.peak == 80
        assert m.in_use == 40

    def test_events_timeline_with_clock(self):
        clock = SimClock()
        m = MemorySpace("m", clock=clock)
        m.allocate("x", 10)
        clock.advance(5.0)
        m.allocate("y", 20)
        trace = m.usage_trace()
        assert trace == [(0.0, 10), (5.0, 30)]

    def test_would_fit(self):
        m = MemorySpace("m", capacity=100)
        m.allocate("x", 60)
        assert m.would_fit(40)
        assert not m.would_fit(41)

    def test_live_allocations(self):
        m = MemorySpace("m")
        a = m.allocate("x", 5)
        m.allocate("y", 7)
        m.free(a)
        labels = [al.label for al in m.live_allocations()]
        assert labels == ["y"]

    def test_repr_readable(self):
        m = MemorySpace("m", capacity=2 * GB)
        assert "2.00 GB" in repr(m)


class TestTransferLinkDevice:
    def test_transfer_time_alpha_beta(self):
        link = TransferLink(bandwidth=1e9, latency=1e-3)
        assert link.time(1e9) == pytest.approx(1.001)
        assert link.time(0) == 0.0

    def test_transfer_negative_rejected(self):
        with pytest.raises(ValueError):
            TransferLink(1e9).time(-1)

    def test_device_compute_time(self):
        d = Device("gpu0", "gpu", MemorySpace("hbm"), flops=1e12, mem_bw=1e12)
        assert d.compute_time(1e12, efficiency=0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            d.compute_time(-1)

    def test_device_kind_validation(self):
        with pytest.raises(ValueError):
            Device("x", "tpu", MemorySpace("m"), 1e12, 1e12)

    def test_device_transfer_in(self):
        link = TransferLink(bandwidth=25e9, latency=0)
        d = Device("gpu0", "gpu", MemorySpace("hbm"), 1e12, 1e12,
                   link_to_host=link)
        assert d.transfer_in_time(25e9) == pytest.approx(1.0)

    def test_copy_time_reads_and_writes(self):
        d = Device("cpu", "cpu", MemorySpace("m"), 1e12, mem_bw=100e9)
        assert d.copy_time(50e9) == pytest.approx(1.0)


class TestPolarisSpecs:
    def test_node_shape(self):
        assert POLARIS_NODE.gpus_per_node == 4
        assert POLARIS_NODE.node_ram == 512 * GB
        assert POLARIS_NODE.gpu_memory == 40 * GB

    def test_polaris_host_space(self):
        host = polaris_host()
        assert host.capacity == 512 * GB
        assert host.baseline == 2 * GB

    def test_polaris_gpu_space(self):
        gpu = polaris_gpu(2)
        assert gpu.capacity == 40 * GB
        assert "gpu2" in gpu.name


class TestFormatBytes:
    @pytest.mark.parametrize("n,expected", [
        (512, "512 B"),
        (2048, "2.00 KB"),
        (6.05 * GB, "6.05 GB"),
        (-3 * GB, "-3.00 GB"),
    ])
    def test_formats(self, n, expected):
        assert format_bytes(n) == expected


class TestUsableCores:
    def test_positive_int_and_bounded_by_machine(self):
        from repro.hardware import usable_cores

        n = usable_cores()
        assert isinstance(n, int) and n >= 1
        import os
        assert n <= (os.cpu_count() or n)

    def test_prefers_affinity_mask(self, monkeypatch):
        from repro.hardware import cores

        monkeypatch.setattr(cores.os, "sched_getaffinity",
                            lambda pid: {0, 2, 5}, raising=False)
        assert cores.usable_cores() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        from repro.hardware import cores

        monkeypatch.delattr(cores.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(cores.os, "cpu_count", lambda: 6)
        assert cores.usable_cores() == 6

    def test_never_below_one(self, monkeypatch):
        from repro.hardware import cores

        monkeypatch.delattr(cores.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(cores.os, "cpu_count", lambda: None)
        assert cores.usable_cores() == 1
