"""Unit tests for the model zoo."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graph import dual_random_walk_supports, random_sensor_network
from repro.models import A3TGCN, DCRNN, DiffusionConv, PGTDCRNN, STLLM, TGCN
from repro.optim import Adam, l1_loss
from repro.utils.errors import ShapeError

N, H, F_IN, B = 12, 6, 2, 3


@pytest.fixture(scope="module")
def graph():
    return random_sensor_network(N, seed=0)


@pytest.fixture(scope="module")
def supports(graph):
    return dual_random_walk_supports(graph.weights)


def _x(batch=B, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (batch, H, N, F_IN)).astype(np.float32)


def _y(batch=B, seed=1):
    return np.random.default_rng(seed).standard_normal(
        (batch, H, N, 1)).astype(np.float32)


class TestDiffusionConv:
    def test_output_shape(self, supports):
        conv = DiffusionConv(supports, 5, 7, k_hops=2)
        out = conv(Tensor(np.ones((B, N, 5), dtype=np.float32)))
        assert out.shape == (B, N, 7)

    def test_num_matrices(self, supports):
        conv = DiffusionConv(supports, 5, 7, k_hops=3)
        assert conv.num_matrices == 1 + 2 * 3

    def test_k0_is_dense_only(self, supports):
        conv = DiffusionConv(supports, 4, 4, k_hops=0)
        assert conv.num_matrices == 1

    def test_spatial_mixing_actually_happens(self, supports):
        """A perturbation at one node must influence its neighbours."""
        conv = DiffusionConv(supports, 1, 1, k_hops=2)
        x = np.zeros((1, N, 1), dtype=np.float32)
        base = conv(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0, 0] = 5.0
        pert = conv(Tensor(x2)).data
        changed = np.nonzero(np.abs(pert - base)[0, :, 0] > 1e-7)[0]
        assert len(changed) > 1  # more nodes than just node 0

    def test_input_validation(self, supports):
        conv = DiffusionConv(supports, 5, 7)
        with pytest.raises(ShapeError):
            conv(Tensor(np.ones((B, N + 1, 5))))
        with pytest.raises(ValueError):
            DiffusionConv(supports, 5, 7, k_hops=-1)
        with pytest.raises(ValueError):
            DiffusionConv([], 5, 7)

    def test_flops_positive_and_scale_with_batch(self, supports):
        conv = DiffusionConv(supports, 5, 7)
        assert conv.flops(8) == pytest.approx(2 * conv.flops(4), rel=0.01)


ALL_MODELS = ["dcrnn", "pgt", "tgcn", "a3tgcn", "stllm"]


def _build(name, graph, supports):
    if name == "dcrnn":
        return DCRNN(supports, H, F_IN, hidden_dim=8, num_layers=2)
    if name == "pgt":
        return PGTDCRNN(supports, H, F_IN, hidden_dim=8)
    if name == "tgcn":
        return TGCN(graph.weights, H, F_IN, hidden_dim=8)
    if name == "a3tgcn":
        return A3TGCN(graph.weights, H, F_IN, hidden_dim=8, attention_dim=4)
    if name == "stllm":
        return STLLM(N, H, F_IN, dim=16, num_heads=2, num_blocks=2)
    raise KeyError(name)


class TestAllModels:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_output_shape(self, name, graph, supports):
        model = _build(name, graph, supports)
        out = model(Tensor(_x()))
        assert out.shape == (B, H, N, 1)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_all_trainable_params_get_grads(self, name, graph, supports):
        model = _build(name, graph, supports)
        loss = l1_loss(model(Tensor(_x())), _y())
        model.zero_grad()
        loss.backward()
        for pname, p in model.named_parameters():
            if p.requires_grad:
                assert p.grad is not None, f"{name}: no grad for {pname}"
                assert np.isfinite(p.grad).all()

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_input_validation(self, name, graph, supports):
        model = _build(name, graph, supports)
        with pytest.raises(ShapeError):
            model(Tensor(np.ones((B, H + 1, N, F_IN), dtype=np.float32)))
        with pytest.raises(ShapeError):
            model(Tensor(np.ones((B, H, N, F_IN + 2), dtype=np.float32)))

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_predict_no_grad(self, name, graph, supports):
        model = _build(name, graph, supports)
        out = model.predict(_x())
        assert isinstance(out, np.ndarray)
        assert out.shape == (B, H, N, 1)

    @pytest.mark.parametrize("name", ["pgt", "tgcn", "stllm"])
    def test_can_overfit_tiny_batch(self, name, graph, supports):
        """Sanity: Adam fits a learnable target on a fixed batch."""
        model = _build(name, graph, supports)
        x = _x(seed=5)
        y = (0.5 * x[..., :1] + 0.1).astype(np.float32)  # learnable map
        opt = Adam([p for p in model.parameters() if p.requires_grad], lr=0.02)
        first = None
        for _ in range(60):
            loss = l1_loss(model(Tensor(x)), y)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first


class TestDCRNN:
    def test_teacher_forcing_prob_decays(self, supports):
        model = DCRNN(supports, H, F_IN, hidden_dim=8, cl_decay_steps=10)
        p0 = model._teacher_forcing_prob()
        model.global_step = 100
        assert model._teacher_forcing_prob() < p0

    def test_cl_zero_disables_teacher_forcing(self, supports):
        model = DCRNN(supports, H, F_IN, hidden_dim=8, cl_decay_steps=0)
        assert model._teacher_forcing_prob() == 0.0

    def test_global_step_advances_in_training_only(self, supports):
        model = DCRNN(supports, H, F_IN, hidden_dim=8)
        model.train()
        model(Tensor(_x()), targets=_y())
        assert model.global_step == 1
        model.eval()
        model(Tensor(_x()))
        assert model.global_step == 1

    def test_eval_deterministic(self, supports):
        model = DCRNN(supports, H, F_IN, hidden_dim=8)
        model.eval()
        a = model(Tensor(_x())).data
        b = model(Tensor(_x())).data
        np.testing.assert_array_equal(a, b)


class TestSTLLM:
    def test_frozen_blocks_receive_no_grads(self, graph, supports):
        model = STLLM(N, H, F_IN, dim=16, num_heads=2, num_blocks=2,
                      frozen_blocks=1)
        loss = l1_loss(model(Tensor(_x())), _y())
        model.zero_grad()
        loss.backward()
        frozen = model.blocks[0]
        live = model.blocks[1]
        assert all(p.grad is None for p in frozen.parameters())
        assert any(p.grad is not None for p in live.parameters())

    def test_frozen_exceeds_blocks_rejected(self):
        with pytest.raises(ValueError):
            STLLM(N, H, F_IN, dim=16, num_blocks=2, frozen_blocks=3)

    def test_spatial_embedding_distinguishes_nodes(self, graph, supports):
        model = STLLM(N, H, F_IN, dim=16, num_heads=2, num_blocks=1)
        x = np.ones((1, H, N, F_IN), dtype=np.float32)  # identical nodes
        out = model(Tensor(x)).data[0, 0, :, 0]
        assert out.std() > 1e-4  # node embeddings break the symmetry


class TestDeterministicInit:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_same_seed_same_weights(self, name, graph, supports):
        a = _build(name, graph, supports)
        b = _build(name, graph, supports)
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)
