"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_grad(f: Callable[[np.ndarray], float], x: np.ndarray,
                   eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build: Callable[[Tensor], "Tensor"], x: np.ndarray,
                   atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Assert autograd gradient of ``build(x).sum()`` matches numerics."""
    x = np.asarray(x, dtype=np.float64)
    t = Tensor(x, requires_grad=True, dtype=np.float64)
    out = build(t)
    loss = out.sum()
    loss.backward()
    assert t.grad is not None, "no gradient accumulated"

    def f(arr: np.ndarray) -> float:
        t2 = Tensor(arr, dtype=np.float64)
        return float(build(t2).sum().data)

    num = numerical_grad(f, x)
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=rtol)
