"""Smoke tests for the measured-perf snapshot harness (BENCH_<n>.json).

Exercises the quick path of ``python -m benchmarks.run_bench`` end to end
— collection, schema validation, JSON round-trip, and the snapshot differ
— so the instrument future PRs rely on for their perf deltas cannot rot.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.profiling.bench import (
    COMPILED_SPEEDUP_FLOOR,
    MIXED_PRECISION_FLOOR,
    PARITY_ATOL,
    check_kernel_gates,
    diff_benches,
    format_diff,
    load_snapshot,
    next_bench_path,
    training_benchmark,
    validate_snapshot,
    write_snapshot,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from benchmarks.run_bench import main as run_bench_main  # noqa: E402
from benchmarks.dist_bench import (  # noqa: E402
    check_regression,
    main as dist_bench_main,
    validate_distributed,
)


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    """One quick CLI run shared by the module's tests."""
    out = tmp_path_factory.mktemp("bench") / "bench.json"
    rc = run_bench_main(["--quick", "--out", str(out), "--label", "smoke"])
    assert rc == 0
    return out


class TestSnapshotCLI:
    def test_writes_valid_schema(self, snapshot_path):
        data = load_snapshot(snapshot_path)   # raises if invalid
        assert data["label"] == "smoke"
        assert {m["name"] for m in data["micro"]} >= {
            "gather_batch64", "loader_batch64_f32", "clip_adam_step"}
        train = data["training"]["dcrnn_index_adam"]
        assert train["steps_per_sec"] > 0
        assert train["peak_bytes"] > 0
        assert set(train["step_breakdown_seconds"]) == {
            "gather", "forward", "backward", "clip", "optimizer"}
        assert len(train["train_curve"]) == train["epochs"]

    def test_diff_against_self_is_parity(self, snapshot_path):
        data = load_snapshot(snapshot_path)
        d = diff_benches(data, data)
        for entry in d["training"].values():
            assert entry["speedup"] == pytest.approx(1.0)
            assert entry["parity"] is True
            assert entry["train_curve_max_drift"] <= PARITY_ATOL
        text = format_diff(d)
        assert "dcrnn_index_adam" in text and "x1.00" in text

    def test_diff_cli_and_regression_gate(self, snapshot_path, capsys):
        rc = run_bench_main(["--diff", str(snapshot_path), str(snapshot_path)])
        assert rc == 0
        assert "training" in capsys.readouterr().out
        # A self-diff has speedup 1.0 < 2.0: the regression gate must trip.
        rc = run_bench_main(["--diff", str(snapshot_path), str(snapshot_path),
                             "--fail-on-regression", "2.0"])
        assert rc == 1

    def test_validate_rejects_junk(self, tmp_path):
        with pytest.raises(ValueError):
            validate_snapshot({"schema": "nope"})
        bad = {"schema": "repro-bench/v1", "created": "x", "platform": {},
               "micro": [{"name": "a"}], "training": {}}
        with pytest.raises(ValueError):
            validate_snapshot(bad)
        with pytest.raises(ValueError):
            write_snapshot({"schema": "nope"}, tmp_path / "x.json")

    def test_next_bench_path_skips_taken(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_2.json"


class TestTrainingBenchmarkParity:
    def test_matches_api_run_losses(self):
        """The bench loop mirrors Trainer.train_step exactly: its fixed-seed
        losses must equal what api.run records for the same spec."""
        from repro.api import RunSpec, run

        bench = training_benchmark(batching="index", epochs=1, seed=3)
        res = run(RunSpec(model="dcrnn", dataset="pems-bay", batching="index",
                          optimizer="adam", epochs=1, seed=3))
        np.testing.assert_allclose(bench["train_curve"], res.train_curve,
                                   rtol=0, atol=1e-9)


class TestKernelsSection:
    def test_snapshot_records_kernels_section(self, snapshot_path):
        k = load_snapshot(snapshot_path)["kernels"]
        assert k["backends_available"][0] == "numpy"
        assert "numpy" in k["training"]
        assert k["training"]["numpy"]["steps_per_sec"] > 0
        names = {m["name"] for m in k["micro"]["numpy"]}
        assert names == {"dconv_forward_backward", "gru_gates_blend_fwd_bwd"}
        # Gates either applied or recorded-skipped with a reason.
        for gate in (k["compiled_speedup"], k["parity"]):
            assert gate["applied"] or gate["reason"]
        assert k["mixed_precision"]["resident_ratio"] \
            >= MIXED_PRECISION_FLOOR
        assert check_kernel_gates(k) == []

    def test_gate_failures_are_specific(self):
        section = {
            "compiled_speedup": {"applied": True, "backend": "numba",
                                 "speedup": 1.2,
                                 "threshold": COMPILED_SPEEDUP_FLOOR},
            "parity": {"applied": True, "max_drift": 1e-3,
                       "atol": PARITY_ATOL},
            "mixed_precision": {"resident_ratio": 1.1,
                                "floor": MIXED_PRECISION_FLOOR},
        }
        failures = check_kernel_gates(section)
        assert len(failures) == 3
        assert any("speedup" in f for f in failures)
        assert any("drift" in f for f in failures)
        assert any("float16" in f for f in failures)

    def test_skipped_gates_do_not_fail(self):
        section = {
            "compiled_speedup": {"applied": False, "speedup": None,
                                 "threshold": COMPILED_SPEEDUP_FLOOR,
                                 "reason": "no numba"},
            "parity": {"applied": False, "max_drift": None,
                       "atol": PARITY_ATOL, "reason": "no numba"},
            "mixed_precision": {"resident_ratio": 2.0,
                                "floor": MIXED_PRECISION_FLOOR},
        }
        assert check_kernel_gates(section) == []


class TestDistBenchCLI:
    @pytest.fixture(scope="class")
    def dist_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("dist") / "dist.json"
        rc = dist_bench_main(["--quick", "--out", str(out),
                              "--label", "smoke"])
        assert rc == 0
        return out

    def test_writes_valid_section(self, dist_path):
        data = load_snapshot(dist_path)
        validate_distributed(data["distributed"])
        scen = data["distributed"]["scenarios"]
        ar = scen["allreduce_bucketed_w4"]
        assert ar["sim_speedup"] > 1.0           # bucketing must win
        assert ar["buckets"] < ar["num_tensors"]
        # The wall ratio times in-process memcpy, not the gated claim:
        # recorded as informational so a 1-core dip is not misread.
        assert ar["wall_informational"] is True
        assert data["distributed"]["config"]["cores_detected"] >= 1
        for name in ("thread_scaling_w4", "process_scaling_w4"):
            sc = scen[name]
            assert sc["curve_bitwise_equal"] is True  # parallel == sequential
            assert sc["par_steps_per_sec"] > 0
            assert sc["cores"] >= 1
            # Quick mode never applies the wall-speedup gate.
            assert sc["speedup_gate_applied"] is False
        assert "socket_scaling_w4" not in scen  # full mode only

    def test_diff_and_gate(self, dist_path, capsys):
        rc = dist_bench_main(["--diff", str(dist_path), str(dist_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "thread_scaling_steps_per_sec" in out
        assert "process_scaling_steps_per_sec" in out
        section = load_snapshot(dist_path)["distributed"]
        # The section's own gates must hold for a freshly measured run.
        assert check_regression(section, 1.5) == []
        # A broken parity bit must trip the gate — on any fabric.
        for name in ("thread_scaling_w4", "process_scaling_w4"):
            bad = json.loads(json.dumps(section))
            bad["scenarios"][name]["curve_bitwise_equal"] = False
            assert check_regression(bad, 1.5)
        # A gated scenario below the speedup floor must trip it too.
        slow = json.loads(json.dumps(section))
        slow["scenarios"]["process_scaling_w4"]["speedup_gate_applied"] = True
        slow["scenarios"]["process_scaling_w4"]["wall_speedup"] = 1.0
        assert check_regression(slow, 1.5)

    def test_validate_rejects_junk(self):
        with pytest.raises(ValueError):
            validate_distributed({"schema": "nope"})
        with pytest.raises(ValueError):
            validate_distributed({"schema": "repro-dist/v1", "created": "x",
                                  "config": {}, "scenarios": {}})


class TestCommittedSnapshots:
    def test_repo_snapshots_are_valid(self):
        """Any BENCH_<n>.json committed at the repo root must parse."""
        root = Path(__file__).resolve().parents[1]
        found = sorted(root.glob("BENCH_*.json"))
        assert found, "expected at least one committed BENCH_<n>.json"
        from benchmarks.fault_bench import validate_faults
        from benchmarks.gateway_bench import validate_gateway
        from benchmarks.serve_bench import validate_serving
        for path in found:
            data = json.loads(path.read_text())
            validate_snapshot(data)
            if "distributed" in data:
                validate_distributed(data["distributed"])
            if "serving" in data:
                validate_serving(data["serving"])
            if "faults" in data:
                validate_faults(data["faults"])
            if "gateway" in data:
                validate_gateway(data["gateway"])
