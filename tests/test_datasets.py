"""Unit tests for the dataset catalog, generators and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    CATALOG,
    SpatioTemporalDataset,
    get_spec,
    list_datasets,
    load_dataset,
)
from repro.datasets.loaders import scaled_spec
from repro.datasets.synthetic import (
    energy_signals,
    epidemic_signals,
    traffic_signals,
)
from repro.graph import random_sensor_network
from repro.utils.errors import ShapeError
from repro.utils.sizes import GB, KB, MB


class TestCatalog:
    def test_all_six_paper_datasets_present(self):
        assert list_datasets() == sorted([
            "chickenpox-hungary", "windmill-large", "metr-la",
            "pems-bay", "pems-all-la", "pems"])

    def test_table1_shapes(self):
        pems = get_spec("pems")
        assert pems.num_nodes == 11_160 and pems.num_entries == 105_120
        bay = get_spec("pems-bay")
        assert bay.num_nodes == 325 and bay.num_entries == 52_105
        chick = get_spec("chickenpox-hungary")
        assert chick.num_nodes == 20 and chick.num_entries == 522

    def test_traffic_specs_gain_time_feature(self):
        for name in ("metr-la", "pems-bay", "pems-all-la", "pems"):
            spec = get_spec(name)
            assert spec.raw_features == 1 and spec.train_features == 2

    def test_raw_nbytes_matches_table1_before_column(self):
        # Table 1 "size before preprocessing", within unit-convention slack.
        assert abs(get_spec("pems").raw_nbytes() - 8.71 * GB) / (8.71 * GB) < 0.01
        assert abs(get_spec("metr-la").raw_nbytes() - 54.39 * MB) / (54.39 * MB) < 0.01
        assert abs(get_spec("chickenpox-hungary").raw_nbytes() - 83.36 * KB) \
            / (83.36 * KB) < 0.03

    def test_case_insensitive_lookup(self):
        assert get_spec("PeMS-Bay") is get_spec("pems-bay")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_spec("imagenet")

    def test_scaled_spec_keeps_domain(self):
        s = scaled_spec(get_spec("pems"), 100, 1000)
        assert s.num_nodes == 100 and s.num_entries == 1000
        assert s.domain == "traffic" and s.horizon == 12


class TestGenerators:
    def _graph(self, n=20):
        return random_sensor_network(n, seed=0)

    def test_traffic_shape_and_range(self):
        g = self._graph()
        sig, ts = traffic_signals(g, 300, seed=1)
        assert sig.shape == (300, 20, 1)
        nonzero = sig[sig > 0]
        assert nonzero.min() >= 3.0 and nonzero.max() <= 80.0
        assert len(ts) == 300

    def test_traffic_missing_rate(self):
        g = self._graph(50)
        sig, _ = traffic_signals(g, 2000, seed=2, missing_rate=0.05)
        frac = np.mean(sig == 0.0)
        assert 0.03 < frac < 0.08

    def test_traffic_rush_hour_slower(self):
        g = self._graph(30)
        sig, ts = traffic_signals(g, 7 * 288, seed=3, missing_rate=0.0)
        tod = (ts % (24 * 60)) / 60.0
        dow = (ts // (24 * 60)) % 7
        weekday = dow < 5
        rush = weekday & (np.abs(tod - 8.0) < 1.0)
        night = weekday & ((tod < 4.0))
        assert sig[rush].mean() < sig[night].mean() - 3.0

    def test_traffic_spatial_correlation(self):
        # After removing each sensor's diurnal profile and the common
        # congestion mode, graph neighbours should still correlate more
        # than distant sensors (local shock diffusion along edges).
        g = self._graph(40)
        sig, ts = traffic_signals(g, 2016, seed=4, missing_rate=0.0)
        x = sig[:, :, 0]
        bucket = ((ts % (24 * 60)) // 5).astype(int)
        resid = np.empty_like(x)
        for b in np.unique(bucket):
            m = bucket == b
            resid[m] = x[m] - x[m].mean(axis=0, keepdims=True)
        resid -= resid.mean(axis=1, keepdims=True)
        corr = np.corrcoef(resid.T)
        w = g.weights.toarray() > 0
        np.fill_diagonal(w, False)
        far = ~w
        np.fill_diagonal(far, False)
        assert corr[w].mean() > corr[far].mean() + 0.02

    def test_traffic_deterministic(self):
        g = self._graph()
        a, _ = traffic_signals(g, 100, seed=7)
        b, _ = traffic_signals(g, 100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_epidemic_counts_nonnegative_integers(self):
        g = self._graph()
        sig, _ = epidemic_signals(g, 200, seed=5)
        assert sig.shape == (200, 20, 1)
        assert np.all(sig >= 0)
        np.testing.assert_array_equal(sig, np.round(sig))

    def test_epidemic_seasonal_variation(self):
        g = self._graph()
        sig, _ = epidemic_signals(g, 208, seed=6)  # 4 years of weeks
        weekly = sig[:, :, 0].mean(axis=1)
        assert weekly.std() > 0.1 * weekly.mean()

    def test_energy_normalised_output(self):
        g = self._graph()
        sig, _ = energy_signals(g, 500, seed=8)
        assert sig.min() >= 0.0 and sig.max() <= 1.0

    def test_energy_temporal_smoothness(self):
        g = self._graph()
        sig, _ = energy_signals(g, 500, seed=9)
        x = sig[:, :, 0]
        diffs = np.abs(np.diff(x, axis=0)).mean()
        assert diffs < 0.2  # wind power doesn't jump to extremes每 hour


class TestLoadDataset:
    def test_full_catalog_shapes_small_scale(self):
        ds = load_dataset("pems-bay", nodes=30, entries=400, seed=0)
        assert ds.signals.shape == (400, 30, 1)
        assert ds.graph.num_nodes == 30
        assert ds.spec.num_nodes == 325  # spec keeps the real shape

    def test_default_loads_catalog_shape(self):
        ds = load_dataset("chickenpox-hungary")
        assert ds.signals.shape == (522, 20, 1)

    def test_domain_dispatch(self):
        wind = load_dataset("windmill-large", nodes=10, entries=100)
        assert wind.signals.max() <= 1.0  # energy generator
        chick = load_dataset("chickenpox-hungary", nodes=10, entries=100)
        np.testing.assert_array_equal(chick.signals, np.round(chick.signals))

    def test_entries_minimum_enforced(self):
        with pytest.raises(ValueError):
            load_dataset("pems-bay", nodes=10, entries=20)  # < 4*horizon

    def test_nodes_minimum(self):
        with pytest.raises(ValueError):
            load_dataset("pems-bay", nodes=1, entries=100)

    def test_deterministic_in_seed(self):
        a = load_dataset("metr-la", nodes=15, entries=200, seed=3)
        b = load_dataset("metr-la", nodes=15, entries=200, seed=3)
        np.testing.assert_array_equal(a.signals, b.signals)

    def test_time_of_day_feature(self):
        ds = load_dataset("pems-bay", nodes=10, entries=300)
        tod = ds.time_of_day()
        assert tod.min() >= 0.0 and tod.max() < 1.0
        aug = ds.with_time_feature()
        assert aug.shape == (300, 10, 2)
        np.testing.assert_allclose(aug[:, 0, 1], tod)

    def test_shape_validation(self):
        ds = load_dataset("pems-bay", nodes=10, entries=100)
        with pytest.raises(ShapeError):
            SpatioTemporalDataset(signals=ds.signals[:, :5],
                                  graph=ds.graph, spec=ds.spec,
                                  timestamps=ds.timestamps)
        with pytest.raises(ShapeError):
            SpatioTemporalDataset(signals=ds.signals, graph=ds.graph,
                                  spec=ds.spec,
                                  timestamps=ds.timestamps[:50])
