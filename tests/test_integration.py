"""End-to-end integration tests across subsystem boundaries.

Each test exercises a complete workflow exactly as a user would drive it,
checking the cross-module contracts that unit tests can't see.
"""

import numpy as np
import pytest

from repro.batching import IndexBatchLoader, StandardBatchLoader
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.graph import dual_random_walk_supports
from repro.hardware.memory import MemorySpace
from repro.models import PGTDCRNN, TGCN
from repro.optim import Adam, MultiStepLR
from repro.preprocessing import IndexDataset, standard_preprocess
from repro.training import (
    DDPStrategy,
    DDPTrainer,
    Trainer,
    evaluate_by_horizon,
    load_checkpoint,
    save_checkpoint,
)


class TestFullWorkflowEquivalence:
    """The paper's central promise: swapping standard batching for
    index-batching changes nothing about training outcomes."""

    def test_training_runs_are_identical(self):
        ds = load_dataset("pems-bay", nodes=8, entries=260, seed=10)
        supports = dual_random_walk_supports(ds.graph.weights)

        def run(mode):
            if mode == "base":
                pre = standard_preprocess(ds, horizon=4)
                train = StandardBatchLoader(pre, "train", 16)
                val = StandardBatchLoader(pre, "val", 16)
                scaler = pre.scaler
            else:
                idx = IndexDataset.from_dataset(ds, horizon=4)
                train = IndexBatchLoader(idx, "train", 16)
                val = IndexBatchLoader(idx, "val", 16)
                scaler = idx.scaler
            model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=0)
            trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                              train, val, scaler=scaler, seed=0)
            trainer.fit(3)
            return model.state_dict(), [h.val_mae for h in trainer.history]

        base_state, base_curve = run("base")
        index_state, index_curve = run("index")
        np.testing.assert_array_equal(base_curve, index_curve)
        for name in base_state:
            np.testing.assert_array_equal(base_state[name],
                                          index_state[name])


class TestTrainCheckpointEvaluate:
    def test_full_lifecycle(self, tmp_path):
        """Train -> checkpoint -> reload into a fresh model -> evaluate
        per horizon -> the reloaded model matches the live one."""
        ds = load_dataset("metr-la", nodes=10, entries=300, seed=11)
        idx = IndexDataset.from_dataset(ds, horizon=6)
        supports = dual_random_walk_supports(ds.graph.weights)
        model = PGTDCRNN(supports, 6, 2, hidden_dim=8, seed=4)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                          IndexBatchLoader(idx, "train", 16),
                          IndexBatchLoader(idx, "val", 16),
                          scaler=idx.scaler, seed=4)
        trainer.fit(3)
        path = str(tmp_path / "life.npz")
        save_checkpoint(path, model, trainer.optimizer, epoch=3)

        clone = PGTDCRNN(supports, 6, 2, hidden_dim=8, seed=77)
        load_checkpoint(path, clone)
        test_loader = IndexBatchLoader(idx, "test", 16)
        live = evaluate_by_horizon(model, test_loader, idx.scaler,
                                   interval_minutes=5)
        reloaded = evaluate_by_horizon(clone, test_loader, idx.scaler,
                                       interval_minutes=5)
        np.testing.assert_array_equal(live.mae, reloaded.mae)
        assert live.at_minutes(15)["mae"] > 0


class TestDistributedWorkflowWithMemoryAccounting:
    def test_ddp_with_charged_memory(self):
        """Distributed-index-batching with per-worker memory spaces: every
        worker's resident footprint is the full single copy (the paper's
        trade-off for communication-free shuffling)."""
        ds = load_dataset("pems-bay", nodes=8, entries=260, seed=12)
        world = 4
        spaces = [MemorySpace(f"worker{r}") for r in range(world)]
        replicas = [IndexDataset.from_dataset(ds, horizon=4, space=spaces[r])
                    for r in range(world)]
        for r in range(world):
            assert spaces[r].in_use == replicas[r].resident_nbytes
        total = sum(s.in_use for s in spaces)
        assert total == world * replicas[0].resident_nbytes

        supports = dual_random_walk_supports(ds.graph.weights)
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=5)
        trainer = DDPTrainer(
            model, Adam(model.parameters(), lr=0.01), SimCommunicator(world),
            IndexBatchLoader(replicas[0], "train", 8),
            IndexBatchLoader(replicas[0], "val", 8),
            strategy=DDPStrategy.DIST_INDEX, scaler=replicas[0].scaler,
            seed=5)
        hist = trainer.fit(2)
        assert hist[-1].train_loss < hist[0].train_loss * 1.5


class TestSchedulerIntegration:
    def test_multistep_lr_through_fit(self):
        ds = load_dataset("pems-bay", nodes=6, entries=220, seed=13)
        idx = IndexDataset.from_dataset(ds, horizon=4)
        g = dual_random_walk_supports(ds.graph.weights)
        model = TGCN(ds.graph.weights, 4, 2, hidden_dim=8)
        opt = Adam(model.parameters(), lr=0.1)
        trainer = Trainer(model, opt,
                          IndexBatchLoader(idx, "train", 16),
                          IndexBatchLoader(idx, "val", 16),
                          scaler=idx.scaler, seed=6)
        sched = MultiStepLR(opt, milestones=[2], gamma=0.1)
        trainer.fit(4, scheduler=sched)
        lrs = [h.lr for h in trainer.history]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[-1] == pytest.approx(0.01)


class TestCrossModelLoaderCompatibility:
    @pytest.mark.parametrize("loader_kind", ["standard", "index"])
    def test_every_model_consumes_both_loaders(self, loader_kind):
        ds = load_dataset("pems-bay", nodes=8, entries=150, seed=14)
        if loader_kind == "standard":
            pre = standard_preprocess(ds, horizon=4)
            loader = StandardBatchLoader(pre, "train", 8)
        else:
            idx = IndexDataset.from_dataset(ds, horizon=4)
            loader = IndexBatchLoader(idx, "train", 8)
        from repro.models import A3TGCN, STLLM
        supports = dual_random_walk_supports(ds.graph.weights)
        models = [
            PGTDCRNN(supports, 4, 2, hidden_dim=8),
            A3TGCN(ds.graph.weights, 4, 2, hidden_dim=8),
            STLLM(8, 4, 2, dim=16, num_heads=2, num_blocks=1),
        ]
        x, y = loader.batch_at(np.arange(8))
        from repro.autograd.tensor import Tensor
        for model in models:
            out = model(Tensor(x))
            assert out.shape == (8, 4, 8, 1)
