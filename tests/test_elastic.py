"""Elastic scale: checkpoint resharding, serving scale_to, autoscaler,
capacity planner.

The load-bearing pins:

- reshard W -> W' -> W and resume == uninterrupted run, **bitwise**, for
  every DDP strategy (nothing numeric moves at an epoch boundary);
- under a global shuffle, reshard W -> W' and resume matches a *fresh*
  W'-world run to 1e-6 — including W' = 1 and W' > W — because the
  preserved global batch walks the same per-step sample sets;
- partition-dependent shuffles reshard only at epoch boundaries and
  refuse mid-epoch cursors loudly;
- a resharded checkpoint resumes to identical bits on every transport;
- ``ShardedSession.scale_to`` keeps predictions bitwise stable across
  resizes and refuses non-partition ownership (overlaps and gaps);
- the autoscaler doubles/halves inside its policy bounds with cooldown
  and hysteresis, and the planner picks minimal sizes that meet budgets.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.elastic import (
    AutoscalerPolicy,
    ShardAutoscaler,
    autoscaler_setpoints,
    plan_serving,
    plan_training,
    read_reshard_history,
    reshard_checkpoint,
)
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import ProcessGroup
from repro.serving.service import ManualClock
from repro.training import DDPStrategy, DDPTrainer, train_with_recovery
from repro.training.checkpoint import read_checkpoint_meta, write_archive
from repro.utils.errors import CheckpointError, ReshardError, ShapeError

SEED = 0
EPOCHS = 2
GLOBAL_BATCH = 16          # world x per-rank batch, preserved by reshard


@pytest.fixture(scope="module")
def data():
    ds = load_dataset("pems-bay", nodes=10, entries=260, seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def make_trainer(data, *, world=2, strategy=DDPStrategy.DIST_INDEX,
                 transport="sim", ckpt=None, checkpoint_every=None,
                 **kw):
    idx, supports = data
    batch, rem = divmod(GLOBAL_BATCH, world)
    assert rem == 0
    model = PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                     seed=SEED)
    pg = {"sim": ProcessGroup.sim, "thread": ProcessGroup.threads,
          "process": ProcessGroup.processes,
          "socket": ProcessGroup.sockets}[transport](world)
    return DDPTrainer(
        model, Adam(model.parameters(), lr=0.01), pg,
        IndexBatchLoader(idx, "train", batch),
        IndexBatchLoader(idx, "val", batch),
        strategy=strategy, seed=SEED,
        # Gradient clipping is applied per rank *before* averaging, so it
        # is batch-size-nonlinear: fresh-run equivalence across worlds
        # only holds without it (round trips back to the same world stay
        # bitwise either way).
        clip_norm=0.0,
        checkpoint_every=checkpoint_every if ckpt else None,
        checkpoint_path=ckpt, **kw)


def curve(history):
    return [(h.train_loss, h.val_mae) for h in history]


def boundary_checkpoint(data, path, *, strategy=DDPStrategy.DIST_INDEX,
                        epochs=1, **kw):
    """Train ``epochs`` at world 2 and save an epoch-boundary cursor."""
    tr = make_trainer(data, world=2, strategy=strategy, **kw)
    tr.fit(epochs)
    tr.save_training_checkpoint(path, epoch=epochs, step=0)
    return tr


def training_state(path):
    return read_checkpoint_meta(path)["extra"]["training_state"]


# ---------------------------------------------------------------------------
# Tentpole pin 1: round trips are bitwise for every strategy
# ---------------------------------------------------------------------------
class TestReshardRoundTrip:
    @pytest.mark.parametrize("strategy", list(DDPStrategy))
    def test_w2_w4_w2_resume_is_bitwise(self, data, tmp_path, strategy):
        reference = curve(make_trainer(data, strategy=strategy).fit(EPOCHS))
        ckpt = str(tmp_path / "round.npz")
        boundary_checkpoint(data, ckpt, strategy=strategy)
        reshard_checkpoint(ckpt, 4)
        reshard_checkpoint(ckpt, 2)
        resumed = make_trainer(data, strategy=strategy)
        resumed.resume(ckpt)
        assert curve(resumed.fit(EPOCHS)) == reference
        assert [h["to_world"] for h in read_reshard_history(ckpt)] == [4, 2]

    def test_report_accounts_state_bytes(self, data, tmp_path):
        ckpt = str(tmp_path / "report.npz")
        boundary_checkpoint(data, ckpt)
        report = reshard_checkpoint(ckpt, 4)
        assert report.old_world == 2 and report.new_world == 4
        assert report.old_batch == 8 and report.new_batch == 4
        assert report.global_batch == GLOBAL_BATCH
        assert not report.midepoch
        # Adam keeps two fp32 slots per parameter.
        assert report.slot_bytes == 2 * report.param_bytes
        assert report.param_bytes > 0 and report.seconds > 0
        assert "2->4" in report.summary()


# ---------------------------------------------------------------------------
# Tentpole pin 2: fresh-run equivalence under world-invariant shuffles
# ---------------------------------------------------------------------------
class TestFreshRunMatch:
    """Global shuffle deals one world-independent permutation round-robin,
    so a W-trained prefix + reshard continues exactly where a fresh W'
    run would be — to float-regrouping tolerance (1e-6 class)."""

    STRATEGIES = [DDPStrategy.BASELINE_DDP, DDPStrategy.DIST_INDEX]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("new_world", [1, 4])   # W' < W and W' > W
    def test_boundary_reshard_matches_fresh_world(self, data, tmp_path,
                                                  strategy, new_world):
        fresh = curve(make_trainer(data, world=new_world,
                                   strategy=strategy).fit(EPOCHS))
        ckpt = str(tmp_path / f"to{new_world}.npz")
        boundary_checkpoint(data, ckpt, strategy=strategy)
        reshard_checkpoint(ckpt, new_world)
        resumed = make_trainer(data, world=new_world, strategy=strategy)
        resumed.resume(ckpt)
        got = curve(resumed.fit(EPOCHS))
        # Epoch 0 predates the reshard (trained at world 2); every epoch
        # after the world change must match the fresh-W' curve.
        np.testing.assert_allclose(got[1:], fresh[1:], atol=1e-6,
                                   rtol=1e-6)

    def test_midepoch_global_cursor_transfers(self, data, tmp_path):
        """A mid-epoch cursor under the global shuffle resumes at a new
        world and still lands on the fresh-run curve: the step covers
        the same permutation slice at any world."""
        fresh = curve(make_trainer(data, world=4).fit(1))
        ckpt = str(tmp_path / "mid.npz")
        tr = make_trainer(data, world=2, ckpt=ckpt, checkpoint_every=6)
        tr.fit(1)
        state = training_state(ckpt)
        assert 0 < state["step"] < state["epoch_steps"]   # genuinely mid
        report = reshard_checkpoint(ckpt, 4)
        assert report.midepoch
        # Partial-epoch losses are reweighted to new-world entry counts
        # around their exact mean, keeping the epoch mean unskewed.
        losses = training_state(ckpt)["epoch_losses"]
        assert len(losses) == state["step"] * 4
        np.testing.assert_allclose(np.mean(losses),
                                   np.mean(state["epoch_losses"]))
        resumed = make_trainer(data, world=4)
        resumed.resume(ckpt)
        got = curve(resumed.fit(1))
        np.testing.assert_allclose(got, fresh, atol=1e-5, rtol=1e-5)


class TestPartitionDependentShuffles:
    """GENERALIZED_INDEX defaults to the paper's batch shuffle, whose
    per-rank order keys on the partition: no cross-world bitwise claim
    exists, but epoch-boundary resharding stays sound and deterministic
    (the paper's Table-5 accuracy-equivalence argument)."""

    def test_boundary_reshard_is_deterministic(self, data, tmp_path):
        ckpt = str(tmp_path / "gen.npz")
        boundary_checkpoint(data, ckpt,
                            strategy=DDPStrategy.GENERALIZED_INDEX)
        reshard_checkpoint(ckpt, 4)

        def continuation():
            tr = make_trainer(data, world=4,
                              strategy=DDPStrategy.GENERALIZED_INDEX)
            tr.resume(ckpt)
            return curve(tr.fit(EPOCHS))

        first = continuation()
        assert continuation() == first          # pinned deterministic

    def test_accuracy_level_equivalence(self, data, tmp_path):
        fresh = make_trainer(
            data, world=4,
            strategy=DDPStrategy.GENERALIZED_INDEX).fit(EPOCHS)
        ckpt = str(tmp_path / "gen-acc.npz")
        boundary_checkpoint(data, ckpt,
                            strategy=DDPStrategy.GENERALIZED_INDEX)
        reshard_checkpoint(ckpt, 4)
        resumed = make_trainer(data, world=4,
                               strategy=DDPStrategy.GENERALIZED_INDEX)
        resumed.resume(ckpt)
        got = resumed.fit(EPOCHS)
        assert abs(got[-1].val_mae - fresh[-1].val_mae) \
            < 0.25 * fresh[-1].val_mae

    def test_midepoch_cursor_is_refused(self, data, tmp_path):
        ckpt = str(tmp_path / "gen-mid.npz")
        tr = make_trainer(data, world=2,
                          strategy=DDPStrategy.GENERALIZED_INDEX,
                          ckpt=ckpt, checkpoint_every=6)
        tr.fit(1)
        with pytest.raises(ReshardError, match="mid-epoch.*epoch-boundary"):
            reshard_checkpoint(ckpt, 4)
        # Refusal must leave the archive untouched and still resumable.
        assert training_state(ckpt)["world_size"] == 2
        again = make_trainer(data, world=2,
                             strategy=DDPStrategy.GENERALIZED_INDEX)
        again.resume(ckpt)


# ---------------------------------------------------------------------------
# Transports: a resharded archive is fabric-agnostic
# ---------------------------------------------------------------------------
class TestCrossTransport:
    @pytest.mark.parametrize("transport", ["thread", "process", "socket"])
    def test_resharded_resume_matches_sim_bitwise(self, data, tmp_path,
                                                  transport):
        ckpt = str(tmp_path / f"{transport}.npz")
        boundary_checkpoint(data, ckpt)
        reshard_checkpoint(ckpt, 4)
        sim = make_trainer(data, world=4)
        sim.resume(ckpt)
        reference = curve(sim.fit(EPOCHS))
        other = make_trainer(data, world=4, transport=transport)
        try:
            other.resume(ckpt)
            got = curve(other.fit(EPOCHS))
        finally:
            shutdown = getattr(other.comm.transport, "shutdown", None)
            if shutdown:
                shutdown()
        assert got == reference


# ---------------------------------------------------------------------------
# Property: reshard composition over the divisor lattice
# ---------------------------------------------------------------------------
class TestReshardProperties:
    @pytest.fixture(scope="class")
    def archive(self, data, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("elastic") / "base.npz")
        boundary_checkpoint(data, path)
        return path

    @settings(max_examples=15, deadline=None)
    @given(worlds=st.lists(st.sampled_from([1, 2, 4, 8, 16]),
                           min_size=1, max_size=4))
    def test_chained_reshards_compose(self, archive, tmp_path_factory,
                                      worlds):
        """reshard(...reshard(a, w1)..., wn) == reshard(a, wn): the
        cursor transformation is path-independent (state and arrays),
        and only ``reshard_history`` remembers the route."""
        base = tmp_path_factory.mktemp("prop")
        chained = str(base / "chained.npz")
        direct = str(base / "direct.npz")
        reshard_checkpoint(archive, worlds[0], chained)
        for w in worlds[1:]:
            reshard_checkpoint(chained, w)
        reshard_checkpoint(archive, worlds[-1], direct)

        s_chain, s_direct = training_state(chained), training_state(direct)
        assert s_chain == s_direct
        assert s_chain["world_size"] == worlds[-1]
        assert s_chain["batch_size"] * worlds[-1] == GLOBAL_BATCH
        with np.load(chained) as a, np.load(direct) as b:
            keys = set(a.files) - {"__meta__"}
            assert keys == set(b.files) - {"__meta__"}
            for k in keys:
                np.testing.assert_array_equal(a[k], b[k])
        assert [h["to_world"] for h in read_reshard_history(chained)] \
            == worlds
        assert [h["to_world"] for h in read_reshard_history(direct)] \
            == [worlds[-1]]


# ---------------------------------------------------------------------------
# Refusals: every unsound transformation fails loudly
# ---------------------------------------------------------------------------
class TestReshardErrors:
    @pytest.fixture(scope="class")
    def archive(self, data, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("errs") / "base.npz")
        boundary_checkpoint(data, path)
        return path

    def test_indivisible_world_refused(self, archive):
        with pytest.raises(ReshardError, match="does not divide"):
            reshard_checkpoint(archive, 3)

    def test_nonpositive_world_refused(self, archive):
        with pytest.raises(ReshardError, match=">= 1"):
            reshard_checkpoint(archive, 0)

    def test_non_resumable_checkpoint_refused(self, data, tmp_path):
        from repro.training.checkpoint import save_checkpoint
        idx, supports = data
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=SEED)
        path = str(tmp_path / "plain.npz")
        save_checkpoint(path, model)
        with pytest.raises(ReshardError, match="training cursor"):
            reshard_checkpoint(path, 4)

    def test_missing_archive_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            reshard_checkpoint(str(tmp_path / "nope.npz"), 2)

    def _legacy_copy(self, archive, path):
        """A pre-elastic archive: no recorded batch_size/epoch_steps."""
        with np.load(archive) as a:
            arrays = {k: a[k] for k in a.files}
        meta = json.loads(bytes(arrays["__meta__"]).decode())
        state = meta["extra"]["training_state"]
        del state["batch_size"], state["epoch_steps"]
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        write_archive(path, arrays)

    def test_legacy_archive_needs_batch_size(self, archive, tmp_path):
        legacy = str(tmp_path / "legacy.npz")
        self._legacy_copy(archive, legacy)
        with pytest.raises(ReshardError, match="batch_size"):
            reshard_checkpoint(legacy, 4)
        report = reshard_checkpoint(legacy, 4, batch_size=8)
        assert report.new_batch == 4

    def test_contradictory_batch_size_refused(self, archive, tmp_path):
        out = str(tmp_path / "copy.npz")
        with pytest.raises(ReshardError, match="contradicts"):
            reshard_checkpoint(archive, 4, out, batch_size=5)

    def test_resume_with_wrong_loader_batch_refused(self, data, tmp_path,
                                                    archive):
        """The resharded world is right but the loaders were not shrunk:
        the global batch would drift, so resume() refuses."""
        out = str(tmp_path / "w1.npz")
        reshard_checkpoint(archive, 1, out)
        idx, supports = data
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=SEED)
        wrong = DDPTrainer(model, Adam(model.parameters(), lr=0.01),
                           ProcessGroup.sim(1),
                           IndexBatchLoader(idx, "train", 8),  # not 16
                           seed=SEED, clip_norm=0.0)
        with pytest.raises(ValueError, match="batch_size=16"):
            wrong.resume(out)


# ---------------------------------------------------------------------------
# Recovery integration: elastic relaunches reshard in place
# ---------------------------------------------------------------------------
class TestElasticRecovery:
    def test_relaunch_at_new_world_resumes(self, data, tmp_path):
        ckpt = str(tmp_path / "elastic.npz")
        fresh4 = curve(make_trainer(data, world=4).fit(EPOCHS))
        tr2 = make_trainer(data, world=2)
        tr2.fit(1)
        tr2.save_training_checkpoint(ckpt, epoch=1, step=0)

        def relaunch():
            return make_trainer(data, world=4, ckpt=ckpt,
                                checkpoint_every=4)

        trainer, history, report = train_with_recovery(
            relaunch, EPOCHS, elastic=True)
        assert report.restarts == 0
        np.testing.assert_allclose(curve(history)[1:], fresh4[1:],
                                   atol=1e-6, rtol=1e-6)
        assert training_state(ckpt)["world_size"] == 4

    def test_without_flag_world_change_still_fails(self, data, tmp_path):
        ckpt = str(tmp_path / "strict.npz")
        boundary_checkpoint(data, ckpt)
        with pytest.raises(ValueError, match="world of 2 ranks"):
            train_with_recovery(
                lambda: make_trainer(data, world=4, ckpt=ckpt,
                                     checkpoint_every=4),
                EPOCHS)


# ---------------------------------------------------------------------------
# Autoscaler control loop (stub session: policy logic only)
# ---------------------------------------------------------------------------
class _StubSession:
    def __init__(self, shards=2):
        self.num_shards = shards
        self.calls = []

    def scale_to(self, n):
        self.calls.append(n)
        self.num_shards = n


class TestAutoscalerPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="slo_p99"):
            AutoscalerPolicy(slo_p99=0.0)
        with pytest.raises(ValueError, match="min_shards"):
            AutoscalerPolicy(slo_p99=0.01, min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalerPolicy(slo_p99=0.01, scale_up_at=0.5,
                             scale_down_at=0.6)

    def make(self, shards=2, **kw):
        kw.setdefault("slo_p99", 0.010)
        kw.setdefault("min_shards", 1)
        kw.setdefault("max_shards", 8)
        kw.setdefault("transition_seconds", 0.0)
        session = _StubSession(shards)
        clock = ManualClock()
        return session, clock, ShardAutoscaler(session,
                                               AutoscalerPolicy(**kw), clock)

    def test_breach_doubles_and_records(self):
        session, _, auto = self.make(shards=2)
        event = auto.observe_p99(0.020)
        assert session.calls == [4]
        assert (event.from_shards, event.to_shards) == (2, 4)
        assert "SLO" in event.reason and auto.events == [event]

    def test_quiet_halves(self):
        session, _, auto = self.make(shards=4)
        auto.observe_p99(0.004)          # < 0.45 * slo
        assert session.calls == [2]

    def test_hysteresis_band_holds(self):
        session, _, auto = self.make(shards=4)
        assert auto.observe_p99(0.0060) is None     # inside the band
        assert auto.observe_p99(0.0099) is None
        assert session.calls == []

    def test_bounds_respected(self):
        session, _, auto = self.make(shards=8)
        assert auto.observe_p99(0.5) is None        # already at max
        session2, _, auto2 = self.make(shards=1)
        assert auto2.observe_p99(1e-6) is None      # already at min
        assert session.calls == session2.calls == []

    def test_nan_p99_holds(self):
        """An empty tick (no completions) reports NaN; never scale on it."""
        session, _, auto = self.make(shards=2)
        assert auto.observe_p99(float("nan")) is None
        assert session.calls == []

    def test_cooldown_blocks_back_to_back(self):
        session, clock, auto = self.make(shards=2, cooldown_seconds=5.0)
        auto.observe_p99(0.020)
        assert auto.observe_p99(0.020) is None      # still cooling
        clock.advance(5.0)
        auto.observe_p99(0.020)
        assert session.calls == [4, 8]

    def test_transition_cost_charged_to_clock(self):
        session, clock, auto = self.make(shards=2, transition_seconds=0.5)
        auto.observe_p99(0.020)
        assert clock.now == 0.5


# ---------------------------------------------------------------------------
# Capacity planner
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def perf():
    from repro.datasets.catalog import get_spec
    from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf
    spec = get_spec("pems-bay")
    model = pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                           spec.train_features)
    return TrainingPerfModel(spec, model, batch_size=64)


class TestTrainingPlanner:
    def test_needs_a_budget(self, perf):
        with pytest.raises(ValueError, match="budget"):
            plan_training(perf, strategy="dist-index")

    def test_picks_smallest_world_meeting_budget(self, perf):
        single = perf.run("dist-index", 1, epochs=10).total_seconds
        budget = single * 0.75
        plan = plan_training(perf, strategy="dist-index", epochs=10,
                             total_budget_seconds=budget,
                             worlds=(1, 2, 4, 8))
        assert plan.meets_budget and plan.world_size > 1
        # Minimality: no smaller candidate met the budget.
        for w, _, total_s, _ in plan.sweep:
            if w < plan.world_size:
                assert total_s > budget
        assert plan.total_seconds <= budget
        assert plan.gpu_seconds == plan.world_size * plan.total_seconds
        assert str(plan.world_size) in plan.summary()

    def test_impossible_budget_returns_best_effort(self, perf):
        plan = plan_training(perf, strategy="dist-index", epochs=10,
                             total_budget_seconds=1e-3, worlds=(1, 2, 4))
        assert not plan.meets_budget
        assert plan.total_seconds == min(r[2] for r in plan.sweep)

    def test_reshard_seconds_prices_the_transition(self, perf):
        from repro.training.perfmodel import RESTART_FIXED_OVERHEAD
        cost = perf.reshard_seconds(2, 4)
        assert cost > RESTART_FIXED_OVERHEAD
        # Broadcasting over a wider world costs (weakly) more.
        assert perf.reshard_seconds(2, 64) >= cost
        with pytest.raises(ValueError):
            perf.reshard_seconds(0, 4)


class TestServingPlanner:
    @staticmethod
    def service_time(batch, shards):
        return (2e-3 + 1e-3 * batch) / shards

    def test_picks_smallest_fleet_holding_slo(self):
        plan = plan_serving(traffic_qps=2200.0, slo_p99=9e-3,
                            service_time=self.service_time, max_batch=8)
        assert plan.meets_slo and plan.shards == 4
        assert plan.utilization < 0.85
        assert plan.projected_latency <= 9e-3
        # 2 shards saturate: rho = (2200/8) * 5e-3 > 1.
        rho_at = dict((s, rho) for s, _, rho, _ in plan.sweep)
        assert rho_at[2] > 1.0

    def test_saturated_everywhere_is_best_effort(self):
        plan = plan_serving(traffic_qps=1e6, slo_p99=1e-3,
                            service_time=self.service_time,
                            shard_counts=(1, 2, 4))
        assert not plan.meets_slo and plan.shards == 4
        assert plan.projected_latency == float("inf")
        assert "BEST EFFORT" in plan.summary()

    def test_setpoints_bracket_the_traffic_envelope(self):
        policy = autoscaler_setpoints(
            low_qps=400.0, peak_qps=2200.0, slo_p99=9e-3,
            service_time=self.service_time, max_batch=8,
            cooldown_seconds=1.0)
        # 1 shard at 400 qps projects 20 ms (> SLO): the quiet floor is 2.
        assert policy.min_shards == 2
        assert policy.max_shards == 4
        assert policy.cooldown_seconds == 1.0

    def test_queueing_latency_edges(self):
        from repro.cluster.costmodel import gpu_seconds, queueing_latency
        assert queueing_latency(1e-3, 0.0) == 1e-3
        assert queueing_latency(1e-3, 0.5) == 2e-3
        assert queueing_latency(1e-3, 1.0) == float("inf")
        with pytest.raises(ValueError):
            queueing_latency(-1.0, 0.5)
        with pytest.raises(ValueError):
            gpu_seconds(0, 1.0)


# ---------------------------------------------------------------------------
# Live serving resize: ShardedSession.scale_to
# ---------------------------------------------------------------------------
from repro.api import RunSpec, run                              # noqa: E402
from repro.elastic import (                                     # noqa: E402
    run_autoscaled_trace,
    shard_scaled_service_time,
)
from repro.serving import ShardedSession                        # noqa: E402
from repro.serving.service import ForecastService               # noqa: E402

SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(test.batch_size))
    return xb.copy()


def make_sharded(trained, **kw) -> ShardedSession:
    kw.setdefault("num_shards", 2)
    return ShardedSession(trained.artifacts.model,
                          trained.artifacts.loaders.scaler,
                          trained.artifacts.dataset.graph,
                          spec=trained.spec, **kw)


def warm(session, trained, rows=None):
    ds = trained.artifacts.dataset
    rows = rows or 2 * session.horizon
    for values, ts in zip(ds.signals[:rows], ds.timestamps[:rows]):
        session.ingest(values, float(ts))


class TestScaleTo:
    def test_resize_round_trip_is_bitwise(self, trained):
        sess = make_sharded(trained, num_shards=2, num_standby=2)
        warm(sess, trained)
        ref = sess.forecast_current().copy()

        up = sess.scale_to(4)
        assert sess.num_shards == 4 and len(sess.workers) == 4
        np.testing.assert_array_equal(sess.forecast_current().copy(), ref)
        assert up.mode == "scale_up"
        assert (up.from_shards, up.to_shards) == (2, 4)
        assert up.standby_used == 2 and up.standby_returned == 0
        assert sess.standby == 0
        assert up.seconds > 0

        down = sess.scale_to(2)
        assert sess.num_shards == 2
        np.testing.assert_array_equal(sess.forecast_current().copy(), ref)
        assert down.mode == "scale_down"
        assert down.standby_returned == 2 and sess.standby == 2
        assert sess.scale_events == [up, down]
        assert sess.halo_stats()["scale_events"] == 2

    def test_resize_survives_fresh_ingest(self, trained):
        """State ingested *after* a resize flows into the new workers'
        stores — the replay log keeps growing across memberships."""
        sess = make_sharded(trained, num_shards=2)
        warm(sess, trained)
        sess.scale_to(4)
        flat = make_sharded(trained, num_shards=4)
        warm(flat, trained)
        ds = trained.artifacts.dataset
        nxt = 2 * sess.horizon
        sess.ingest(ds.signals[nxt], float(ds.timestamps[nxt]))
        flat.ingest(ds.signals[nxt], float(ds.timestamps[nxt]))
        np.testing.assert_array_equal(sess.forecast_current().copy(),
                                      flat.forecast_current().copy())

    def test_same_size_is_a_noop(self, trained):
        sess = make_sharded(trained, num_shards=2)
        assert sess.scale_to(2) is None
        assert sess.scale_events == []

    def test_non_power_of_two_refused(self, trained):
        sess = make_sharded(trained, num_shards=2)
        with pytest.raises(ValueError, match="power of two"):
            sess.scale_to(3)

    def test_assignment_wrong_shape_refused(self, trained):
        sess = make_sharded(trained, num_shards=2)
        with pytest.raises(ShapeError, match="assignment"):
            sess.scale_to(2, assignment=np.zeros(3, dtype=np.int64))

    def test_assignment_with_gap_refused(self, trained):
        """An explicit assignment must be a partition: every shard id in
        range and every sensor owned.  Out-of-range ids leave their
        sensors unowned."""
        sess = make_sharded(trained, num_shards=2)
        bad = np.zeros(sess.num_nodes, dtype=np.int64)
        bad[-1] = 7                                 # not a shard in [0, 2)
        with pytest.raises(ShapeError, match="assignment"):
            sess.scale_to(2, assignment=bad)

    def test_explicit_equal_size_repartition(self, trained):
        """Same shard count, different ownership: a live re-partition."""
        sess = make_sharded(trained, num_shards=2)
        warm(sess, trained)
        ref = sess.forecast_current().copy()
        flipped = 1 - sess.assignment
        event = sess.scale_to(2, assignment=flipped)
        assert event.mode == "repartition"
        np.testing.assert_array_equal(sess.assignment, flipped)
        np.testing.assert_array_equal(sess.forecast_current().copy(), ref)


class TestOverlapRegression:
    """Regression: merge paths write ``out[:, :, w.owned]`` per shard, so
    overlapping ownership silently let the last writer win.  Ownership is
    now validated as a partition at construction, failover, and resize."""

    def test_overlap_after_promotion_is_refused(self, trained):
        sess = make_sharded(trained, num_shards=2, num_standby=1)
        warm(sess, trained)
        # Corrupt shard 1 to claim shard 0's sensors, then lose it: the
        # standby promotion inherits the corrupted ownership and the
        # partition check must catch the overlap instead of serving
        # silently wrong merges.
        sess.workers[1].owned = sess.workers[0].owned.copy()
        sess.kill_worker(1)
        with pytest.raises(ShapeError, match="overlapping shard assignment"):
            sess.forecast_current()

    def test_out_of_range_ownership_is_refused(self, trained):
        sess = make_sharded(trained, num_shards=2, num_standby=1)
        warm(sess, trained)
        sess.workers[1].owned = np.array([sess.num_nodes + 3])
        sess.kill_worker(1)
        with pytest.raises(ShapeError, match="outside"):
            sess.forecast_current()


# ---------------------------------------------------------------------------
# The canonical autoscale demo: 2 -> 4 -> 2 under a traffic step, pinned
# ---------------------------------------------------------------------------
class TestAutoscaledTrace:
    def run_demo(self, trained, pool):
        sess = make_sharded(trained, num_shards=2, num_standby=2)
        svc = ForecastService(
            sess, max_batch=8, max_wait=5e-4,
            service_time=shard_scaled_service_time(sess, base=2e-3,
                                                   per_item=1e-3))
        policy = AutoscalerPolicy(slo_p99=4.5e-3, min_shards=2, max_shards=4,
                                  scale_down_at=0.4, transition_seconds=0.02)
        auto = ShardAutoscaler(sess, policy, svc.clock)
        report = run_autoscaled_trace(
            svc, pool, auto, [(500.0, 3), (2200.0, 5), (500.0, 4)],
            seed=0, tick_requests=40)
        return sess, report

    def test_scales_up_then_down_holding_slo(self, trained, pool):
        sess, report = self.run_demo(trained, pool)
        assert report.shards_path == [2, 2, 2, 4, 4, 4, 4, 4, 2, 2, 2, 2]
        up, down = report.events
        assert (up.from_shards, up.to_shards) == (2, 4)
        assert (down.from_shards, down.to_shards) == (4, 2)
        assert up.p99 > report.slo_p99            # breach triggered it
        assert down.p99 < 0.4 * report.slo_p99    # quiet triggered it
        # Standby replicas funded the scale-up and returned on the way down.
        assert sess.standby == 2
        assert [e.mode for e in sess.scale_events] == ["scale_up",
                                                       "scale_down"]

    def test_transitions_converge_and_slo_mostly_holds(self, trained, pool):
        _, report = self.run_demo(trained, pool)
        assert report.requests == 480
        # Misses concentrate in the one overloaded tick before the
        # scale-up lands; every other tick serves inside the deadline.
        assert report.deadline_misses == report.ticks[3]["deadline_misses"] \
            == 32
        assert report.slo_compliance == pytest.approx(448 / 480)
        up_conv, down_conv = report.convergence_seconds
        assert 0.0 < up_conv < 0.1                # first post-resize tick
        assert down_conv == 0.0                   # already under SLO
        assert "2->4->2" in report.summary()

    def test_trace_is_deterministic(self, trained, pool):
        _, first = self.run_demo(trained, pool)
        _, second = self.run_demo(trained, pool)
        assert first.ticks == second.ticks
        assert first.events == second.events
