"""Tests for ``repro.kernels``: backend registry, fused-op parity,
mixed-precision storage, and the PreparedCSR cache bounds.

The compiled-backend parity properties run wherever numba is importable
and are recorded-skipped elsewhere; the numpy-backend properties (fused
GRU ops vs their unfused composition, f16-store round-trip bounds) run
everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.autograd import Tensor, functional as F
from repro.autograd.sparse_kernels import (
    _PREPARED,
    _PREPARED_DTYPES_MAX,
    _PREPARED_MAX,
    clear_prepared_cache,
    prepared_csr,
)
from repro.api import RunSpec
from repro.graph import dual_random_walk_supports, random_sensor_network
from repro.models.dconv import DiffusionConv
from repro.serving.sharding import ShardedSession

HAVE_NUMBA = "numba" in kernels.available_backends()

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba backend not importable here")


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_first(self):
        backends = kernels.available_backends()
        assert backends[0] == "numpy"
        assert set(backends) <= set(kernels.KNOWN_BACKENDS)

    def test_unknown_backend_is_loud(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            kernels.get_backend("tpu")

    def test_known_but_missing_names_availability(self):
        if HAVE_NUMBA:
            pytest.skip("numba is installed; nothing is missing")
        with pytest.raises(KeyError, match="known but not available"):
            kernels.get_backend("numba")

    def test_use_backend_scopes_and_restores(self):
        before = kernels.active_backend()
        with kernels.use_backend("numpy") as b:
            assert b is kernels.active_backend()
            assert b.name == "numpy"
        assert kernels.active_backend() is before

    def test_use_backend_auto_is_noop(self):
        before = kernels.active_backend()
        for name in (None, "auto"):
            with kernels.use_backend(name) as b:
                assert b is before
        assert kernels.active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = kernels.active_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("numpy"):
                raise RuntimeError("boom")
        assert kernels.active_backend() is before

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert kernels._resolve_default().name == "numpy"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        assert kernels._resolve_default().name == "numpy"
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert kernels._resolve_default().name == "numpy"

    def test_numpy_backend_flags(self):
        b = kernels.get_backend("numpy")
        assert b.compiled is False
        assert b.fused_gru is False

    def test_runspec_validates_backend(self):
        with pytest.raises(KeyError, match="kernel backend"):
            RunSpec(dataset="pems-bay", backend="tpu")
        spec = RunSpec(dataset="pems-bay", backend="numpy")
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec(dataset="pems-bay").backend == "auto"


# ---------------------------------------------------------------------------
# Precision resolution
# ---------------------------------------------------------------------------
class TestResolveStoreDtype:
    def test_none_passthrough(self):
        assert kernels.resolve_store_dtype(None) is None

    def test_float16(self):
        assert kernels.resolve_store_dtype("float16") == np.float16
        assert kernels.resolve_store_dtype(np.float16) == np.float16

    def test_rejects_non_float(self):
        with pytest.raises(ValueError, match="float"):
            kernels.resolve_store_dtype("int32")

    def test_bfloat16_gated_on_ml_dtypes(self):
        try:
            import ml_dtypes
        except ImportError:
            with pytest.raises(ImportError, match="float16"):
                kernels.resolve_store_dtype("bfloat16")
        else:
            dt = kernels.resolve_store_dtype("bf16")
            assert dt == np.dtype(ml_dtypes.bfloat16)


# ---------------------------------------------------------------------------
# PreparedCSR cache bounds (satellite: dtype-churn eviction)
# ---------------------------------------------------------------------------
def _random_csr(n, seed):
    g = random_sensor_network(n, seed=seed)
    return dual_random_walk_supports(g.weights)[0]


class TestPreparedCache:
    def setup_method(self):
        clear_prepared_cache()

    def teardown_method(self):
        clear_prepared_cache()

    def test_hit_returns_same_object(self):
        m = _random_csr(16, 0)
        assert prepared_csr(m, np.float32) is prepared_csr(m, np.float32)

    def test_per_dtype_entries(self):
        m = _random_csr(16, 0)
        p32 = prepared_csr(m, np.float32)
        p64 = prepared_csr(m, np.float64)
        assert p32 is not p64
        assert p32 is prepared_csr(m, np.float32)

    def test_dtype_churn_is_bounded(self):
        m = _random_csr(16, 0)
        first = prepared_csr(m, np.float32)
        for dt in (np.float64, np.longdouble):
            prepared_csr(m, dt)
        by_dtype = _PREPARED[id(m)][1]
        assert len(by_dtype) <= _PREPARED_DTYPES_MAX
        # The oldest dtype was evicted; re-requesting it rebuilds.
        assert prepared_csr(m, np.float32) is not first

    def test_matrix_fifo_eviction(self):
        matrices = [_random_csr(8, seed) for seed in range(_PREPARED_MAX + 2)]
        for m in matrices:
            prepared_csr(m, np.float32)
        assert len(_PREPARED) <= _PREPARED_MAX
        assert id(matrices[0]) not in _PREPARED
        assert id(matrices[-1]) in _PREPARED


# ---------------------------------------------------------------------------
# Fused GRU ops vs their unfused composition (every backend)
# ---------------------------------------------------------------------------
def _gru_unfused(pre, h, cand_pre):
    """The pre-fusion op composition the numpy path is defined by."""
    hidden = h.shape[-1]
    g = pre.sigmoid()
    r = g[..., :hidden]
    u = g[..., hidden:]
    rh = r * h
    out = F.gru_update(u, h, cand_pre.tanh())
    return rh, u, out


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(1, 4), nodes=st.integers(1, 12),
       hidden=st.integers(1, 8), seed=st.integers(0, 2**31 - 1))
def test_gru_fused_matches_composition(batch, nodes, hidden, seed):
    rng = np.random.default_rng(seed)
    shape = (batch, nodes, hidden)
    pre = rng.standard_normal(shape[:-1] + (2 * hidden,)).astype(np.float32)
    hdata = rng.standard_normal(shape).astype(np.float32)
    cand = rng.standard_normal(shape).astype(np.float32)
    gout = rng.standard_normal(shape).astype(np.float32)

    def run_fused():
        pt = Tensor(pre, requires_grad=True)
        ht = Tensor(hdata, requires_grad=True)
        ct = Tensor(cand, requires_grad=True)
        rh, u = F.gru_gates(pt, ht)
        out = F.gru_blend(u, ht, ct)
        (out + rh).backward(gout)
        return out.data, pt.grad, ht.grad, ct.grad

    def run_unfused():
        pt = Tensor(pre, requires_grad=True)
        ht = Tensor(hdata, requires_grad=True)
        ct = Tensor(cand, requires_grad=True)
        rh, _, out = _gru_unfused(pt, ht, ct)
        (out + rh).backward(gout)
        return out.data, pt.grad, ht.grad, ct.grad

    for fused, ref in zip(run_fused(), run_unfused()):
        np.testing.assert_allclose(fused, ref, rtol=0, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(batch=st.integers(1, 3), hidden=st.integers(1, 6),
       seed=st.integers(0, 2**31 - 1))
def test_gru_fused_handles_2d_inputs(batch, hidden, seed):
    """The fused ops accept [batch, features] (no node axis) too."""
    rng = np.random.default_rng(seed)
    pre = Tensor(rng.standard_normal((batch, 2 * hidden)).astype(np.float32))
    h = Tensor(rng.standard_normal((batch, hidden)).astype(np.float32))
    cand = Tensor(rng.standard_normal((batch, hidden)).astype(np.float32))
    rh, u = F.gru_gates(pre, h)
    out = F.gru_blend(u, h, cand)
    rh_ref, u_ref, out_ref = _gru_unfused(pre, h, cand)
    np.testing.assert_allclose(rh.data, rh_ref.data, rtol=0, atol=1e-6)
    np.testing.assert_allclose(u.data, u_ref.data, rtol=0, atol=1e-6)
    np.testing.assert_allclose(out.data, out_ref.data, rtol=0, atol=1e-6)


def test_gru_gates_shape_check():
    pre = Tensor(np.zeros((2, 3, 8), np.float32))
    h = Tensor(np.zeros((2, 3, 3), np.float32))
    with pytest.raises(Exception, match="shape|gates"):
        F.gru_gates(pre, h)


# ---------------------------------------------------------------------------
# Compiled-backend parity (recorded-skipped without numba)
# ---------------------------------------------------------------------------
@needs_numba
@settings(max_examples=10, deadline=None)
@given(batch=st.integers(1, 4), nodes=st.integers(4, 24),
       channels=st.integers(1, 8), k_hops=st.integers(0, 3),
       seed=st.integers(0, 2**31 - 1))
def test_dconv_parity_numpy_vs_numba(batch, nodes, channels, k_hops, seed):
    g = random_sensor_network(nodes, seed=seed % 997)
    supports = dual_random_walk_supports(g.weights)
    conv = DiffusionConv(supports, channels, channels, k_hops=k_hops)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, nodes, channels)).astype(np.float32)
    gout = rng.standard_normal((batch, nodes, channels)).astype(np.float32)

    results = {}
    for backend in ("numpy", "numba"):
        with kernels.use_backend(backend):
            xt = Tensor(x, requires_grad=True)
            out = conv(xt)
            out.backward(gout)
            results[backend] = (out.data.copy(), xt.grad.copy())
    np.testing.assert_allclose(results["numba"][0], results["numpy"][0],
                               rtol=0, atol=1e-6)
    np.testing.assert_allclose(results["numba"][1], results["numpy"][1],
                               rtol=0, atol=1e-6)


@needs_numba
@settings(max_examples=10, deadline=None)
@given(batch=st.integers(1, 4), nodes=st.integers(1, 16),
       hidden=st.integers(1, 8), seed=st.integers(0, 2**31 - 1))
def test_gru_parity_numpy_vs_numba(batch, nodes, hidden, seed):
    rng = np.random.default_rng(seed)
    pre = rng.standard_normal((batch, nodes, 2 * hidden)).astype(np.float32)
    hdata = rng.standard_normal((batch, nodes, hidden)).astype(np.float32)
    cand = rng.standard_normal((batch, nodes, hidden)).astype(np.float32)
    gout = rng.standard_normal((batch, nodes, hidden)).astype(np.float32)

    results = {}
    for backend in ("numpy", "numba"):
        with kernels.use_backend(backend):
            pt = Tensor(pre, requires_grad=True)
            ht = Tensor(hdata, requires_grad=True)
            ct = Tensor(cand, requires_grad=True)
            rh, u = F.gru_gates(pt, ht)
            out = F.gru_blend(u, ht, ct)
            (out + rh).backward(gout)
            results[backend] = (out.data.copy(), pt.grad.copy(),
                                ht.grad.copy(), ct.grad.copy())
    for got, ref in zip(results["numba"], results["numpy"]):
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-6)


# ---------------------------------------------------------------------------
# Mixed-precision storage: f16 store -> f32 compute round-trip bounds
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_dataset():
    from repro.datasets import load_dataset
    return load_dataset("pems-bay", nodes=12, entries=200, seed=0)


@pytest.fixture(scope="module")
def index_pair(tiny_dataset):
    from repro.preprocessing.index_batching import IndexDataset
    f32 = IndexDataset.from_dataset(tiny_dataset, horizon=4,
                                    store_dtype="float32")
    f16 = IndexDataset.from_dataset(tiny_dataset, horizon=4,
                                    store_dtype="float16")
    return f32, f16


class TestMixedPrecisionStorage:
    def test_f16_halves_resident_data(self, index_pair):
        f32, f16 = index_pair
        assert f16.data.dtype == np.float16
        assert f16.data.nbytes * 2 == f32.data.nbytes

    def test_round_trip_error_bounded(self, index_pair):
        """|f16(x) - x| <= eps_rel * |x| + eps_abs elementwise: one
        float16 rounding of the standardized signal, nothing more."""
        f32, f16 = index_pair
        a = f32.data.astype(np.float32)
        b = f16.data.astype(np.float32)
        bound = np.abs(a) * 2.0**-10 + 2.0**-24
        assert np.all(np.abs(a - b) <= bound)

    @settings(max_examples=20, deadline=None)
    @given(at=st.integers(0, 10**9), n=st.integers(1, 8))
    def test_gather_casts_to_compute_dtype(self, index_pair, at, n):
        f32, f16 = index_pair
        starts = f16.split_starts("train")
        sel = starts[(at + np.arange(n)) % len(starts)]
        x16, y16 = f16.gather(sel)
        x32, y32 = f32.gather(sel)
        assert x16.dtype == np.float16
        bound = np.abs(x32) * 2.0**-10 + 2.0**-24
        assert np.all(np.abs(x32 - x16.astype(f32.data.dtype)) <= bound)
        assert np.all(np.abs(y32 - y16.astype(f32.data.dtype))
                      <= np.abs(y32) * 2.0**-10 + 2.0**-24)


# ---------------------------------------------------------------------------
# Sharded serving: f16 stores + zero-copy halo windows
# ---------------------------------------------------------------------------
class TestShardedZeroCopy:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.api import RunSpec, run
        return run(RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                           batching="index", scale="tiny", seed=0, epochs=1))

    def _session(self, trained, **kw):
        return ShardedSession(
            trained.artifacts.model, trained.artifacts.loaders.scaler,
            trained.artifacts.dataset.graph, num_shards=2,
            spec=trained.spec, **kw)

    def _warm(self, session, trained):
        ds = trained.artifacts.dataset
        warm = 2 * session.horizon
        for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
            session.ingest(values, float(ts))

    def test_own_windows_share_one_pool(self, trained):
        s = self._session(trained)
        assert all(w.own_window is view for w, view
                   in zip(s.workers, s._window_pool.arrays))

    def test_windows_materialise_once_per_version(self, trained):
        s = self._session(trained)
        self._warm(s, trained)
        s.forecast_current()
        version = s._window_version
        assert all(w.window_version == version for w in s.workers)
        snapshots = [w.own_window.copy() for w in s.workers]
        # A second forecast at the same version reuses the shared views.
        s.forecast_current()
        for w, snap in zip(s.workers, snapshots):
            np.testing.assert_array_equal(w.own_window, snap)
        # An ingest invalidates: the version moves past every stamp.
        ds = trained.artifacts.dataset
        s.ingest(ds.signals[0], float(ds.timestamps[0]))
        assert all(w.window_version < s._window_version for w in s.workers)

    def test_f16_store_shrinks_resident_bytes(self, trained):
        # Large enough capacity that the fixed f64 staging row does not
        # dominate the ring bytes the precision choice halves.
        base = self._session(trained, store_capacity=64)
        half = self._session(trained, store_capacity=64,
                             store_dtype="float16")
        sb = base.halo_stats()
        sh = half.halo_stats()
        assert sh["store_dtype"] == "float16"
        assert all(w.store._ring.dtype == np.float16 for w in half.workers)
        assert sb["store_resident_bytes"] > 1.8 * sh["store_resident_bytes"]

    def test_f16_store_forecast_stays_close(self, trained):
        exact = self._session(trained)
        half = self._session(trained, store_dtype="float16")
        self._warm(exact, trained)
        self._warm(half, trained)
        a = exact.forecast_current().copy()
        b = half.forecast_current().copy()
        np.testing.assert_allclose(b, a, rtol=0, atol=5e-2)

    def test_failover_rebuilds_pool(self, trained):
        s = self._session(trained, num_standby=1)
        self._warm(s, trained)
        before = s.forecast_current().copy()
        s.kill_worker(0)
        after = s.forecast_current().copy()
        np.testing.assert_array_equal(after, before)
        assert all(w.own_window is view for w, view
                   in zip(s.workers, s._window_pool.arrays))
