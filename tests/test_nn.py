"""Unit tests for the nn package (modules, layers, RNN, attention)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    Dropout,
    Embedding,
    GRUCell,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    Sequential,
)

RNG = np.random.default_rng(23)


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, seed_name="t1")
        self.fc2 = Linear(8, 2, seed_name="t2")
        self.extra = Parameter(np.zeros(3))
        self.blocks = [Linear(2, 2, seed_name="t3"), Linear(2, 2, seed_name="t4")]
        self.named = {"a": Linear(2, 2, seed_name="t5")}

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModule:
    def test_named_parameters_cover_nested(self):
        net = _Net()
        names = {n for n, _ in net.named_parameters()}
        assert "fc1.weight" in names and "fc2.bias" in names
        assert "extra" in names
        assert "blocks.0.weight" in names and "blocks.1.bias" in names
        assert "named.a.weight" in names

    def test_shared_parameter_deduplicated(self):
        net = _Net()
        net.alias = net.fc1.weight
        params = net.parameters()
        assert sum(1 for p in params if p is net.fc1.weight) == 1

    def test_num_parameters(self):
        net = _Net()
        assert net.num_parameters() == sum(p.size for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net, net2 = _Net(), _Net()
        for p in net.parameters():
            p.data += 1.0
        net2.load_state_dict(net.state_dict())
        for (n1, p1), (n2, p2) in zip(net.named_parameters(),
                                      net2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_missing_key(self):
        net = _Net()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = _Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = _Net()
        net(Tensor(np.ones((2, 4)))).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_propagates(self):
        net = _Net()
        net.drop = Dropout(0.5)
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training


class TestLinear:
    def test_shapes(self):
        lin = Linear(4, 7)
        assert lin(Tensor(np.ones((3, 4)))).shape == (3, 7)
        assert lin(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 7)

    def test_no_bias(self):
        lin = Linear(4, 7, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_deterministic_init(self):
        a = Linear(4, 7, seed_name="same")
        b = Linear(4, 7, seed_name="same")
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        c = Linear(4, 7, seed_name="other")
        assert not np.array_equal(a.weight.data, c.weight.data)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(16)
        out = ln(Tensor(RNG.standard_normal((4, 16)) * 10 + 3)).data
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-2)

    def test_grad_flows_to_scale_shift(self):
        ln = LayerNorm(8)
        ln(Tensor(RNG.standard_normal((3, 8)))).sum().backward()
        assert ln.weight.grad is not None and ln.bias.grad is not None


class TestEmbeddingDropoutSequential:
    def test_embedding_shape(self):
        emb = Embedding(10, 6)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 6)

    def test_dropout_eval_identity(self):
        d = Dropout(0.9)
        d.eval()
        x = Tensor(np.ones((5, 5)))
        assert d(x) is x

    def test_sequential_order_and_len(self):
        seq = Sequential(Linear(4, 8, seed_name="s1"), Linear(8, 2, seed_name="s2"))
        assert len(seq) == 2
        assert seq(Tensor(np.ones((3, 4)))).shape == (3, 2)
        assert seq[0].out_features == 8

    def test_sequential_registers_params(self):
        seq = Sequential(Linear(4, 8), Linear(8, 2))
        assert len(seq.parameters()) == 4


class TestGRUCell:
    def test_shapes_and_state(self):
        cell = GRUCell(3, 12)
        h = cell.init_hidden(5)
        assert h.shape == (5, 12)
        h2 = cell(Tensor(np.ones((5, 3))), h)
        assert h2.shape == (5, 12)

    def test_gradients_flow_through_time(self):
        cell = GRUCell(2, 4)
        h = cell.init_hidden(3)
        x = Tensor(RNG.standard_normal((3, 2)).astype(np.float32),
                   requires_grad=True)
        for _ in range(4):
            h = cell(x, h)
        h.sum().backward()
        assert x.grad is not None
        assert cell.w_cand.grad is not None

    def test_zero_input_keeps_reasonable_state(self):
        cell = GRUCell(2, 4)
        h = cell(Tensor(np.zeros((1, 2))), cell.init_hidden(1))
        assert np.all(np.abs(h.data) < 1.0)


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(24, 4)
        out = mha(Tensor(RNG.standard_normal((2, 7, 24)).astype(np.float32)))
        assert out.shape == (2, 7, 24)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_causal_mask_blocks_future(self):
        mha = MultiHeadAttention(8, 2, causal=True)
        x = RNG.standard_normal((1, 5, 8)).astype(np.float32)
        base = mha(Tensor(x)).data
        x2 = x.copy()
        x2[0, -1] += 10.0  # perturb only the last position
        pert = mha(Tensor(x2)).data
        np.testing.assert_allclose(base[0, :-1], pert[0, :-1], atol=1e-5)
        assert not np.allclose(base[0, -1], pert[0, -1])

    def test_noncausal_attends_everywhere(self):
        mha = MultiHeadAttention(8, 2, causal=False)
        x = RNG.standard_normal((1, 5, 8)).astype(np.float32)
        base = mha(Tensor(x)).data
        x2 = x.copy()
        x2[0, -1] += 10.0
        pert = mha(Tensor(x2)).data
        assert not np.allclose(base[0, 0], pert[0, 0], atol=1e-5)

    def test_backward(self):
        mha = MultiHeadAttention(8, 2)
        x = Tensor(RNG.standard_normal((2, 4, 8)).astype(np.float32),
                   requires_grad=True)
        mha(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()
