"""Tests for dynamic graphs with temporal signal (future-work extension)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.dynamic import DynamicGraphDataset, make_dynamic
from repro.preprocessing.dynamic_index import DynamicIndexDataset
from repro.utils.errors import ShapeError


@pytest.fixture(scope="module")
def dyn():
    ds = load_dataset("pems-bay", nodes=10, entries=240, seed=5)
    return make_dynamic(ds, num_graph_epochs=6, seed=5)


class TestMakeDynamic:
    def test_epoch_count_and_mapping(self, dyn):
        assert dyn.num_epochs == 6
        assert len(dyn.epoch_of_entry) == 240
        assert dyn.epoch_of_entry[0] == 0
        assert dyn.epoch_of_entry[-1] == 5
        assert np.all(np.diff(dyn.epoch_of_entry) >= 0)

    def test_adjacencies_actually_evolve(self, dyn):
        a0 = dyn.adjacencies[0].toarray()
        a5 = dyn.adjacencies[5].toarray()
        assert not np.allclose(a0, a5)

    def test_sparsity_pattern_shared(self, dyn):
        """Epochs reweight but keep structure (cheap support rebuilds)."""
        for a in dyn.adjacencies[1:]:
            np.testing.assert_array_equal(a.indptr, dyn.adjacencies[0].indptr)

    def test_graph_at(self, dyn):
        assert dyn.graph_at(0) is dyn.adjacencies[0]
        assert dyn.graph_at(239) is dyn.adjacencies[5]

    def test_deterministic(self):
        ds = load_dataset("pems-bay", nodes=8, entries=100, seed=1)
        a = make_dynamic(ds, num_graph_epochs=3, seed=2)
        b = make_dynamic(ds, num_graph_epochs=3, seed=2)
        for x, y in zip(a.adjacencies, b.adjacencies):
            np.testing.assert_array_equal(x.data, y.data)

    def test_validation(self):
        ds = load_dataset("pems-bay", nodes=8, entries=100, seed=1)
        with pytest.raises(ValueError):
            make_dynamic(ds, num_graph_epochs=0)
        with pytest.raises(ValueError):
            make_dynamic(ds, rewire_fraction=1.5)

    def test_shape_checks(self, dyn):
        with pytest.raises(ShapeError):
            DynamicGraphDataset(base=dyn.base,
                                adjacencies=dyn.adjacencies,
                                epoch_of_entry=dyn.epoch_of_entry[:10])

    def test_index_representation_much_smaller(self, dyn):
        """The dynamic-graph analogue of eq. (1) vs eq. (2)."""
        assert dyn.indexed_nbytes() < 0.25 * dyn.duplicated_nbytes()


class TestDynamicIndexDataset:
    @pytest.fixture(scope="class")
    def didx(self, dyn):
        return DynamicIndexDataset.from_dynamic(dyn, horizon=6)

    def test_snapshot_returns_views_and_supports(self, didx):
        x, y, supports = didx.snapshot(3)
        assert x.base is didx.signal.data
        assert y.base is didx.signal.data
        assert len(supports) == 2  # dual random-walk

    def test_snapshot_uses_graph_at_prediction_time(self, didx, dyn):
        start = 100
        _, _, supports = didx.snapshot(start)
        epoch = int(dyn.epoch_of_entry[start + didx.horizon - 1])
        assert supports is didx.supports_by_epoch[epoch]

    def test_gather_by_epoch_partitions_batch(self, didx):
        starts = np.arange(0, didx.num_snapshots, 7)
        seen = 0
        for supports, x, y in didx.gather_by_epoch(starts):
            assert x.shape[0] == y.shape[0] > 0
            assert x.shape[1] == didx.horizon
            seen += x.shape[0]
        assert seen == len(starts)

    def test_supports_cached_per_epoch(self, didx, dyn):
        assert len(didx.supports_by_epoch) == dyn.num_epochs

    def test_resident_bytes_positive_and_bounded(self, didx, dyn):
        r = didx.resident_nbytes()
        assert r > didx.signal.resident_nbytes
        # Far below per-snapshot graph duplication.
        assert r < didx.signal.resident_nbytes + dyn.duplicated_nbytes()

    def test_trains_with_per_epoch_supports(self, didx):
        """End-to-end: a model trained per adjacency epoch groups works."""
        from repro.models import PGTDCRNN
        from repro.optim import Adam, l1_loss
        from repro.autograd.tensor import Tensor

        supports0 = didx.supports_by_epoch[0]
        model = PGTDCRNN(supports0, didx.horizon, 2, hidden_dim=8)
        opt = Adam(model.parameters(), lr=0.01)
        starts = didx.signal.split_starts("train")[:24]
        losses = []
        for _ in range(3):
            for supports, x, y in didx.gather_by_epoch(starts):
                # Swap the cell's supports to the epoch's graphs.
                model.cell.gates.supports = supports
                model.cell.candidate.supports = supports
                loss = l1_loss(model(Tensor(x.astype(np.float32))),
                               y[..., :1].astype(np.float32))
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
        assert losses[-1] < losses[0]
