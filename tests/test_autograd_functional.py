"""Unit tests for repro.autograd.functional."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.utils.errors import ShapeError

from tests.helpers import check_gradient

RNG = np.random.default_rng(11)


class TestConcatStack:
    def test_concat_grad(self):
        b = Tensor(RNG.standard_normal((3, 2)), dtype=np.float64)
        check_gradient(lambda t: F.concat([t, b], axis=1) * 2.0,
                       RNG.standard_normal((3, 4)))

    def test_concat_axis0_values(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((1, 3)))
        out = F.concat([a, b], axis=0)
        assert out.shape == (3, 3)

    def test_concat_routes_grads_to_both(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        (F.concat([a, b], axis=0) * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, 3 * np.ones((2, 2)))

    def test_stack_grad(self):
        b = Tensor(RNG.standard_normal((3, 4)), dtype=np.float64)
        check_gradient(lambda t: F.stack([t, b, t], axis=1),
                       RNG.standard_normal((3, 4)))

    def test_stack_new_axis(self):
        parts = [Tensor(np.ones((2, 3))) for _ in range(4)]
        assert F.stack(parts, axis=0).shape == (4, 2, 3)
        assert F.stack(parts, axis=1).shape == (2, 4, 3)


class TestWhereClipMaximum:
    def test_where_grad(self):
        cond = RNG.random((3, 4)) > 0.5
        b = Tensor(RNG.standard_normal((3, 4)), dtype=np.float64)
        check_gradient(lambda t: F.where(cond, t * 2.0, b),
                       RNG.standard_normal((3, 4)))

    def test_where_broadcast_condition(self):
        cond = np.array([True, False, True, False])
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        b = Tensor(np.zeros((2, 4)), requires_grad=True)
        F.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([1, 0, 1, 0], (2, 1)))

    def test_clip_grad_zero_outside(self):
        t = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        F.clip(t, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_clip_invalid_p_ok_values(self):
        out = F.clip(Tensor(np.array([5.0])), 0.0, 1.0)
        assert out.data[0] == 1.0

    def test_maximum_grad(self):
        x = RNG.standard_normal((4, 4))
        b = Tensor(x.T.copy() + 0.3, dtype=np.float64)
        check_gradient(lambda t: F.maximum(t, b), x)

    def test_maximum_tie_splits(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        F.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, 0.5 * np.ones(3))
        np.testing.assert_allclose(b.grad, 0.5 * np.ones(3))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        s = F.softmax(Tensor(RNG.standard_normal((5, 7))), axis=-1)
        np.testing.assert_allclose(s.data.sum(-1), np.ones(5), rtol=1e-6)

    def test_softmax_grad(self):
        check_gradient(lambda t: F.softmax(t, axis=-1) ** 2,
                       RNG.standard_normal((3, 5)))

    def test_softmax_shift_invariance(self):
        x = RNG.standard_normal((2, 4))
        a = F.softmax(Tensor(x), axis=-1).data
        b = F.softmax(Tensor(x + 100.0), axis=-1).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_log_softmax_grad(self):
        check_gradient(lambda t: F.log_softmax(t, axis=-1) * 0.5,
                       RNG.standard_normal((3, 5)))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((4, 6)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), rtol=1e-5)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(RNG.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_p_identity(self):
        x = Tensor(RNG.standard_normal((4,)))
        assert F.dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, np.random.default_rng(3))
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_grad_matches_mask(self):
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(5))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestEmbedding:
    def test_lookup_values(self):
        w = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = F.embedding(w, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_grad_scatters_with_duplicates(self):
        w = Tensor(np.zeros((4, 2)), requires_grad=True)
        F.embedding(w, np.array([1, 1, 3])).sum().backward()
        np.testing.assert_allclose(w.grad,
                                   [[0, 0], [2, 2], [0, 0], [1, 1]])

    def test_non_integer_indices_rejected(self):
        w = Tensor(np.zeros((4, 2)))
        with pytest.raises(ShapeError):
            F.embedding(w, np.array([0.5]))


class TestSparseMatmul:
    def _support(self, n=8, seed=0):
        return sp.random(n, n, density=0.4, random_state=seed, format="csr")

    def test_2d_matches_dense(self):
        A = self._support()
        x = Tensor(RNG.standard_normal((8, 3)), dtype=np.float64)
        out = F.sparse_matmul(A, x)
        np.testing.assert_allclose(out.data, A.toarray() @ x.data, rtol=1e-9)

    def test_3d_matches_dense(self):
        A = self._support()
        x = Tensor(RNG.standard_normal((5, 8, 3)), dtype=np.float64)
        out = F.sparse_matmul(A, x)
        expected = np.einsum("mn,bnd->bmd", A.toarray(), x.data)
        np.testing.assert_allclose(out.data, expected, rtol=1e-9)

    def test_grad_2d(self):
        A = self._support(seed=2)
        check_gradient(lambda t: F.sparse_matmul(A, t) * 2.0,
                       RNG.standard_normal((8, 4)))

    def test_grad_3d(self):
        A = self._support(seed=3)
        check_gradient(lambda t: F.sparse_matmul(A, t),
                       RNG.standard_normal((2, 8, 3)))

    def test_wrong_nodes_rejected(self):
        A = self._support()
        with pytest.raises(ShapeError):
            F.sparse_matmul(A, Tensor(np.zeros((2, 5, 3))))

    def test_wrong_ndim_rejected(self):
        A = self._support()
        with pytest.raises(ShapeError):
            F.sparse_matmul(A, Tensor(np.zeros(8)))


class TestPadLast:
    def test_values_and_grad(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.pad_last(t, 2, value=7.0)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data[:, 3:], 7.0)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_zero_pad_identity(self):
        t = Tensor(np.ones((2, 3)))
        assert F.pad_last(t, 0) is t
