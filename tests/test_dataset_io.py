"""Tests for dataset save/load round-trips."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.io import load_dataset_file, save_dataset
from repro.preprocessing import IndexDataset


class TestDatasetIO:
    def test_roundtrip_preserves_everything(self, tmp_path):
        ds = load_dataset("pems-bay", nodes=12, entries=150, seed=8)
        path = str(tmp_path / "ds.npz")
        save_dataset(path, ds)
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.signals, ds.signals)
        np.testing.assert_array_equal(loaded.timestamps, ds.timestamps)
        np.testing.assert_array_equal(loaded.graph.coords, ds.graph.coords)
        assert (loaded.graph.weights != ds.graph.weights).nnz == 0
        assert loaded.spec == ds.spec
        assert loaded.graph.name == ds.graph.name

    def test_loaded_dataset_preprocesses_identically(self, tmp_path):
        ds = load_dataset("metr-la", nodes=8, entries=120, seed=2)
        path = str(tmp_path / "metr.npz")
        save_dataset(path, ds)
        loaded = load_dataset_file(path)
        a = IndexDataset.from_dataset(ds)
        b = IndexDataset.from_dataset(loaded)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.starts, b.starts)

    def test_epidemic_domain_roundtrip(self, tmp_path):
        ds = load_dataset("chickenpox-hungary", nodes=6, entries=60, seed=1)
        path = str(tmp_path / "chick.npz")
        save_dataset(path, ds)
        loaded = load_dataset_file(path)
        assert loaded.spec.domain == "epidemiological"
        np.testing.assert_array_equal(loaded.signals, ds.signals)
