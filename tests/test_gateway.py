"""Tests for the multi-tenant serving gateway (``repro.serving.gateway``).

The load-bearing guarantees:

- the gateway is pure plumbing: responses match direct ``ForecastService``
  answers bitwise, and cache hits are bitwise equal to recomputation;
- tenants are isolated — keys, quotas, and feature stores never leak
  across tenants;
- admission control sheds deterministically under overload and never
  below capacity;
- blue-green swaps drain every in-flight request (zero drops).
"""

import numpy as np
import pytest

from repro.api import RunSpec, build_gateway, list_servers, run, serve
from repro.serving import (
    AuthError,
    FeatureStore,
    Gateway,
    GatewayLoadGenerator,
    ManualClock,
    MicroBatchQueue,
    TenantStream,
)
from repro.serving.gateway import (
    AdmissionController,
    ResultCache,
    TenantManager,
    cache_key,
    window_fingerprint,
)
from repro.utils.errors import ShapeError

SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(min(test.num_snapshots, 32)))
    return xb.copy()


def make_gateway(trained, **kw):
    kw.setdefault("clock", ManualClock())
    kw.setdefault("max_batch", 8)
    kw.setdefault("max_wait", 0.002)
    kw.setdefault("service_time", lambda n: 4e-4 + 2e-4 * n)
    kw.setdefault("tenants", ["ops", "research"])
    return build_gateway({"bay": trained}, **kw)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_fingerprint_sensitive_to_content_shape_dtype(self):
        w = np.arange(24, dtype=np.float64).reshape(4, 3, 2)
        assert window_fingerprint(w) == window_fingerprint(w.copy())
        assert window_fingerprint(w) != window_fingerprint(w + 1e-12)
        assert window_fingerprint(w) != window_fingerprint(
            w.reshape(4, 6, 1))
        assert window_fingerprint(w) != window_fingerprint(
            w.astype(np.float32))

    def test_key_includes_deployment_version_sensors(self):
        w = np.ones((2, 2, 2))
        assert cache_key("a", "v1", w) != cache_key("b", "v1", w)
        assert cache_key("a", "v1", w) != cache_key("a", "v2", w)
        assert cache_key("a", "v1", w) != cache_key("a", "v1", w,
                                                    sensors=(0, 1))

    def test_hit_is_bitwise_and_a_copy(self):
        clock = ManualClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        key = cache_key("d", "v1", np.ones((2, 2, 2)))
        value = np.random.default_rng(0).normal(size=(4, 8))
        cache.put(key, value)
        hit = cache.get(key)
        np.testing.assert_array_equal(hit, value)
        hit[0, 0] = 1e9                     # mutating a hit must not poison
        np.testing.assert_array_equal(cache.get(key), value)
        assert cache.stats.hits == 2 and cache.stats.misses == 0

    def test_ttl_expiry_on_the_clock(self):
        clock = ManualClock()
        cache = ResultCache(ttl=5.0, clock=clock)
        key = cache_key("d", "v1", np.ones((2, 2, 2)))
        cache.put(key, np.zeros((4, 8)))
        clock.advance(4.9)
        assert cache.get(key) is not None
        clock.advance(0.2)
        assert cache.get(key) is None
        assert cache.stats.expirations == 1

    def test_lru_eviction_at_capacity(self):
        clock = ManualClock()
        cache = ResultCache(ttl=100.0, max_entries=2, clock=clock)
        keys = [cache_key("d", "v1", np.full((1, 1, 1), i))
                for i in range(3)]
        cache.put(keys[0], np.zeros(1))
        cache.put(keys[1], np.zeros(1))
        assert cache.get(keys[0]) is not None   # 0 is now warmest
        cache.put(keys[2], np.zeros(1))         # evicts 1, the coldest
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.stats.evictions == 1

    def test_invalidate_by_deployment(self):
        clock = ManualClock()
        cache = ResultCache(ttl=100.0, clock=clock)
        ka = cache_key("a", "v1", np.ones((1, 1, 1)))
        kb = cache_key("b", "v1", np.ones((1, 1, 1)))
        cache.put(ka, np.zeros(1))
        cache.put(kb, np.zeros(1))
        assert cache.invalidate("a") == 1
        assert cache.get(ka) is None and cache.get(kb) is not None
        assert cache.invalidate() == 1          # clear the rest


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------
class TestTenancy:
    def test_auth_and_failure_accounting(self):
        mgr = TenantManager(ManualClock())
        tenant = mgr.register("ops")
        assert mgr.authenticate(tenant.api_key) is tenant
        with pytest.raises(AuthError):
            mgr.authenticate("wrong-key")
        assert mgr.auth_failures == 1

    def test_duplicate_ids_and_keys_rejected(self):
        mgr = TenantManager(ManualClock())
        mgr.register("ops", api_key="k1")
        with pytest.raises(ValueError, match="already registered"):
            mgr.register("ops", api_key="k2")
        with pytest.raises(ValueError, match="api key"):
            mgr.register("other", api_key="k1")

    def test_token_bucket_is_deterministic(self):
        clock = ManualClock()
        mgr = TenantManager(clock)
        tenant = mgr.register("ops", rate_qps=10.0, burst=2)
        # burst drains, then refills at exactly rate_qps.
        assert tenant.try_spend_token(clock())
        assert tenant.try_spend_token(clock())
        assert not tenant.try_spend_token(clock())
        clock.advance(0.1)                      # one token back at 10 qps
        assert tenant.try_spend_token(clock())
        assert not tenant.try_spend_token(clock())

    def test_unlimited_tenant_never_rejected(self):
        clock = ManualClock()
        tenant = TenantManager(clock).register("ops")
        assert all(tenant.try_spend_token(clock()) for _ in range(1000))


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def make(self, **kw):
        clock = ManualClock()
        queue = MicroBatchQueue(max_batch=4, max_wait=0.002, clock=clock)
        return clock, queue, AdmissionController(clock, **kw)

    def test_no_estimate_projects_only_the_wait(self):
        """Before any dispatch the service-time prior is 0: a request
        sheds only if its budget cannot even cover the coalescing wait."""
        clock, queue, adm = self.make()
        assert adm.estimate("d") == 0.0
        assert adm.admit(queue, tenant="t", deployment="d",
                         deadline=clock() + 0.003) is None   # > max_wait
        decision = adm.admit(queue, tenant="t", deployment="d",
                             deadline=clock() + 1e-9)        # < max_wait
        assert decision is not None and decision.reason == "deadline"

    def test_projection_math(self):
        clock, queue, adm = self.make()
        adm.seed_estimate("d", 0.010)
        # Empty queue: coalescing wait (max_wait) + one batch.
        assert adm.projected_latency(queue, "d") == pytest.approx(0.012)
        for _ in range(3):
            queue.submit(np.zeros(1))
        # Depth 3, our request fills the batch of 4: no wait, one batch.
        assert adm.projected_latency(queue, "d") == pytest.approx(0.010)
        queue.submit(np.zeros(1))
        # Depth 4: a full batch fires now, ours rides the next one.
        assert adm.projected_latency(queue, "d") == pytest.approx(0.020)

    def test_deadline_shed_recorded(self):
        clock, queue, adm = self.make()
        adm.seed_estimate("d", 0.010)
        decision = adm.admit(queue, tenant="ops", deployment="d",
                             deadline=clock() + 0.005)
        assert decision is not None and decision.reason == "deadline"
        assert adm.admit(queue, tenant="ops", deployment="d",
                         deadline=clock() + 0.5) is None
        assert adm.shed_by_tenant() == {"ops": 1}
        assert adm.shed_by_reason() == {"deadline": 1}

    def test_capacity_shed_ignores_deadline(self):
        clock, queue, adm = self.make(max_queue_depth=2)
        queue.submit(np.zeros(1))
        queue.submit(np.zeros(1))
        decision = adm.admit(queue, tenant="t", deployment="d",
                             deadline=None)
        assert decision is not None and decision.reason == "capacity"

    def test_ewma_observation(self):
        _, _, adm = self.make(ewma_alpha=0.5)
        adm.observe("d", 0.010)
        adm.observe("d", 0.020)
        assert adm.estimate("d") == pytest.approx(0.015)


# ---------------------------------------------------------------------------
# Deployments
# ---------------------------------------------------------------------------
class TestDeployments:
    def test_cold_deployment_builds_lazily(self, trained):
        gw = make_gateway(trained)
        calls = []
        session = gw.deployments.get("bay").session

        def factory():
            calls.append(1)
            return session

        dep = gw.add_deployment("lazy", factory, state="cold")
        assert not calls and dep.state == "cold"
        dep.warm()
        assert calls == [1] and dep.state == "warm"

    def test_cold_requires_rebuildable_source(self, trained):
        gw = make_gateway(trained)
        session = gw.deployments.get("bay").session
        with pytest.raises(ValueError, match="cold"):
            gw.add_deployment("bad", session, state="cold")

    def test_cool_refuses_pending_work(self, trained, pool):
        gw = make_gateway(trained)
        session = gw.deployments.get("bay").session
        dep = gw.add_deployment("d2", lambda: session)
        gw.submit("key-ops", "d2", pool[0])
        with pytest.raises(RuntimeError, match="in-flight"):
            dep.cool()
        gw.flush()
        dep.cool()
        assert dep.state == "cold"

    def test_swap_requires_new_version(self, trained):
        gw = make_gateway(trained)
        session = gw.deployments.get("bay").session
        with pytest.raises(ValueError, match="version"):
            gw.swap("bay", lambda: session, version="v1")

    def test_swap_rejects_shape_mismatch(self, trained):
        gw = make_gateway(trained)
        session = gw.deployments.get("bay").session

        class Mismatched:
            predict = staticmethod(lambda x: x)
            max_batch = session.max_batch
            horizon = session.horizon + 1
            num_nodes = session.num_nodes
            in_features = session.in_features

        with pytest.raises(ShapeError):
            gw.swap("bay", Mismatched(), version="v2")

    def test_duplicate_deployment_rejected(self, trained):
        gw = make_gateway(trained)
        with pytest.raises(ValueError, match="already registered"):
            gw.add_deployment("bay", lambda: None)


# ---------------------------------------------------------------------------
# The gateway itself
# ---------------------------------------------------------------------------
class TestGateway:
    def test_matches_direct_service_bitwise(self, trained, pool):
        """Acceptance: the gateway is pure plumbing over ForecastService."""
        gw = make_gateway(trained)
        direct = serve(trained, max_batch=8, max_wait=0.002)
        resp = gw.request("key-ops", "bay", pool[0])
        np.testing.assert_array_equal(resp.forecast.predictions,
                                      direct.forecast(pool[0]).predictions)

    def test_requires_valid_api_key(self, trained, pool):
        gw = make_gateway(trained)
        with pytest.raises(AuthError):
            gw.request("not-a-key", "bay", pool[0])

    def test_quota_rejection_status(self, trained, pool):
        gw = make_gateway(trained, tenants=[
            {"tenant_id": "ops", "rate_qps": 1.0, "burst": 1}])
        first = gw.request("key-ops", "bay", pool[0])
        second = gw.submit("key-ops", "bay", pool[0])
        assert first.ok and second.status == "rejected_quota"
        assert gw.stats.quota_rejected == 1

    def test_cache_hit_bitwise_and_cross_tenant(self, trained, pool):
        gw = make_gateway(trained, cache_ttl=60.0)
        first = gw.request("key-ops", "bay", pool[0])
        second = gw.request("key-ops", "bay", pool[0])
        cross = gw.request("key-research", "bay", pool[0])
        assert not first.cached and second.cached and cross.cached
        assert second.latency == 0.0
        np.testing.assert_array_equal(first.forecast.predictions,
                                      second.forecast.predictions)
        np.testing.assert_array_equal(first.forecast.predictions,
                                      cross.forecast.predictions)

    def test_tenant_stores_are_isolated(self, trained):
        gw = make_gateway(trained)
        ds = trained.artifacts.dataset
        for t in range(16):
            gw.ingest("key-ops", "bay", ds.signals[t], timestamp_minutes=5.0 * t)
        # research streamed nothing: its store must not exist, and a
        # windowless request must fail rather than read ops' data.
        ops_store = gw.tenants.get("ops").stores["bay"]
        assert "bay" not in gw.tenants.get("research").stores
        assert isinstance(ops_store, FeatureStore)
        with pytest.raises(RuntimeError, match="streamed nothing"):
            gw.request("key-research", "bay")
        assert gw.request("key-ops", "bay").ok

    def test_sheds_on_hopeless_deadline(self, trained, pool):
        gw = make_gateway(trained)
        resp = gw.submit("key-ops", "bay", pool[0],
                         deadline=gw.clock() + 1e-6)
        assert resp.status == "shed" and resp.reason == "deadline"
        assert gw.stats.shed == 1
        assert gw.tenants.get("ops").stats.shed == 1

    def test_swap_drains_in_flight_and_invalidates_cache(self, trained, pool):
        gw = make_gateway(trained, cache_ttl=60.0)
        session = gw.deployments.get("bay").session
        admitted = [gw.submit("key-ops", "bay", pool[i]) for i in range(5)]
        assert all(r.status == "admitted" for r in admitted)
        record = gw.swap("bay", lambda: session, version="v2")
        assert record.drained == 5 and record.dropped == 0
        done = gw.poll()
        assert {r.request_id for r in done} == \
            {r.request_id for r in admitted}
        assert all(r.status == "ok" for r in done)
        # v1 cache entries are gone; the same window recomputes under v2.
        resp = gw.request("key-ops", "bay", pool[0])
        assert not resp.cached and resp.version == "v2"

    def test_handle_concurrent_on_manual_clock(self, trained, pool):
        gw = make_gateway(trained)
        responses = gw.handle_concurrent(
            [dict(api_key="key-ops", deployment="bay", window=pool[i])
             for i in range(6)])
        assert len(responses) == 6 and all(r.ok for r in responses)
        assert all(r.forecast.batch_size >= 1 for r in responses)

    def test_describe_covers_every_surface(self, trained, pool):
        gw = make_gateway(trained, cache_ttl=60.0)
        gw.request("key-ops", "bay", pool[0])
        d = gw.describe()
        assert d["stats"]["completed"] == 1
        assert "bay" in d["deployments"]
        assert set(d["tenants"]) == {"ops", "research"}
        assert d["cache"]["misses"] == 1


class TestGatewayAPI:
    def test_gateway_registered_as_server(self):
        assert "gateway" in list_servers()

    def test_serve_returns_gateway(self, trained, pool):
        gw = serve(trained, server="gateway", clock=ManualClock(),
                   max_batch=8)
        assert isinstance(gw, Gateway)
        assert gw.deployments.names() == ["default"]
        resp = gw.request("key-default", "default", pool[0])
        assert resp.ok

    def test_build_gateway_from_checkpoint_cold(self, trained, pool,
                                                tmp_path):
        from repro.training.checkpoint import save_checkpoint
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, trained.artifacts.model, epoch=1,
                        spec=trained.spec,
                        scaler=trained.artifacts.loaders.scaler)
        gw = build_gateway({"bay": path}, clock=ManualClock(),
                           states={"bay": "cold"}, versions={"bay": "v7"})
        dep = gw.deployments.get("bay")
        assert dep.state == "cold" and dep.version == "v7"
        resp = gw.request("key-default", "bay", pool[0])   # warms lazily
        assert resp.ok and dep.state == "warm"

    def test_build_gateway_needs_sources(self):
        with pytest.raises(ValueError, match="at least one"):
            build_gateway({})

    def test_tenant_spec_forms(self, trained):
        gw = build_gateway(
            {"bay": trained}, clock=ManualClock(),
            tenants=["a", {"tenant_id": "b", "api_key": "secret-b"}])
        assert gw.tenants.authenticate("key-a").tenant_id == "a"
        assert gw.tenants.authenticate("secret-b").tenant_id == "b"
        with pytest.raises(ValueError, match="tenant_id"):
            build_gateway({"bay": trained}, clock=ManualClock(),
                          tenants=[{"api_key": "x"}])


# ---------------------------------------------------------------------------
# Per-tenant load generation
# ---------------------------------------------------------------------------
class TestGatewayLoadGenerator:
    STREAMS = [
        dict(api_key="key-ops", deployment="bay", rate_qps=700.0,
             requests=140, deadline=0.05),
        dict(api_key="key-research", deployment="bay", rate_qps=300.0,
             requests=60, deadline=0.05),
    ]

    def test_deterministic(self, trained, pool):
        """Acceptance: fixed seed + synthetic service time => identical
        multi-tenant reports, shed decisions included."""
        reports = []
        for _ in range(2):
            gen = GatewayLoadGenerator(make_gateway(trained), pool, seed=7)
            reports.append(gen.open_loop(
                [TenantStream(**s) for s in self.STREAMS]))
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_baseline_under_capacity_never_sheds(self, trained, pool):
        gen = GatewayLoadGenerator(make_gateway(trained), pool, seed=7)
        report = gen.open_loop([TenantStream(**s) for s in self.STREAMS])
        assert report.requests == 200
        assert report.shed_rate == 0.0 and report.deadline_misses == 0
        assert report.goodput_qps == report.qps > 0
        assert set(report.per_tenant) == {"ops", "research"}
        assert report.per_tenant["ops"]["completed"] == 140

    def test_overload_sheds_boundedly(self, trained, pool):
        gw = make_gateway(trained)
        gen = GatewayLoadGenerator(gw, pool, seed=7)
        report = gen.open_loop([
            TenantStream(api_key="key-ops", deployment="bay",
                         rate_qps=10000.0, requests=600, deadline=0.025)])
        assert 0.0 < report.shed_rate < 0.8
        assert report.deadline_misses == 0     # admitted requests all make it
        assert report.goodput_qps > 2000.0
        assert gw.admission.shed_by_reason() == \
            {"deadline": round(report.shed_rate * 600)}

    def test_summary_mentions_goodput_and_shed(self, trained, pool):
        gen = GatewayLoadGenerator(make_gateway(trained), pool, seed=0)
        report = gen.open_loop([TenantStream(
            api_key="key-ops", deployment="bay", rate_qps=500.0,
            requests=40, deadline=0.05)])
        assert "goodput" in report.summary() and "shed" in report.summary()

    def test_requires_manual_clock(self, trained, pool):
        import time
        gw = make_gateway(trained, clock=time.perf_counter)
        with pytest.raises(TypeError, match="ManualClock"):
            GatewayLoadGenerator(gw, pool)

    def test_stream_validation(self):
        with pytest.raises(ValueError, match="rate_qps"):
            TenantStream(api_key="k", deployment="d", rate_qps=0.0,
                         requests=1)
        with pytest.raises(ValueError, match="arrival"):
            TenantStream(api_key="k", deployment="d", rate_qps=1.0,
                         requests=1, arrival="bursty")


# ---------------------------------------------------------------------------
# Bench harness
# ---------------------------------------------------------------------------
class TestGatewayBenchHarness:
    def test_quick_suite_writes_valid_green_section(self, tmp_path):
        import json

        from benchmarks.gateway_bench import (
            check_regression, collect_gateway, diff_gateway,
            merge_into_snapshot, validate_gateway)
        section = collect_gateway(quick=True)
        validate_gateway(section)
        assert check_regression(section) == []
        target = tmp_path / "BENCH_T.json"
        merge_into_snapshot(section, target)
        merged = json.loads(target.read_text())
        assert merged["gateway"]["scenarios"].keys() == \
            section["scenarios"].keys()
        d = diff_gateway(merged, merged)
        assert d["overload_shed_rate"]["old"] == \
            d["overload_shed_rate"]["new"]

    def test_diff_tolerates_pre_gateway_snapshot(self, tmp_path):
        import json

        from benchmarks.gateway_bench import diff_gateway
        new = json.loads(
            (__import__("pathlib").Path(__file__).resolve().parents[1]
             / "BENCH_6.json").read_text())
        d = diff_gateway({"schema": "whatever"}, new)
        assert d["baseline_goodput_qps"]["old"] is None
        assert d["baseline_goodput_qps"]["new"] > 0


# ---------------------------------------------------------------------------
# Admission under membership churn (elastic resizes mid-stream)
# ---------------------------------------------------------------------------
class TestMembershipChurn:
    """An autoscaler resize must be invisible to gateway clients: every
    admitted request reaches a terminal status (no hung futures), answers
    stay bitwise stable across memberships, and overflow sheds cleanly
    with its reason recorded."""

    def make_sharded_gateway(self, trained, **kw):
        from repro.serving import ShardedSession
        sess = ShardedSession(trained.artifacts.model,
                              trained.artifacts.loaders.scaler,
                              trained.artifacts.dataset.graph,
                              spec=trained.spec, num_shards=2,
                              num_standby=2)
        kw.setdefault("clock", ManualClock())
        kw.setdefault("max_batch", 8)
        kw.setdefault("max_wait", 0.002)
        kw.setdefault("service_time", lambda n: 4e-4 + 2e-4 * n)
        kw.setdefault("tenants", ["ops", "research"])
        return sess, build_gateway({"bay": sess}, **kw)

    def test_admitted_requests_complete_across_resize(self, trained, pool):
        sess, gw = self.make_sharded_gateway(trained)
        before = [gw.submit("key-ops", "bay", pool[i]) for i in range(4)]
        assert all(r.status == "admitted" for r in before)
        event = sess.scale_to(4)                    # membership change
        assert event.mode == "scale_up"
        after = [gw.submit("key-research", "bay", pool[i])
                 for i in range(4, 8)]
        assert all(r.status == "admitted" for r in after)
        done = gw.flush()
        assert {r.request_id for r in done} == \
            {r.request_id for r in before + after}
        assert all(r.status == "ok" for r in done)
        assert len(gw._pending) == 0                # no hung futures

    def test_answers_bitwise_stable_across_memberships(self, trained, pool):
        sess, gw = self.make_sharded_gateway(trained)
        at2 = gw.request("key-ops", "bay", pool[0]).forecast.predictions
        sess.scale_to(4)
        at4 = gw.request("key-ops", "bay", pool[0]).forecast.predictions
        sess.scale_to(2)
        back = gw.request("key-ops", "bay", pool[0]).forecast.predictions
        np.testing.assert_array_equal(at2, at4)
        np.testing.assert_array_equal(at2, back)

    def test_churn_overflow_sheds_cleanly(self, trained, pool):
        """With a tiny queue, requests riding through a resize either
        complete or shed with reason 'capacity' — never hang, never
        half-complete."""
        sess, gw = self.make_sharded_gateway(trained, max_queue_depth=3)
        responses = [gw.submit("key-ops", "bay", pool[i % len(pool)])
                     for i in range(3)]
        sess.scale_to(4)
        responses += [gw.submit("key-ops", "bay", pool[i % len(pool)])
                      for i in range(3, 9)]
        shed = [r for r in responses if r.status == "shed"]
        admitted = [r for r in responses if r.status == "admitted"]
        assert len(shed) + len(admitted) == len(responses)
        assert shed and all(r.reason == "capacity" for r in shed)
        done = gw.flush()
        assert {r.request_id for r in done} == \
            {r.request_id for r in admitted}
        assert all(r.status == "ok" for r in done)
        assert len(gw._pending) == 0
        assert gw.stats.shed == len(shed)

    def test_failover_during_stream_stays_terminal(self, trained, pool):
        """Worker death (not just planned resize) between submits: the
        lazy failover happens inside a dispatch and every future still
        resolves."""
        sess, gw = self.make_sharded_gateway(trained)
        first = [gw.submit("key-ops", "bay", pool[i]) for i in range(3)]
        sess.kill_worker(1)                         # unplanned churn
        second = [gw.submit("key-ops", "bay", pool[i])
                  for i in range(3, 6)]
        done = gw.flush()
        assert {r.request_id for r in done} == \
            {r.request_id for r in first + second}
        assert all(r.status == "ok" for r in done)
        assert len(gw._pending) == 0
        assert len(sess.failover_events) == 1
