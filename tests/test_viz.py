"""Tests for the terminal visualisation helpers."""

import pytest

from repro.viz import bar_chart, line_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert s == " ▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        out = line_plot({"ddp": [(4, 160), (128, 46)],
                         "index": [(4, 75), (128, 4)]},
                        title="scaling", xlabel="gpus")
        assert "scaling" in out
        assert "legend:" in out
        assert "*" in out and "+" in out

    def test_single_point(self):
        out = line_plot({"a": [(1, 1)]})
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})

    def test_extremes_on_grid(self):
        out = line_plot({"a": [(0, 0), (10, 100)]}, width=20, height=8)
        lines = [l for l in out.splitlines() if "|" in l]
        # First plotted row holds the max, last holds the min.
        assert "*" in lines[0]
        assert "*" in lines[-1]


class TestBarChart:
    def test_segments_and_totals(self):
        out = bar_chart({"ddp": {"compute": 30, "comm": 70},
                         "index": {"compute": 30, "comm": 2}},
                        unit="s")
        assert "ddp" in out and "index" in out
        assert "100.0s" in out and "32.0s" in out
        assert "compute" in out and "comm" in out

    def test_longest_bar_belongs_to_max(self):
        out = bar_chart({"big": {"x": 100}, "small": {"x": 10}}, width=20)
        lines = out.splitlines()
        big = next(l for l in lines if l.strip().startswith("big"))
        small = next(l for l in lines if l.strip().startswith("small"))
        assert big.count("█") > small.count("█")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
