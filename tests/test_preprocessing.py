"""Unit tests for windows, scaler and the standard pipeline."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.hardware.memory import MemorySpace
from repro.preprocessing import (
    StandardScaler,
    num_snapshots,
    split_bounds,
    standard_preprocess,
    window_starts,
)
from repro.utils.errors import OutOfMemoryError


class TestWindows:
    def test_num_snapshots_matches_paper_formula(self):
        # entries - (2*horizon - 1)
        assert num_snapshots(100, 12) == 100 - 23
        assert num_snapshots(522, 4) == 522 - 7

    def test_minimal_entries(self):
        assert num_snapshots(2, 1) == 1
        with pytest.raises(ValueError):
            num_snapshots(23, 12)

    def test_horizon_positive(self):
        with pytest.raises(ValueError):
            num_snapshots(100, 0)

    def test_window_starts_contiguous(self):
        s = window_starts(50, 5)
        np.testing.assert_array_equal(s, np.arange(41))

    def test_split_bounds_default(self):
        train_end, val_end = split_bounds(100)
        assert train_end == 70 and val_end == 80

    def test_split_bounds_rounding(self):
        train_end, val_end = split_bounds(7)
        assert 0 <= train_end <= val_end <= 7

    def test_split_bounds_bad_ratios(self):
        with pytest.raises(ValueError):
            split_bounds(100, (0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            split_bounds(100, (-0.1, 0.6, 0.5))


class TestScaler:
    def test_fit_transform_standardizes(self):
        rng = np.random.default_rng(0)
        data = rng.normal(50, 7, size=(1000, 4, 2))
        s = StandardScaler().fit(data)
        out = s.transform(data)
        np.testing.assert_allclose(out.mean(axis=(0, 1)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=(0, 1)), 1.0, atol=1e-9)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10, 3, size=(100, 5, 3))
        s = StandardScaler().fit(data)
        np.testing.assert_allclose(s.inverse_transform(s.transform(data)),
                                   data, rtol=1e-10)

    def test_inplace_transform_matches(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 2, size=(50, 3, 2))
        s = StandardScaler().fit(data)
        expected = s.transform(data)
        buf = data.copy()
        s.transform(buf, out=buf)
        np.testing.assert_array_equal(buf, expected)

    def test_constant_channel_safe(self):
        data = np.ones((10, 2, 2))
        data[..., 1] = 5.0
        s = StandardScaler().fit(data)
        out = s.transform(data)
        assert np.all(np.isfinite(out))

    def test_channel_inverse(self):
        data = np.random.default_rng(3).normal(60, 10, size=(100, 4, 2))
        s = StandardScaler().fit(data)
        z = s.transform(data)[..., 0]
        np.testing.assert_allclose(s.inverse_transform_channel(z, 0),
                                   data[..., 0], rtol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((3, 2)))

    def test_1d_rejected(self):
        from repro.utils.errors import ShapeError
        with pytest.raises(ShapeError):
            StandardScaler().fit(np.ones(5))


class TestStandardPreprocess:
    def _dataset(self, **kw):
        return load_dataset("pems-bay", nodes=8, entries=150, seed=0, **kw)

    def test_output_shapes(self):
        pre = standard_preprocess(self._dataset())
        n = num_snapshots(150, 12)
        train_end, val_end = split_bounds(n)
        assert pre.x_train.shape == (train_end, 12, 8, 2)
        assert pre.y_val.shape == (val_end - train_end, 12, 8, 2)
        assert pre.x_test.shape == (n - val_end, 12, 8, 2)

    def test_y_is_shifted_x(self):
        ds = self._dataset()
        pre = standard_preprocess(ds)
        # y of snapshot s equals x of snapshot s + horizon.
        np.testing.assert_array_equal(pre.y_train[0], pre.x_train[12])

    def test_time_feature_appended_for_traffic(self):
        pre = standard_preprocess(self._dataset())
        assert pre.x_train.shape[-1] == 2

    def test_no_time_feature_for_epidemic(self):
        ds = load_dataset("chickenpox-hungary", nodes=8, entries=100)
        pre = standard_preprocess(ds)
        assert pre.x_train.shape[-1] == 1

    def test_stat_modes_differ_slightly(self):
        ds = self._dataset()
        raw = standard_preprocess(ds, stat_mode="raw")
        stacked = standard_preprocess(ds, stat_mode="stacked")
        # Different statistics conventions, but close.
        assert not np.array_equal(raw.x_train, stacked.x_train)
        np.testing.assert_allclose(raw.x_train, stacked.x_train, atol=0.2)

    def test_invalid_stat_mode(self):
        with pytest.raises(ValueError):
            standard_preprocess(self._dataset(), stat_mode="bogus")

    def test_split_accessor(self):
        pre = standard_preprocess(self._dataset())
        x, y = pre.split("val")
        assert x is pre.x_val and y is pre.y_val
        with pytest.raises(KeyError):
            pre.split("bogus")

    def test_memory_charging_and_release(self):
        space = MemorySpace("test")
        ds = self._dataset()
        pre = standard_preprocess(ds, space=space)
        # Residual: only the split copies remain charged.
        assert space.in_use == pre.total_nbytes
        assert space.peak > space.in_use
        pre.release(space)
        assert space.in_use == 0

    def test_oom_when_capacity_too_small(self):
        ds = self._dataset()
        # Capacity fits the raw data but not the windowed stacks.
        space = MemorySpace("tiny", capacity=3 * ds.signals.nbytes)
        with pytest.raises(OutOfMemoryError) as exc:
            standard_preprocess(ds, space=space)
        assert exc.value.capacity == 3 * ds.signals.nbytes

    def test_custom_horizon(self):
        pre = standard_preprocess(self._dataset(), horizon=6)
        assert pre.x_train.shape[1] == 6
        assert pre.horizon == 6

    def test_dtype_float32(self):
        pre = standard_preprocess(self._dataset(), dtype=np.float32)
        assert pre.x_train.dtype == np.float32
