"""Tests for the ``repro.runtime`` distributed execution layer.

Covers the transport protocol (simulated and threaded), the single
collectives implementation, gradient bucketing, the ``ProcessGroup``
facade — and the two refactor guarantees this layer was built under:

- **Behavior preservation**: fixed-seed ``DDPTrainer`` loss curves and
  per-category byte counts under ``SimTransport`` are pinned to the
  values the pre-refactor ``SimCommunicator`` produced (captured at the
  parent commit with the same data/model/seed).
- **Cross-transport equivalence**: ``SimTransport`` and
  ``ThreadTransport`` produce bitwise-identical fixed-seed training for
  all three DDP strategies.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.nn.module import Parameter
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import (
    GradientBucketer,
    ProcessGroup,
    SimTransport,
    ThreadTransport,
    as_process_group,
)
from repro.training import DDPStrategy, DDPTrainer, Trainer
from repro.utils.errors import CommunicatorError


# ---------------------------------------------------------------------------
# Collectives: one implementation, every transport
# ---------------------------------------------------------------------------
@pytest.fixture(params=["sim", "thread"])
def pg(request):
    def make(world):
        return (ProcessGroup.sim(world) if request.param == "sim"
                else ProcessGroup.threads(world))
    return make


class TestCollectives:
    @pytest.mark.parametrize("world", [1, 2, 3, 5, 7, 8])
    def test_allreduce_matches_numpy_mean_reference(self, pg, world):
        rng = np.random.default_rng(world)
        arrays = [rng.standard_normal(23).astype(np.float32)
                  for _ in range(world)]
        out = pg(world).allreduce(arrays, op="mean")
        reference = np.stack(arrays).mean(axis=0).astype(np.float32)
        assert len(out) == world
        for o in out:
            np.testing.assert_array_equal(o, reference)

    @settings(max_examples=30, deadline=None)
    @given(world=st.integers(1, 8), n=st.integers(1, 64),
           seed=st.integers(0, 2**16))
    def test_allreduce_mean_property(self, world, n, seed):
        """Property: ring all-reduce == NumPy mean, any world size 1-8."""
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(n) for _ in range(world)]
        out = ProcessGroup.sim(world).allreduce(arrays, op="mean")[0]
        np.testing.assert_array_equal(out, np.stack(arrays).mean(axis=0))

    def test_sum_max_and_dtype_preserved(self, pg):
        g = pg(3)
        arrays = [np.array([1.0, -2.0], np.float32) * (r + 1) for r in range(3)]
        s = g.allreduce(arrays, op="sum")[0]
        m = g.allreduce(arrays, op="max")[0]
        np.testing.assert_allclose(s, [6.0, -12.0])
        np.testing.assert_allclose(m, [3.0, -2.0])
        assert s.dtype == np.float32 and m.dtype == np.float32

    def test_reduce_scatter_allgather_compose_to_allreduce(self, pg):
        g = pg(4)
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(10) for _ in range(4)]
        chunks = g.reduce_scatter(arrays, op="mean")
        gathered = g.allgather(chunks)[0]
        np.testing.assert_array_equal(
            np.concatenate(gathered),
            np.stack(arrays).mean(axis=0))

    def test_reduce_scatter_odd_split(self, pg):
        chunks = pg(3).reduce_scatter([np.arange(7.0)] * 3, op="sum")
        assert [len(c) for c in chunks] == [3, 2, 2]
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      3.0 * np.arange(7.0))

    def test_broadcast_and_p2p(self, pg):
        g = pg(4)
        out = g.broadcast(np.arange(5), root=2)
        assert len(out) == 4
        for o in out:
            np.testing.assert_array_equal(o, np.arange(5))
        got = g.send(np.full(3, 7.0), src=0, dst=3)
        np.testing.assert_array_equal(got, np.full(3, 7.0))

    def test_results_are_independent_copies(self, pg):
        out = pg(2).allreduce([np.zeros(2), np.ones(2)])
        out[0][0] = 99.0
        assert out[1][0] != 99.0

    def test_shape_and_length_validation(self, pg):
        g = pg(2)
        with pytest.raises(CommunicatorError):
            g.allreduce([np.zeros(2), np.zeros(3)])
        with pytest.raises(CommunicatorError):
            g.allreduce([np.zeros(2)])
        with pytest.raises(CommunicatorError):
            g.allreduce([np.zeros(2)] * 2, op="prod")

    def test_byte_accounting_matches_legacy(self):
        g = ProcessGroup.sim(2)
        g.allreduce([np.zeros(100)] * 2, category="gradient")
        g.fetch(0, 1, 500, category="data")
        assert g.stats.bytes_by_category["gradient"] == 800
        assert g.stats.bytes_by_category["data"] == 500
        assert g.stats.ops == 2


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
class TestSimTransport:
    def test_collective_synchronizes_to_slowest(self):
        t = SimTransport(3)
        t.advance_compute(0, 1.0)
        t.advance_compute(1, 5.0)
        ProcessGroup(t).allreduce([np.zeros(1)] * 3)
        times = [c.now for c in t.clocks]
        assert len(set(times)) == 1 and times[0] > 5.0

    def test_run_ranks_sequential_in_rank_order(self):
        t = SimTransport(4)
        order = []
        out = t.run_ranks(lambda r: order.append(r) or r * 10)
        assert order == [0, 1, 2, 3]
        assert out == [0, 10, 20, 30]

    def test_unknown_collective_kind(self):
        with pytest.raises(CommunicatorError):
            SimTransport(2).collective("alltoall", 8, "x")


class TestThreadTransport:
    def test_run_ranks_results_in_rank_order(self):
        t = ThreadTransport(4)
        barrier = threading.Barrier(4, timeout=10)

        def fn(rank):
            barrier.wait()  # deadlocks unless all ranks really run at once
            return rank * 10
        assert t.run_ranks(fn) == [0, 10, 20, 30]
        t.shutdown()

    def test_parallel_false_runs_inline(self):
        t = ThreadTransport(3, parallel=False)
        main = threading.get_ident()
        idents = t.run_ranks(lambda r: threading.get_ident())
        assert all(i == main for i in idents)

    def test_exception_propagates_after_join(self):
        t = ThreadTransport(2)

        def fn(rank):
            if rank == 1:
                raise RuntimeError("rank 1 boom")
            return rank
        with pytest.raises(RuntimeError, match="rank 1 boom"):
            t.run_ranks(fn)
        t.shutdown()

    def test_rank_failure_joins_and_reaps_worker_threads(self):
        """Regression: a raising rank callable used to leave the worker
        pool's threads alive behind the propagated exception — nobody
        owns a transport whose trainer just died, so they leaked until
        interpreter exit.  The failure path must join *every* rank (the
        slow healthy ranks finish their step) and tear the pool down."""
        t = ThreadTransport(4)
        t.run_ranks(lambda r: r)                 # spin the pool up
        pool_threads = list(t._pool._threads)
        assert any(th.is_alive() for th in pool_threads)
        finished = []

        def fn(rank):
            if rank == 1:
                raise ValueError("rank 1 died")
            time.sleep(0.02)                     # healthy ranks mid-step
            finished.append(rank)
            return rank

        with pytest.raises(ValueError, match="rank 1 died"):
            t.run_ranks(fn)
        # Barrier semantics: every healthy rank completed its step
        # before the exception surfaced...
        assert sorted(finished) == [0, 2, 3]
        # ...and no worker thread outlives the failure.
        assert t._pool is None
        for th in pool_threads:
            th.join(timeout=5)
            assert not th.is_alive()

    def test_failed_transport_is_reusable(self):
        """After an aborted step the pool rebuilds lazily — the recovery
        path reuses the same transport object."""
        t = ThreadTransport(3)

        def fail(rank):
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            t.run_ranks(fail)
        assert t.run_ranks(lambda r: r * 2) == [0, 2, 4]
        t.shutdown()

    def test_lowest_rank_exception_wins(self):
        """Deterministic error surfacing: when several ranks fail in the
        same step, the lowest rank's exception propagates regardless of
        thread timing."""
        t = ThreadTransport(4)

        def fn(rank):
            if rank in (1, 3):
                raise RuntimeError(f"rank {rank} failed")
            return rank
        for _ in range(5):
            with pytest.raises(RuntimeError, match="rank 1 failed"):
                t.run_ranks(fn)

    def test_records_bytes_not_simulated_time(self):
        g = ProcessGroup.threads(2)
        g.allreduce([np.zeros(100)] * 2, category="gradient")
        assert g.stats.bytes_by_category["gradient"] == 800
        assert g.now >= 0.0


class TestProcessGroupFacade:
    def test_as_process_group_normalises(self):
        g = ProcessGroup.sim(2)
        assert as_process_group(g) is g
        assert as_process_group(SimTransport(3)).world_size == 3
        assert as_process_group(None, world_size=4).world_size == 4
        with pytest.raises(TypeError):
            as_process_group(object())
        with pytest.raises(ValueError):
            as_process_group(None)

    def test_third_party_transport_plugs_in(self):
        """Anything satisfying the Transport protocol is accepted."""
        from repro.runtime import CommStats

        class RecordingTransport:
            def __init__(self):
                self.world_size = 2
                self.stats = CommStats()

            def run_ranks(self, fn, *, parallel=True):
                return [fn(r) for r in range(self.world_size)]

            def advance_compute(self, rank, seconds):
                pass

            def collective(self, kind, nbytes, category, *,
                           record_bytes=None, repeat=1,
                           measured_seconds=0.0):
                self.stats.record(category,
                                  (nbytes if record_bytes is None
                                   else record_bytes) * repeat, 0.0, repeat)

            def p2p(self, src, dst, nbytes, category, *,
                    measured_seconds=0.0):
                self.stats.record(category, nbytes, 0.0)

            def contended_fetch(self, total_bytes, messages, category):
                self.stats.record(category, total_bytes, 0.0)

            def charge(self, category, nbytes, seconds, ops=1):
                self.stats.record(category, nbytes, seconds, ops)

            @property
            def now(self):
                return 0.0

            def elapsed_breakdown(self):
                return {"compute": 0.0, "comm": 0.0, "wall": 0.0}

        g = as_process_group(RecordingTransport())
        out = g.allreduce([np.zeros(4), np.ones(4)])
        np.testing.assert_array_equal(out[0], np.full(4, 0.5))
        assert g.stats.bytes_by_category["gradient"] == 32

    def test_breakdown_keys(self):
        b = ProcessGroup.sim(2).elapsed_breakdown()
        assert set(b) == {"compute", "comm", "wall"}


# ---------------------------------------------------------------------------
# Gradient bucketing
# ---------------------------------------------------------------------------
def _params(shapes, dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal(s).astype(dtype)) for s in shapes]


class TestGradientBucketer:
    def test_single_bucket_under_cap(self):
        b = GradientBucketer(_params([(4, 4), (8,), (3, 2)]))
        assert b.num_buckets == 1
        assert b.total_bytes == 4 * (16 + 8 + 6)

    def test_cap_splits_buckets_in_ready_order(self):
        params = _params([(100,), (200,), (300,)])
        b = GradientBucketer(params, bucket_cap_mb=300 * 4 / (1 << 20))
        # Reverse registration order: param 2 fills the first bucket.
        assert b.num_buckets >= 2
        assert b.buckets[0].slots[0].param_index == 2

    def test_oversized_param_gets_own_bucket(self):
        params = _params([(4,), (10_000,), (4,)])
        b = GradientBucketer(params, bucket_cap_mb=1e-4)
        assert b.num_buckets == 3

    def test_dtype_grouping(self):
        params = _params([(4,)]) + _params([(4,)], dtype=np.float64)
        b = GradientBucketer(params)
        assert b.num_buckets == 2
        assert {bk.dtype for bk in b.buckets} == {np.dtype(np.float32),
                                                 np.dtype(np.float64)}

    def test_pack_unpack_roundtrip(self):
        params = _params([(4, 4), (8,), (3, 2)])
        grads = []
        rng = np.random.default_rng(1)
        for p in params:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            grads.append(p.grad.copy())
        b = GradientBucketer(params, bucket_cap_mb=1e-4)
        bufs = b.pack(params, b.make_buffers())
        for p in params:
            p.grad = None
        b.unpack(bufs, params)
        for p, g in zip(params, grads):
            np.testing.assert_array_equal(p.grad, g)

    def test_none_grad_packs_zeros(self):
        params = _params([(4,)])
        params[0].grad = None
        bufs = GradientBucketer(params).pack(params,
                                             GradientBucketer(params).make_buffers())
        np.testing.assert_array_equal(bufs[0], np.zeros(4, np.float32))

    def test_unpack_reuses_grad_buffer_in_place(self):
        params = _params([(4,)])
        params[0].grad = np.zeros(4, np.float32)
        held = params[0].grad
        b = GradientBucketer(params)
        bufs = b.make_buffers()
        bufs[0][:] = 3.0
        b.unpack(bufs, params)
        assert params[0].grad is held
        np.testing.assert_array_equal(held, np.full(4, 3.0))

    def test_buffer_validation(self):
        params = _params([(4,)])
        b = GradientBucketer(params)
        with pytest.raises(ValueError):
            b.pack(params, [])
        with pytest.raises(ValueError):
            b.pack(params, [np.zeros(3, np.float32)])
        with pytest.raises(ValueError):
            GradientBucketer([])
        with pytest.raises(ValueError):
            GradientBucketer(params, bucket_cap_mb=0)


# ---------------------------------------------------------------------------
# Fixed-seed training: preservation + cross-transport equivalence
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_setup():
    ds = load_dataset("pems-bay", nodes=8, entries=220, seed=3)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def _factory(supports, seed=0):
    return lambda: PGTDCRNN(supports, horizon=4, in_features=2,
                            hidden_dim=8, seed=seed)


def _fit_ddp(idx, supports, strategy, pg, *, epochs=3, model_factory=None,
             bucket_cap_mb=25.0, with_val=True):
    model = _factory(supports)()
    opt = Adam(model.parameters(), lr=0.01)
    tr = DDPTrainer(model, opt, pg,
                    IndexBatchLoader(idx, "train", 8),
                    IndexBatchLoader(idx, "val", 8) if with_val else None,
                    strategy=strategy, scaler=idx.scaler, seed=0,
                    model_factory=model_factory,
                    bucket_cap_mb=bucket_cap_mb)
    hist = tr.fit(epochs)
    return tr, [h.train_loss for h in hist]


#: Fixed-seed baselines captured at the parent commit with the original
#: ``SimCommunicator`` (world 4, 3 epochs, pems-bay nodes=8 entries=220
#: seed=3, PGT-DCRNN hidden 8, Adam lr 0.01, batch 8).
PRE_REFACTOR = {
    DDPStrategy.BASELINE_DDP: (
        [0.5620473884046078, 0.42489857971668243, 0.41697229631245136],
        {"data": 147456, "gradient": 59184, "metric": 48}, 27,
        5.116998646153843e-05),
    DDPStrategy.DIST_INDEX: (
        [0.5620473884046078, 0.42489857971668243, 0.41697229631245136],
        {"gradient": 59184, "metric": 48}, 15,
        2.569542646153845e-05),
    DDPStrategy.GENERALIZED_INDEX: (
        [0.567205285653472, 0.4361720886081457, 0.4174777027219534],
        {"data": 18432, "gradient": 59184, "metric": 48}, 27,
        4.987974646153843e-05),
}

#: ``Trainer`` fixed-seed curve at the parent commit (batch 16, 3 epochs).
PRE_REFACTOR_SINGLE = [0.4992162817054325, 0.39737825592358905,
                       0.3664280308617486]


class TestBehaviorPreservation:
    """The runtime refactor must not move a single bit of the sim path."""

    @pytest.mark.parametrize("strategy", list(DDPStrategy))
    def test_ddp_curves_and_bytes_identical_to_simcommunicator(
            self, tiny_setup, strategy):
        idx, supports = tiny_setup
        curve_exp, bytes_exp, ops_exp, now_exp = PRE_REFACTOR[strategy]
        tr, curve = _fit_ddp(idx, supports, strategy, ProcessGroup.sim(4))
        assert curve == curve_exp
        assert dict(tr.comm.stats.bytes_by_category) == bytes_exp
        assert tr.comm.stats.ops == ops_exp
        assert tr.comm.now == now_exp

    def test_single_device_curve_identical(self, tiny_setup):
        idx, supports = tiny_setup
        model = _factory(supports)()
        tr = Trainer(model, Adam(model.parameters(), lr=0.01),
                     IndexBatchLoader(idx, "train", 16),
                     IndexBatchLoader(idx, "val", 16),
                     scaler=idx.scaler, seed=0)
        hist = tr.fit(3)
        assert [h.train_loss for h in hist] == PRE_REFACTOR_SINGLE


class TestCrossTransportEquivalence:
    """Sim and thread transports must train to identical bits."""

    @pytest.mark.parametrize("strategy", list(DDPStrategy))
    def test_thread_matches_sim_bitwise(self, tiny_setup, strategy):
        idx, supports = tiny_setup
        factory = _factory(supports)
        _, sim_curve = _fit_ddp(idx, supports, strategy,
                                ProcessGroup.sim(4), epochs=2,
                                with_val=False)
        tr, thr_curve = _fit_ddp(idx, supports, strategy,
                                 ProcessGroup.threads(4), epochs=2,
                                 model_factory=factory, with_val=False)
        assert thr_curve == sim_curve
        # Replicas stayed aliased to the shared parameters throughout.
        ref = tr.model.state_dict()
        for rep in tr._replicas[1:]:
            for name, arr in rep.state_dict().items():
                np.testing.assert_array_equal(arr, ref[name])

    def test_replicated_execution_on_sim_matches_shared_model(
            self, tiny_setup):
        idx, supports = tiny_setup
        _, shared = _fit_ddp(idx, supports, DDPStrategy.DIST_INDEX,
                             ProcessGroup.sim(4), epochs=2, with_val=False)
        _, replicated = _fit_ddp(idx, supports, DDPStrategy.DIST_INDEX,
                                 ProcessGroup.sim(4), epochs=2,
                                 model_factory=_factory(supports),
                                 with_val=False)
        assert replicated == shared

    def test_many_small_buckets_do_not_change_numerics(self, tiny_setup):
        idx, supports = tiny_setup
        tr1, one = _fit_ddp(idx, supports, DDPStrategy.DIST_INDEX,
                            ProcessGroup.sim(4), epochs=2, with_val=False)
        tr2, many = _fit_ddp(idx, supports, DDPStrategy.DIST_INDEX,
                             ProcessGroup.sim(4), epochs=2, with_val=False,
                             bucket_cap_mb=1e-4)  # one bucket per tensor
        assert many == one
        assert tr2.bucketer.num_buckets > tr1.bucketer.num_buckets == 1
        # Bucket layout moves the same gradient bytes either way.
        assert (tr1.comm.stats.bytes_by_category["gradient"]
                == tr2.comm.stats.bytes_by_category["gradient"])
        assert tr2.comm.stats.ops > tr1.comm.stats.ops

    def test_mismatched_factory_rejected(self, tiny_setup):
        idx, supports = tiny_setup
        with pytest.raises(CommunicatorError):
            _fit_ddp(idx, supports, DDPStrategy.DIST_INDEX,
                     ProcessGroup.sim(2), epochs=1,
                     model_factory=_factory(supports, seed=5))

    def test_cloneless_loader_rejected_for_replicas(self):
        """A source without clone() must fail loudly, not share buffers."""
        from repro.batching.protocols import clone_batch_source

        class BufferedSource:
            batch_size = 4
            num_snapshots = 8

            def batches(self, order=None):
                return iter(())

            def batch_at(self, sel):
                return None, None

        with pytest.raises(TypeError, match="clone"):
            clone_batch_source(BufferedSource())


# ---------------------------------------------------------------------------
# Figures 7/9 on the ProcessGroup.stats traffic-category API
# ---------------------------------------------------------------------------
class TestScalingTrafficBreakdown:
    """Pin the gradient/data/metric breakdown the figures now report."""

    def test_figure7_breakdown_pinned(self):
        from repro.experiments.figure7 import run_figure7
        r = run_figure7(gpu_counts=(4, 128))
        ddp4 = r.by("baseline-ddp")[4]
        assert ddp4.comm_seconds_by_category["gradient"] == \
            pytest.approx(0.00070956158, rel=1e-9)
        assert ddp4.comm_seconds_by_category["data"] == \
            pytest.approx(147.7833984, rel=1e-9)
        assert ddp4.comm_bytes_by_category == {
            "gradient": 73032316, "metric": 8, "data": 236453437440}
        di128 = r.by("dist-index")[128]
        assert "data" not in di128.comm_seconds_by_category
        assert di128.comm_bytes_by_category == {"gradient": 2035744,
                                                "metric": 8}
        # The coarse split the figure has always reported is exactly the
        # sum of the public per-category stats plus framework overhead.
        from repro.training.perfmodel import EPOCH_FIXED_OVERHEAD
        total = sum(ddp4.comm_seconds_by_category.values())
        assert ddp4.comm_minutes == pytest.approx(
            30 * (total + EPOCH_FIXED_OVERHEAD) / 60, rel=1e-12)

    def test_figure9_breakdown_pinned(self):
        from repro.experiments.figure9 import run_figure9
        r = run_figure9(gpu_counts=(8,))
        idx8 = r.by("index")[8]
        assert idx8.comm_seconds_by_category["gradient"] == \
            pytest.approx(0.00655122468, rel=1e-9)
        assert idx8.comm_seconds_by_category["data"] == \
            pytest.approx(8.060081363555799, rel=1e-9)
        assert idx8.comm_bytes_by_category == {"gradient": 36388924,
                                               "data": 15550254720}
        assert "metric" not in idx8.comm_seconds_by_category
        from repro.training.perfmodel import EPOCH_FIXED_OVERHEAD
        total = sum(idx8.comm_seconds_by_category.values())
        assert idx8.comm_seconds == pytest.approx(
            total + EPOCH_FIXED_OVERHEAD, rel=1e-12)


# ---------------------------------------------------------------------------
# RunSpec / api.run integration
# ---------------------------------------------------------------------------
class TestTransportSpec:
    def test_spec_roundtrip_and_validation(self):
        from repro.api import RunSpec
        spec = RunSpec(dataset="pems-bay", strategy="dist-index",
                       world_size=2, transport="thread")
        assert RunSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            RunSpec(dataset="pems-bay", transport="mpi")
        with pytest.raises(ValueError):
            RunSpec(dataset="pems-bay", transport="thread")  # single

    def test_run_thread_transport_matches_sim(self):
        from repro.api import RunSpec, run
        kw = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                  scale="tiny", seed=0, strategy="dist-index",
                  world_size=2, epochs=1)
        sim = run(RunSpec(**kw))
        thr = run(RunSpec(**kw, transport="thread"))
        assert thr.train_curve == sim.train_curve
        assert thr.val_curve == sim.val_curve
