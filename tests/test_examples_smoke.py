"""Smoke-run every ``examples/*.py`` in-process at tiny sizes.

Each example's ``main`` accepts size knobs precisely so this test can
shrink it to seconds; a per-example alarm guards against hangs, so API
refactors cannot silently break (or stall) the documented entry points.
"""

import importlib.util
import signal
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: example module -> kwargs that shrink its main() to a smoke run.
EXAMPLE_ARGS = {
    "quickstart": dict(scale="tiny", epochs=1),
    "model_zoo": dict(scale="tiny", epochs=1),
    "distributed_training": dict(scale="tiny", world=2, epochs=1),
    "memory_comparison": dict(nodes=8, entries=200),
    "dynamic_graphs": dict(nodes=10, entries=300, epochs=1, horizon=4),
    "scaling_study": dict(epochs=5),
    "online_serving": dict(scale="tiny", epochs=1, requests=40, shards=2),
    "fault_tolerance": dict(scale="tiny", epochs=1, world=2, crash_step=2,
                            requests=30),
    "gateway": dict(scale="tiny", epochs=1, requests=60),
    "elastic": dict(scale="tiny", epochs=1, requests_per_tick=40),
}

TIMEOUT_SECONDS = 120


@contextmanager
def alarm(seconds: int, label: str):
    if not hasattr(signal, "SIGALRM"):  # non-unix fallback: no guard
        yield
        return

    def _timeout(signum, frame):
        raise TimeoutError(f"example {label!r} exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _timeout)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_smoke_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    """A new example must either get smoke args here or opt out loudly."""
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLE_ARGS), (
        "examples/ and EXAMPLE_ARGS disagree; add smoke kwargs for new "
        "examples so refactors keep them runnable")


@pytest.mark.parametrize("name", sorted(EXAMPLE_ARGS))
def test_example_runs(name, capsys):
    module = _load_example(name)
    with alarm(TIMEOUT_SECONDS, name):
        module.main(**EXAMPLE_ARGS[name])
    out = capsys.readouterr().out
    assert out.strip(), f"example {name!r} printed nothing"
