"""Unit tests for samplers and batch loaders."""

import numpy as np
import pytest

from repro.batching import (
    BatchShuffleSampler,
    GlobalShuffleSampler,
    IndexBatchLoader,
    LocalShuffleSampler,
    SequentialSampler,
    StandardBatchLoader,
    partition_contiguous,
)
from repro.datasets import load_dataset
from repro.preprocessing import IndexDataset, standard_preprocess


class TestPartition:
    def test_covers_everything_once(self):
        parts = partition_contiguous(103, 4)
        all_idx = np.concatenate(parts)
        np.testing.assert_array_equal(np.sort(all_idx), np.arange(103))

    def test_near_equal_sizes(self):
        parts = partition_contiguous(103, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_single_worker(self):
        parts = partition_contiguous(10, 1)
        np.testing.assert_array_equal(parts[0], np.arange(10))

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            partition_contiguous(10, 0)


def _flatten(plan):
    """All indices a rank-plan touches."""
    return np.concatenate([np.concatenate(b) for b in plan if b])


class TestSamplers:
    N, BS, W = 100, 8, 4

    def test_global_shuffle_covers_disjointly(self):
        s = GlobalShuffleSampler(self.N, self.BS, self.W, seed=0)
        plan = s.epoch_plan(0)
        idx = _flatten(plan)
        assert len(idx) == len(set(idx.tolist()))  # disjoint across ranks

    def test_global_shuffle_changes_per_epoch(self):
        s = GlobalShuffleSampler(self.N, self.BS, self.W, seed=0)
        a = _flatten(s.epoch_plan(0))
        b = _flatten(s.epoch_plan(1))
        assert not np.array_equal(a, b)

    def test_global_shuffle_deterministic(self):
        a = GlobalShuffleSampler(self.N, self.BS, self.W, seed=5)
        b = GlobalShuffleSampler(self.N, self.BS, self.W, seed=5)
        np.testing.assert_array_equal(_flatten(a.epoch_plan(3)),
                                      _flatten(b.epoch_plan(3)))

    def test_global_shuffle_mixes_across_ranks(self):
        """Global shuffling re-deals data across workers between epochs."""
        s = GlobalShuffleSampler(self.N, self.BS, self.W, seed=0)
        rank0_e0 = set(_flatten([s.epoch_plan(0)[0]]).tolist())
        rank0_e1 = set(_flatten([s.epoch_plan(1)[0]]).tolist())
        assert rank0_e0 != rank0_e1

    def test_local_shuffle_keeps_partitions_fixed(self):
        s = LocalShuffleSampler(self.N, self.BS, self.W, seed=0,
                                drop_last=False)
        for rank in range(self.W):
            e0 = set(_flatten([s.epoch_plan(0)[rank]]).tolist())
            e5 = set(_flatten([s.epoch_plan(5)[rank]]).tolist())
            assert e0 == e5  # same samples, different order

    def test_local_shuffle_reorders_within_partition(self):
        s = LocalShuffleSampler(self.N, self.BS, self.W, seed=0)
        a = _flatten([s.epoch_plan(0)[0]])
        b = _flatten([s.epoch_plan(1)[0]])
        assert not np.array_equal(a, b)

    def test_batch_shuffle_keeps_batch_membership(self):
        s = BatchShuffleSampler(self.N, self.BS, self.W, seed=0)
        def batch_sets(epoch):
            return {tuple(b.tolist()) for b in s.epoch_plan(epoch)[1]}
        assert batch_sets(0) == batch_sets(7)  # same batches...

    def test_batch_shuffle_reorders_batches(self):
        s = BatchShuffleSampler(self.N, self.BS, self.W, seed=0)
        order0 = [tuple(b.tolist()) for b in s.epoch_plan(0)[0]]
        order1 = [tuple(b.tolist()) for b in s.epoch_plan(1)[0]]
        assert set(order0) == set(order1)
        assert order0 != order1  # ...in a different order

    def test_batch_shuffle_batches_contiguous(self):
        """Contiguity is what gives generalized-index its locality."""
        s = BatchShuffleSampler(self.N, self.BS, self.W, seed=0)
        for rank_batches in s.epoch_plan(0):
            for b in rank_batches:
                np.testing.assert_array_equal(np.diff(b), 1)

    def test_sequential_order(self):
        s = SequentialSampler(20, 5, 2)
        plan = s.epoch_plan(0)
        np.testing.assert_array_equal(plan[0][0], np.arange(5))
        np.testing.assert_array_equal(plan[1][0], np.arange(10, 15))

    def test_drop_last(self):
        s = SequentialSampler(10, 4, 1, drop_last=True)
        assert sum(len(b) for b in s.epoch_plan(0)[0]) == 8
        s2 = SequentialSampler(10, 4, 1, drop_last=False)
        assert sum(len(b) for b in s2.epoch_plan(0)[0]) == 10

    def test_steps_per_epoch(self):
        s = GlobalShuffleSampler(100, 8, 4, seed=0)
        assert s.steps_per_epoch() == 3  # 25 per rank // 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialSampler(0, 4)
        s = SequentialSampler(10, 0, 1)
        with pytest.raises(ValueError):
            s.epoch_plan(0)


class TestLoaders:
    @pytest.fixture(scope="class")
    def data(self):
        ds = load_dataset("pems-bay", nodes=6, entries=150, seed=1)
        return standard_preprocess(ds), IndexDataset.from_dataset(ds)

    def test_loaders_agree(self, data):
        std, idx = data
        sl = StandardBatchLoader(std, "train", 8)
        il = IndexBatchLoader(idx, "train", 8)
        assert sl.num_snapshots == il.num_snapshots
        for (xs, ys), (xi, yi) in zip(sl.batches(), il.batches()):
            np.testing.assert_array_equal(xs, xi)
            np.testing.assert_array_equal(ys, yi)

    def test_batch_at_matches_order(self, data):
        std, idx = data
        sl = StandardBatchLoader(std, "val", 4)
        il = IndexBatchLoader(idx, "val", 4)
        sel = np.array([3, 0, 7, 2])
        xs, ys = sl.batch_at(sel)
        xi, yi = il.batch_at(sel)
        np.testing.assert_array_equal(xs, xi)
        np.testing.assert_array_equal(ys, yi)

    def test_dtype_conversion(self, data):
        _, idx = data
        il = IndexBatchLoader(idx, "train", 4, dtype=np.float32)
        x, y = next(iter(il.batches()))
        assert x.dtype == np.float32

    def test_len(self, data):
        std, _ = data
        sl = StandardBatchLoader(std, "train", 8)
        assert len(sl) == sl.num_snapshots // 8

    def test_custom_order(self, data):
        _, idx = data
        il = IndexBatchLoader(idx, "train", 4)
        order = np.arange(il.num_snapshots)[::-1]
        x_rev, _ = next(iter(il.batches(order=order)))
        x_fwd, _ = il.batch_at(order[:4])
        np.testing.assert_array_equal(x_rev, x_fwd)

    def test_empty_split_rejected(self):
        ds = load_dataset("pems-bay", nodes=5, entries=60, seed=0)
        idx = IndexDataset.from_dataset(ds)
        # 60 entries, horizon 12 -> 37 snapshots; val split has 4.
        from repro.utils.errors import ShapeError
        import repro.preprocessing.index_batching as ib
        empty = IndexDataset(data=idx.data, starts=idx.starts, horizon=12,
                             scaler=idx.scaler, train_end=0, val_end=0)
        with pytest.raises(ShapeError):
            IndexBatchLoader(empty, "train", 2)
