"""Tests for clocks, reports and table formatting."""

import pytest

from repro.profiling import RunReport, SimClock, format_table


class TestSimClock:
    def test_advance(self):
        c = SimClock()
        assert c.advance(2.5) == 2.5
        assert c.now == 2.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_only_forward(self):
        c = SimClock(10.0)
        c.advance_to(5.0)
        assert c.now == 10.0
        c.advance_to(15.0)
        assert c.now == 15.0

    def test_repr(self):
        assert "now=" in repr(SimClock(1.0))


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"


class TestRunReport:
    def test_add_row_validates_width(self):
        rep = RunReport("t", ["a", "b"])
        with pytest.raises(ValueError):
            rep.add_row(1)

    def test_by_first_column(self):
        rep = RunReport("t", ["k", "v"])
        rep.add_row("x", 1)
        rep.add_row("y", 2)
        assert rep.by_first_column()["y"] == ["y", 2]

    def test_duplicate_key_rejected(self):
        rep = RunReport("t", ["k", "v"])
        rep.add_row("x", 1)
        rep.add_row("x", 2)
        with pytest.raises(KeyError):
            rep.by_first_column()

    def test_str_renders(self):
        rep = RunReport("Title", ["col"])
        rep.add_row("val")
        s = str(rep)
        assert "Title" in s and "val" in s
