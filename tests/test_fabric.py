"""Tests for ``repro.runtime.fabric`` — the real-parallelism transports.

Three layers, bottom up:

- **Framing / shared memory**: bitwise ndarray round-trips through the
  wire format (hypothesis property over arbitrary dtypes and shapes),
  length-prefixed frame reassembly from arbitrary chunkings, and the
  shared-memory ring + array pool the process fabric is built on.
- **Fork fabrics**: ranks really run in separate interpreters (distinct
  PIDs), errors and hard child deaths propagate with the same semantics
  as the thread fabric, and the zero-copy / outbox data planes deliver
  gradients home.
- **Equivalence**: collectives and fixed-seed ``DDPTrainer`` curves are
  bitwise identical across sim / thread / process / socket, faults
  compose (a crashed forked rank recovers to the fault-free curve), and
  checkpoints resume across a transport swap onto a forked fabric.
"""

import os
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import ProcessGroup, ProcessTransport, SocketTransport
from repro.runtime.fabric import SharedArrayPool, ShmRing, framing
from repro.runtime.fabric.framing import FrameAssembler, FrameError
from repro.runtime.faults import RankFailure
from repro.training import DDPStrategy, DDPTrainer
from repro.utils.errors import CommunicatorError


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
_DTYPES = ["float32", "float64", "int32", "int64", "uint8", "bool",
           "float16", "complex64"]


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=0, max_size=3)))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    raw = rng.standard_normal(shape) * 100
    if dtype.kind == "c":
        return (raw + 1j * rng.standard_normal(shape)).astype(dtype)
    return raw.astype(dtype)


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(arr=arrays())
    def test_ndarray_roundtrip_is_bitwise(self, arr):
        """Property: encode → decode preserves dtype, shape and bits for
        arbitrary payloads (including empty and zero-dim arrays)."""
        kind, out = framing.decode(framing.encode_ndarray(arr))
        assert kind == framing.KIND_NDARRAY
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_non_contiguous_input_roundtrips(self):
        arr = np.arange(24.0).reshape(4, 6)[::2, ::3]
        _, out = framing.decode(framing.encode_ndarray(arr))
        np.testing.assert_array_equal(out, arr)

    def test_object_roundtrip(self):
        payload = ("ok", 0.25, {"rank": 3, "curve": [1.0, 0.5]})
        kind, out = framing.decode(framing.encode_object(payload))
        assert kind == framing.KIND_OBJECT and out == payload

    def test_decoded_array_owns_its_bits(self):
        frame = bytearray(framing.encode_ndarray(np.zeros(4)))
        _, out = framing.decode(bytes(frame))
        frame[-8:] = b"\xff" * 8  # mutating the wire bytes
        np.testing.assert_array_equal(out, np.zeros(4))

    def test_bad_magic_and_truncation_rejected(self):
        good = framing.encode_ndarray(np.ones(3))
        with pytest.raises(FrameError):
            framing.decode(b"XXXX" + good[4:])
        with pytest.raises(FrameError):
            framing.decode(good[:-1])  # payload shorter than header claims
        with pytest.raises(FrameError):
            framing.decode(good[:3])

    @settings(max_examples=40, deadline=None)
    @given(frames=st.lists(arrays(), min_size=1, max_size=5),
           cut_seed=st.integers(0, 2**16))
    def test_assembler_recovers_frames_from_any_chunking(self, frames,
                                                         cut_seed):
        """Property: the length-prefixed stream reassembles to the exact
        frame sequence no matter where the transport chunks it."""
        encoded = [framing.encode_ndarray(a) for a in frames]
        stream = b"".join(framing.prefixed(f) for f in encoded)
        rng = np.random.default_rng(cut_seed)
        cuts = sorted(rng.integers(0, len(stream) + 1, size=4))
        pieces = [stream[a:b] for a, b in
                  zip([0, *cuts], [*cuts, len(stream)])]
        asm = FrameAssembler()
        got = [f for piece in pieces for f in asm.feed(piece)]
        assert got == encoded
        assert asm.pending_bytes == 0


# ---------------------------------------------------------------------------
# Shared memory primitives
# ---------------------------------------------------------------------------
class TestSharedMemory:
    def test_pool_copies_and_shares(self):
        src = [np.arange(6, dtype=np.float64),
               np.ones((2, 3), dtype=np.float32)]
        pool = SharedArrayPool(src)
        try:
            for a, b in zip(src, pool.arrays):
                np.testing.assert_array_equal(a, b)
                assert a.dtype == b.dtype
            pool.arrays[0][:] = 7.0  # pool is a copy, not an alias
            assert src[0][0] == 0.0
        finally:
            pool.destroy()

    def test_ring_roundtrips_frames_in_order(self):
        ring = ShmRing(capacity=1 << 12)
        try:
            sent = [framing.encode_object(i) for i in range(5)]
            for f in sent:
                ring.write_frame(f)
            assert ring.drain() == sent
            assert ring.drain() == []
            ring.close_writer()
            assert ring.closed
        finally:
            ring.destroy()

    def test_frame_larger_than_capacity_flows_past_a_draining_reader(self):
        """The ring never requires a frame to fit: a concurrent drain
        lets an oversized frame stream through in capacity-sized gulps."""
        ring = ShmRing(capacity=1 << 10)
        big = framing.encode_ndarray(np.arange(4096, dtype=np.float64))
        assert len(big) > (1 << 10)
        got = []

        def reader():
            deadline = time.monotonic() + 30
            while not got and time.monotonic() < deadline:
                got.extend(ring.drain())

        t = threading.Thread(target=reader)
        t.start()
        try:
            ring.write_frame(big)  # blocks until the reader frees space
            t.join(30)
            assert not t.is_alive()
            assert got == [big]
        finally:
            ring.destroy()


# ---------------------------------------------------------------------------
# Fork fabrics: real child interpreters
# ---------------------------------------------------------------------------
def _make_transport(kind, world, **kw):
    return (ProcessTransport(world, **kw) if kind == "process"
            else SocketTransport(world, **kw))


@pytest.fixture(params=["process", "socket"])
def fabric(request):
    made = []

    def make(world, **kw):
        t = _make_transport(request.param, world, **kw)
        made.append(t)
        return t

    yield make
    for t in made:
        t.shutdown()


class TestForkFabric:
    def test_ranks_run_in_distinct_interpreters(self, fabric):
        t = fabric(3)
        pids = t.run_ranks(lambda rank: (rank, os.getpid()))
        assert [r for r, _ in pids] == [0, 1, 2]
        assert os.getpid() not in {p for _, p in pids}
        assert len({p for _, p in pids}) == 3

    def test_sequential_mode_stays_inline(self):
        t = ProcessTransport(2, parallel=False)
        pids = t.run_ranks(lambda rank: os.getpid())
        assert pids == [os.getpid()] * 2

    def test_lowest_rank_exception_wins(self, fabric):
        t = fabric(3)

        def fn(rank):
            if rank >= 1:
                raise ValueError(f"rank {rank} broke")
            return rank

        with pytest.raises(ValueError, match="rank 1 broke"):
            t.run_ranks(fn)

    def test_unpicklable_result_reports_not_hangs(self, fabric):
        t = fabric(2)
        with pytest.raises(CommunicatorError):
            t.run_ranks(lambda rank: threading.Lock())

    def test_hard_child_death_raises_rank_failure(self, fabric):
        t = fabric(2)
        t.begin_step(5)

        def fn(rank):
            if rank == 1:
                os._exit(42)  # no frame, no exception — just gone
            return rank

        with pytest.raises(RankFailure) as e:
            t.run_ranks(fn)
        assert e.value.rank == 1 and e.value.step == 5

    def test_process_shared_buffers_visible_to_parent(self):
        t = ProcessTransport(2)
        try:
            bufs = [t.attach_rank_buffers(r, [np.zeros(4)]) for r in range(2)]

            def fn(rank):
                bufs[rank][0][:] = rank + 1.0

            t.run_ranks(fn)
            np.testing.assert_array_equal(bufs[0][0], np.full(4, 1.0))
            np.testing.assert_array_equal(bufs[1][0], np.full(4, 2.0))
        finally:
            t.shutdown()

    def test_socket_outbox_ships_arrays_home(self):
        t = SocketTransport(2)
        try:
            bufs = [t.attach_rank_buffers(r, [np.zeros(3), np.zeros(2)])
                    for r in range(2)]

            def fn(rank):
                bufs[rank][0][:] = rank + 1.0
                bufs[rank][1][:] = 10.0 * (rank + 1)

            t.run_ranks(fn)
            np.testing.assert_array_equal(bufs[1][0], np.full(3, 2.0))
            np.testing.assert_array_equal(bufs[1][1], np.full(2, 20.0))
        finally:
            t.shutdown()

    def test_fabrics_report_isolated_ranks(self, fabric):
        assert fabric(2).isolated_ranks

    def test_world_size_validated(self, fabric):
        t = fabric(2)
        with pytest.raises(CommunicatorError):
            t.advance_compute(2, 0.1)


# ---------------------------------------------------------------------------
# Equivalence across every fabric
# ---------------------------------------------------------------------------
class TestCollectiveEquivalence:
    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_allreduce_mean_matches_everywhere(self, world):
        """Small worlds: process == socket == sim == NumPy mean, bitwise
        (collectives are centralized, so fabrics cannot diverge)."""
        rng = np.random.default_rng(world)
        tensors = [rng.standard_normal(17) for _ in range(world)]
        reference = np.stack(tensors).mean(axis=0)
        sim = ProcessGroup.sim(world).allreduce(tensors, op="mean")
        proc_pg = ProcessGroup.processes(world)
        sock_pg = ProcessGroup.sockets(world)
        try:
            proc = proc_pg.allreduce(tensors, op="mean")
            sock = sock_pg.allreduce(tensors, op="mean")
        finally:
            proc_pg.transport.shutdown()
            sock_pg.transport.shutdown()
        for r in range(world):
            np.testing.assert_array_equal(proc[r], reference)
            assert proc[r].tobytes() == sim[r].tobytes() == sock[r].tobytes()


@pytest.fixture(scope="module")
def tiny_setup():
    ds = load_dataset("pems-bay", nodes=8, entries=220, seed=3)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def _fit_fabric(idx, supports, strategy, pg, *, epochs=2):
    model = PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                     seed=0)
    tr = DDPTrainer(model, Adam(model.parameters(), lr=0.01), pg,
                    IndexBatchLoader(idx, "train", 8),
                    strategy=strategy, scaler=idx.scaler, seed=0)
    hist = tr.fit(epochs)
    shutdown = getattr(pg.transport, "shutdown", None)
    if shutdown is not None:
        shutdown()
    return tr, [h.train_loss for h in hist]


#: First two epochs of the pinned pre-refactor sim curves from
#: ``tests/test_runtime.py`` (world 4, pems-bay nodes=8 entries=220
#: seed=3, PGT-DCRNN hidden 8, Adam lr 0.01, batch 8) — the forked
#: fabrics must land on the same bits.
PINNED_2EP = {
    DDPStrategy.BASELINE_DDP: [0.5620473884046078, 0.42489857971668243],
    DDPStrategy.DIST_INDEX: [0.5620473884046078, 0.42489857971668243],
    DDPStrategy.GENERALIZED_INDEX: [0.567205285653472, 0.4361720886081457],
}


class TestTrainingEquivalence:
    @pytest.mark.parametrize("strategy", list(DDPStrategy))
    def test_process_matches_sim_and_pinned_bits(self, tiny_setup, strategy):
        idx, supports = tiny_setup
        _, sim = _fit_fabric(idx, supports, strategy, ProcessGroup.sim(4))
        _, proc = _fit_fabric(idx, supports, strategy,
                              ProcessGroup.processes(4))
        assert proc == sim == PINNED_2EP[strategy]

    def test_socket_matches_pinned_bits(self, tiny_setup):
        idx, supports = tiny_setup
        _, sock = _fit_fabric(idx, supports, DDPStrategy.DIST_INDEX,
                              ProcessGroup.sockets(4))
        assert sock == PINNED_2EP[DDPStrategy.DIST_INDEX]

    def test_resume_swaps_onto_process_fabric(self, tiny_setup, tmp_path):
        """A sim-checkpointed run resumes on forked ranks bitwise."""
        idx, supports = tiny_setup

        def make(pg, ckpt=None):
            model = PGTDCRNN(supports, horizon=4, in_features=2,
                             hidden_dim=8, seed=0)
            return DDPTrainer(model, Adam(model.parameters(), lr=0.01), pg,
                              IndexBatchLoader(idx, "train", 8),
                              strategy=DDPStrategy.DIST_INDEX,
                              scaler=idx.scaler, seed=0,
                              checkpoint_every=1 if ckpt else None,
                              checkpoint_path=ckpt)

        reference = [h.train_loss for h in make(ProcessGroup.sim(2)).fit(2)]
        ckpt = str(tmp_path / "swap.npz")
        make(ProcessGroup.sim(2), ckpt).fit(1)
        resumed = make(ProcessGroup.processes(2), ckpt)
        resumed.resume(ckpt)
        curve = [h.train_loss for h in resumed.fit(2)]
        resumed.comm.transport.shutdown()
        assert curve == reference

    def test_rank_crash_on_process_fabric_recovers_bitwise(self):
        """FaultyTransport composes: a forked rank dying mid-step drives
        the checkpoint/restart path to the fault-free curve."""
        from repro.api import RunSpec, run

        base = RunSpec(dataset="pems-bay", scale="tiny", seed=1,
                       strategy="dist-index", world_size=2, epochs=2)
        clean = run(base)
        faulty = run(base.replace(transport="process",
                                  faults=("rank_crash:step=3,rank=1",)))
        assert faulty.restarts == 1
        assert faulty.train_curve == clean.train_curve


class TestShardedServingOnFabric:
    def test_sharded_predictions_match_inline(self):
        from repro.api import RunSpec, run
        from repro.serving import ShardedSession

        trained = run(RunSpec(dataset="pems-bay", scale="tiny", seed=1,
                              epochs=1))
        ds = trained.artifacts.dataset
        scaler = trained.artifacts.loaders.scaler

        def session(comm=None):
            return ShardedSession(trained.artifacts.model, scaler, ds.graph,
                                  num_shards=2, spec=trained.spec, comm=comm)

        ref = session()
        rng = np.random.default_rng(0)
        batch = rng.standard_normal(
            (3, ref.horizon, ds.num_nodes, ref.in_features)
        ).astype(np.float32)
        inline = ref.predict(batch).copy()
        pg = ProcessGroup.processes(2)
        fabric = session(comm=pg)
        out = fabric.predict(batch)
        pg.transport.shutdown()
        np.testing.assert_array_equal(out, inline)
