"""Hypothesis property-based tests on the library's core invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.autograd import Tensor, unbroadcast
from repro.batching.samplers import (
    BatchShuffleSampler,
    GlobalShuffleSampler,
    LocalShuffleSampler,
    partition_contiguous,
)
from repro.hardware.memory import MemorySpace
from repro.preprocessing import (
    StandardScaler,
    index_nbytes,
    num_snapshots,
    split_bounds,
    standard_preprocessed_nbytes,
)
from repro.preprocessing.index_batching import IndexDataset
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.windows import window_starts
from repro.utils.seeding import derive_seed


# ---------------------------------------------------------------------------
# Window arithmetic
# ---------------------------------------------------------------------------
@given(entries=st.integers(2, 5000), horizon=st.integers(1, 64))
def test_snapshot_count_formula(entries, horizon):
    assume(entries >= 2 * horizon)
    n = num_snapshots(entries, horizon)
    assert n == entries - (2 * horizon - 1)
    # Every start must leave room for x and y windows.
    starts = window_starts(entries, horizon)
    assert starts[-1] + 2 * horizon <= entries


@given(n=st.integers(1, 10_000))
def test_split_bounds_partition(n):
    train_end, val_end = split_bounds(n)
    assert 0 <= train_end <= val_end <= n
    # Ratios approximately respected for larger n.
    if n >= 20:
        assert abs(train_end / n - 0.7) < 0.06
        assert abs((val_end - train_end) / n - 0.1) < 0.06


@given(entries=st.integers(4, 500), horizon=st.integers(1, 24),
       nodes=st.integers(1, 40), features=st.integers(1, 5))
def test_memory_equations_consistency(entries, horizon, nodes, features):
    assume(entries >= 2 * horizon)
    eq1 = standard_preprocessed_nbytes(entries, nodes, features, horizon)
    eq2 = index_nbytes(entries, nodes, features, horizon)
    n_snap = num_snapshots(entries, horizon)
    # eq1 is exactly 2 * snapshots * horizon window elements.
    assert eq1 == 2 * n_snap * horizon * nodes * features * 8
    # index is never larger than standard for horizon >= 1 and is strictly
    # smaller whenever there is real window overlap.
    if horizon >= 2 and n_snap > 1:
        assert eq2 < eq1


# ---------------------------------------------------------------------------
# Index-batching == standard preprocessing (the paper's core equivalence)
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(entries=st.integers(48, 140), nodes=st.integers(2, 8),
       horizon=st.integers(1, 10), seed=st.integers(0, 10**6))
def test_index_equals_standard_everywhere(entries, nodes, horizon, seed):
    from repro.datasets import load_dataset
    from repro.preprocessing import standard_preprocess
    assume(entries >= 4 * horizon)
    ds = load_dataset("pems-bay", nodes=nodes, entries=entries, seed=seed)
    std = standard_preprocess(ds, horizon=horizon)
    idx = IndexDataset.from_dataset(ds, horizon=horizon)
    for split in ("train", "val", "test"):
        xs, ys = std.split(split)
        if len(xs) == 0:
            continue
        xi, yi = idx.materialize_split(split)
        np.testing.assert_array_equal(xs, xi)
        np.testing.assert_array_equal(ys, yi)


@settings(max_examples=30, deadline=None)
@given(start=st.integers(0, 100))
def test_snapshots_are_views(start):
    from repro.datasets import load_dataset
    ds = load_dataset("pems-bay", nodes=3, entries=150, seed=1)
    idx = IndexDataset.from_dataset(ds)
    assume(start < idx.num_snapshots)
    x, y = idx.snapshot(start)
    assert x.base is idx.data and y.base is idx.data


# ---------------------------------------------------------------------------
# Scaler
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 50), st.integers(1, 4))
def test_scaler_roundtrip(seed, rows, features):
    rng = np.random.default_rng(seed)
    data = rng.normal(rng.uniform(-100, 100), rng.uniform(0.1, 50),
                      size=(rows, 3, features))
    s = StandardScaler().fit(data)
    np.testing.assert_allclose(s.inverse_transform(s.transform(data)), data,
                               rtol=1e-9, atol=1e-7)


# ---------------------------------------------------------------------------
# Samplers: every strategy must cover each rank's data exactly once
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(n=st.integers(8, 400), batch=st.integers(1, 16),
       world=st.integers(1, 8), epoch=st.integers(0, 5),
       kind=st.sampled_from(["global", "local", "batch"]))
def test_sampler_plans_disjoint_and_valid(n, batch, world, epoch, kind):
    cls = {"global": GlobalShuffleSampler, "local": LocalShuffleSampler,
           "batch": BatchShuffleSampler}[kind]
    sampler = cls(n, batch, world, seed=3, drop_last=False)
    plan = sampler.epoch_plan(epoch)
    assert len(plan) == world
    seen = []
    for rank_batches in plan:
        for b in rank_batches:
            seen.extend(b.tolist())
    assert sorted(seen) == sorted(set(seen))      # no duplicates
    assert all(0 <= i < n for i in seen)
    assert len(seen) == n                          # full coverage


@given(n=st.integers(1, 1000), world=st.integers(1, 32))
def test_partition_contiguous_properties(n, world):
    parts = partition_contiguous(n, world)
    flat = np.concatenate(parts) if parts else np.array([])
    np.testing.assert_array_equal(flat, np.arange(n))
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Memory space: usage is always the sum of live allocations
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)),
                min_size=1, max_size=60))
def test_memory_space_conservation(ops):
    m = MemorySpace("prop")
    live = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            live.append(m.allocate("a", size))
        else:
            m.free(live.pop())
        assert m.in_use == sum(a.nbytes for a in live)
        assert m.peak >= m.in_use


# ---------------------------------------------------------------------------
# unbroadcast: gradient reduction inverts numpy broadcasting
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6))
def test_unbroadcast_inverts_broadcast(seed):
    rng = np.random.default_rng(seed)
    base_shape = tuple(rng.integers(1, 4, size=rng.integers(1, 4)))
    # Make a broadcastable gradient shape: prepend dims / stretch 1s.
    grad_shape = tuple(rng.integers(1, 4,
                                    size=rng.integers(0, 2)).tolist()) + tuple(
        s if s > 1 or rng.random() < 0.5 else int(rng.integers(1, 4))
        for s in base_shape)
    g = np.ones(grad_shape)
    out = unbroadcast(g, base_shape)
    assert out.shape == base_shape
    # Total mass conserved: sum of gradient unchanged by reduction.
    assert out.sum() == g.sum()


# ---------------------------------------------------------------------------
# Fault plans: compact encoding <-> decode is the identity
# ---------------------------------------------------------------------------
from repro.runtime.faults import FAULT_KINDS, GATEWAY_KINDS, FaultEvent, FaultPlan

_TARGETS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
                   min_size=1, max_size=12)


@st.composite
def fault_events(draw):
    """Arbitrary valid FaultEvents across every kind, including the
    serving-side ones (which require a delimiter-free target)."""
    kind = draw(st.sampled_from(FAULT_KINDS))
    step = draw(st.integers(0, 500))
    until = draw(st.one_of(st.none(), st.integers(step + 1, step + 200)))
    return FaultEvent(
        kind=kind, step=step, until=until,
        rank=draw(st.integers(0, 16)),
        slowdown=draw(st.floats(1.0, 16.0, allow_nan=False)),
        seconds=draw(st.floats(0.0, 10.0, allow_nan=False)),
        category=draw(st.sampled_from([None, "gradient", "data", "halo"])),
        shard=draw(st.integers(0, 8)),
        request=draw(st.integers(0, 1000)),
        target=draw(_TARGETS) if kind in GATEWAY_KINDS else "")


@settings(max_examples=80, deadline=None)
@given(fault_events())
def test_fault_event_encode_decode_roundtrip(ev):
    assert FaultEvent.decode(ev.encode()) == ev


@settings(max_examples=40, deadline=None)
@given(st.lists(fault_events(), max_size=8), st.integers(0, 2**31))
def test_fault_plan_spec_roundtrip_and_views_partition(events, seed):
    plan = FaultPlan(tuple(events), seed=seed)
    assert FaultPlan.from_spec(plan.to_spec(), seed=seed) == plan
    # Every event is consumed by exactly one layer: transport, sharded
    # serving (worker_crash), or the gateway resilience layer.
    transport = {i for i, _ in plan.transport_events()}
    workers = {i for i, _ in plan.serving_events()}
    gateway = {i for i, _ in plan.gateway_events()}
    assert transport | workers | gateway == set(range(len(plan)))
    assert transport.isdisjoint(workers | gateway)
    assert workers.isdisjoint(gateway)


# ---------------------------------------------------------------------------
# Seeding
# ---------------------------------------------------------------------------
@given(st.integers(0, 2**31), st.text(max_size=20), st.text(max_size=20))
def test_derive_seed_stable_and_distinct(base, a, b):
    assert derive_seed(a, base=base) == derive_seed(a, base=base)
    if a != b:
        assert derive_seed(a, base=base) != derive_seed(b, base=base)


# ---------------------------------------------------------------------------
# Autograd: sum rule on random DAG-ish expressions
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6))
def test_gradient_linearity(seed):
    """grad of (a*f + b*g) == a*grad(f) + b*grad(g) for scalar outputs."""
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((3, 3))
    a, b = float(rng.uniform(-2, 2)), float(rng.uniform(-2, 2))

    def grad_of(fn):
        t = Tensor(x0, requires_grad=True, dtype=np.float64)
        fn(t).backward()
        return t.grad

    gf = grad_of(lambda t: (t * t).sum())
    gg = grad_of(lambda t: t.tanh().sum())
    combined = grad_of(lambda t: (t * t).sum() * a + t.tanh().sum() * b)
    np.testing.assert_allclose(combined, a * gf + b * gg, rtol=1e-9,
                               atol=1e-12)


# ---------------------------------------------------------------------------
# Gradient bucketing: pack -> unpack is the identity
# ---------------------------------------------------------------------------
class _FakeParam:
    """Minimal parameter stand-in: the bucketer touches .data and .grad."""

    def __init__(self, data, grad):
        self.data = data
        self.grad = grad


@st.composite
def bucketer_workloads(draw):
    """A random parameter list (mixed dtypes/shapes, some ``None`` grads)
    plus a bucket cap — including caps smaller than the largest tensor."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    n = draw(st.integers(1, 8))
    params = []
    for _ in range(n):
        shape = tuple(draw(st.lists(st.integers(1, 6), min_size=1,
                                    max_size=3)))
        dtype = draw(st.sampled_from([np.float32, np.float64]))
        data = rng.standard_normal(shape).astype(dtype)
        grad = (None if draw(st.booleans())
                else rng.standard_normal(shape).astype(dtype))
        params.append(_FakeParam(data, grad))
    largest = max(p.data.nbytes for p in params)
    cap_bytes = draw(st.one_of(
        st.integers(1, max(largest - 1, 1)),       # smaller than largest
        st.integers(largest, 4 * largest),         # a few tensors per bucket
        st.just(25 << 20)))                        # everything in one
    ready_order = draw(st.booleans())
    return params, cap_bytes / (1 << 20), ready_order


@settings(max_examples=60, deadline=None)
@given(bucketer_workloads())
def test_gradient_bucketer_roundtrip_exact(workload):
    """pack -> unpack reproduces every gradient exactly (``None`` grads
    come back as zeros), for any dtype mix, shape mix, and bucket cap."""
    from repro.runtime import GradientBucketer

    params, cap_mb, ready_order = workload
    bucketer = GradientBucketer(params, bucket_cap_mb=cap_mb,
                                ready_order=ready_order)
    buffers = bucketer.make_buffers()
    bucketer.pack(params, buffers)

    # Buckets are dtype-homogeneous and cover every parameter once.
    assert sum(len(b.slots) for b in bucketer.buckets) == len(params)
    covered = sorted(s.param_index for b in bucketer.buckets
                     for s in b.slots)
    assert covered == list(range(len(params)))
    for layout in bucketer.buckets:
        for slot in layout.slots:
            assert params[slot.param_index].data.dtype == layout.dtype

    # Unpack into a *fresh* parameter set: grads must match bitwise.
    fresh = [_FakeParam(p.data.copy(), None) for p in params]
    bucketer.unpack(buffers, fresh)
    for original, restored in zip(params, fresh):
        expected = (np.zeros_like(original.data) if original.grad is None
                    else original.grad)
        assert restored.grad.dtype == original.data.dtype
        assert restored.grad.shape == original.data.shape
        np.testing.assert_array_equal(restored.grad, expected)

    # Re-unpacking in place reuses the existing grad buffers (the PR-2
    # allocation discipline) and still matches.
    kept = [r.grad for r in fresh]
    bucketer.unpack(buffers, fresh)
    for r, buf in zip(fresh, kept):
        assert r.grad is buf


@settings(max_examples=30, deadline=None)
@given(bucketer_workloads())
def test_gradient_bucketer_respects_cap(workload):
    """No bucket exceeds the cap unless a single tensor alone does."""
    from repro.runtime import GradientBucketer

    params, cap_mb, ready_order = workload
    bucketer = GradientBucketer(params, bucket_cap_mb=cap_mb,
                                ready_order=ready_order)
    cap_bytes = int(cap_mb * (1 << 20))
    for layout in bucketer.buckets:
        assert layout.nbytes <= cap_bytes or len(layout.slots) == 1
