"""Tests for the analytic full-scale performance model.

These pin the *shapes* of the paper's headline runtime results; exact
bands are asserted in the benchmark harness.
"""

import numpy as np
import pytest

from repro.datasets import get_spec
from repro.training.perfmodel import (
    EFFICIENCY_PGT_SMALL,
    ModelPerf,
    TrainingPerfModel,
    dcgru_cell_flops,
    dcgru_cell_params,
    dcrnn_perf,
    pgt_dcrnn_perf,
    standard_windowed_bytes,
    stllm_perf,
)


@pytest.fixture(scope="module")
def pems_model():
    spec = get_spec("pems")
    m = pgt_dcrnn_perf(spec.num_nodes, spec.horizon, spec.train_features)
    return TrainingPerfModel(spec, m, 64)


class TestFlopCounts:
    def test_dcgru_flops_scale_with_nodes(self):
        assert dcgru_cell_flops(2000, 2, 64) == pytest.approx(
            2 * dcgru_cell_flops(1000, 2, 64), rel=0.01)

    def test_dcgru_params_match_real_model(self):
        """Analytic parameter count must equal the built model's."""
        from repro.graph import dual_random_walk_supports, random_sensor_network
        from repro.models.dcrnn import DCGRUCell
        g = random_sensor_network(20, seed=0)
        cell = DCGRUCell(dual_random_walk_supports(g.weights), 3, 16)
        assert cell.num_parameters() == dcgru_cell_params(3, 16)

    def test_pgt_flops_match_real_model_form(self):
        """Analytic flops should track the built model's flop method."""
        from repro.graph import dual_random_walk_supports, random_sensor_network
        from repro.models import PGTDCRNN
        g = random_sensor_network(30, seed=1)
        model = PGTDCRNN(dual_random_walk_supports(g.weights), 12, 2,
                         hidden_dim=64)
        analytic = pgt_dcrnn_perf(30, 12, 2, 64).snapshot_flops
        real = model.flops_per_snapshot()
        assert analytic == pytest.approx(real, rel=0.25)

    def test_dcrnn_heavier_than_pgt(self):
        pgt = pgt_dcrnn_perf(1000, 12, 2)
        full = dcrnn_perf(1000, 12, 2)
        assert full.snapshot_flops > 3 * pgt.snapshot_flops

    def test_stllm_param_bytes_positive(self):
        m = stllm_perf(325, 12, 2)
        assert m.param_bytes > 10**6


class TestPreprocessTimes:
    def test_index_preprocessing_within_paper_band(self, pems_model):
        """Paper §5.3.1: index preprocessing fluctuates 11-40 s."""
        times = [pems_model.preprocess_seconds("index", seed=i)
                 for i in range(20)]
        assert min(times) > 5 and max(times) < 45
        assert max(times) > 1.5 * min(times)  # visible I/O jitter

    def test_dist_index_time_independent_of_world(self, pems_model):
        t4 = pems_model.preprocess_seconds("dist-index", 4, seed=0)
        t128 = pems_model.preprocess_seconds("dist-index", 128, seed=0)
        assert t128 < 2 * t4  # no scaling with workers (modulo contention)

    def test_ddp_preprocessing_plateau_near_300s(self, pems_model):
        """Paper: DDP preprocessing is stable, max ~305 s at 128 workers."""
        times = [pems_model.preprocess_seconds("baseline-ddp", w, seed=0)
                 for w in (4, 8, 16, 32, 64, 128)]
        assert all(200 < t < 400 for t in times)
        assert times[-1] == max(times)  # slight growth at 128

    def test_unknown_strategy(self, pems_model):
        with pytest.raises(ValueError):
            pems_model.preprocess_seconds("bogus")


class TestEpochModel:
    def test_gpu_index_faster_than_index(self, pems_model):
        """Table 4: GPU residency removes per-batch transfers (~13%)."""
        idx = pems_model.epoch_breakdown("index")
        gpu = pems_model.epoch_breakdown("gpu-index")
        assert gpu.total < idx.total
        assert idx.h2d > 0 and gpu.h2d == 0
        saving = 1 - gpu.total / idx.total
        assert 0.05 < saving < 0.25

    def test_compute_scales_inverse_world(self, pems_model):
        e4 = pems_model.epoch_breakdown("dist-index", 4)
        e32 = pems_model.epoch_breakdown("dist-index", 32)
        assert e4.compute / e32.compute == pytest.approx(8.0, rel=0.05)

    def test_baseline_ddp_comm_dominates_at_scale(self, pems_model):
        """Fig. 7 left: DDP becomes communication-bound."""
        e = pems_model.epoch_breakdown("baseline-ddp", 64)
        assert e.data_comm > e.compute

    def test_dist_index_no_data_comm(self, pems_model):
        e = pems_model.epoch_breakdown("dist-index", 64)
        assert e.data_comm == 0.0
        assert e.grad_comm > 0.0

    def test_generalized_comm_much_smaller_than_ddp(self, pems_model):
        """Fig. 9: raw-range fetches cut volume by ~2*horizon."""
        ddp = pems_model.epoch_breakdown("baseline-ddp", 16)
        gen = pems_model.epoch_breakdown("generalized-index", 16)
        assert ddp.data_comm > 10 * gen.data_comm

    def test_framework_overhead_multiworker_only(self, pems_model):
        assert pems_model.epoch_breakdown("index", 1).framework == 0.0
        assert pems_model.epoch_breakdown("dist-index", 4).framework > 0.0


class TestHeadlineShapes:
    def test_single_gpu_runtimes_match_table4(self, pems_model):
        """Table 4: 333.58 min (index) / 290.65 min (GPU-index)."""
        idx = pems_model.run("index", 1, 30, seed=0)
        gpu = pems_model.run("gpu-index", 1, 30, seed=0)
        assert idx.total_seconds / 60 == pytest.approx(333.58, rel=0.05)
        assert gpu.total_seconds / 60 == pytest.approx(290.65, rel=0.05)

    def test_speedup_ratios_match_paper_endpoints(self, pems_model):
        """§5.3.2: 2.16x at 4 GPUs, 11.78x at 128 GPUs vs baseline DDP."""
        r4 = (pems_model.run("baseline-ddp", 4, 30).total_seconds
              / pems_model.run("dist-index", 4, 30).total_seconds)
        r128 = (pems_model.run("baseline-ddp", 128, 30).total_seconds
                / pems_model.run("dist-index", 128, 30).total_seconds)
        assert r4 == pytest.approx(2.16, rel=0.15)
        assert r128 == pytest.approx(11.78, rel=0.25)

    def test_scaling_knee_at_64_128(self, pems_model):
        """§5.3.1: near-linear to 32 GPUs, sublinear at 64/128."""
        base = pems_model.run("dist-index", 4, 30).training_seconds
        eff = {}
        for w in (8, 16, 32, 64, 128):
            t = pems_model.run("dist-index", w, 30).training_seconds
            eff[w] = (base / t) / (w / 4)
        assert eff[8] > 0.9 and eff[16] > 0.85 and eff[32] > 0.75
        assert eff[128] < eff[32]

    def test_gpu_training_memory(self, pems_model):
        """Table 4 GPU column: ~5.5 GB (index) vs ~18.6 GB (GPU-index)."""
        from repro.utils.sizes import GB
        small = pems_model.gpu_training_bytes(data_resident=False)
        big = pems_model.gpu_training_bytes(data_resident=True)
        assert 2 * GB < small < 9 * GB
        assert 15 * GB < big < 25 * GB

    def test_table2_runtime_gap(self):
        """Table 2: DCRNN 68.48 min vs PGT-DCRNN 4.48 min (15.3x)."""
        spec = get_spec("pems-all-la")
        pgt = TrainingPerfModel(
            spec, pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                                 spec.train_features,
                                 efficiency=EFFICIENCY_PGT_SMALL), 32)
        dcr = TrainingPerfModel(
            spec, dcrnn_perf(spec.num_nodes, spec.horizon,
                             spec.train_features), 32)
        t_pgt = pgt.run("index", 1, 1, include_validation=False).training_seconds
        t_dcr = dcr.run("index", 1, 1, include_validation=False).training_seconds
        assert t_dcr / t_pgt == pytest.approx(15.3, rel=0.35)
        assert t_dcr / 60 == pytest.approx(68.48, rel=0.15)


class TestWindowedBytes:
    def test_half_of_eq1(self):
        from repro.preprocessing import standard_preprocessed_nbytes
        spec = get_spec("pems-bay")
        assert 2 * standard_windowed_bytes(spec) == \
            standard_preprocessed_nbytes(spec.num_entries, spec.num_nodes,
                                         spec.train_features, spec.horizon)
