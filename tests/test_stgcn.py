"""Tests for STGCN (gated temporal convs + Chebyshev spatial convs)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graph import random_sensor_network
from repro.models import STGCN
from repro.models.stgcn import ChebGraphConv, TemporalGatedConv
from repro.optim import Adam, l1_loss
from repro.utils.errors import ShapeError

N, H, F_IN, B = 10, 12, 2, 3


@pytest.fixture(scope="module")
def graph():
    return random_sensor_network(N, seed=2)


def _x(seed=0, horizon=H):
    return np.random.default_rng(seed).standard_normal(
        (B, horizon, N, F_IN)).astype(np.float32)


class TestTemporalGatedConv:
    def test_output_length(self):
        conv = TemporalGatedConv(F_IN, 8, kernel=3)
        out = conv(Tensor(_x()))
        assert out.shape == (B, H - 2, N, 8)

    def test_kernel_one_preserves_length(self):
        conv = TemporalGatedConv(F_IN, 8, kernel=1)
        assert conv(Tensor(_x())).shape == (B, H, N, 8)

    def test_too_short_sequence(self):
        conv = TemporalGatedConv(F_IN, 8, kernel=5)
        with pytest.raises(ShapeError):
            conv(Tensor(_x(horizon=3)))

    def test_causal_window(self):
        """Output step t depends only on input steps t .. t+k-1."""
        conv = TemporalGatedConv(1, 4, kernel=3)
        x = np.zeros((1, 8, N, 1), dtype=np.float32)
        base = conv(Tensor(x)).data
        x2 = x.copy()
        x2[0, 7] = 5.0  # perturb the last input step
        pert = conv(Tensor(x2)).data
        # Only the last output step (window 5..7) may change.
        np.testing.assert_allclose(base[0, :-1], pert[0, :-1], atol=1e-7)
        assert not np.allclose(base[0, -1], pert[0, -1])

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            TemporalGatedConv(2, 4, kernel=0)

    def test_gradients_flow(self):
        conv = TemporalGatedConv(F_IN, 8, kernel=3)
        x = Tensor(_x(), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestChebGraphConv:
    def test_shape_and_hops(self, graph):
        conv = ChebGraphConv(graph.weights, 4, 6, k=3)
        out = conv(Tensor(np.random.default_rng(0).standard_normal(
            (B, 5, N, 4)).astype(np.float32)))
        assert out.shape == (B, 5, N, 6)
        assert len(conv.supports) == 3

    def test_spatial_mixing(self, graph):
        conv = ChebGraphConv(graph.weights, 1, 1, k=3)
        x = np.zeros((1, 1, N, 1), dtype=np.float32)
        base = conv(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0, 0, 0] = 3.0
        pert = conv(Tensor(x2)).data
        changed = np.flatnonzero(np.abs(pert - base)[0, 0, :, 0] > 1e-7)
        assert len(changed) > 1


class TestSTGCN:
    def test_output_shape(self, graph):
        model = STGCN(graph.weights, H, F_IN, channels=8,
                      spatial_channels=4)
        out = model(Tensor(_x()))
        assert out.shape == (B, H, N, 1)

    def test_horizon_too_short_rejected(self, graph):
        with pytest.raises(ShapeError):
            STGCN(graph.weights, 4, F_IN, kernel=3)

    def test_all_params_get_grads(self, graph):
        model = STGCN(graph.weights, H, F_IN, channels=8, spatial_channels=4)
        y = np.random.default_rng(1).standard_normal(
            (B, H, N, 1)).astype(np.float32)
        loss = l1_loss(model(Tensor(_x())), y)
        model.zero_grad()
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_overfits_learnable_target(self, graph):
        model = STGCN(graph.weights, H, F_IN, channels=8, spatial_channels=4)
        x = _x(seed=3)
        y = (0.5 * x[..., :1] + 0.1).astype(np.float32)
        opt = Adam(model.parameters(), lr=0.02)
        first = None
        for _ in range(40):
            loss = l1_loss(model(Tensor(x)), y)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first

    def test_deterministic_init(self, graph):
        a = STGCN(graph.weights, H, F_IN, seed=1)
        b = STGCN(graph.weights, H, F_IN, seed=1)
        for (na, pa), (_, pb) in zip(a.named_parameters(),
                                     b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_trains_on_index_batched_data(self, graph):
        """End-to-end with the index pipeline (broader-applicability)."""
        from repro.batching import IndexBatchLoader
        from repro.datasets import load_dataset
        from repro.preprocessing import IndexDataset
        from repro.training import Trainer

        ds = load_dataset("pems-bay", nodes=N, entries=260, seed=4)
        idx = IndexDataset.from_dataset(ds, horizon=12)
        model = STGCN(ds.graph.weights, 12, 2, channels=8,
                      spatial_channels=4)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                          IndexBatchLoader(idx, "train", 16),
                          IndexBatchLoader(idx, "val", 16),
                          scaler=idx.scaler, seed=4)
        hist = trainer.fit(2)
        assert hist[-1].train_loss < hist[0].train_loss
        assert np.isfinite(hist[-1].val_mae)
