"""Unit tests for cluster topology and cost models."""

import numpy as np
import pytest

from repro.cluster import ClusterTopology, CommCostModel, PFSModel


class TestTopology:
    def test_paper_gpu_to_node_mapping(self):
        # 4, 8, 16, 32, 64, 128 GPUs -> 1, 2, 4, 8, 16, 32 Polaris nodes.
        for gpus, nodes in [(4, 1), (8, 2), (16, 4), (32, 8), (64, 16),
                            (128, 32)]:
            assert ClusterTopology(gpus).num_nodes == nodes

    def test_node_of_and_local_rank(self):
        t = ClusterTopology(8)
        assert t.node_of(0) == 0 and t.node_of(5) == 1
        assert t.local_rank(5) == 1

    def test_same_node(self):
        t = ClusterTopology(8)
        assert t.same_node(0, 3)
        assert not t.same_node(3, 4)

    def test_spans_nodes(self):
        assert not ClusterTopology(4).spans_nodes()
        assert ClusterTopology(5).spans_nodes()

    def test_rank_bounds(self):
        t = ClusterTopology(4)
        with pytest.raises(IndexError):
            t.node_of(4)

    def test_world_size_positive(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)


class TestCommCostModel:
    def _model(self, world):
        return CommCostModel(ClusterTopology(world))

    def test_allreduce_zero_for_single_rank(self):
        assert self._model(1).allreduce_time(10**6) == 0.0

    def test_allreduce_ring_formula(self):
        m = self._model(8)
        p, n = 8, 10**6
        expected = 2 * (p - 1) * m.alpha + 2 * (p - 1) / p * n / m.beta_inter
        assert m.allreduce_time(n) == pytest.approx(expected)

    def test_allreduce_intranode_uses_nvlink(self):
        intra = self._model(4).allreduce_time(10**8)
        inter = self._model(8).allreduce_time(10**8)
        assert intra < inter

    def test_allreduce_latency_grows_with_world(self):
        small = self._model(8).allreduce_time(1024)
        large = self._model(128).allreduce_time(1024)
        assert large > small

    def test_broadcast_log_rounds(self):
        m = self._model(16)
        n = 10**6
        expected = 4 * (m.alpha + n / m.beta_inter)
        assert m.broadcast_time(n) == pytest.approx(expected)

    def test_allgather(self):
        m = self._model(8)
        assert m.allgather_time(10**6) == pytest.approx(
            7 * (m.alpha + 10**6 / m.beta_inter))

    def test_p2p_same_node_faster(self):
        m = self._model(8)
        assert m.p2p_time(10**7, same_node=True) < m.p2p_time(10**7)

    def test_contended_fetch_shares_fabric(self):
        m = self._model(8)
        t = m.contended_fetch_time(100e9)
        assert t == pytest.approx(100e9 / m.fabric_aggregate_bw, rel=0.01)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            self._model(4).p2p_time(-5)
        with pytest.raises(ValueError):
            self._model(4).contended_fetch_time(-5)


class TestPFSModel:
    def test_deterministic_in_seed(self):
        pfs = PFSModel()
        a = pfs.read_time(10**9, seed=1)
        b = pfs.read_time(10**9, seed=1)
        assert a == b

    def test_jitter_spreads_times(self):
        pfs = PFSModel()
        times = [pfs.read_time(10**10, seed=i) for i in range(40)]
        assert max(times) > 1.3 * min(times)  # real I/O variance

    def test_jitter_bounded(self):
        pfs = PFSModel(read_bw=1e9, jitter=0.5)
        base = 1e9 / 1e9
        for i in range(40):
            t = pfs.read_time(10**9, seed=i)
            assert 0.5 * base <= t <= 1.5 * base + 1e-9

    def test_parallel_readers_mild_contention(self):
        pfs = PFSModel(jitter=0.0)
        t1 = pfs.read_time(10**9, parallel_readers=1)
        t128 = pfs.read_time(10**9, parallel_readers=128)
        assert t1 < t128 < 3 * t1

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PFSModel().read_time(-1)
