"""Tests for horizon-wise evaluation, early stopping and fit-checkpointing."""

import numpy as np
import pytest

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.training import Trainer
from repro.training.checkpoint import load_checkpoint
from repro.training.evaluation import HorizonMetrics, evaluate_by_horizon


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("pems-bay", nodes=8, entries=300, seed=6)
    idx = IndexDataset.from_dataset(ds, horizon=6)
    supports = dual_random_walk_supports(ds.graph.weights)
    model = PGTDCRNN(supports, 6, 2, hidden_dim=8, seed=0)
    train = IndexBatchLoader(idx, "train", 16)
    val = IndexBatchLoader(idx, "val", 16)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), train, val,
                      scaler=idx.scaler, seed=0)
    trainer.fit(4)
    return idx, model, trainer, val


class TestEvaluateByHorizon:
    def test_shapes(self, setup):
        idx, model, _, val = setup
        m = evaluate_by_horizon(model, val, idx.scaler, interval_minutes=5)
        assert m.mae.shape == (6,)
        assert m.rmse.shape == (6,)
        assert m.mape.shape == (6,)

    def test_error_grows_with_lead_time(self, setup):
        """Forecast error should (weakly) degrade across the horizon."""
        idx, model, _, val = setup
        m = evaluate_by_horizon(model, val, idx.scaler)
        assert m.degradation() > 0.9  # last step not mysteriously easier
        assert m.mae[-1] >= 0.8 * m.mae[0]

    def test_rmse_dominates_mae(self, setup):
        idx, model, _, val = setup
        m = evaluate_by_horizon(model, val, idx.scaler)
        assert np.all(m.rmse >= m.mae - 1e-9)

    def test_at_minutes(self, setup):
        idx, model, _, val = setup
        m = evaluate_by_horizon(model, val, idx.scaler, interval_minutes=5)
        r = m.at_minutes(15)  # step 2
        assert r["mae"] == pytest.approx(float(m.mae[2]))
        with pytest.raises(ValueError):
            m.at_minutes(6 * 5 + 5)

    def test_at_minutes_requires_interval(self):
        m = HorizonMetrics(mae=np.ones(3), rmse=np.ones(3), mape=np.ones(3))
        with pytest.raises(ValueError):
            m.at_minutes(15)

    def test_max_batches(self, setup):
        idx, model, _, val = setup
        m = evaluate_by_horizon(model, val, idx.scaler, max_batches=1)
        assert np.all(np.isfinite(m.mae))


class TestEarlyStopping:
    def _trainer(self, lr=0.01):
        ds = load_dataset("pems-bay", nodes=6, entries=250, seed=7)
        idx = IndexDataset.from_dataset(ds, horizon=4)
        supports = dual_random_walk_supports(ds.graph.weights)
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=1)
        return Trainer(model, Adam(model.parameters(), lr=lr),
                       IndexBatchLoader(idx, "train", 16),
                       IndexBatchLoader(idx, "val", 16),
                       scaler=idx.scaler, seed=1)

    def test_stops_early_with_zero_patience_dead_lr(self):
        tr = self._trainer(lr=0.0)  # no learning -> no improvement
        tr.fit(20, patience=1)
        assert len(tr.history) < 20

    def test_requires_val_loader(self):
        tr = self._trainer()
        tr.val_loader = None
        with pytest.raises(ValueError):
            tr.fit(2, patience=1)


class TestFitCheckpointing:
    def test_writes_periodic_and_best(self, tmp_path):
        ds = load_dataset("pems-bay", nodes=6, entries=250, seed=7)
        idx = IndexDataset.from_dataset(ds, horizon=4)
        supports = dual_random_walk_supports(ds.graph.weights)
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=2)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                          IndexBatchLoader(idx, "train", 16),
                          IndexBatchLoader(idx, "val", 16),
                          scaler=idx.scaler, seed=2)
        path = str(tmp_path / "run.npz")
        trainer.fit(3, checkpoint_path=path)
        fresh = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=99)
        meta = load_checkpoint(path, fresh)
        assert meta["epoch"] == 2
        best_meta = load_checkpoint(path + ".best", fresh)
        assert "val_mae" in best_meta["extra"]

    def test_fit_resumes_epoch_numbering(self, tmp_path):
        ds = load_dataset("pems-bay", nodes=6, entries=250, seed=7)
        idx = IndexDataset.from_dataset(ds, horizon=4)
        supports = dual_random_walk_supports(ds.graph.weights)
        model = PGTDCRNN(supports, 4, 2, hidden_dim=8, seed=3)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                          IndexBatchLoader(idx, "train", 16),
                          IndexBatchLoader(idx, "val", 16),
                          scaler=idx.scaler, seed=3)
        trainer.fit(2)
        trainer.fit(2)
        assert [h.epoch for h in trainer.history] == [0, 1, 2, 3]
