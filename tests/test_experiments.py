"""Smoke + shape tests for the experiment harness (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import config
from repro.experiments.ablations import (
    run_partitioning_ablation,
    run_prefetch_ablation,
    run_shuffle_sweep,
)
from repro.experiments.figure10 import run_figure10_real
from repro.experiments.table1 import report as table1_report, run_table1
from repro.experiments.table3 import run_table3


class TestConfig:
    def test_presets(self):
        assert config.get_scale("tiny").name == "tiny"
        assert config.get_scale(config.SMALL) is config.SMALL
        with pytest.raises(KeyError):
            config.get_scale("huge")


class TestReports:
    def test_table1_report_renders(self):
        rep = table1_report(run_table1())
        text = str(rep)
        assert "pems" in text and "419.46" in text

    def test_report_by_first_column(self):
        rep = table1_report()
        rows = rep.by_first_column()
        assert "pems-bay" in rows

    def test_cli_main_runs(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestAblations:
    def test_prefetch_reduces_exposed_comm(self):
        points = run_prefetch_ablation(gpu_counts=(4, 64))
        for p in points:
            assert p.epoch_prefetch <= p.epoch_plain
        # Where compute is plentiful (4 GPUs), overlap hides a lot.
        assert points[0].saving > 0.2

    def test_partitioning_trades_accuracy_for_compute(self):
        results = run_partitioning_ablation(scale="tiny", seed=0,
                                            num_parts=4)
        full = next(r for r in results if r.mode == "full-graph")
        part = next(r for r in results if r.mode.startswith("partitioned"))
        # Partitioned models are computationally lighter per snapshot...
        assert part.model_flops_per_snapshot < full.model_flops_per_snapshot
        # ...and both converge to sane MAE (the accuracy *cost* is noisy at
        # tiny scale, so we only require partitioned not to be wildly
        # better, which would indicate a bug in the full-graph path).
        assert part.val_mae > 0.5 * full.val_mae
        assert np.isfinite(part.val_mae) and np.isfinite(full.val_mae)

    def test_shuffle_sweep_runs_all_modes(self):
        results = run_shuffle_sweep(scale="tiny", seed=0, world=2)
        assert {r.shuffle for r in results} == {"global", "local", "batch"}
        for r in results:
            assert 0 < r.val_mae < 100


class TestRealExperimentDeterminism:
    def test_table3_deterministic_in_seed(self):
        a = run_table3(scale="tiny", seed=5, datasets=("pems-bay",))
        b = run_table3(scale="tiny", seed=5, datasets=("pems-bay",))
        for ra, rb in zip(a, b):
            assert ra.best_val_mae == rb.best_val_mae
            np.testing.assert_array_equal(ra.val_curve, rb.val_curve)

    def test_figure10_real_trains(self):
        results = run_figure10_real(scale="tiny", seed=0, gpu_counts=(2,))
        assert len(results) == 1
        assert np.isfinite(results[0].best_val_mae)
