"""Chaos tier: elastic scaling under injected faults.

Two acceptance pins:

- a rank crash *after* an elastic (resharded) resume recovers through
  the checkpoint loop to a curve bitwise identical to the fault-free
  elastic run — resharding does not weaken the recovery contract;
- a shard worker killed mid scale-up (standby already spent on the
  resize) repartitions, the autoscaler re-converges under its SLO by
  trace end, and predictions stay bitwise correct — membership chaos
  never corrupts served state.
"""

import numpy as np
import pytest

from repro.api import RunSpec, run
from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.elastic import (
    AutoscalerPolicy,
    ShardAutoscaler,
    run_autoscaled_trace,
    shard_scaled_service_time,
)
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import FaultPlan, FaultyTransport, ProcessGroup, SimTransport
from repro.serving import ShardedSession
from repro.serving.service import ForecastService
from repro.training import DDPStrategy, DDPTrainer, train_with_recovery
from repro.training.checkpoint import read_checkpoint_meta

SEED = 0
EPOCHS = 2
GLOBAL_BATCH = 16


# ---------------------------------------------------------------------------
# Training: rank crash after an elastic resume
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def data():
    ds = load_dataset("pems-bay", nodes=10, entries=260, seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def make_trainer(data, *, world, plan=None, ckpt=None, checkpoint_every=2):
    idx, supports = data
    model = PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                     seed=SEED)
    base = SimTransport(world)
    t = base if plan is None else FaultyTransport(base, plan)
    return DDPTrainer(
        model, Adam(model.parameters(), lr=0.01), ProcessGroup(t),
        IndexBatchLoader(idx, "train", GLOBAL_BATCH // world),
        IndexBatchLoader(idx, "val", GLOBAL_BATCH // world),
        strategy=DDPStrategy.DIST_INDEX, seed=SEED,
        checkpoint_every=checkpoint_every if ckpt else None,
        checkpoint_path=ckpt)


def curve(history):
    return [(h.train_loss, h.val_mae) for h in history]


class TestElasticCrashRecovery:
    def seed_checkpoint(self, data, path):
        tr = make_trainer(data, world=2)
        tr.fit(1)
        tr.save_training_checkpoint(path, epoch=1, step=0)

    def run_elastic(self, data, path, plan=None):
        return train_with_recovery(
            lambda: make_trainer(data, world=4, plan=plan, ckpt=path),
            EPOCHS, elastic=True)

    def test_crash_after_reshard_recovers_bitwise(self, data, tmp_path):
        clean_ckpt = str(tmp_path / "clean.npz")
        self.seed_checkpoint(data, clean_ckpt)
        _, clean_history, clean_report = self.run_elastic(data, clean_ckpt)
        assert clean_report.restarts == 0

        ckpt = str(tmp_path / "chaos.npz")
        self.seed_checkpoint(data, ckpt)
        plan = FaultPlan().rank_crash(step=5, rank=1)
        _, history, report = self.run_elastic(data, ckpt, plan=plan)
        assert report.restarts == 1
        assert curve(history) == curve(clean_history)

        # The checkpoint survived the crash at the new world and still
        # resumes cleanly.
        state = read_checkpoint_meta(ckpt)["extra"]["training_state"]
        assert state["world_size"] == 4
        again = make_trainer(data, world=4)
        again.resume(ckpt)


# ---------------------------------------------------------------------------
# Serving: worker death mid scale-up
# ---------------------------------------------------------------------------
SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)
SEGMENTS = [(500.0, 3), (2200.0, 6), (500.0, 4)]


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(test.batch_size))
    return xb.copy()


def warm(session, trained):
    ds = trained.artifacts.dataset
    for values, ts in zip(ds.signals[:2 * session.horizon],
                          ds.timestamps[:2 * session.horizon]):
        session.ingest(values, float(ts))


class TestScaleUpUnderFire:
    def run_trace(self, trained, pool, plan=None):
        sess = ShardedSession(trained.artifacts.model,
                              trained.artifacts.loaders.scaler,
                              trained.artifacts.dataset.graph,
                              spec=trained.spec, num_shards=2,
                              num_standby=2, fault_plan=plan)
        warm(sess, trained)
        svc = ForecastService(
            sess, max_batch=8, max_wait=5e-4,
            service_time=shard_scaled_service_time(sess, base=2e-3,
                                                   per_item=1e-3))
        policy = AutoscalerPolicy(slo_p99=4.5e-3, min_shards=2, max_shards=4,
                                  scale_down_at=0.4, transition_seconds=0.02)
        auto = ShardAutoscaler(sess, policy, svc.clock)
        report = run_autoscaled_trace(svc, pool, auto, SEGMENTS,
                                      seed=0, tick_requests=40)
        return sess, report

    def test_worker_death_mid_scaleup_converges(self, trained, pool):
        """Kill a shard right after the 2->4 scale-up spent both standby
        replicas: failover must repartition, the autoscaler must climb
        back, and the trace must end inside the SLO with served bits
        uncorrupted."""
        # Tick 3 (requests 120-160) triggers the scale-up; request 200
        # lands mid tick 5, on the 4-shard fleet with standby == 0.
        plan = FaultPlan().worker_crash(shard=3, at_request=200)
        sess, report = self.run_trace(trained, pool, plan=plan)

        (event,) = sess.failover_events
        assert event.mode == "repartition"      # standby was already spent
        assert sess.faults_dropped == []
        # The collapse to 2 shards re-breached the SLO; the autoscaler
        # scaled up again rather than staying degraded.
        modes = [e.mode for e in sess.scale_events]
        assert modes.count("scale_up") >= 2
        assert report.ticks[-1]["p99"] <= report.slo_p99
        assert sess.num_shards == report.shards_path[-1]
        # SLO damage is bounded to the transition ticks.
        assert report.slo_compliance >= 0.80

        # Served state survived the chaos: the same observations yield
        # the same forecast as an untouched fleet.
        flat = ShardedSession(trained.artifacts.model,
                              trained.artifacts.loaders.scaler,
                              trained.artifacts.dataset.graph,
                              spec=trained.spec,
                              num_shards=sess.num_shards)
        warm(flat, trained)
        np.testing.assert_array_equal(sess.forecast_current().copy(),
                                      flat.forecast_current().copy())

    def test_chaos_trace_is_deterministic(self, trained, pool):
        plans = [FaultPlan().worker_crash(shard=3, at_request=200)
                 for _ in range(2)]
        _, first = self.run_trace(trained, pool, plan=plans[0])
        _, second = self.run_trace(trained, pool, plan=plans[1])
        assert first.ticks == second.ticks
        assert first.events == second.events
