"""Chaos tier: sharded serving survives worker deaths.

Acceptance pin: sharded serving with one worker killed mid-stream keeps
returning predictions equal (1e-6; in fact bitwise) to the unsharded
session, via standby promotion or survivor re-partitioning with the
halo state replayed from the observation log.  Failover latency is
recorded and surfaces through the load generator's report.
"""

import numpy as np
import pytest

from repro.api import RunSpec, run, serve
from repro.runtime import FaultPlan
from repro.serving import (
    FailoverEvent,
    LoadGenerator,
    ModelSession,
    ShardedSession,
)

SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(test.batch_size))
    return xb.copy()


def make_sharded(trained, **kw) -> ShardedSession:
    kw.setdefault("num_shards", 4)
    return ShardedSession(trained.artifacts.model,
                          trained.artifacts.loaders.scaler,
                          trained.artifacts.dataset.graph,
                          spec=trained.spec, **kw)


def warm(session, trained, rows=None):
    ds = trained.artifacts.dataset
    rows = rows or 2 * session.horizon
    for values, ts in zip(ds.signals[:rows], ds.timestamps[:rows]):
        session.ingest(values, float(ts))


def reference(trained):
    from repro.serving.cache import FeatureStore
    session = ModelSession(trained.artifacts.model,
                           trained.artifacts.loaders.scaler,
                           spec=trained.spec)
    session.attach_store(FeatureStore.for_dataset(
        trained.artifacts.dataset, trained.artifacts.loaders.scaler,
        capacity=4 * session.horizon))
    warm(session, trained)
    return session


class TestFailoverParity:
    def test_repartition_failover_matches_unsharded(self, trained):
        ref = reference(trained).forecast_current().copy()
        sharded = make_sharded(trained)
        warm(sharded, trained)
        np.testing.assert_array_equal(sharded.forecast_current().copy(), ref)
        sharded.kill_worker(2)
        post = sharded.forecast_current().copy()
        np.testing.assert_allclose(post, ref, atol=1e-6)
        np.testing.assert_array_equal(post, ref)   # in fact bitwise
        (event,) = sharded.failover_events
        assert event.mode == "repartition"
        assert event.shards == (2,)
        assert event.num_shards_after == 2         # largest 2^k <= 3 alive
        assert event.seconds > 0

    def test_standby_promotion_keeps_partition(self, trained):
        ref = reference(trained).forecast_current().copy()
        sharded = make_sharded(trained, num_shards=2, num_standby=1)
        warm(sharded, trained)
        before = sharded.assignment.copy()
        sharded.kill_worker(0)
        np.testing.assert_array_equal(sharded.forecast_current().copy(), ref)
        (event,) = sharded.failover_events
        assert event.mode == "standby"
        assert event.num_shards_after == 2
        assert sharded.standby == 0
        np.testing.assert_array_equal(sharded.assignment, before)

    def test_explicit_window_predictions_survive_failover(self, trained,
                                                          pool):
        local = ModelSession(trained.artifacts.model,
                             trained.artifacts.loaders.scaler,
                             spec=trained.spec)
        ref = local.predict(pool).copy()
        sharded = make_sharded(trained)
        sharded.kill_worker(1)
        np.testing.assert_array_equal(sharded.predict(pool), ref)

    def test_cascading_failures_until_one_survivor(self, trained):
        ref = reference(trained).forecast_current().copy()
        sharded = make_sharded(trained)
        warm(sharded, trained)
        sharded.kill_worker(3)
        np.testing.assert_array_equal(sharded.forecast_current().copy(), ref)
        sharded.kill_worker(1)
        np.testing.assert_array_equal(sharded.forecast_current().copy(), ref)
        assert [e.num_shards_after for e in sharded.failover_events] == [2, 1]

    def test_all_workers_dead_fails_loudly(self, trained):
        sharded = make_sharded(trained, num_shards=2)
        warm(sharded, trained)
        sharded.kill_worker(0)
        sharded.kill_worker(1)
        with pytest.raises(RuntimeError, match="cannot recover"):
            sharded.forecast_current()

    def test_rejected_ingest_never_poisons_the_replay_log(self, trained):
        """Regression: a malformed observation row is rejected back to
        its caller AND kept out of the failover replay log — otherwise a
        much later failover would explode mid-rebuild replaying it."""
        from repro.utils.errors import ShapeError

        ref = reference(trained).forecast_current().copy()
        sharded = make_sharded(trained)
        warm(sharded, trained)
        bad = np.zeros((sharded.num_nodes + 1, 1))
        with pytest.raises(ShapeError):
            sharded.ingest(bad, 0.0)
        sharded.kill_worker(0)
        # Failover replays the log; the rejected row must not be in it.
        np.testing.assert_array_equal(sharded.forecast_current().copy(), ref)

    def test_replay_log_refills_after_failover(self, trained):
        """Ingests after a failover keep flowing into the rebuilt stores:
        the session stays live, not frozen at the replayed snapshot."""
        ds = trained.artifacts.dataset
        ref = reference(trained)
        sharded = make_sharded(trained)
        warm(sharded, trained)
        sharded.kill_worker(0)
        rows = 2 * sharded.horizon
        for values, ts in zip(ds.signals[rows:rows + 3],
                              ds.timestamps[rows:rows + 3]):
            ref.ingest(values, float(ts))
            sharded.ingest(values, float(ts))
        np.testing.assert_array_equal(sharded.forecast_current().copy(),
                                      ref.forecast_current().copy())


class TestScheduledWorkerCrash:
    def test_fault_plan_kills_mid_stream(self, trained, pool):
        local = ModelSession(trained.artifacts.model,
                             trained.artifacts.loaders.scaler,
                             spec=trained.spec)
        ref = local.predict(pool).copy()
        plan = FaultPlan().worker_crash(shard=1, at_request=3)
        sharded = make_sharded(trained, fault_plan=plan)
        for _ in range(3):
            np.testing.assert_array_equal(sharded.predict(pool[:1]),
                                          ref[:1])
        assert not sharded.failover_events        # not due yet
        np.testing.assert_array_equal(sharded.predict(pool[:1]), ref[:1])
        (event,) = sharded.failover_events
        assert isinstance(event, FailoverEvent)
        assert event.at_request == 3

    def test_undeliverable_crash_is_recorded_not_silent(self, trained,
                                                        pool):
        """A due worker_crash whose shard vanished in an earlier
        repartition is logged as dropped, so a chaos run can tell
        'schedule consumed' from 'schedule fired'."""
        plan = (FaultPlan()
                .worker_crash(shard=3, at_request=1)
                .worker_crash(shard=3, at_request=2))   # gone after 4 -> 2
        sharded = make_sharded(trained, fault_plan=plan)
        sharded.predict(pool[:1])
        sharded.predict(pool[:1])
        sharded.predict(pool[:1])
        assert len(sharded.failover_events) == 1
        assert sharded.halo_stats()["faults_dropped"] == [
            "worker_crash:shard=3,request=2"]

    def test_local_server_rejects_chaos_knobs(self, trained):
        with pytest.raises(ValueError, match="server='sharded'"):
            serve(trained, fault_plan=FaultPlan().worker_crash(
                shard=0, at_request=1))
        with pytest.raises(ValueError, match="server='sharded'"):
            serve(trained, num_standby=1)

    def test_loadgen_records_failover(self, trained, pool):
        plan = FaultPlan().worker_crash(shard=1, at_request=20)
        svc = serve(trained, server="sharded", num_shards=4, max_batch=8,
                    max_wait=0.002, fault_plan=plan,
                    service_time=lambda n: 0.0005 + 0.0001 * n)
        gen = LoadGenerator(svc, pool, seed=5)
        report = gen.closed_loop(requests=60, concurrency=8,
                                 scenario="chaos")
        assert report.requests == 60
        assert report.failovers == 1
        assert report.failover_p99 > 0
        assert svc.failover_events[0].at_request >= 20
        # A fault-free run reports zeroes through the same schema.
        calm = LoadGenerator(serve(trained, server="sharded", num_shards=4,
                                   service_time=lambda n: 0.0005),
                             pool, seed=5).closed_loop(requests=20)
        assert calm.failovers == 0 and calm.failover_p99 == 0.0
