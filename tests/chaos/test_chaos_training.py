"""Chaos tier: training survives injected faults with bitwise recovery.

The acceptance pin: a fixed-seed DDP run with ``rank_crash(step=k)``
injected, checkpoint-resumed via the recovery loop, finishes with a
loss curve **bitwise identical** to the uninterrupted run — for all
three data strategies.  Plus straggler/delay scenarios (time moves,
bits do not) and multi-crash endurance.
"""

import os

import numpy as np
import pytest

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import (
    FaultPlan,
    FaultyTransport,
    ProcessGroup,
    RankFailure,
    SimTransport,
    ThreadTransport,
)
from repro.training import DDPStrategy, DDPTrainer, train_with_recovery

SEED = 0
WORLD = 2
EPOCHS = 2
BATCH = 8


@pytest.fixture(scope="module")
def data():
    ds = load_dataset("pems-bay", nodes=12, entries=300, seed=SEED)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)
    return idx, supports


def make_trainer(data, *, strategy=DDPStrategy.DIST_INDEX, plan=None,
                 ckpt=None, checkpoint_every=2, transport="sim",
                 world=WORLD):
    idx, supports = data

    def build_model():
        return PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                        seed=SEED)

    model = build_model()
    opt = Adam(model.parameters(), lr=0.01)
    base = (ThreadTransport(world) if transport == "thread"
            else SimTransport(world))
    t = base if plan is None else FaultyTransport(base, plan)
    return DDPTrainer(
        model, opt, ProcessGroup(t),
        IndexBatchLoader(idx, "train", BATCH),
        IndexBatchLoader(idx, "val", BATCH),
        strategy=strategy, seed=SEED,
        model_factory=build_model if transport == "thread" else None,
        checkpoint_every=checkpoint_every if ckpt else None,
        checkpoint_path=ckpt)


def curve(history):
    return [(h.train_loss, h.val_mae) for h in history]


class TestCrashRecovery:
    @pytest.mark.parametrize("strategy", list(DDPStrategy))
    def test_crash_resume_is_bitwise_identical(self, data, tmp_path,
                                               strategy):
        """Acceptance: crash at step k + resume == uninterrupted run,
        bit for bit, for every data strategy."""
        clean = curve(make_trainer(data, strategy=strategy).fit(EPOCHS))
        plan = FaultPlan().rank_crash(step=5, rank=1)
        ckpt = str(tmp_path / f"{strategy.value}.npz")
        trainer, history, report = train_with_recovery(
            lambda: make_trainer(data, strategy=strategy, plan=plan,
                                 ckpt=ckpt), EPOCHS)
        assert report.restarts == 1
        assert report.failures == [{"rank": 1, "step": 5}]
        assert curve(history) == clean

    def test_crash_before_first_checkpoint_restarts_from_scratch(
            self, data, tmp_path):
        clean = curve(make_trainer(data).fit(EPOCHS))
        plan = FaultPlan().rank_crash(step=1, rank=0)
        ckpt = str(tmp_path / "early.npz")
        trainer, history, report = train_with_recovery(
            lambda: make_trainer(data, plan=plan, ckpt=ckpt,
                                 checkpoint_every=5), EPOCHS)
        assert report.restarts == 1
        assert curve(history) == clean

    def test_multiple_crashes_survived(self, data, tmp_path):
        clean = curve(make_trainer(data).fit(EPOCHS))
        plan = (FaultPlan()
                .rank_crash(step=2, rank=0)
                .rank_crash(step=6, rank=1)
                .rank_crash(step=9, rank=1))
        ckpt = str(tmp_path / "multi.npz")
        trainer, history, report = train_with_recovery(
            lambda: make_trainer(data, plan=plan, ckpt=ckpt), EPOCHS)
        assert report.restarts == 3
        assert curve(history) == clean

    def test_thread_transport_crash_recovery(self, data, tmp_path):
        """A rank dying on a real worker thread joins cleanly and the
        recovery loop still reproduces the sequential-sim curve."""
        clean = curve(make_trainer(data).fit(EPOCHS))
        plan = FaultPlan().rank_crash(step=4, rank=1)
        ckpt = str(tmp_path / "thread.npz")
        trainer, history, report = train_with_recovery(
            lambda: make_trainer(data, plan=plan, ckpt=ckpt,
                                 transport="thread"), EPOCHS)
        assert report.restarts == 1
        assert curve(history) == clean

    def test_randomized_plan_with_recovery(self, data, tmp_path):
        """A seeded random schedule (crash + straggler) still converges
        to the clean curve — chaos is reproducible, not lenient."""
        steps = make_trainer(data).sampler.steps_per_epoch() * EPOCHS
        plan = FaultPlan.randomized(11, world=WORLD, steps=steps)
        clean = curve(make_trainer(data).fit(EPOCHS))
        ckpt = str(tmp_path / "random.npz")
        trainer, history, report = train_with_recovery(
            lambda: make_trainer(data, plan=plan, ckpt=ckpt), EPOCHS)
        assert report.restarts == 1
        assert curve(history) == clean

    def test_gives_up_after_max_restarts(self, data, tmp_path):
        # One crash per step 0..3: with max_restarts=2 the run must
        # surface the failure instead of looping forever, and the error
        # must list the fault events that killed it.
        plan = FaultPlan()
        for step in range(4):
            plan = plan.rank_crash(step=step, rank=0)
        ckpt = str(tmp_path / "hopeless.npz")
        with pytest.raises(RuntimeError,
                           match="fired fault events") as excinfo:
            train_with_recovery(
                lambda: make_trainer(data, plan=plan, ckpt=ckpt), EPOCHS,
                max_restarts=2)
        assert isinstance(excinfo.value.__cause__, RankFailure)
        assert "rank_crash" in str(excinfo.value)
        assert "max_restarts=2" in str(excinfo.value)


class TestTimingFaults:
    def test_straggler_stretches_sim_time_not_bits(self, data):
        clean_tr = make_trainer(data)
        clean = clean_tr.fit(EPOCHS)
        slow_tr = make_trainer(
            data, plan=FaultPlan().straggler(rank=1, slowdown=5.0))
        slow = slow_tr.fit(EPOCHS)
        assert curve(slow) == curve(clean)
        # Blocking collectives make every rank wait for the straggler.
        assert slow_tr.comm.now > clean_tr.comm.now * 2

    def test_message_delay_taxes_gradient_time(self, data):
        clean_tr = make_trainer(data)
        clean_tr.fit(1)
        lag_tr = make_trainer(
            data, plan=FaultPlan().message_delay(0.01, category="gradient"))
        lag_tr.fit(1)
        assert (lag_tr.comm.stats.time_by_category["gradient"]
                > clean_tr.comm.stats.time_by_category["gradient"])
        assert (lag_tr.comm.stats.bytes_by_category["gradient"]
                == clean_tr.comm.stats.bytes_by_category["gradient"])
        assert curve(lag_tr.history) == curve(clean_tr.history)

    def test_recovery_traffic_is_accounted(self, data, tmp_path):
        plan = FaultPlan().rank_crash(step=5, rank=1)
        ckpt = str(tmp_path / "acct.npz")
        trainer, _, _ = train_with_recovery(
            lambda: make_trainer(data, plan=plan, ckpt=ckpt), EPOCHS)
        # The resumed attempt re-broadcast the restored parameters.
        assert trainer.comm.stats.bytes_by_category.get("recovery", 0) > 0


class TestCheckpointCursor:
    def test_checkpoint_written_at_cadence(self, data, tmp_path):
        ckpt = str(tmp_path / "cadence.npz")
        tr = make_trainer(data, ckpt=ckpt, checkpoint_every=3)
        tr.fit(1)
        assert os.path.exists(ckpt)
        from repro.training.checkpoint import read_checkpoint_meta
        state = read_checkpoint_meta(ckpt)["extra"]["training_state"]
        assert state["global_step"] % 3 == 0
        assert state["world_size"] == WORLD
        assert len(state["epoch_losses"]) == state["step"] * WORLD

    def test_resume_requires_training_cursor(self, data, tmp_path):
        from repro.training.checkpoint import save_checkpoint
        tr = make_trainer(data)
        bare = str(tmp_path / "bare.npz")
        save_checkpoint(bare, tr.model, tr.optimizer)
        with pytest.raises(ValueError, match="resumable"):
            make_trainer(data).resume(bare)

    def test_mid_epoch_resume_continues_not_restarts(self, data, tmp_path):
        """Resume replays only the missing steps: global_step continues
        from the cursor instead of rewinding to the epoch start."""
        ckpt = str(tmp_path / "cursor.npz")
        tr = make_trainer(data, ckpt=ckpt, checkpoint_every=2)
        steps = tr.sampler.steps_per_epoch()
        tr.fit(EPOCHS)
        fresh = make_trainer(data, ckpt=ckpt)
        fresh.resume(ckpt)
        assert fresh.global_step == EPOCHS * steps - (EPOCHS * steps) % 2
        cont = fresh.fit(EPOCHS)
        assert curve(cont) == curve(tr.history)
