"""Chaos tier: the gateway self-heals around injected serving faults.

Acceptance pins, all exact (synthetic service times on a ManualClock,
real trained tiny model):

- a ``session_crash`` mid-traffic trips the circuit, degraded answers
  come from the fallback deployment **bitwise equal** to a calm
  gateway's answers, and the probe restarts the session and closes the
  circuit again;
- chaos composed with ``GatewayLoadGenerator`` streams answers every
  admitted request (``failed == 0``) with zero deadline misses, and the
  circuit-transition log is deterministic across identical runs;
- a ``store_corruption`` flip is caught by the fingerprint check and
  recomputed, never served;
- a swap to a broken session rolls back via the canary with zero
  dropped requests.
"""

import numpy as np
import pytest

from repro.api import RunSpec, build_gateway, run
from repro.runtime import FaultPlan
from repro.serving import (
    GatewayLoadGenerator,
    ManualClock,
    ResiliencePolicy,
    TenantStream,
)
from repro.utils.errors import SessionFailure

SPEC = dict(dataset="pems-bay", model="pgt-dcrnn", batching="index",
            scale="tiny", seed=0, epochs=1)


@pytest.fixture(scope="module")
def trained():
    return run(RunSpec(**SPEC))


@pytest.fixture(scope="module")
def pool(trained):
    test = trained.artifacts.loaders.test
    xb, _ = test.batch_at(np.arange(min(test.num_snapshots, 32)))
    return xb.copy()


def service_time(n: int) -> float:
    return 1e-3 + 1e-4 * n


def make_gw(trained, *, fault_plan=None, resilience=None, fallback=True,
            cache_ttl=None, **kw):
    sources = {"bay": trained}
    if fallback:
        sources["standby"] = trained
    return build_gateway(
        sources, tenants=[{"tenant_id": "ops", "api_key": "key-ops"}],
        clock=ManualClock(), max_batch=4, max_wait=0.002,
        service_time=service_time, cache_ttl=cache_ttl,
        fallbacks={"bay": "standby"} if fallback else None,
        fault_plan=fault_plan, resilience=resilience, **kw)


def reasons(gw, deployment=None):
    return [t["reason"] for t in gw.resilience.transitions(deployment)]


class TestSessionCrashChaos:
    def test_crash_degrades_to_fallback_bitwise_then_recovers(
            self, trained, pool):
        """Crash -> retry -> circuit opens -> fallback answers bitwise
        equal to a calm gateway -> probe restarts -> closed again."""
        calm = make_gw(trained, fallback=False)
        refs = [calm.request("key-ops", "bay", pool[i]).forecast.predictions
                for i in range(3)]

        plan = FaultPlan().session_crash("bay", at_dispatch=0)
        gw = make_gw(trained, fault_plan=plan)
        # First request: dispatch fails, one retry fails, circuit opens,
        # the ladder re-routes to the fallback deployment.
        r0 = gw.request("key-ops", "bay", pool[0])
        assert r0.status == "degraded"
        assert r0.degraded_source == "fallback:standby"
        assert r0.deployment == "bay"       # ticket identity preserved
        np.testing.assert_array_equal(r0.forecast.predictions, refs[0])
        assert reasons(gw, "bay") == ["failures"]

        # Circuit open: degradation now happens at submit time.
        r1 = gw.request("key-ops", "bay", pool[1])
        assert r1.status == "degraded"
        np.testing.assert_array_equal(r1.forecast.predictions, refs[1])

        # Past the reset timeout the probe restarts the dead session and
        # the recovered answer is a normal, bitwise-identical compute.
        gw.clock.advance(ResiliencePolicy().reset_timeout)
        r2 = gw.request("key-ops", "bay", pool[2])
        assert r2.status == "ok"
        np.testing.assert_array_equal(r2.forecast.predictions, refs[2])
        assert reasons(gw, "bay") == ["failures", "timeout", "probe_ok"]
        assert gw.deployments.get("bay").restarts == 1
        assert gw.stats.failed == 0

    def test_crash_without_fallback_serves_stale_bitwise(self, trained,
                                                         pool):
        """With a warm cache entry, an outage is bridged by the stale
        copy — bitwise equal to the original computation."""
        gw = make_gw(trained, fallback=False, cache_ttl=0.01,
                     fault_plan=FaultPlan().session_crash(
                         "bay", at_dispatch=1))
        warm = gw.request("key-ops", "bay", pool[0])
        gw.clock.advance(0.02)              # entry expires, stays resident
        stale = gw.request("key-ops", "bay", pool[0])
        assert stale.status == "degraded"
        assert stale.degraded_source == "stale_cache"
        np.testing.assert_array_equal(stale.forecast.predictions,
                                      warm.forecast.predictions)


class TestChaosUnderLoad:
    PLAN = (FaultPlan()
            .session_crash("bay", at_dispatch=8)
            .session_straggler("bay", 4.0, start_dispatch=20,
                               end_dispatch=26))

    def drive(self, trained, pool):
        gw = make_gw(trained, fault_plan=self.PLAN)
        streams = [TenantStream(api_key="key-ops", deployment="bay",
                                rate_qps=800.0, requests=120,
                                deadline=0.25)]
        report = GatewayLoadGenerator(gw, pool, seed=7).open_loop(
            streams, scenario="gateway-chaos")
        return gw, report

    def test_every_admitted_request_is_answered(self, trained, pool):
        gw, report = self.drive(trained, pool)
        assert report.requests == 120
        assert report.failed == 0
        assert report.deadline_misses == 0
        assert report.degraded > 0          # the chaos actually bit
        assert gw.stats.completed == gw.stats.admitted
        assert not gw._pending

    def test_transitions_deterministic_across_runs(self, trained, pool):
        gw1, rep1 = self.drive(trained, pool)
        gw2, rep2 = self.drive(trained, pool)
        assert gw1.resilience.transitions() == gw2.resilience.transitions()
        assert rep1.to_dict() == rep2.to_dict()
        assert gw1.resilience.transitions()     # non-trivial log


class TestStoreCorruptionChaos:
    def test_corrupted_entry_is_never_served(self, trained, pool):
        plan = FaultPlan().store_corruption("bay", at_insert=0)
        gw = make_gw(trained, fallback=False, cache_ttl=60.0,
                     fault_plan=plan)
        first = gw.request("key-ops", "bay", pool[0])
        again = gw.request("key-ops", "bay", pool[0])
        assert not again.cached             # fingerprint caught the flip
        assert gw.cache.stats.corruptions_detected == 1
        np.testing.assert_array_equal(again.forecast.predictions,
                                      first.forecast.predictions)
        # The recomputed answer re-seeds the cache and hits cleanly.
        third = gw.request("key-ops", "bay", pool[0])
        assert third.cached
        np.testing.assert_array_equal(third.forecast.predictions,
                                      first.forecast.predictions)


class _BrokenSession:
    """Wraps a real session; predictions always fail."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def predict(self, x):
        raise SessionFailure("green checkpoint is broken")


class TestCanaryRollbackChaos:
    def test_failed_canary_rolls_back_with_zero_drops(self, trained, pool):
        gw = make_gw(trained, fallback=False)
        before = gw.request("key-ops", "bay", pool[0])
        blue = gw.deployments.get("bay").session
        record = gw.swap("bay", lambda: _BrokenSession(blue),
                         version="v2-broken")
        assert type(record).__name__ == "RollbackRecord"
        assert record.dropped == 0
        assert record.reason == "session_failure"
        after = gw.request("key-ops", "bay", pool[0])
        assert after.version == before.version          # still blue
        np.testing.assert_array_equal(after.forecast.predictions,
                                      before.forecast.predictions)
        assert gw.stats.failed == 0
