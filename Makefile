# Convenience entries; everything also runs as plain commands with
# PYTHONPATH=src.

PY := PYTHONPATH=src python

# Line-coverage ratchet for `make test-cov` (see ISSUE 5 / ci.yml): set to
# the measured floor; raise it when coverage grows, never lower it.
COV_FLOOR := 85

.PHONY: test test-cov chaos bench bench-quick bench-diff serve-bench serve-bench-quick serve-bench-diff dist-bench dist-bench-quick dist-bench-diff fault-bench fault-bench-quick fault-bench-diff gateway-bench gateway-bench-quick gateway-bench-diff gateway-chaos-bench-quick elastic-bench elastic-bench-quick elastic-bench-diff

test:                       ## tier-1: full unit + benchmark-shape suite
	$(PY) -m pytest -x -q

test-cov:                   ## tier-1 with line-coverage ratchet (needs pytest-cov)
	$(PY) -m pytest -x -q --cov=src/repro --cov-report=term --cov-fail-under=$(COV_FLOOR)

chaos:                      ## chaos tier: crash/straggler/failover scenarios
	$(PY) -m pytest tests/chaos -q

bench:                      ## write the next BENCH_<n>.json (full timing)
	$(PY) -m benchmarks.run_bench

# The kernels section inside one run already times every available backend;
# the second leg re-runs the whole harness with the compiled backend as the
# process-wide default so the main training path is exercised under it too.
bench-quick:                ## CI smoke: short timing windows, 1 epoch, every backend
	$(PY) -m benchmarks.run_bench --quick --out /tmp/bench-quick.json
	@if $(PY) -c "import repro.kernels as k, sys; sys.exit('numba' not in k.available_backends())"; then \
		echo "== bench-quick: numba backend leg =="; \
		REPRO_KERNEL_BACKEND=numba $(PY) -m benchmarks.run_bench --quick --out /tmp/bench-quick-numba.json; \
	else \
		echo "bench-quick: numba unavailable, compiled-default leg skipped"; \
	fi

# usage: make bench-diff OLD=BENCH_1.json NEW=BENCH_2.json
bench-diff:
	$(PY) -m benchmarks.run_bench --diff $(OLD) $(NEW)

serve-bench:                ## merge a serving section into the newest BENCH_<n>.json
	$(PY) -m benchmarks.serve_bench $(if $(OUT),--out $(OUT))

serve-bench-quick:          ## CI smoke: tiny serving suite to /tmp
	$(PY) -m benchmarks.serve_bench --quick --out /tmp/bench-serve.json

# usage: make serve-bench-diff OLD=BENCH_3.json NEW=BENCH_4.json
serve-bench-diff:
	$(PY) -m benchmarks.serve_bench --diff $(OLD) $(NEW)

dist-bench:                 ## merge a distributed section into the newest BENCH_<n>.json
	$(PY) -m benchmarks.dist_bench --fail-on-regression $(if $(OUT),--out $(OUT))

dist-bench-quick:           ## CI smoke: tiny distributed suite to /tmp
	$(PY) -m benchmarks.dist_bench --quick --fail-on-regression --out /tmp/bench-dist.json

# usage: make dist-bench-diff OLD=BENCH_3.json NEW=BENCH_4.json
dist-bench-diff:
	$(PY) -m benchmarks.dist_bench --diff $(OLD) $(NEW)

fault-bench:                ## merge a faults section into the newest BENCH_<n>.json
	$(PY) -m benchmarks.fault_bench --fail-on-regression $(if $(OUT),--out $(OUT))

fault-bench-quick:          ## CI smoke: tiny fault suite to /tmp
	$(PY) -m benchmarks.fault_bench --quick --fail-on-regression --out /tmp/bench-faults.json

# usage: make fault-bench-diff OLD=BENCH_4.json NEW=BENCH_5.json
fault-bench-diff:
	$(PY) -m benchmarks.fault_bench --diff $(OLD) $(NEW)

gateway-bench:              ## merge a gateway section into the newest BENCH_<n>.json
	$(PY) -m benchmarks.gateway_bench --fail-on-regression $(if $(OUT),--out $(OUT))

gateway-bench-quick:        ## CI smoke: tiny gateway suite to /tmp, gated
	$(PY) -m benchmarks.gateway_bench --quick --fail-on-regression --out /tmp/bench-gateway.json

gateway-chaos-bench-quick:  ## CI chaos job: self-healing scenarios only, gated
	$(PY) -m benchmarks.gateway_bench --quick --chaos-only --fail-on-regression

# usage: make gateway-bench-diff OLD=BENCH_5.json NEW=BENCH_6.json
gateway-bench-diff:
	$(PY) -m benchmarks.gateway_bench --diff $(OLD) $(NEW)

# Elastic gates are determinism pins, so they run everywhere; only the
# process-fabric parity leg self-skips on single-core boxes (recorded in
# the section as gate_applied=false, same convention as dist-bench).
elastic-bench:              ## merge an elastic section into the newest BENCH_<n>.json
	$(PY) -m benchmarks.elastic_bench --fail-on-regression $(if $(OUT),--out $(OUT))

elastic-bench-quick:        ## CI smoke: tiny elastic suite to /tmp, gated
	$(PY) -m benchmarks.elastic_bench --quick --fail-on-regression --out /tmp/bench-elastic.json

# usage: make elastic-bench-diff OLD=BENCH_9.json NEW=BENCH_10.json
elastic-bench-diff:
	$(PY) -m benchmarks.elastic_bench --diff $(OLD) $(NEW)
