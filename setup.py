"""Setup shim.

The environment has no ``wheel`` package and no network access, so PEP 660
editable installs (which build a wheel) fail.  Keeping a ``setup.py`` and no
``[build-system]`` table in pyproject.toml lets ``pip install -e .`` use the
legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
