"""``repro.kernels``: pluggable compute backends for the training hot path.

Profiling after the PR-2 fusion work shows the remaining step time is
per-op Python dispatch inside the diffusion-conv CSR recurrence and the
GRU cells.  This package factors those innermost kernels behind a tiny
registry so they can be swapped wholesale:

- the **numpy** backend (always present) holds the exact code the autograd
  layer ran before this package existed — same scipy C kernel, same
  buffer discipline — so selecting it is byte-for-byte the status quo.
- the **numba** backend (auto-detected at import) compiles the same math
  into fused, node-parallel loops: one kernel call per diffusion-hop
  chain and per GRU gate/blend block instead of a dispatch per op.
  Parity with the numpy backend is gated at 1e-6 by the benchmark
  harness and the hypothesis property tests.

Selection, in priority order:

1. explicitly: :func:`set_backend` / :func:`use_backend`, or
   ``RunSpec(backend=...)`` which the runner applies around training;
2. the ``REPRO_KERNEL_BACKEND`` environment variable at import;
3. the default: ``numpy`` (compiled backends are opt-in so fixed-seed
   curves stay bitwise reproducible on every machine).

``available_backends()`` reports what this interpreter can actually run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.precision import resolve_store_dtype

#: Names this package knows how to build, available or not — lets error
#: messages distinguish "not installed here" from "no such backend".
KNOWN_BACKENDS = ("numpy", "numba")

_BACKENDS: dict[str, object] = {}


def register_backend(backend) -> None:
    """Add a backend instance to the registry (keyed by ``backend.name``)."""
    _BACKENDS[backend.name] = backend


register_backend(NumpyBackend())

try:  # numba is optional; the numpy fallback is always complete
    from repro.kernels.numba_backend import NumbaBackend

    register_backend(NumbaBackend())
except ImportError:
    NumbaBackend = None


def available_backends() -> tuple[str, ...]:
    """Backend names importable in this interpreter, numpy first."""
    return tuple(_BACKENDS)


def get_backend(name: str):
    """The registered backend called ``name``; loud when it is missing."""
    backend = _BACKENDS.get(name)
    if backend is None:
        if name in KNOWN_BACKENDS:
            raise KeyError(
                f"kernel backend {name!r} is known but not available in "
                f"this interpreter (is {name} installed?); available: "
                f"{list(available_backends())}")
        raise KeyError(f"unknown kernel backend {name!r}; known: "
                       f"{list(KNOWN_BACKENDS)}")
    return backend


def _resolve_default():
    """Initial active backend: ``REPRO_KERNEL_BACKEND`` or numpy."""
    env = os.environ.get("REPRO_KERNEL_BACKEND", "").strip()
    if env and env != "auto":
        return get_backend(env)
    return _BACKENDS["numpy"]


_ACTIVE = _resolve_default()


def active_backend():
    """The backend the autograd kernels currently dispatch to."""
    return _ACTIVE


def set_backend(name: str):
    """Switch the process-wide active backend; returns it."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


@contextmanager
def use_backend(name: str | None):
    """Scoped backend selection; ``None``/``"auto"`` keeps the current one.

    This is what the runner wraps training in: ``RunSpec(backend="numba")``
    trains compiled, and the previous selection is restored on exit even
    when training raises.
    """
    global _ACTIVE
    if name is None or name == "auto":
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


__all__ = [
    "KNOWN_BACKENDS",
    "available_backends",
    "active_backend",
    "get_backend",
    "register_backend",
    "resolve_store_dtype",
    "set_backend",
    "use_backend",
]
