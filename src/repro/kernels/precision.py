"""Storage-dtype resolution for the mixed-precision path.

Mixed precision here means *storage* precision only: ``IndexDataset``,
``FeatureStore`` and the serving ring buffers may hold float16/bfloat16,
but every gather lands in a float32 ``out=`` buffer before compute, so
model math is unchanged.  This module is the one place that turns a
user-facing dtype name into a concrete numpy dtype, including the
optional ``bfloat16`` which needs the ``ml_dtypes`` package.
"""

from __future__ import annotations

import numpy as np

#: Names accepted for the bfloat16 storage mode (needs ``ml_dtypes``).
_BFLOAT16_NAMES = ("bfloat16", "bf16")


def resolve_store_dtype(dtype):
    """Normalise a storage-dtype request into a numpy dtype.

    Accepts ``None`` (meaning "no downcast, keep the compute dtype"),
    numpy dtypes/classes, or strings such as ``"float16"``/``"bfloat16"``.
    bfloat16 is gated on the optional ``ml_dtypes`` package; everything
    else must resolve to a floating dtype, because integer storage would
    silently destroy the scaled features.
    """
    if dtype is None:
        return None
    if isinstance(dtype, str) and dtype.strip().lower() in _BFLOAT16_NAMES:
        try:
            import ml_dtypes
        except ImportError as exc:
            raise ImportError(
                "store_dtype='bfloat16' needs the optional ml_dtypes "
                "package, which is not installed in this interpreter; "
                "use store_dtype='float16' for the same 2x footprint "
                "reduction with native numpy support") from exc
        return np.dtype(ml_dtypes.bfloat16)
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(
            f"store_dtype must be a floating dtype (or 'bfloat16'), got "
            f"{resolved!r}")
    return resolved
