"""The always-available NumPy/SciPy backend — the reference numerics.

The CSR product and the diffusion hop/backward chains here are the exact
code the autograd layer ran before ``repro.kernels`` existed (scipy's
``csr_matvecs`` C kernel into caller buffers, rotating ping/pong hop
scratch), moved verbatim so the default path stays byte-for-byte
identical across the refactor.  The fused-GRU methods are vectorised
references: the GRU cells only route through them on backends that set
``fused_gru`` (this one does not — the cells keep their original op
composition), but they define the semantics the compiled backend must
match and give the parity tests a target that runs everywhere.
"""

from __future__ import annotations

import numpy as np

try:  # scipy's C kernel: csr_matvecs(M, N, n_vecs, indptr, indices, data, x, y)
    from scipy.sparse import _sparsetools as _st
    _HAVE_CSR_MATVECS = hasattr(_st, "csr_matvecs")
except ImportError:  # pragma: no cover - depends on scipy build
    _st = None
    _HAVE_CSR_MATVECS = False


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free sigmoid, identical to ``Tensor.sigmoid`` numerics."""
    t = np.exp(-np.abs(x))
    denom = t + 1.0
    return np.where(x >= 0, 1.0 / denom, t / denom)


class NumpyBackend:
    """Pure NumPy/SciPy kernels; the bit-exact default everywhere."""

    name = "numpy"
    compiled = False
    #: The GRU cells keep the seed op composition on this backend.
    fused_gru = False

    # -- sparse ---------------------------------------------------------
    def csr_matmul_out(self, prep, x: np.ndarray,
                       out: np.ndarray) -> np.ndarray:
        """``out[:] = A @ x`` for a :class:`PreparedCSR`; no allocation."""
        if _HAVE_CSR_MATVECS and x.flags.c_contiguous and \
                out.flags.c_contiguous and x.dtype == prep.data.dtype \
                and out.dtype == prep.data.dtype:
            out[...] = 0
            _st.csr_matvecs(prep.shape[0], prep.shape[1], x.shape[1],
                            prep.indptr, prep.indices, prep.data,
                            x.reshape(-1), out.reshape(-1))
            return out
        np.copyto(out, prep.csr @ x, casting="unsafe")
        return out

    # -- diffusion conv -------------------------------------------------
    def diffusion_hops(self, prep, x0_flat: np.ndarray, cat: np.ndarray,
                       col0: int, f: int, k: int, ping: np.ndarray,
                       pong: np.ndarray) -> None:
        """Write hops ``P^1..P^k x`` into ``cat[:, :, col0:col0+k*f]``.

        ``x0_flat`` is the node-major hop-0 input flattened to
        ``[n, b*f]``; ``ping``/``pong`` are rotating ``[n, b, f]``
        scratch buffers that persist across steps.
        """
        n = cat.shape[0]
        prev = x0_flat
        hop_bufs = (ping, pong)
        col = col0
        for j in range(k):
            nxt = hop_bufs[j % 2]
            self.csr_matmul_out(prep, prev, nxt.reshape(n, -1))
            cat[:, :, col: col + f] = nxt
            col += f
            prev = nxt.reshape(n, -1)

    def diffusion_backward(self, prep_t, gcat: np.ndarray, col0: int, f: int,
                           k: int, gx: np.ndarray, ping: np.ndarray,
                           pong: np.ndarray) -> None:
        """Chain one support's hop gradients back into ``gx`` (+=).

        ``prep_t`` is the prepared transpose ``P^T``; the recurrence is
        ``acc_k = g_k``, ``acc_j = P^T acc_{j+1} + g_j``, and finally
        ``gx += P^T acc_1``.
        """
        n = gcat.shape[0]
        bufs = (ping, pong)
        acc = bufs[0]
        np.copyto(acc, gcat[:, :, col0 + (k - 1) * f: col0 + k * f])
        for j in range(k - 1, 0, -1):
            nxt = bufs[1] if acc is bufs[0] else bufs[0]
            self.csr_matmul_out(prep_t, acc.reshape(n, -1),
                                nxt.reshape(n, -1))
            nxt += gcat[:, :, col0 + (j - 1) * f: col0 + j * f]
            acc = nxt
        nxt = bufs[1] if acc is bufs[0] else bufs[0]
        self.csr_matmul_out(prep_t, acc.reshape(n, -1), nxt.reshape(n, -1))
        gx += nxt

    # -- fused GRU ------------------------------------------------------
    def gru_gates_fwd(self, pre: np.ndarray, h: np.ndarray, s: np.ndarray,
                      rh: np.ndarray) -> None:
        """``s = sigmoid(pre)`` (both gates), ``rh = s[..., :H] * h``."""
        hidden = h.shape[-1]
        s[...] = stable_sigmoid(pre)
        np.multiply(s[..., :hidden], h, out=rh)

    def gru_gates_bwd_rh(self, g: np.ndarray, s: np.ndarray, h: np.ndarray,
                         dpre: np.ndarray, dh: np.ndarray) -> None:
        """Backward of the ``rh`` output w.r.t. ``pre`` (reset half) and ``h``."""
        hidden = h.shape[-1]
        r = s[..., :hidden]
        dpre[..., :hidden] = g * h * r * (1.0 - r)
        dpre[..., hidden:] = 0.0
        np.multiply(g, r, out=dh)

    def gru_gates_bwd_u(self, g: np.ndarray, s: np.ndarray,
                        dpre: np.ndarray) -> None:
        """Backward of the ``u`` output w.r.t. ``pre`` (update half)."""
        hidden = g.shape[-1]
        u = s[..., hidden:]
        dpre[..., :hidden] = 0.0
        dpre[..., hidden:] = g * u * (1.0 - u)

    def gru_blend_fwd(self, u: np.ndarray, h: np.ndarray,
                      cand_pre: np.ndarray, c: np.ndarray,
                      out: np.ndarray) -> None:
        """``c = tanh(cand_pre)``; ``out = u*h + (1-u)*c`` in one pass."""
        np.tanh(cand_pre, out=c)
        np.multiply(u, h, out=out)
        out += (1.0 - u) * c

    def gru_blend_bwd(self, g: np.ndarray, u: np.ndarray, h: np.ndarray,
                      c: np.ndarray, du: np.ndarray, dh: np.ndarray,
                      dcpre: np.ndarray) -> None:
        """Gradients of the blend w.r.t. ``u``, ``h`` and ``cand_pre``."""
        np.subtract(h, c, out=du)
        du *= g
        np.multiply(g, u, out=dh)
        np.subtract(1.0, u, out=dcpre)
        dcpre *= g
        dcpre *= 1.0 - c * c
