"""Numba-compiled kernels: fused, node-parallel versions of the hot path.

Importing this module raises ``ImportError`` when numba is not installed;
``repro.kernels`` catches that and leaves only the numpy backend
registered, so the fallback is automatic and silent.

Every kernel replicates the numpy backend's accumulation order and its
numerically-stable activation formulations (``exp(-|x|)`` sigmoid, tanh
backward as ``1 - y**2``) — deliberately **without** ``fastmath`` — so
compiled results match the reference to well under the 1e-6 parity gate.
The win comes from fusion (one kernel call per diffusion-hop chain and
per GRU gate/blend block instead of a Python dispatch per op) and from
``prange`` over graph nodes / batch rows.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.numpy_backend import NumpyBackend

try:
    from numba import njit, prange
    _HAVE_NUMBA = True
except ImportError:
    _HAVE_NUMBA = False

if not _HAVE_NUMBA:
    raise ImportError(
        "the numba kernel backend requires the optional numba package; "
        "the numpy backend remains fully functional without it")

if _HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    # -- compiled kernels ----------------------------------------------
    # All kernels accumulate in the same element order as the scipy C
    # kernel (per output row, contributions in CSR storage order), which
    # keeps float results bitwise-comparable per dtype.

    @njit(parallel=True, cache=True)
    def _csr_matmul2(indptr, indices, data, x, out):
        v = x.shape[1]
        for i in prange(out.shape[0]):
            for j in range(v):
                out[i, j] = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                a = data[p]
                s = indices[p]
                for j in range(v):
                    out[i, j] += a * x[s, j]

    @njit(parallel=True, cache=True)
    def _csr_into3(indptr, indices, data, src, dst):
        b = src.shape[1]
        f = src.shape[2]
        for i in prange(dst.shape[0]):
            for bb in range(b):
                for c in range(f):
                    dst[i, bb, c] = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                a = data[p]
                s = indices[p]
                for bb in range(b):
                    for c in range(f):
                        dst[i, bb, c] += a * src[s, bb, c]

    @njit(parallel=True, cache=True)
    def _dhops(indptr, indices, data, cat, col0, f, k):
        n = cat.shape[0]
        b = cat.shape[1]
        for j in range(k):
            cp = 0 if j == 0 else col0 + (j - 1) * f
            cw = col0 + j * f
            for i in prange(n):
                for bb in range(b):
                    for c in range(f):
                        cat[i, bb, cw + c] = 0.0
                for p in range(indptr[i], indptr[i + 1]):
                    a = data[p]
                    s = indices[p]
                    for bb in range(b):
                        for c in range(f):
                            cat[i, bb, cw + c] += a * cat[s, bb, cp + c]

    @njit(parallel=True, cache=True)
    def _copy_slice3(dst, gcat, base, f):
        n = gcat.shape[0]
        b = gcat.shape[1]
        for i in prange(n):
            for bb in range(b):
                for c in range(f):
                    dst[i, bb, c] = gcat[i, bb, base + c]

    @njit(parallel=True, cache=True)
    def _add_slice3(dst, gcat, base, f):
        n = gcat.shape[0]
        b = gcat.shape[1]
        for i in prange(n):
            for bb in range(b):
                for c in range(f):
                    dst[i, bb, c] += gcat[i, bb, base + c]

    @njit(parallel=True, cache=True)
    def _iadd3(dst, src):
        n = src.shape[0]
        b = src.shape[1]
        f = src.shape[2]
        for i in prange(n):
            for bb in range(b):
                for c in range(f):
                    dst[i, bb, c] += src[i, bb, c]

    @njit(cache=True)
    def _dbackward(indptr, indices, data, gcat, col0, f, k, gx, ping, pong):
        _copy_slice3(ping, gcat, col0 + (k - 1) * f, f)
        acc, nxt = ping, pong
        for j in range(k - 1, 0, -1):
            _csr_into3(indptr, indices, data, acc, nxt)
            _add_slice3(nxt, gcat, col0 + (j - 1) * f, f)
            acc, nxt = nxt, acc
        _csr_into3(indptr, indices, data, acc, nxt)
        _iadd3(gx, nxt)

    @njit(parallel=True, cache=True)
    def _gru_gates_fwd(pre, h, s, rh):
        rows = h.shape[0]
        hidden = h.shape[1]
        for i in prange(rows):
            for j in range(2 * hidden):
                x = pre[i, j]
                t = np.exp(-abs(x))
                if x >= 0:
                    s[i, j] = 1.0 / (t + 1.0)
                else:
                    s[i, j] = t / (t + 1.0)
            for j in range(hidden):
                rh[i, j] = s[i, j] * h[i, j]

    @njit(parallel=True, cache=True)
    def _gru_gates_bwd_rh(g, s, h, dpre, dh):
        rows = h.shape[0]
        hidden = h.shape[1]
        for i in prange(rows):
            for j in range(hidden):
                r = s[i, j]
                gv = g[i, j]
                dpre[i, j] = gv * h[i, j] * r * (1.0 - r)
                dpre[i, j + hidden] = 0.0
                dh[i, j] = gv * r

    @njit(parallel=True, cache=True)
    def _gru_gates_bwd_u(g, s, dpre):
        rows = g.shape[0]
        hidden = g.shape[1]
        for i in prange(rows):
            for j in range(hidden):
                u = s[i, j + hidden]
                dpre[i, j] = 0.0
                dpre[i, j + hidden] = g[i, j] * u * (1.0 - u)

    @njit(parallel=True, cache=True)
    def _gru_blend_fwd(u, h, cand_pre, c, out):
        rows = u.shape[0]
        hidden = u.shape[1]
        for i in prange(rows):
            for j in range(hidden):
                cv = np.tanh(cand_pre[i, j])
                c[i, j] = cv
                uv = u[i, j]
                out[i, j] = uv * h[i, j] + (1.0 - uv) * cv

    @njit(parallel=True, cache=True)
    def _gru_blend_bwd(g, u, h, c, du, dh, dcpre):
        rows = u.shape[0]
        hidden = u.shape[1]
        for i in prange(rows):
            for j in range(hidden):
                gv = g[i, j]
                uv = u[i, j]
                cv = c[i, j]
                du[i, j] = gv * (h[i, j] - cv)
                dh[i, j] = gv * uv
                dcpre[i, j] = gv * (1.0 - uv) * (1.0 - cv * cv)

    def _flat2(a: np.ndarray, last: int) -> np.ndarray:
        """2-D contiguous view (copying only when strided)."""
        return np.ascontiguousarray(a).reshape(-1, last)

    class NumbaBackend(NumpyBackend):
        """Compiled backend; falls back to scipy per-call when a buffer
        does not meet the kernels' layout/dtype requirements."""

        name = "numba"
        compiled = True
        fused_gru = True

        # -- sparse ----------------------------------------------------
        def csr_matmul_out(self, prep, x, out):
            if x.flags.c_contiguous and out.flags.c_contiguous and \
                    x.dtype == prep.data.dtype and out.dtype == prep.data.dtype:
                _csr_matmul2(prep.indptr, prep.indices, prep.data, x, out)
                return out
            return super().csr_matmul_out(prep, x, out)

        # -- diffusion conv --------------------------------------------
        def diffusion_hops(self, prep, x0_flat, cat, col0, f, k, ping, pong):
            if cat.flags.c_contiguous and cat.dtype == prep.data.dtype:
                _dhops(prep.indptr, prep.indices, prep.data, cat, col0, f, k)
                return
            super().diffusion_hops(prep, x0_flat, cat, col0, f, k, ping, pong)

        def diffusion_backward(self, prep_t, gcat, col0, f, k, gx, ping, pong):
            if gcat.flags.c_contiguous and gcat.dtype == prep_t.data.dtype:
                _dbackward(prep_t.indptr, prep_t.indices, prep_t.data,
                           gcat, col0, f, k, gx, ping, pong)
                return
            super().diffusion_backward(prep_t, gcat, col0, f, k, gx,
                                       ping, pong)

        # -- fused GRU -------------------------------------------------
        # Output buffers come from the autograd layer's pools and are
        # always C-contiguous; inputs may be strided views (gate slices,
        # concat-backward slabs) and are compacted on entry.
        def gru_gates_fwd(self, pre, h, s, rh):
            hidden = h.shape[-1]
            _gru_gates_fwd(_flat2(pre, 2 * hidden), _flat2(h, hidden),
                           s.reshape(-1, 2 * hidden), rh.reshape(-1, hidden))

        def gru_gates_bwd_rh(self, g, s, h, dpre, dh):
            hidden = h.shape[-1]
            _gru_gates_bwd_rh(_flat2(g, hidden), _flat2(s, 2 * hidden),
                              _flat2(h, hidden),
                              dpre.reshape(-1, 2 * hidden),
                              dh.reshape(-1, hidden))

        def gru_gates_bwd_u(self, g, s, dpre):
            hidden = g.shape[-1]
            _gru_gates_bwd_u(_flat2(g, hidden), _flat2(s, 2 * hidden),
                             dpre.reshape(-1, 2 * hidden))

        def gru_blend_fwd(self, u, h, cand_pre, c, out):
            hidden = u.shape[-1]
            _gru_blend_fwd(_flat2(u, hidden), _flat2(h, hidden),
                           _flat2(cand_pre, hidden), c.reshape(-1, hidden),
                           out.reshape(-1, hidden))

        def gru_blend_bwd(self, g, u, h, c, du, dh, dcpre):
            hidden = u.shape[-1]
            _gru_blend_bwd(_flat2(g, hidden), _flat2(u, hidden),
                           _flat2(h, hidden), _flat2(c, hidden),
                           du.reshape(-1, hidden), dh.reshape(-1, hidden),
                           dcpre.reshape(-1, hidden))
