"""Samplers and batch loaders for standard and index-batched datasets."""

from repro.batching.samplers import (
    BatchShuffleSampler,
    GlobalShuffleSampler,
    LocalShuffleSampler,
    SequentialSampler,
    partition_contiguous,
)
from repro.batching.loaders import IndexBatchLoader, StandardBatchLoader
from repro.batching.protocols import BatchSource, ensure_batch_source

__all__ = [
    "SequentialSampler",
    "GlobalShuffleSampler",
    "LocalShuffleSampler",
    "BatchShuffleSampler",
    "partition_contiguous",
    "IndexBatchLoader",
    "StandardBatchLoader",
    "BatchSource",
    "ensure_batch_source",
]
