"""Shuffling strategies for (distributed) batch sampling.

The paper distinguishes three regimes:

- **global shuffling** (§4.2): every epoch the *entire* dataset is permuted
  and re-partitioned across workers.  Baseline DDP pays communication for
  this; distributed-index-batching gets it free because every worker holds
  the whole dataset locally.
- **local shuffling**: each worker's partition is fixed; only the order
  within a partition changes.  Known to hurt convergence (Meng et al.).
- **batch-level (local) shuffling** (§5.4): partitions *and* batch
  membership are fixed; only the order of batches is shuffled.  Used by
  generalized-distributed-index-batching for memory locality; Table 5 shows
  it matches global shuffling's accuracy.

A sampler's ``epoch_plan(epoch)`` returns, per rank, the list of batches
(arrays of dataset-level snapshot indices) for that epoch.  Plans are
deterministic in (seed, epoch).
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import new_rng


def partition_contiguous(n: int, world_size: int) -> list[np.ndarray]:
    """Split ``range(n)`` into ``world_size`` near-equal contiguous chunks."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    bounds = np.linspace(0, n, world_size + 1).astype(np.int64)
    return [np.arange(bounds[r], bounds[r + 1]) for r in range(world_size)]


def _to_batches(indices: np.ndarray, batch_size: int,
                drop_last: bool) -> list[np.ndarray]:
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n_full = len(indices) // batch_size
    batches = [indices[i * batch_size:(i + 1) * batch_size] for i in range(n_full)]
    rem = indices[n_full * batch_size:]
    if len(rem) and not drop_last:
        batches.append(rem)
    return batches


class Sampler:
    """Base sampler over ``n`` snapshots for ``world_size`` ranks."""

    def __init__(self, n: int, batch_size: int, world_size: int = 1,
                 *, seed: int | str = 0, drop_last: bool = True):
        if n < 1:
            raise ValueError("need at least one snapshot")
        self.n = int(n)
        self.batch_size = int(batch_size)
        self.world_size = int(world_size)
        self.seed = seed
        self.drop_last = drop_last

    def epoch_plan(self, epoch: int) -> list[list[np.ndarray]]:
        """Per-rank lists of batch index arrays for ``epoch``."""
        raise NotImplementedError

    def steps_per_epoch(self) -> int:
        """Number of synchronized global steps (min across ranks)."""
        plan = self.epoch_plan(0)
        return min(len(b) for b in plan)


class SequentialSampler(Sampler):
    """No shuffling; contiguous partitions in index order."""

    def epoch_plan(self, epoch: int) -> list[list[np.ndarray]]:
        parts = partition_contiguous(self.n, self.world_size)
        return [_to_batches(p, self.batch_size, self.drop_last) for p in parts]


class GlobalShuffleSampler(Sampler):
    """Permute everything each epoch, then deal out to ranks round-robin."""

    def epoch_plan(self, epoch: int) -> list[list[np.ndarray]]:
        rng = new_rng("sampler", "global", self.seed, epoch)
        perm = rng.permutation(self.n)
        per_rank = [perm[r::self.world_size] for r in range(self.world_size)]
        return [_to_batches(p, self.batch_size, self.drop_last) for p in per_rank]


class LocalShuffleSampler(Sampler):
    """Fixed contiguous partitions; shuffle within each partition per epoch."""

    def epoch_plan(self, epoch: int) -> list[list[np.ndarray]]:
        parts = partition_contiguous(self.n, self.world_size)
        out = []
        for r, part in enumerate(parts):
            rng = new_rng("sampler", "local", self.seed, epoch, r)
            out.append(_to_batches(rng.permutation(part), self.batch_size,
                                   self.drop_last))
        return out


class BatchShuffleSampler(Sampler):
    """Fixed partitions and fixed batch membership; shuffle batch order only.

    Batch contents are contiguous runs of the partition, which is what
    gives generalized-distributed-index-batching its memory locality.
    """

    def epoch_plan(self, epoch: int) -> list[list[np.ndarray]]:
        parts = partition_contiguous(self.n, self.world_size)
        out = []
        for r, part in enumerate(parts):
            batches = _to_batches(part, self.batch_size, self.drop_last)
            rng = new_rng("sampler", "batch", self.seed, epoch, r)
            order = rng.permutation(len(batches))
            out.append([batches[i] for i in order])
        return out
