"""Batch loaders bridging preprocessed datasets and training loops.

Both loaders yield ``(x, y)`` NumPy batches of shape
``[batch, horizon, nodes, features]``; the difference is where the bytes
come from:

- :class:`StandardBatchLoader` slices the fully-materialised window stacks
  of the standard pipeline.
- :class:`IndexBatchLoader` gathers batches on demand from the single data
  copy of an :class:`~repro.preprocessing.index_batching.IndexDataset`.

Both satisfy the :class:`~repro.batching.protocols.BatchSource` protocol:
``len(loader)`` equals the number of full batches :meth:`batches` yields,
and impossible splits (empty, or smaller than one batch) are rejected at
construction instead of silently iterating zero times.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.preprocessing.index_batching import IndexDataset
from repro.preprocessing.standard import StandardPreprocessed
from repro.utils.errors import ShapeError


def _check_split(split: str, num_snapshots: int, batch_size: int) -> int:
    """Validate that a split can serve at least one full batch."""
    batch_size = int(batch_size)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if num_snapshots == 0:
        raise ShapeError(f"split {split!r} is empty")
    if num_snapshots < batch_size:
        raise ShapeError(
            f"split {split!r} has {num_snapshots} snapshots, fewer than "
            f"batch_size {batch_size}: no full batch can be formed (shrink "
            f"the batch size or enlarge the dataset)")
    return batch_size


class StandardBatchLoader:
    """Iterate over a materialised split of the standard pipeline."""

    def __init__(self, pre: StandardPreprocessed, split: str, batch_size: int,
                 *, dtype=np.float32):
        self.x, self.y = pre.split(split)
        self.batch_size = _check_split(split, len(self.x), batch_size)
        self.dtype = dtype

    def __len__(self) -> int:
        return len(self.x) // self.batch_size

    @property
    def num_snapshots(self) -> int:
        return len(self.x)

    def batches(self, order: np.ndarray | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield batches, optionally in a sampler-provided order."""
        idx = np.arange(len(self.x)) if order is None else np.asarray(order)
        bs = self.batch_size
        for i in range(0, len(idx) - bs + 1, bs):
            sel = idx[i: i + bs]
            yield (self.x[sel].astype(self.dtype),
                   self.y[sel].astype(self.dtype))

    def batch_at(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (self.x[sel].astype(self.dtype), self.y[sel].astype(self.dtype))


class IndexBatchLoader:
    """Iterate over an :class:`IndexDataset` split via runtime gathering."""

    def __init__(self, ds: IndexDataset, split: str, batch_size: int,
                 *, dtype=np.float32):
        self.ds = ds
        self.split = split
        self.starts = ds.split_starts(split)
        self.batch_size = _check_split(split, len(self.starts), batch_size)
        self.dtype = dtype

    def __len__(self) -> int:
        return len(self.starts) // self.batch_size

    @property
    def num_snapshots(self) -> int:
        return len(self.starts)

    def batches(self, order: np.ndarray | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield batches; ``order`` indexes into this split's snapshots."""
        idx = np.arange(len(self.starts)) if order is None else np.asarray(order)
        bs = self.batch_size
        for i in range(0, len(idx) - bs + 1, bs):
            sel = self.starts[idx[i: i + bs]]
            x, y = self.ds.gather(sel)
            yield x.astype(self.dtype, copy=False), y.astype(self.dtype, copy=False)

    def batch_at(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch for split-local snapshot indices ``sel``."""
        x, y = self.ds.gather(self.starts[np.asarray(sel)])
        return x.astype(self.dtype, copy=False), y.astype(self.dtype, copy=False)
