"""Batch loaders bridging preprocessed datasets and training loops.

Both loaders yield ``(x, y)`` NumPy batches of shape
``[batch, horizon, nodes, features]``; the difference is where the bytes
come from:

- :class:`StandardBatchLoader` slices the fully-materialised window stacks
  of the standard pipeline.
- :class:`IndexBatchLoader` gathers batches on demand from the single data
  copy of an :class:`~repro.preprocessing.index_batching.IndexDataset`.

Both satisfy the :class:`~repro.batching.protocols.BatchSource` protocol:
``len(loader)`` equals the number of full batches :meth:`batches` yields,
and impossible splits (empty, or smaller than one batch) are rejected at
construction instead of silently iterating zero times.

**Buffer reuse.**  Full-size batches are written into one persistent
buffer per loader and returned as (views of) that buffer, so the steady
training loop gathers without allocating.  Consequently a batch is only
valid until the next ``batch_at``/``batches`` call on the same loader —
exactly how the training loops consume them.  Pass ``reuse_buffers=False``
to get independently-owned batches (e.g. to collect batches in a list).
Odd-sized requests (DDP microbatches, whole-partition evaluation) always
take the allocating path.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.preprocessing.index_batching import IndexDataset
from repro.preprocessing.standard import StandardPreprocessed
from repro.utils.errors import ShapeError


def _check_split(split: str, num_snapshots: int, batch_size: int) -> int:
    """Validate that a split can serve at least one full batch."""
    batch_size = int(batch_size)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if num_snapshots == 0:
        raise ShapeError(f"split {split!r} is empty")
    if num_snapshots < batch_size:
        raise ShapeError(
            f"split {split!r} has {num_snapshots} snapshots, fewer than "
            f"batch_size {batch_size}: no full batch can be formed (shrink "
            f"the batch size or enlarge the dataset)")
    return batch_size


class StandardBatchLoader:
    """Iterate over a materialised split of the standard pipeline.

    The split's window stacks are cast to the training dtype once at
    construction, so per-batch assembly is a pure ``np.take`` into the
    loader's persistent buffers (no cast, no allocation).
    """

    def __init__(self, pre: StandardPreprocessed, split: str, batch_size: int,
                 *, dtype=np.float32, reuse_buffers: bool = True):
        x, y = pre.split(split)
        self.batch_size = _check_split(split, len(x), batch_size)
        self.dtype = np.dtype(dtype)
        self.x = np.ascontiguousarray(x, dtype=self.dtype)
        self.y = np.ascontiguousarray(y, dtype=self.dtype)
        self.reuse_buffers = reuse_buffers
        self._xb: np.ndarray | None = None
        self._yb: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.x) // self.batch_size

    @property
    def num_snapshots(self) -> int:
        return len(self.x)

    def _take(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.reuse_buffers or len(sel) != self.batch_size:
            return self.x[sel], self.y[sel]
        n = len(self.x)
        if len(sel) and (int(sel.min()) < -n or int(sel.max()) >= n):
            raise IndexError(f"batch indices out of range for {n} snapshots")
        if self._xb is None:
            self._xb = np.empty((self.batch_size,) + self.x.shape[1:],
                                self.dtype)
            self._yb = np.empty((self.batch_size,) + self.y.shape[1:],
                                self.dtype)
        # mode="wrap" skips np.take's internal bounce buffer and gives
        # negative indices standard meaning; the bounds check above keeps
        # genuinely out-of-range indices loud.
        np.take(self.x, sel, axis=0, out=self._xb, mode="wrap")
        np.take(self.y, sel, axis=0, out=self._yb, mode="wrap")
        return self._xb, self._yb

    def batches(self, order: np.ndarray | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield batches, optionally in a sampler-provided order."""
        idx = np.arange(len(self.x)) if order is None else np.asarray(order)
        bs = self.batch_size
        for i in range(0, len(idx) - bs + 1, bs):
            yield self._take(idx[i: i + bs])

    def batch_at(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._take(np.asarray(sel))

    def clone(self) -> "StandardBatchLoader":
        """A loader over the same window stacks with its own buffers.

        Shares the (read-only) data arrays; rank threads each clone so
        their persistent batch buffers never alias.
        """
        other = object.__new__(StandardBatchLoader)
        other.__dict__.update(self.__dict__)
        other._xb = other._yb = None
        return other


class IndexBatchLoader:
    """Iterate over an :class:`IndexDataset` split via runtime gathering.

    Full-size batches gather into one persistent ``[batch, 2*horizon,
    nodes, features]`` block (a single fancy-index; ``x``/``y`` are the
    two halves as views).  When the dataset stores data at the training
    dtype the views are returned directly; otherwise they are cast into a
    second persistent buffer, still allocation-free per step.
    """

    def __init__(self, ds: IndexDataset, split: str, batch_size: int,
                 *, dtype=np.float32, reuse_buffers: bool = True):
        self.ds = ds
        self.split = split
        self.starts = ds.split_starts(split)
        self.batch_size = _check_split(split, len(self.starts), batch_size)
        self.dtype = np.dtype(dtype)
        self.reuse_buffers = reuse_buffers
        self._block: np.ndarray | None = None   # gather target, data dtype
        self._cast: np.ndarray | None = None    # training-dtype copy if needed
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.starts) // self.batch_size

    @property
    def num_snapshots(self) -> int:
        return len(self.starts)

    def _gather(self, sel_starts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.reuse_buffers or len(sel_starts) != self.batch_size:
            x, y = self.ds.gather(sel_starts)
            return (x.astype(self.dtype, copy=False),
                    y.astype(self.dtype, copy=False))
        if self._block is None:
            h = self.ds.horizon
            shape = (self.batch_size, 2 * h) + self.ds.data.shape[1:]
            self._block = np.empty(shape, self.ds.data.dtype)
            out = self._block
            if self.ds.data.dtype != self.dtype:
                self._cast = np.empty(shape, self.dtype)
                out = self._cast
            self._x = out[:, :h]
            self._y = out[:, h:]
        self.ds.gather(sel_starts, out=self._block)
        if self._cast is not None:
            np.copyto(self._cast, self._block, casting="same_kind")
        return self._x, self._y

    def batches(self, order: np.ndarray | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield batches; ``order`` indexes into this split's snapshots."""
        idx = np.arange(len(self.starts)) if order is None else np.asarray(order)
        bs = self.batch_size
        for i in range(0, len(idx) - bs + 1, bs):
            yield self._gather(self.starts[idx[i: i + bs]])

    def batch_at(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch for split-local snapshot indices ``sel``."""
        return self._gather(self.starts[np.asarray(sel)])

    def clone(self) -> "IndexBatchLoader":
        """A loader over the same :class:`IndexDataset` with its own
        gather buffers (the dataset's single data copy stays shared)."""
        return IndexBatchLoader(self.ds, self.split, self.batch_size,
                                dtype=self.dtype,
                                reuse_buffers=self.reuse_buffers)
