"""The ``BatchSource`` protocol: the loader interface trainers consume.

:class:`~repro.training.trainer.Trainer` and
:class:`~repro.training.ddp.DDPTrainer` historically duck-typed their
loaders; this module formalizes the contract so alternative sources
(sharded loaders, prefetching wrappers, remote partitions) can be written
against an explicit interface and validated at construction time instead
of failing mid-epoch.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class BatchSource(Protocol):
    """Anything that can serve ``[batch, horizon, nodes, features]`` pairs.

    Implementations must keep :meth:`__len__` and :meth:`batches` in
    agreement: ``len(source)`` is exactly the number of full batches one
    default iteration yields.
    """

    batch_size: int

    @property
    def num_snapshots(self) -> int:
        """Total snapshots in this source's split."""
        ...

    def __len__(self) -> int:
        """Number of full batches a default iteration yields."""
        ...

    def batches(self, order: np.ndarray | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(x, y)`` batches, optionally in a sampler-given order."""
        ...

    def batch_at(self, sel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Assemble one batch for split-local snapshot indices ``sel``."""
        ...


_REQUIRED_ATTRS = ("batch_at", "batches", "num_snapshots", "batch_size")


def ensure_batch_source(obj: object, role: str = "loader") -> object:
    """Validate that ``obj`` satisfies :class:`BatchSource`.

    Returns ``obj`` unchanged; raises :class:`TypeError` naming the missing
    attributes otherwise.  Used by the trainers so a wrong loader object
    fails at construction with a readable message.
    """
    missing = [a for a in _REQUIRED_ATTRS if not hasattr(obj, a)]
    if missing:
        raise TypeError(
            f"{role} {type(obj).__name__!r} does not satisfy BatchSource: "
            f"missing {missing}")
    return obj


def clone_batch_source(src: object) -> object:
    """A per-rank clone of a batch source with private staging buffers.

    Loaders reuse one persistent batch buffer, so two rank threads
    drawing from the same loader would overwrite each other's batches.
    Sources must expose ``clone()`` returning an instance with private
    mutable state (both built-in loaders do); anything else is rejected
    loudly — a shallow copy would silently alias the very buffers this
    function exists to privatize, corrupting batches under concurrency.
    """
    clone = getattr(src, "clone", None)
    if callable(clone):
        return clone()
    raise TypeError(
        f"{type(src).__name__} has no clone(); per-rank execution needs "
        f"private loader state (persistent batch buffers must not be "
        f"shared between ranks) — implement clone() on the source")
