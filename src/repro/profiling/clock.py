"""A simulated clock measured in seconds.

All runtime numbers in the experiment harness come from simulated clocks
advanced by the cost models (and, where real computation happens, by
measured wall-clock scaled through a calibration factor).  Using explicit
clocks keeps every reported runtime deterministic.
"""

from __future__ import annotations


class SimClock:
    """Monotonically advancing simulated time."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump to absolute time ``t`` if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
