"""Simulated clocks, timers, run reports, and the measured-perf harness."""

from repro.profiling.clock import SimClock
from repro.profiling.report import RunReport, format_table

__all__ = ["SimClock", "RunReport", "format_table"]
# repro.profiling.bench is imported lazily (it pulls in the api layer).
