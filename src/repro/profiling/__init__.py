"""Simulated clocks, timers and run reports."""

from repro.profiling.clock import SimClock
from repro.profiling.report import RunReport, format_table

__all__ = ["SimClock", "RunReport", "format_table"]
