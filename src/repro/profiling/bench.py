"""Measured performance snapshots: the ``BENCH_<n>.json`` harness.

Unlike :mod:`repro.profiling.clock` (simulated time for the paper's cost
models), this module measures *real* wall-clock performance of the hot
paths — batch gathering, sparse propagation, optimizer steps, and a full
fixed-seed tiny training run — and serialises them to a schema'd JSON
snapshot.  Committing one snapshot per perf-relevant PR gives the repo a
perf trajectory, and :func:`diff_benches` turns two snapshots into a
ratio table so a regression (or a claimed speedup) is visible in review.

Schema (``repro-bench/v2``; committed ``repro-bench/v1`` snapshots still
validate)::

    {
      "schema": "repro-bench/v2",
      "label": "...",                   # human note: what code state this is
      "created": "2026-07-27T12:00:00", # wall time of collection
      "platform": {"python": ..., "numpy": ..., "scipy": ...},
      "micro": [                        # microbenchmarks of hot primitives
        {"name": ..., "ops_per_sec": ..., "mean_seconds": ...,
         "iterations": ..., "note": ...},
        ...
      ],
      "training": {                     # fixed-seed tiny training runs
        "<key>": {
          "model": ..., "batching": ..., "optimizer": ..., "epochs": ...,
          "steps": ..., "steps_per_sec": ..., "snapshots_per_sec": ...,
          "seconds_total": ...,
          "step_breakdown_seconds": {   # mean per-step phase times
            "gather": ..., "forward": ..., "backward": ...,
            "clip": ..., "optimizer": ...},
          "peak_bytes": ...,            # MemorySpace peak during preprocessing
          "resident_bytes": ...,        # loader-resident data bytes
          "train_curve": [...],         # per-epoch mean losses (parity anchor)
        }
      },
      "kernels": {                      # v2: per-backend compute + precision
        "backends_available": ["numpy", ...],
        "default_backend": "numpy",
        "micro": {"<backend>": [ ... MicroResult dicts ... ]},
        "training": {"<backend>": { ... training entry ... }},
        "compiled_speedup": {           # >= threshold gate; recorded-skipped
          "applied": ..., "speedup": ..., "threshold": 2.0, "reason": ...},
        "parity": {                     # compiled-vs-numpy curve drift gate
          "applied": ..., "max_drift": ..., "atol": 1e-6},
        "mixed_precision": {            # f16 storage footprint gate
          "f32_resident_bytes": ..., "f16_resident_bytes": ...,
          "resident_ratio": ..., "floor": 1.8,
          "f16_curve_drift_vs_f32": ...}   # informational (storage rounding)
      }
    }

The fixed-seed ``train_curve`` doubles as a numerical-parity anchor: two
snapshots taken on the same machine must agree on it to tight tolerance
unless the PR deliberately changed training numerics (e.g. a documented
float32 path), in which case the diff makes the drift explicit.
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

SCHEMA = "repro-bench/v2"

#: Previous schema, still accepted by :func:`validate_snapshot` so the
#: committed ``BENCH_1..8.json`` snapshots keep validating and diffing.
SCHEMA_V1 = "repro-bench/v1"

#: Tolerance used by :func:`diff_benches` to flag train-curve drift; also
#: the compiled-vs-numpy parity gate of the ``kernels`` section.
PARITY_ATOL = 1e-6

#: ``kernels`` section gate thresholds: minimum steps/sec speedup a
#: compiled backend must deliver over numpy, and minimum resident-bytes
#: ratio float16 storage must win over float32.
COMPILED_SPEEDUP_FLOOR = 2.0
MIXED_PRECISION_FLOOR = 1.8


# ---------------------------------------------------------------------------
# Timing core
# ---------------------------------------------------------------------------
def time_fn(fn: Callable[[], object], *, min_time: float = 0.2,
            warmup: int = 3, max_iter: int = 100_000) -> tuple[float, int]:
    """Measure mean seconds per call of ``fn`` (adaptive iteration count)."""
    for _ in range(warmup):
        fn()
    iters = 0
    total = 0.0
    chunk = 1
    while total < min_time and iters < max_iter:
        t0 = time.perf_counter()
        for _ in range(chunk):
            fn()
        total += time.perf_counter() - t0
        iters += chunk
        chunk = min(2 * chunk, max_iter - iters) or 1
    return total / iters, iters


@dataclass
class MicroResult:
    """One microbenchmark measurement."""

    name: str
    mean_seconds: float
    iterations: int
    note: str = ""

    @property
    def ops_per_sec(self) -> float:
        return 1.0 / self.mean_seconds if self.mean_seconds > 0 else float("inf")

    def to_dict(self) -> dict:
        return {"name": self.name, "ops_per_sec": self.ops_per_sec,
                "mean_seconds": self.mean_seconds,
                "iterations": self.iterations, "note": self.note}


# ---------------------------------------------------------------------------
# Microbenchmarks
# ---------------------------------------------------------------------------
def micro_suite(*, quick: bool = False) -> list[MicroResult]:
    """Hot-path primitives: gather, loader batch, sparse matmul, dconv,
    backward, clip + Adam."""
    from repro.autograd import Tensor, functional as F
    from repro.batching.loaders import IndexBatchLoader
    from repro.datasets import load_dataset
    from repro.graph import dual_random_walk_supports
    from repro.models.dconv import DiffusionConv
    from repro.optim import Adam, clip_grad_norm
    from repro.preprocessing import IndexDataset

    min_time = 0.05 if quick else 0.25
    results: list[MicroResult] = []

    def add(name, fn, note=""):
        mean, iters = time_fn(fn, min_time=min_time)
        results.append(MicroResult(name, mean, iters, note))

    # -- batch gathering ------------------------------------------------
    ds = load_dataset("pems-bay", nodes=64, entries=3000, seed=0)
    idx = IndexDataset.from_dataset(ds)
    starts = idx.split_starts("train")[:64]
    add("gather_batch64", lambda: idx.gather(starts),
        "IndexDataset.gather of 64 windows, 64 nodes")

    loader = IndexBatchLoader(idx, "train", 64)
    sel = np.arange(64)
    add("loader_batch64_f32", lambda: loader.batch_at(sel),
        "IndexBatchLoader.batch_at incl. float32 conversion")

    # -- sparse propagation --------------------------------------------
    from repro.graph import random_sensor_network
    g = random_sensor_network(512, seed=2)
    support = dual_random_walk_supports(g.weights)[0]
    x = Tensor(np.random.default_rng(0).standard_normal(
        (32, 512, 64)).astype(np.float32))
    add("sparse_matmul_512n", lambda: F.sparse_matmul(support, x),
        "one diffusion hop, batch 32, 512 nodes, 64 channels")

    # -- diffusion convolution forward + backward ----------------------
    g2 = random_sensor_network(64, seed=3)
    supports = dual_random_walk_supports(g2.weights)
    conv = DiffusionConv(supports, 16, 16, k_hops=2)
    xc = np.random.default_rng(1).standard_normal((32, 64, 16)).astype(np.float32)

    def dconv_fwd_bwd():
        xt = Tensor(xc, requires_grad=True)
        out = conv(xt)
        out.backward(np.ones_like(out.data))
        return out

    add("dconv_forward_backward", dconv_fwd_bwd,
        "DiffusionConv fwd+bwd, batch 32, 64 nodes, 16->16, K=2")

    # -- clip + Adam on DCRNN-sized parameters -------------------------
    rng = np.random.default_rng(4)
    from repro.nn.module import Parameter
    params = [Parameter(rng.standard_normal(s).astype(np.float32))
              for s in [(80, 16), (80, 16), (16,), (16,), (8256,), (64, 1)]]
    grads = [rng.standard_normal(p.data.shape).astype(np.float32) * 10
             for p in params]
    opt = Adam(params, lr=1e-3)

    def clip_and_step():
        for p, gsrc in zip(params, grads):
            if p.grad is None:
                p.grad = gsrc.copy()
            else:
                np.copyto(p.grad, gsrc)
        clip_grad_norm(params, 5.0)
        opt.step()

    add("clip_adam_step", clip_and_step,
        "gradient clipping + Adam step over 6 parameter blocks")

    return results


# ---------------------------------------------------------------------------
# Fixed-seed tiny training benchmark
# ---------------------------------------------------------------------------
def training_benchmark(*, model: str = "dcrnn", batching: str = "index",
                       optimizer: str = "adam", epochs: int = 3,
                       seed: int = 0, quick: bool = False) -> dict:
    """Train tiny DCRNN with the exact :class:`Trainer` step semantics,
    timing each phase of every optimizer step.

    The loop mirrors ``Trainer.train_step`` statement for statement (same
    sampler, same scheduled-sampling RNG consumption), so the recorded
    ``train_curve`` is directly comparable with ``api.run`` output and
    across snapshots.
    """
    from repro.api.registry import BATCHINGS, DATASETS, MODELS, OPTIMIZERS
    from repro.api.builders import ModelContext
    from repro.api.scales import get_scale
    from repro.autograd.tensor import Tensor
    from repro.batching.samplers import GlobalShuffleSampler
    from repro.hardware.memory import MemorySpace
    from repro.models.dcrnn import DCRNN
    from repro.optim.losses import l1_loss
    from repro.optim.optimizers import clip_grad_norm

    if quick:
        epochs = min(epochs, 1)
    scale = get_scale("tiny")
    ds = DATASETS.get("pems-bay")(nodes=scale.nodes, entries=scale.entries,
                                  seed=seed)
    horizon = scale.horizon or ds.spec.horizon
    space = MemorySpace(f"bench:{batching}")
    bundle = BATCHINGS.get(batching)(ds, horizon, scale.batch_size, space)
    ctx = ModelContext(graph=ds.graph, horizon=horizon, in_features=2,
                       hidden_dim=scale.hidden_dim, seed=seed)
    net = MODELS.get(model)(ctx)
    trainable = [p for p in net.parameters() if p.requires_grad]
    opt = OPTIMIZERS.get(optimizer)(trainable, 0.01)
    loader = bundle.train
    sampler = GlobalShuffleSampler(loader.num_snapshots, loader.batch_size,
                                   world_size=1, seed=seed)

    is_dcrnn = isinstance(net, DCRNN)
    phases = {"gather": 0.0, "forward": 0.0, "backward": 0.0,
              "clip": 0.0, "optimizer": 0.0}
    curve: list[float] = []
    steps = 0
    pc = time.perf_counter
    net.train()
    t_start = pc()
    for epoch in range(epochs):
        losses = []
        for sel in sampler.epoch_plan(epoch)[0]:
            if len(sel) < loader.batch_size:
                continue
            t0 = pc()
            x, y = loader.batch_at(sel)
            t1 = pc()
            xt = Tensor(x)
            target = y[..., :1]
            if is_dcrnn:
                pred = net(xt, targets=y)
            else:
                pred = net(xt)
            loss = l1_loss(pred, target.astype(np.float32))
            t2 = pc()
            opt.zero_grad()
            loss.backward()
            t3 = pc()
            clip_grad_norm(opt.params, 5.0)
            t4 = pc()
            opt.step()
            t5 = pc()
            phases["gather"] += t1 - t0
            phases["forward"] += t2 - t1
            phases["backward"] += t3 - t2
            phases["clip"] += t4 - t3
            phases["optimizer"] += t5 - t4
            losses.append(float(loss.item()))
            steps += 1
        curve.append(float(np.mean(losses)) if losses else float("nan"))
    seconds_total = pc() - t_start

    resident = 0
    inner = getattr(loader, "ds", None)
    if inner is not None:
        resident = int(inner.resident_nbytes)
    return {
        "model": model, "batching": batching, "optimizer": optimizer,
        "scale": "tiny", "seed": seed, "epochs": epochs, "steps": steps,
        "steps_per_sec": steps / seconds_total if seconds_total else 0.0,
        "snapshots_per_sec": (steps * loader.batch_size / seconds_total
                              if seconds_total else 0.0),
        "seconds_total": seconds_total,
        "step_breakdown_seconds": {k: v / max(steps, 1)
                                   for k, v in phases.items()},
        "peak_bytes": int(space.peak),
        "resident_bytes": resident,
        "num_parameters": int(net.num_parameters()),
        "train_curve": curve,
    }


# ---------------------------------------------------------------------------
# Kernel backends + mixed-precision storage (v2 section)
# ---------------------------------------------------------------------------
def kernel_micro_suite(*, quick: bool = False) -> list[MicroResult]:
    """Backend-sensitive primitives only: the fused diffusion-conv
    forward+backward and the fused GRU gate/blend ops.  Run once per
    available backend (under :func:`repro.kernels.use_backend`) by
    :func:`kernels_suite`; backend-independent paths (gather, Adam, ...)
    stay in :func:`micro_suite`."""
    from repro.autograd import Tensor, functional as F
    from repro.graph import dual_random_walk_supports, random_sensor_network
    from repro.models.dconv import DiffusionConv

    min_time = 0.05 if quick else 0.25
    results: list[MicroResult] = []

    def add(name, fn, note=""):
        mean, iters = time_fn(fn, min_time=min_time)
        results.append(MicroResult(name, mean, iters, note))

    g = random_sensor_network(64, seed=3)
    supports = dual_random_walk_supports(g.weights)
    conv = DiffusionConv(supports, 16, 16, k_hops=2)
    rng = np.random.default_rng(1)
    xc = rng.standard_normal((32, 64, 16)).astype(np.float32)

    def dconv_fwd_bwd():
        xt = Tensor(xc, requires_grad=True)
        out = conv(xt)
        out.backward(np.ones_like(out.data))
        return out

    add("dconv_forward_backward", dconv_fwd_bwd,
        "DiffusionConv fwd+bwd, batch 32, 64 nodes, 16->16, K=2")

    pre = rng.standard_normal((32, 64, 32)).astype(np.float32)
    hdata = rng.standard_normal((32, 64, 16)).astype(np.float32)
    cand = rng.standard_normal((32, 64, 16)).astype(np.float32)

    def gru_fwd_bwd():
        pt = Tensor(pre, requires_grad=True)
        ht = Tensor(hdata, requires_grad=True)
        ct = Tensor(cand, requires_grad=True)
        rh, u = F.gru_gates(pt, ht)
        out = F.gru_blend(u, ht, ct)
        out.backward(np.ones_like(out.data))
        return rh

    add("gru_gates_blend_fwd_bwd", gru_fwd_bwd,
        "fused GRU gate+blend fwd+bwd, batch 32, 64 nodes, hidden 16")
    return results


def _curve_drift(a: list[float], b: list[float]) -> float:
    shared = min(len(a), len(b))
    if not shared:
        return float("nan")
    return max(abs(x - y) for x, y in zip(a[:shared], b[:shared]))


def kernels_suite(*, quick: bool = False) -> dict:
    """The v2 ``kernels`` section: per-backend micro + training numbers
    plus the three gates (compiled speedup, compiled parity, float16
    storage footprint).

    Gates that cannot run in the current environment are
    *recorded-skipped*: ``applied`` is false and ``reason`` says why, so
    a snapshot from a numba-less box documents the gap instead of
    silently passing.
    """
    from repro import kernels

    backends = kernels.available_backends()
    micro: dict[str, list] = {}
    training: dict[str, dict] = {}
    for name in backends:
        with kernels.use_backend(name):
            micro[name] = [m.to_dict() for m in
                           kernel_micro_suite(quick=quick)]
            training[name] = training_benchmark(batching="index", quick=quick)

    compiled = [name for name in backends
                if kernels.get_backend(name).compiled]
    base_curve = training["numpy"]["train_curve"]
    base_steps = training["numpy"]["steps_per_sec"]
    if compiled:
        best = max(compiled,
                   key=lambda n: training[n]["steps_per_sec"])
        speedup = (training[best]["steps_per_sec"] / base_steps
                   if base_steps else float("inf"))
        # Quick mode records the speedup but never gates on it: the
        # one-epoch run is dominated by JIT compilation, which full runs
        # amortise.  Parity is timing-independent and gates either way.
        compiled_speedup = {
            "applied": not quick, "backend": best, "speedup": speedup,
            "threshold": COMPILED_SPEEDUP_FLOOR,
        }
        if quick:
            compiled_speedup["reason"] = (
                "quick mode: JIT compile time dominates the short run")
        parity = {
            "applied": True,
            "max_drift": max(_curve_drift(base_curve,
                                          training[n]["train_curve"])
                             for n in compiled),
            "atol": PARITY_ATOL,
        }
    else:
        reason = ("no compiled backend available "
                  "(numba is not importable in this environment)")
        compiled_speedup = {"applied": False, "backend": None,
                            "speedup": None,
                            "threshold": COMPILED_SPEEDUP_FLOOR,
                            "reason": reason}
        parity = {"applied": False, "max_drift": None,
                  "atol": PARITY_ATOL, "reason": reason}

    # float16 storage: same fixed-seed run with the ring stored in f16
    # (compute stays float32, casting on gather).  The resident-bytes
    # ratio is the gate; curve drift vs f32 storage is informational —
    # storage rounding legitimately moves the curve.
    f16 = training_benchmark(batching="index-f16", quick=quick)
    f32_resident = training["numpy"]["resident_bytes"]
    mixed_precision = {
        "f32_resident_bytes": f32_resident,
        "f16_resident_bytes": f16["resident_bytes"],
        "resident_ratio": (f32_resident / f16["resident_bytes"]
                           if f16["resident_bytes"] else float("inf")),
        "floor": MIXED_PRECISION_FLOOR,
        "f32_peak_bytes": training["numpy"]["peak_bytes"],
        "f16_peak_bytes": f16["peak_bytes"],
        "f16_steps_per_sec": f16["steps_per_sec"],
        "f16_curve_drift_vs_f32": _curve_drift(base_curve,
                                               f16["train_curve"]),
    }
    return {
        "backends_available": list(backends),
        "default_backend": kernels.active_backend().name,
        "micro": micro,
        "training": training,
        "compiled_speedup": compiled_speedup,
        "parity": parity,
        "mixed_precision": mixed_precision,
    }


def check_kernel_gates(section: dict) -> list[str]:
    """Failure messages for the ``kernels`` section gates (empty = green).

    Applied gates: compiled backend >= its speedup threshold, compiled
    train curve within ``atol`` of numpy, and float16 storage >= its
    resident-ratio floor.  Recorded-skipped gates contribute nothing.
    """
    failures = []
    cs = section["compiled_speedup"]
    if cs["applied"] and cs["speedup"] < cs["threshold"]:
        failures.append(
            f"compiled backend {cs.get('backend')} speedup "
            f"x{cs['speedup']:.2f} below x{cs['threshold']}")
    pa = section["parity"]
    if pa["applied"] and not (pa["max_drift"] <= pa["atol"]):
        failures.append(
            f"compiled train curve drifts {pa['max_drift']:.2e} from "
            f"numpy (atol {pa['atol']:.0e})")
    mp = section["mixed_precision"]
    if mp["resident_ratio"] < mp["floor"]:
        failures.append(
            f"float16 storage resident ratio x{mp['resident_ratio']:.2f} "
            f"below x{mp['floor']}")
    return failures


# ---------------------------------------------------------------------------
# Snapshot collection / IO
# ---------------------------------------------------------------------------
def collect(*, quick: bool = False, label: str = "") -> dict:
    """Run the full suite and assemble a schema'd snapshot dict."""
    import scipy

    micro = micro_suite(quick=quick)
    training = {
        "dcrnn_index_adam": training_benchmark(batching="index", quick=quick),
        "dcrnn_base_adam": training_benchmark(batching="base", quick=quick),
    }
    return {
        "schema": SCHEMA,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "micro": [m.to_dict() for m in micro],
        "training": training,
        "kernels": kernels_suite(quick=quick),
    }


def validate_snapshot(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid v2 (or committed
    v1) snapshot."""
    if not isinstance(data, dict) or data.get("schema") not in (SCHEMA,
                                                                SCHEMA_V1):
        raise ValueError(f"not a {SCHEMA} snapshot")
    for key in ("created", "platform", "micro", "training"):
        if key not in data:
            raise ValueError(f"snapshot missing {key!r}")
    for m in data["micro"]:
        for field in ("name", "ops_per_sec", "mean_seconds"):
            if field not in m:
                raise ValueError(f"micro entry missing {field!r}: {m}")
    for key, t in data["training"].items():
        for field in ("steps_per_sec", "step_breakdown_seconds",
                      "peak_bytes", "train_curve"):
            if field not in t:
                raise ValueError(f"training entry {key!r} missing {field!r}")
    if "kernels" in data:
        k = data["kernels"]
        for field in ("backends_available", "micro", "training",
                      "compiled_speedup", "parity", "mixed_precision"):
            if field not in k:
                raise ValueError(f"kernels section missing {field!r}")
        for gate in ("compiled_speedup", "parity"):
            if "applied" not in k[gate]:
                raise ValueError(f"kernels {gate} gate missing 'applied'")
        if "resident_ratio" not in k["mixed_precision"]:
            raise ValueError(
                "kernels mixed_precision missing 'resident_ratio'")


def load_or_init_snapshot(path: str | Path, *, label: str = "",
                          created: str | None = None) -> dict:
    """The validated snapshot at ``path``, or a fresh minimal skeleton.

    Section benches (serving, distributed) merge into whatever snapshot
    exists; when none does they need a schema-valid shell with empty
    ``micro``/``training`` sections — built here once so every bench
    writes the same shape.
    """
    path = Path(path)
    if path.exists():
        data = json.loads(path.read_text())
        validate_snapshot(data)
        return data
    import scipy
    return {
        "schema": SCHEMA,
        "label": label,
        "created": created or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "micro": [],
        "training": {},
    }


def write_snapshot(data: dict, path: str | Path) -> Path:
    validate_snapshot(data)
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict:
    data = json.loads(Path(path).read_text())
    validate_snapshot(data)
    return data


def next_bench_path(root: str | Path = ".") -> Path:
    """First unused ``BENCH_<n>.json`` path under ``root``."""
    root = Path(root)
    taken = set()
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            taken.add(int(m.group(1)))
    n = 1
    while n in taken:
        n += 1
    return root / f"BENCH_{n}.json"


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------
def diff_benches(old: dict, new: dict) -> dict:
    """Structured comparison: per-metric ``(old, new, ratio)`` triples.

    ``ratio > 1`` means *new is faster* (for throughput metrics) or *new
    uses less memory* (for byte metrics).  Train curves are compared for
    parity drift at :data:`PARITY_ATOL`.
    """
    validate_snapshot(old)
    validate_snapshot(new)
    micro_old = {m["name"]: m for m in old["micro"]}
    micro_new = {m["name"]: m for m in new["micro"]}
    micro = {}
    for name in sorted(set(micro_old) & set(micro_new)):
        o, n = micro_old[name]["ops_per_sec"], micro_new[name]["ops_per_sec"]
        micro[name] = {"old_ops_per_sec": o, "new_ops_per_sec": n,
                       "speedup": n / o if o else float("inf")}
    training = {}
    for key in sorted(set(old["training"]) & set(new["training"])):
        o, n = old["training"][key], new["training"][key]
        entry = {
            "old_steps_per_sec": o["steps_per_sec"],
            "new_steps_per_sec": n["steps_per_sec"],
            "speedup": (n["steps_per_sec"] / o["steps_per_sec"]
                        if o["steps_per_sec"] else float("inf")),
            "old_peak_bytes": o["peak_bytes"],
            "new_peak_bytes": n["peak_bytes"],
            "memory_ratio": (o["peak_bytes"] / n["peak_bytes"]
                             if n["peak_bytes"] else float("inf")),
        }
        co, cn = o["train_curve"], n["train_curve"]
        shared = min(len(co), len(cn))
        drift = (max(abs(a - b) for a, b in zip(co[:shared], cn[:shared]))
                 if shared else float("nan"))
        entry["train_curve_max_drift"] = drift
        entry["parity"] = bool(shared and drift <= PARITY_ATOL)
        training[key] = entry
    out = {"micro": micro, "training": training}
    if "kernels" in old and "kernels" in new:
        ko = old["kernels"]["training"]
        kn = new["kernels"]["training"]
        out["kernels"] = {
            b: {"old_steps_per_sec": ko[b]["steps_per_sec"],
                "new_steps_per_sec": kn[b]["steps_per_sec"],
                "speedup": (kn[b]["steps_per_sec"] / ko[b]["steps_per_sec"]
                            if ko[b]["steps_per_sec"] else float("inf"))}
            for b in sorted(set(ko) & set(kn))}
    return out


def format_diff(diff: dict) -> str:
    """Render :func:`diff_benches` output as an aligned text table."""
    lines = ["== micro (ops/sec) =="]
    width = max([len(n) for n in diff["micro"]] or [4])
    for name, d in diff["micro"].items():
        lines.append(f"  {name:<{width}}  {d['old_ops_per_sec']:>12.1f} -> "
                     f"{d['new_ops_per_sec']:>12.1f}   x{d['speedup']:.2f}")
    lines.append("== training ==")
    for key, d in diff["training"].items():
        parity = ("parity OK" if d["parity"] else
                  f"curve drift {d['train_curve_max_drift']:.2e}")
        lines.append(
            f"  {key}: {d['old_steps_per_sec']:.1f} -> "
            f"{d['new_steps_per_sec']:.1f} steps/s  x{d['speedup']:.2f}   "
            f"peak {d['old_peak_bytes']} -> {d['new_peak_bytes']} B   {parity}")
    if diff.get("kernels"):
        lines.append("== kernels (training steps/sec per backend) ==")
        for backend, d in diff["kernels"].items():
            lines.append(
                f"  {backend}: {d['old_steps_per_sec']:.1f} -> "
                f"{d['new_steps_per_sec']:.1f} steps/s  x{d['speedup']:.2f}")
    return "\n".join(lines)
