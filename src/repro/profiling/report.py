"""Plain-text result tables in the style of the paper's tables."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class RunReport:
    """Accumulates named result rows and renders them as a table.

    Experiment modules return a ``RunReport`` so benchmarks can both print
    the paper-style table and assert on the underlying values.
    """

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[Any]] = []
        self.meta: dict[str, Any] = {}

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def by_first_column(self) -> Mapping[str, list[Any]]:
        """Index rows by their first column (must be unique)."""
        out: dict[str, list[Any]] = {}
        for row in self.rows:
            key = str(row[0])
            if key in out:
                raise KeyError(f"duplicate row key {key!r}")
            out[key] = row
        return out

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)
