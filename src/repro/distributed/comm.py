"""Deprecated shim: ``SimCommunicator`` over the :mod:`repro.runtime` layer.

The simulated communicator used to implement MPI-style collectives, cost
accounting and clock synchronisation in one class.  All of that now
lives in :mod:`repro.runtime` — :class:`~repro.runtime.transport.
SimTransport` carries the clocks and cost models, :mod:`repro.runtime.
collectives` implements the data movement once for every transport, and
:class:`~repro.runtime.process_group.ProcessGroup` is the facade the
trainers and serving shards consume.

:class:`SimCommunicator` remains as a thin constructor so existing
experiments keep passing: ``SimCommunicator(world)`` is exactly
``ProcessGroup.sim(world)`` plus the legacy attribute surface
(``clocks`` / ``cost`` / ``topology`` / ``compute_time`` /
``comm_time``).  New code should build a :class:`ProcessGroup` directly.
"""

from __future__ import annotations

import warnings

from repro.cluster.costmodel import CommCostModel
from repro.runtime.process_group import ProcessGroup
from repro.runtime.transport import CommStats, SimTransport

__all__ = ["SimCommunicator", "CommStats"]


class SimCommunicator(ProcessGroup):
    """Deprecated alias for ``ProcessGroup.sim(world_size, cost_model)``.

    Collective arguments are *lists indexed by rank*, as before; all
    behaviour (simulated time, byte accounting, straggler semantics) is
    inherited unchanged from the runtime layer.
    """

    def __init__(self, world_size: int,
                 cost_model: CommCostModel | None = None):
        warnings.warn(
            "SimCommunicator is deprecated; use "
            "repro.runtime.ProcessGroup.sim(world_size) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(SimTransport(world_size, cost_model))

    # -- legacy attribute surface ---------------------------------------
    @property
    def clocks(self):
        return self.transport.clocks

    @property
    def cost(self):
        return self.transport.cost

    @property
    def topology(self):
        return self.transport.topology

    @property
    def compute_time(self):
        return self.transport.compute_time

    @property
    def comm_time(self):
        return self.transport.comm_time
