"""The simulated communicator: MPI-style collectives over in-process ranks.

Real distributed runtimes (Dask-DDP in the paper, MPI elsewhere) run one
process per rank; here all ranks live in one process and the communicator
performs the *data movement semantics* (averaging, broadcasting,
gathering) exactly, while charging *simulated time* from the cluster cost
model and counting bytes per traffic category.  Time is tracked on one
:class:`~repro.profiling.clock.SimClock` per rank; a collective
synchronises every participant to ``max(rank clocks) + op_time``, which is
precisely the straggler semantics of a blocking collective.

Traffic categories let the experiment harness split runtime the way
Figures 7 and 9 do: ``"gradient"`` (DDP all-reduce), ``"data"``
(on-demand batch fetches), ``"metric"`` (validation all-reduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.costmodel import CommCostModel
from repro.cluster.topology import ClusterTopology
from repro.profiling.clock import SimClock
from repro.utils.errors import CommunicatorError


@dataclass
class CommStats:
    """Aggregate traffic accounting, by category."""

    bytes_by_category: dict[str, int] = field(default_factory=dict)
    time_by_category: dict[str, float] = field(default_factory=dict)
    ops: int = 0

    def record(self, category: str, nbytes: int, seconds: float) -> None:
        self.bytes_by_category[category] = (
            self.bytes_by_category.get(category, 0) + int(nbytes))
        self.time_by_category[category] = (
            self.time_by_category.get(category, 0.0) + float(seconds))
        self.ops += 1

    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())


class SimCommunicator:
    """World of ``world_size`` ranks sharing a cost model.

    Collective arguments are *lists indexed by rank* (the in-process
    equivalent of each rank passing its local buffer).
    """

    def __init__(self, world_size: int, cost_model: CommCostModel | None = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.topology = (cost_model.topology if cost_model is not None
                         else ClusterTopology(world_size))
        if self.topology.world_size != world_size:
            raise CommunicatorError("cost model topology does not match world size")
        self.cost = cost_model or CommCostModel(self.topology)
        self.clocks = [SimClock() for _ in range(world_size)]
        self.stats = CommStats()
        # Per-rank cumulative time attribution.
        self.compute_time = np.zeros(world_size)
        self.comm_time = np.zeros(world_size)

    # ------------------------------------------------------------------
    # Local (compute) time
    # ------------------------------------------------------------------
    def advance_compute(self, rank: int, seconds: float) -> None:
        """Charge local computation to a rank's clock."""
        self._check_rank(rank)
        self.clocks[rank].advance(seconds)
        self.compute_time[rank] += seconds

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise CommunicatorError(
                f"rank {rank} out of range [0, {self.world_size})")

    def _check_world_list(self, values) -> None:
        if len(values) != self.world_size:
            raise CommunicatorError(
                f"expected one value per rank ({self.world_size}), got {len(values)}")

    def _sync_all(self, op_seconds: float, nbytes: int, category: str) -> None:
        start = max(c.now for c in self.clocks)
        end = start + op_seconds
        for r, c in enumerate(self.clocks):
            self.comm_time[r] += end - c.now
            c.advance_to(end)
        self.stats.record(category, nbytes, op_seconds)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def allreduce(self, arrays: list[np.ndarray], op: str = "mean",
                  category: str = "gradient") -> list[np.ndarray]:
        """Element-wise reduce across ranks; every rank gets the result."""
        self._check_world_list(arrays)
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise CommunicatorError(f"allreduce shape mismatch: {shapes}")
        if op not in ("mean", "sum", "max"):
            raise CommunicatorError(f"unsupported op {op!r}")
        stacked = np.stack(arrays, axis=0)
        if op == "mean":
            result = stacked.mean(axis=0)
        elif op == "sum":
            result = stacked.sum(axis=0)
        else:
            result = stacked.max(axis=0)
        result = result.astype(arrays[0].dtype, copy=False)
        nbytes = arrays[0].nbytes
        self._sync_all(self.cost.allreduce_time(nbytes), nbytes, category)
        return [result.copy() for _ in range(self.world_size)]

    def broadcast(self, value: np.ndarray, root: int = 0,
                  category: str = "control") -> list[np.ndarray]:
        """Send ``value`` from ``root`` to every rank."""
        self._check_rank(root)
        arr = np.asarray(value)
        self._sync_all(self.cost.broadcast_time(arr.nbytes), arr.nbytes, category)
        return [arr.copy() for _ in range(self.world_size)]

    def allgather(self, arrays: list[np.ndarray],
                  category: str = "data") -> list[list[np.ndarray]]:
        """Every rank receives every rank's array."""
        self._check_world_list(arrays)
        per = max(a.nbytes for a in arrays)
        self._sync_all(self.cost.allgather_time(per),
                       per * self.world_size, category)
        return [[a.copy() for a in arrays] for _ in range(self.world_size)]

    def barrier(self) -> None:
        self._sync_all(self.cost.allreduce_time(8), 0, "control")

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def fetch(self, src: int, dst: int, nbytes: int,
              category: str = "data") -> None:
        """On-demand pull of ``nbytes`` from ``src``'s memory to ``dst``.

        Advances both endpoints (the source must serve the request).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst or nbytes == 0:
            return
        dt = self.cost.p2p_time(nbytes, same_node=self.topology.same_node(src, dst))
        start = max(self.clocks[src].now, self.clocks[dst].now)
        end = start + dt
        for r in (src, dst):
            self.comm_time[r] += end - self.clocks[r].now
            self.clocks[r].advance_to(end)
        self.stats.record(category, nbytes, dt)

    def fetch_all(self, total_bytes: int, messages_per_rank: int,
                  category: str = "data") -> None:
        """All ranks fetch concurrently, contending on the shared fabric.

        Used for the per-step batch distribution of baseline DDP, where
        every worker pulls its batch from wherever Dask placed the chunks.
        """
        if total_bytes == 0:
            return
        dt = self.cost.contended_fetch_time(total_bytes, messages_per_rank)
        self._sync_all(dt, total_bytes, category)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Simulated wall time of the slowest rank."""
        return max(c.now for c in self.clocks)

    def elapsed_breakdown(self) -> dict[str, float]:
        """Mean per-rank compute/comm split (the Fig. 7/9 bar segments)."""
        return {
            "compute": float(self.compute_time.mean()),
            "comm": float(self.comm_time.mean()),
            "wall": self.now,
        }
