"""Deprecated package: the communicator now lives in :mod:`repro.runtime`.

``SimCommunicator`` is a thin shim over ``ProcessGroup.sim``; import
:class:`~repro.runtime.process_group.ProcessGroup` for new code.
"""

from repro.distributed.comm import CommStats, SimCommunicator
from repro.runtime import ProcessGroup

__all__ = ["SimCommunicator", "CommStats", "ProcessGroup"]
