"""In-process multi-rank communicator with simulated time and byte accounting."""

from repro.distributed.comm import CommStats, SimCommunicator

__all__ = ["SimCommunicator", "CommStats"]
