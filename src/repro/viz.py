"""Terminal plots for the paper's figures (no matplotlib dependency).

Renders line charts and grouped bar charts as Unicode text so the
experiment CLI can show Figure 2/5/6/7-shaped output directly in a
terminal or CI log.
"""

from __future__ import annotations

from typing import Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line mini chart of a series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    return "".join(_BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in vals)


def line_plot(series: dict[str, Sequence[tuple[float, float]]], *,
              width: int = 64, height: int = 16, title: str = "",
              ylabel: str = "", xlabel: str = "") -> str:
    """Multi-series ASCII line plot from ``{label: [(x, y), ...]}``."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox#@%&"
    for (label, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - i / (height - 1) * y_span if height > 1 else y_hi
        prefix = f"{y_val:10.3g} |" if i % 4 == 0 or i == height - 1 else \
            " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "-" * width)
    lines.append(f"{'':11}{x_lo:<10.4g}{'':{max(width - 20, 1)}}{x_hi:>10.4g}")
    if xlabel:
        lines.append(f"{'':11}{xlabel:^{width}}")
    legend = "   ".join(f"{m} {label}" for (label, _), m
                        in zip(series.items(), markers))
    lines.append(f"{'':11}legend: {legend}")
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)


def bar_chart(groups: dict[str, dict[str, float]], *, width: int = 40,
              title: str = "", unit: str = "") -> str:
    """Horizontal grouped bars from ``{group: {segment: value}}``.

    Used for the Figure 7/9 style stacked compute/communication bars.
    """
    if not groups:
        raise ValueError("nothing to plot")
    totals = {g: sum(segs.values()) for g, segs in groups.items()}
    peak = max(totals.values()) or 1.0
    seg_chars = {}
    palette = "█▓▒░"
    lines = [title] if title else []
    for group, segs in groups.items():
        bar = ""
        for name, value in segs.items():
            if name not in seg_chars:
                seg_chars[name] = palette[len(seg_chars) % len(palette)]
            bar += seg_chars[name] * max(int(value / peak * width), 0)
        lines.append(f"{group:>12} |{bar:<{width}}| "
                     f"{totals[group]:.1f}{unit}")
    legend = "  ".join(f"{c}={n}" for n, c in seg_chars.items())
    lines.append(f"{'':>12}  {legend}")
    return "\n".join(lines)
