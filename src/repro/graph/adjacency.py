"""Building weighted adjacency matrices from sensor locations.

The paper (§2.1) encodes spatial structure by loading sensor IDs with
latitude/longitude and applying "a simple transformation ... to generate a
weighted matrix".  The standard transformation — used by DCRNN and PGT for
the PeMS family — is a thresholded Gaussian kernel over pairwise road-network
distances:

    W[i, j] = exp(-dist(i, j)^2 / sigma^2)   if >= threshold else 0

We reproduce that construction, plus a generator of synthetic sensor
networks shaped like freeway corridors (PeMS sensors lie along highways, so
their graphs are locally linear with occasional interchange shortcuts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ShapeError
from repro.utils.seeding import new_rng


@dataclass
class SensorGraph:
    """A static sensor graph: coordinates plus weighted adjacency.

    Attributes
    ----------
    coords:
        ``[num_nodes, 2]`` planar sensor positions (km).
    weights:
        CSR weighted adjacency (directed; ``weights[i, j]`` is the strength
        of the edge from node *i* to node *j*).
    """

    coords: np.ndarray
    weights: sp.csr_matrix
    name: str = "sensor-graph"

    def __post_init__(self):
        n = self.coords.shape[0]
        if self.weights.shape != (n, n):
            raise ShapeError(
                f"adjacency {self.weights.shape} does not match {n} sensors")

    @property
    def num_nodes(self) -> int:
        return self.coords.shape[0]

    @property
    def num_edges(self) -> int:
        return int(self.weights.nnz)

    def density(self) -> float:
        n = self.num_nodes
        return self.num_edges / float(n * n)


def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix ``[n, n]`` from planar coordinates."""
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diff * diff).sum(-1))


def gaussian_kernel_adjacency(dist: np.ndarray, threshold: float = 0.1,
                              sigma: float | None = None) -> sp.csr_matrix:
    """Thresholded Gaussian kernel weights from a distance matrix.

    ``sigma`` defaults to the standard deviation of the distances, matching
    the DCRNN reference's ``gen_adj_mx``.  Entries below ``threshold`` are
    dropped, which keeps the support sparse for large sensor networks.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ShapeError(f"distance matrix must be square, got {dist.shape}")
    if sigma is None:
        sigma = float(dist.std())
    if sigma <= 0:
        raise ValueError("sigma must be positive (distances are degenerate)")
    w = np.exp(-(dist / sigma) ** 2)
    w[w < threshold] = 0.0
    np.fill_diagonal(w, 1.0)
    return sp.csr_matrix(w)


def random_sensor_network(num_nodes: int, *, seed: int | str = 0,
                          num_corridors: int | None = None,
                          spacing_km: float = 0.8,
                          interchange_prob: float = 0.05,
                          threshold: float = 0.1) -> SensorGraph:
    """Generate a synthetic freeway-style sensor network.

    Sensors are laid out along ``num_corridors`` gently-curving corridors
    with roughly uniform spacing; corridors cross occasionally, creating
    interchange shortcuts.  The adjacency is the thresholded Gaussian kernel
    of the resulting positions — the same transform real PeMS pipelines use.

    The construction is fully deterministic in ``seed``.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 sensors")
    rng = new_rng("graph", "sensors", num_nodes, seed)
    if num_corridors is None:
        num_corridors = max(1, int(round(np.sqrt(num_nodes) / 3)))
    per = np.full(num_corridors, num_nodes // num_corridors)
    per[: num_nodes % num_corridors] += 1

    coords_list = []
    for c in range(num_corridors):
        n_c = int(per[c])
        origin = rng.uniform(0, spacing_km * num_nodes / num_corridors, size=2)
        heading = rng.uniform(0, 2 * np.pi)
        # Random-walk heading produces gently curving freeways.
        turns = rng.normal(0, 0.08, size=n_c).cumsum() + heading
        steps = np.stack([np.cos(turns), np.sin(turns)], axis=1) * spacing_km
        pts = origin + np.vstack([np.zeros(2), steps[:-1]]).cumsum(axis=0)
        coords_list.append(pts)
    coords = np.concatenate(coords_list, axis=0)[:num_nodes]

    dist = pairwise_distances(coords)
    # Local kernel bandwidth: typical nearest-neighbour spacing, so each
    # sensor connects to a handful of upstream/downstream neighbours.
    near = np.partition(dist + np.eye(num_nodes) * 1e9, 1, axis=1)[:, 1]
    sigma = float(np.median(near)) * 2.0
    w = np.exp(-(dist / sigma) ** 2)
    w[w < threshold] = 0.0

    # Sparse random interchanges between corridors keep the graph connected
    # even when corridors never physically cross.
    n_extra = max(1, int(interchange_prob * num_nodes))
    src = rng.integers(0, num_nodes, size=n_extra)
    dst = rng.integers(0, num_nodes, size=n_extra)
    w[src, dst] = np.maximum(w[src, dst], threshold)
    w[dst, src] = np.maximum(w[dst, src], threshold)
    np.fill_diagonal(w, 1.0)
    return SensorGraph(coords=coords, weights=sp.csr_matrix(w),
                       name=f"synthetic-{num_nodes}")
