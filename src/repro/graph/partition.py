"""Graph partitioning (the alternative the paper argues *against*).

PGT-I deliberately avoids partitioning (it "can negatively impact accuracy"
— §4); DynaGraph and Mallick et al. rely on it.  We provide a simple
multilevel-style partitioner (recursive spectral bisection with a greedy
balance fix-up) so the partitioning-vs-index-batching ablation promised in
the paper's future-work section can be run.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ShapeError


def _fiedler_split(w: sp.csr_matrix, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split ``nodes`` in half along the Fiedler vector of the subgraph."""
    sub = w[nodes][:, nodes]
    sym = ((sub + sub.T) * 0.5).tocsr()
    deg = np.asarray(sym.sum(axis=1)).ravel()
    lap = sp.diags(deg) - sym
    n = len(nodes)
    if n <= 2:
        half = n // 2
        return nodes[:half], nodes[half:]
    try:
        vals, vecs = sp.linalg.eigsh(lap.asfptype(), k=2, sigma=-1e-3, which="LM")
        fiedler = vecs[:, np.argsort(vals)[1]]
    except Exception:
        # Degenerate subgraph: fall back to index order (still balanced).
        fiedler = np.arange(n, dtype=float)
    order = np.argsort(fiedler)
    half = n // 2
    return nodes[order[:half]], nodes[order[half:]]


def partition_graph(weights: sp.spmatrix, num_parts: int) -> np.ndarray:
    """Assign each node to one of ``num_parts`` balanced parts.

    Returns an ``[num_nodes]`` integer array of part ids.  ``num_parts``
    must be a power of two (recursive bisection), which covers the 2/4/8/...
    worker counts used in distributed training.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts & (num_parts - 1):
        raise ValueError(f"num_parts must be a power of two, got {num_parts}")
    w = weights.tocsr()
    if w.shape[0] != w.shape[1]:
        raise ShapeError(f"adjacency must be square, got {w.shape}")
    n = w.shape[0]
    if num_parts > n:
        raise ValueError(f"cannot split {n} nodes into {num_parts} parts")

    assignment = np.zeros(n, dtype=np.int64)
    groups: list[tuple[np.ndarray, int, int]] = [(np.arange(n), 0, num_parts)]
    while groups:
        nodes, base, parts = groups.pop()
        if parts == 1:
            assignment[nodes] = base
            continue
        left, right = _fiedler_split(w, nodes)
        groups.append((left, base, parts // 2))
        groups.append((right, base + parts // 2, parts // 2))
    return assignment


def edge_cut(weights: sp.spmatrix, assignment: np.ndarray) -> int:
    """Number of directed edges whose endpoints live in different parts."""
    coo = weights.tocoo()
    return int(np.count_nonzero(assignment[coo.row] != assignment[coo.col]))
