"""Sensor-graph construction, normalization and diffusion supports."""

from repro.graph.adjacency import (
    SensorGraph,
    gaussian_kernel_adjacency,
    random_sensor_network,
)
from repro.graph.supports import (
    chebyshev_supports,
    dual_random_walk_supports,
    random_walk_matrix,
    scaled_laplacian,
    symmetric_normalized_adjacency,
)
from repro.graph.partition import partition_graph

__all__ = [
    "SensorGraph",
    "gaussian_kernel_adjacency",
    "random_sensor_network",
    "random_walk_matrix",
    "dual_random_walk_supports",
    "symmetric_normalized_adjacency",
    "scaled_laplacian",
    "chebyshev_supports",
    "partition_graph",
]
