"""Graph supports: the normalized operators ST-GNN layers multiply by.

DCRNN's diffusion convolution uses the forward and backward random-walk
transition matrices (Li et al. 2018); TGCN/A3T-GCN use the symmetric
normalized adjacency with self-loops; Chebyshev variants use the scaled
Laplacian.  All functions return CSR matrices and treat them as constants
(no gradient flows through supports).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ShapeError


def _check_square(w: sp.spmatrix) -> sp.csr_matrix:
    if w.shape[0] != w.shape[1]:
        raise ShapeError(f"adjacency must be square, got {w.shape}")
    return w.tocsr()


def random_walk_matrix(weights: sp.spmatrix) -> sp.csr_matrix:
    """Row-normalized transition matrix ``D^-1 W`` (out-degree normalised)."""
    w = _check_square(weights)
    deg = np.asarray(w.sum(axis=1)).ravel()
    inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    return (sp.diags(inv) @ w).tocsr()


def dual_random_walk_supports(weights: sp.spmatrix) -> list[sp.csr_matrix]:
    """DCRNN's two diffusion directions: ``D_O^-1 W`` and ``D_I^-1 W^T``."""
    w = _check_square(weights)
    return [random_walk_matrix(w), random_walk_matrix(w.T.tocsr())]


def symmetric_normalized_adjacency(weights: sp.spmatrix,
                                   add_self_loops: bool = True) -> sp.csr_matrix:
    """GCN normalisation ``D^-1/2 (W + I) D^-1/2``."""
    w = _check_square(weights)
    if add_self_loops:
        w = (w + sp.eye(w.shape[0], format="csr")).tocsr()
    deg = np.asarray(w.sum(axis=1)).ravel()
    inv_sqrt = np.divide(1.0, np.sqrt(deg), out=np.zeros_like(deg), where=deg > 0)
    d = sp.diags(inv_sqrt)
    return (d @ w @ d).tocsr()


def scaled_laplacian(weights: sp.spmatrix, lambda_max: float | None = None) -> sp.csr_matrix:
    """Chebyshev-ready Laplacian ``2 L / lambda_max - I`` (symmetrised)."""
    w = _check_square(weights)
    w = ((w + w.T) * 0.5).tocsr()
    deg = np.asarray(w.sum(axis=1)).ravel()
    inv_sqrt = np.divide(1.0, np.sqrt(deg), out=np.zeros_like(deg), where=deg > 0)
    d = sp.diags(inv_sqrt)
    lap = (sp.eye(w.shape[0]) - d @ w @ d).tocsr()
    if lambda_max is None:
        try:
            lambda_max = float(sp.linalg.eigsh(lap, k=1, which="LM",
                                               return_eigenvectors=False)[0])
        except Exception:  # small or ill-conditioned graphs: safe upper bound
            lambda_max = 2.0
    return (lap * (2.0 / lambda_max) - sp.eye(w.shape[0])).tocsr()


def chebyshev_supports(weights: sp.spmatrix, k: int) -> list[sp.csr_matrix]:
    """First ``k`` Chebyshev polynomials ``T_0..T_{k-1}`` of the scaled Laplacian."""
    if k < 1:
        raise ValueError("k must be >= 1")
    lap = scaled_laplacian(weights)
    supports: list[sp.csr_matrix] = [sp.eye(lap.shape[0], format="csr")]
    if k == 1:
        return supports
    supports.append(lap)
    for _ in range(2, k):
        supports.append((2.0 * lap @ supports[-1] - supports[-2]).tocsr())
    return supports
