"""Distributed-data-parallel training over the simulated communicator.

Implements the three data strategies the paper evaluates:

- ``BASELINE_DDP`` (§5): the standard-preprocessed, Dask-distributed
  baseline.  Windowed data is spread over workers, so every step each
  worker pulls its (mostly remote) batch over the fabric before computing.
- ``DIST_INDEX`` (§4.2, distributed-index-batching): every worker keeps a
  full local index-batched copy; global shuffling is communication-free
  and the only traffic is the gradient all-reduce.
- ``GENERALIZED_INDEX`` (§5.4): raw data partitioned across workers with
  batch-level shuffling; batches are contiguous in the local partition so
  data traffic shrinks by roughly ``2 * horizon`` versus baseline DDP.

Execution model: ranks run in-process.  Each global step, every rank's
microbatch gradient is computed on the shared model replica (identical to
per-rank replicas because DDP keeps replicas bit-identical), gradients are
averaged through :meth:`SimCommunicator.allreduce` (charging ring-allreduce
time and bytes), and the optimizer applies the averaged gradient.  A
verification mode with true per-rank replicas backs the equivalence test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.batching.protocols import ensure_batch_source
from repro.nn.module import assert_inference_mode
from repro.batching.samplers import (
    BatchShuffleSampler,
    GlobalShuffleSampler,
    LocalShuffleSampler,
    Sampler,
)
from repro.distributed.comm import SimCommunicator
from repro.models.base import STModel
from repro.optim.losses import l1_loss
from repro.optim.optimizers import Optimizer, clip_grad_norm
from repro.preprocessing.scaler import StandardScaler
from repro.training.metrics import masked_abs_error
from repro.utils.errors import CommunicatorError


class DDPStrategy(enum.Enum):
    """Data-distribution strategy (see module docstring)."""

    BASELINE_DDP = "baseline-ddp"
    DIST_INDEX = "distributed-index-batching"
    GENERALIZED_INDEX = "generalized-distributed-index-batching"


_SHUFFLE_SAMPLERS: dict[str, type[Sampler]] = {
    "global": GlobalShuffleSampler,
    "local": LocalShuffleSampler,
    "batch": BatchShuffleSampler,
}


@dataclass
class DDPEpochRecord:
    """Per-epoch outcomes of distributed training."""

    epoch: int
    train_loss: float
    val_mae: float
    sim_seconds: float       # simulated wall time of the epoch
    comm_seconds: float      # mean per-rank communication share
    compute_seconds: float   # mean per-rank compute share


class DDPTrainer:
    """DDP training of one model over ``world_size`` simulated ranks."""

    def __init__(self, model: STModel, optimizer: Optimizer, comm: SimCommunicator,
                 train_loader, val_loader=None, *,
                 strategy: DDPStrategy = DDPStrategy.DIST_INDEX,
                 shuffle: str | None = None,
                 scaler: StandardScaler | None = None,
                 loss_fn: Callable = l1_loss, clip_norm: float = 5.0,
                 step_time_fn: Callable[[int], float] | None = None,
                 batch_bytes_fn: Callable[[int], int] | None = None,
                 seed: int | str = 0):
        """
        Parameters
        ----------
        step_time_fn: maps microbatch size -> simulated compute seconds
            (defaults to the model's analytic flop model on an A100).
        batch_bytes_fn: maps microbatch size -> bytes a worker must pull
            for that batch under ``BASELINE_DDP`` (windowed bytes) or
            ``GENERALIZED_INDEX`` (raw-range bytes).  Defaults derive from
            the loader's array shapes.
        shuffle: 'global' | 'local' | 'batch'; defaults to the paper's
            choice per strategy (global for DDP/dist-index, batch for
            generalized).
        """
        self.model = model
        self.optimizer = optimizer
        self.comm = comm
        self.world_size = comm.world_size
        self.train_loader = ensure_batch_source(train_loader, "train_loader")
        self.val_loader = (None if val_loader is None
                           else ensure_batch_source(val_loader, "val_loader"))
        self.strategy = strategy
        self.scaler = scaler
        self.loss_fn = loss_fn
        self.clip_norm = clip_norm
        self.seed = seed
        if shuffle is None:
            shuffle = ("batch" if strategy is DDPStrategy.GENERALIZED_INDEX
                       else "global")
        if shuffle not in _SHUFFLE_SAMPLERS:
            raise ValueError(f"shuffle must be one of {sorted(_SHUFFLE_SAMPLERS)}")
        self.shuffle = shuffle
        self.sampler = _SHUFFLE_SAMPLERS[shuffle](
            train_loader.num_snapshots, train_loader.batch_size,
            world_size=self.world_size, seed=seed)
        self.step_time_fn = step_time_fn or self._default_step_time
        self.batch_bytes_fn = batch_bytes_fn or self._default_batch_bytes
        self.history: list[DDPEpochRecord] = []
        self._param_bytes = sum(
            p.nbytes for p in optimizer.params if p.requires_grad)

    # ------------------------------------------------------------------
    def _default_step_time(self, batch: int) -> float:
        from repro.hardware.specs import A100_FP32_FLOPS
        return self.model.flops_per_snapshot() * batch / (A100_FP32_FLOPS * 0.25)

    def _default_batch_bytes(self, batch: int) -> int:
        x, y = self.train_loader.batch_at(np.arange(min(
            self.train_loader.batch_size, self.train_loader.num_snapshots)))
        per_snapshot = (x.nbytes + y.nbytes) / len(x)
        if self.strategy is DDPStrategy.GENERALIZED_INDEX:
            # A contiguous batch of B starts covers B + 2h - 1 raw entries:
            # ~2*horizon less volume than the windowed batch.
            h = x.shape[1]
            per_snapshot /= (2.0 * h)
        return int(per_snapshot * batch)

    def _charge_data_comm(self, batch: int) -> None:
        """Per-step data traffic for the active strategy."""
        if self.strategy is DDPStrategy.DIST_INDEX or self.world_size == 1:
            return
        remote_fraction = 1.0 - 1.0 / self.world_size
        per_rank = int(self.batch_bytes_fn(batch) * remote_fraction)
        self.comm.fetch_all(per_rank * self.world_size,
                            messages_per_rank=1, category="data")

    # ------------------------------------------------------------------
    def _microbatch_grads(self, sel: np.ndarray) -> tuple[np.ndarray, float]:
        """Gradient vector and loss for one rank's microbatch."""
        x, y = self.train_loader.batch_at(sel)
        pred = self.model(Tensor(x))
        loss = self.loss_fn(pred, y[..., :1].astype(np.float32))
        self.model.zero_grad()
        loss.backward()
        if self.clip_norm:
            clip_grad_norm(self.optimizer.params, self.clip_norm)
        flat = np.concatenate([
            (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
            for p in self.optimizer.params])
        return flat, float(loss.item())

    def _apply_flat_grads(self, flat: np.ndarray) -> None:
        offset = 0
        for p in self.optimizer.params:
            size = p.data.size
            p.grad = flat[offset: offset + size].reshape(p.data.shape).copy()
            offset += size
        self.optimizer.step()

    def train_epoch(self, epoch: int) -> float:
        """One synchronized epoch across all ranks; returns mean loss."""
        self.model.train()
        plan = self.sampler.epoch_plan(epoch)
        steps = min(len(b) for b in plan)
        if steps == 0:
            raise CommunicatorError(
                "epoch plan has a rank with zero batches; reduce world size "
                "or batch size")
        losses = []
        for step in range(steps):
            per_rank_grads = []
            for rank in range(self.world_size):
                sel = plan[rank][step]
                self._charge_rank_compute(rank, len(sel))
                flat, loss = self._microbatch_grads(sel)
                per_rank_grads.append(flat)
                losses.append(loss)
            self._charge_data_comm(len(plan[0][step]))
            reduced = self.comm.allreduce(per_rank_grads, op="mean",
                                          category="gradient")
            self._apply_flat_grads(reduced[0])
        return float(np.mean(losses))

    def _charge_rank_compute(self, rank: int, batch: int) -> None:
        self.comm.advance_compute(rank, self.step_time_fn(batch))

    # ------------------------------------------------------------------
    def evaluate(self, loader=None, max_batches: int | None = None) -> float:
        """Distributed validation: ranks evaluate partitions, all-reduce.

        Mirrors the paper's note that validation accuracy uses AllReduce.
        Each rank contributes its ``(abs-error sum, unmasked count)`` pair
        and the sums are reduced, so the result equals the masked MAE over
        the concatenated snapshots regardless of how partition sizes or
        missing-data fractions vary across ranks (empty ranks contribute
        nothing instead of biasing the mean toward zero).
        """
        loader = loader or self.val_loader
        if loader is None:
            raise ValueError("no evaluation loader provided")
        self.model.eval()
        n = loader.num_snapshots
        bounds = np.linspace(0, n, self.world_size + 1).astype(int)
        partials = []
        with no_grad():
            assert_inference_mode(self.model)
            for rank in range(self.world_size):
                sel = np.arange(bounds[rank], bounds[rank + 1])
                if len(sel) == 0:
                    partials.append(np.array([0.0, 0.0]))
                    continue
                if max_batches is not None:
                    sel = sel[: max_batches * loader.batch_size]
                x, y = loader.batch_at(sel)
                pred = self.model(Tensor(x)).data[..., 0]
                truth = y[..., 0]
                if self.scaler is not None:
                    pred = self.scaler.inverse_transform_channel(pred, 0)
                    truth = self.scaler.inverse_transform_channel(truth, 0)
                self._charge_rank_compute(rank, len(sel))
                abs_sum, count = masked_abs_error(pred, truth)
                partials.append(np.array([abs_sum, float(count)]))
        reduced = self.comm.allreduce(partials, op="sum", category="metric")
        total_abs, total_count = reduced[0]
        if total_count == 0:
            return float("nan")
        return float(total_abs / total_count)

    # ------------------------------------------------------------------
    def fit(self, epochs: int, *, scheduler=None,
            eval_max_batches: int | None = None,
            verbose: bool = False) -> list[DDPEpochRecord]:
        for epoch in range(epochs):
            t0 = self.comm.now
            c0 = self.comm.elapsed_breakdown()
            loss = self.train_epoch(epoch)
            val = (self.evaluate(max_batches=eval_max_batches)
                   if self.val_loader is not None else float("nan"))
            c1 = self.comm.elapsed_breakdown()
            self.history.append(DDPEpochRecord(
                epoch=epoch, train_loss=loss, val_mae=val,
                sim_seconds=self.comm.now - t0,
                comm_seconds=c1["comm"] - c0["comm"],
                compute_seconds=c1["compute"] - c0["compute"]))
            if verbose:
                print(f"epoch {epoch:3d}  loss {loss:.4f}  "
                      f"val MAE {val:.4f}  "
                      f"({self.history[-1].sim_seconds * 1e3:.3f} sim-ms "
                      f"x{self.world_size} ranks)")
            if scheduler is not None:
                scheduler.step()
        return self.history

    def best_val_mae(self) -> float:
        vals = [r.val_mae for r in self.history if np.isfinite(r.val_mae)]
        return min(vals) if vals else float("nan")
