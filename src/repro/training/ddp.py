"""Distributed-data-parallel training over the :mod:`repro.runtime` layer.

Implements the three data strategies the paper evaluates:

- ``BASELINE_DDP`` (§5): the standard-preprocessed, Dask-distributed
  baseline.  Windowed data is spread over workers, so every step each
  worker pulls its (mostly remote) batch over the fabric before computing.
- ``DIST_INDEX`` (§4.2, distributed-index-batching): every worker keeps a
  full local index-batched copy; global shuffling is communication-free
  and the only traffic is the gradient all-reduce.
- ``GENERALIZED_INDEX`` (§5.4): raw data partitioned across workers with
  batch-level shuffling; batches are contiguous in the local partition so
  data traffic shrinks by roughly ``2 * horizon`` versus baseline DDP.

Execution model: ranks run through a
:class:`~repro.runtime.process_group.ProcessGroup`.  Each global step,
every rank computes its microbatch gradient, gradients are packed into
:class:`~repro.runtime.buckets.GradientBucketer` buffers and averaged
with a few large all-reduces (charging ring-allreduce time and bytes on
a simulated transport), and the optimizer applies the averaged gradient.

By default all ranks share one model replica and run sequentially —
identical to per-rank replicas because DDP keeps replicas bit-identical.
Passing ``model_factory`` builds one replica per rank whose parameter
*data* aliases the shared model (so the single optimizer updates all of
them) while gradients stay rank-private; that makes rank steps
independent, and on :meth:`ProcessGroup.threads` they execute on real
threads concurrently — NumPy releases the GIL, so multi-rank steps get
true wall-clock parallelism.  Both modes produce bitwise-identical
training curves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.batching.protocols import clone_batch_source, ensure_batch_source
from repro.nn.module import assert_inference_mode
from repro.batching.samplers import (
    BatchShuffleSampler,
    GlobalShuffleSampler,
    LocalShuffleSampler,
    Sampler,
)
from repro.models.base import STModel
from repro.optim.losses import l1_loss
from repro.optim.optimizers import Optimizer, clip_grad_norm
from repro.preprocessing.scaler import StandardScaler
from repro.runtime.buckets import GradientBucketer
from repro.runtime.process_group import ProcessGroup, as_process_group
from repro.training.metrics import masked_abs_error
from repro.training.step import average_and_apply
from repro.utils.errors import CommunicatorError


class DDPStrategy(enum.Enum):
    """Data-distribution strategy (see module docstring)."""

    BASELINE_DDP = "baseline-ddp"
    DIST_INDEX = "distributed-index-batching"
    GENERALIZED_INDEX = "generalized-distributed-index-batching"


_SHUFFLE_SAMPLERS: dict[str, type[Sampler]] = {
    "global": GlobalShuffleSampler,
    "local": LocalShuffleSampler,
    "batch": BatchShuffleSampler,
}


@dataclass
class DDPEpochRecord:
    """Per-epoch outcomes of distributed training."""

    epoch: int
    train_loss: float
    val_mae: float
    sim_seconds: float       # simulated wall time of the epoch
    comm_seconds: float      # mean per-rank communication share
    compute_seconds: float   # mean per-rank compute share


class DDPTrainer:
    """DDP training of one model over ``world_size`` ranks."""

    def __init__(self, model: STModel, optimizer: Optimizer,
                 comm: ProcessGroup, train_loader, val_loader=None, *,
                 strategy: DDPStrategy = DDPStrategy.DIST_INDEX,
                 shuffle: str | None = None,
                 scaler: StandardScaler | None = None,
                 loss_fn: Callable = l1_loss, clip_norm: float = 5.0,
                 step_time_fn: Callable[[int], float] | None = None,
                 batch_bytes_fn: Callable[[int], int] | None = None,
                 seed: int | str = 0,
                 model_factory: Callable[[], STModel] | None = None,
                 bucket_cap_mb: float = 25.0,
                 checkpoint_every: int | None = None,
                 checkpoint_path: str | None = None):
        """
        Parameters
        ----------
        comm: a :class:`ProcessGroup` (``ProcessGroup.sim(world)`` /
            ``ProcessGroup.threads(world)``), a bare transport, or the
            deprecated ``SimCommunicator``.
        step_time_fn: maps microbatch size -> simulated compute seconds
            (defaults to the model's analytic flop model on an A100).
        batch_bytes_fn: maps microbatch size -> bytes a worker must pull
            for that batch under ``BASELINE_DDP`` (windowed bytes) or
            ``GENERALIZED_INDEX`` (raw-range bytes).  Defaults derive from
            the loader's array shapes.
        shuffle: 'global' | 'local' | 'batch'; defaults to the paper's
            choice per strategy (global for DDP/dist-index, batch for
            generalized).
        model_factory: builds identically-initialised models (same seed).
            When given, each rank gets its own replica (parameter data
            aliased to ``model``) and private loader buffers, so rank
            steps may run concurrently on a parallel transport.
        bucket_cap_mb: gradient-bucket capacity; small models fuse into
            one bucket (a single all-reduce per step).
        checkpoint_every: write a resumable training checkpoint to
            ``checkpoint_path`` every this many global steps (``None`` =
            never).  A run killed between checkpoints resumes from the
            last one and replays the missing steps bitwise (see
            :meth:`resume`).
        checkpoint_path: where periodic checkpoints land (atomic
            overwrite of one ``.npz``); required when
            ``checkpoint_every`` is set.
        """
        self.model = model
        self.optimizer = optimizer
        self.comm = as_process_group(comm)
        self.world_size = self.comm.world_size
        self.train_loader = ensure_batch_source(train_loader, "train_loader")
        self.val_loader = (None if val_loader is None
                           else ensure_batch_source(val_loader, "val_loader"))
        self.strategy = strategy
        self.scaler = scaler
        self.loss_fn = loss_fn
        self.clip_norm = clip_norm
        self.seed = seed
        if shuffle is None:
            shuffle = ("batch" if strategy is DDPStrategy.GENERALIZED_INDEX
                       else "global")
        if shuffle not in _SHUFFLE_SAMPLERS:
            raise ValueError(f"shuffle must be one of {sorted(_SHUFFLE_SAMPLERS)}")
        self.shuffle = shuffle
        self.sampler = _SHUFFLE_SAMPLERS[shuffle](
            train_loader.num_snapshots, train_loader.batch_size,
            world_size=self.world_size, seed=seed)
        self.step_time_fn = step_time_fn or self._default_step_time
        self.batch_bytes_fn = batch_bytes_fn or self._default_batch_bytes
        self.history: list[DDPEpochRecord] = []
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(f"checkpoint_every must be >= 1, "
                                 f"got {checkpoint_every}")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every needs a checkpoint_path")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.global_step = 0
        self._resume_cursor: tuple[int, int, list[float]] | None = None
        # Fault-injecting transports expose begin_step; everything else
        # simply has no hook to notify.
        self._begin_step = getattr(self.comm.transport, "begin_step", None)
        self._param_bytes = sum(
            p.nbytes for p in optimizer.params if p.requires_grad)

        self.bucketer = GradientBucketer(optimizer.params,
                                         bucket_cap_mb=bucket_cap_mb)
        self._grad_bufs = [self.bucketer.make_buffers()
                           for _ in range(self.world_size)]
        # Process-isolated fabrics adopt each rank's bucket buffers (e.g.
        # re-backing them on shared memory) so gradients written inside a
        # rank child land where the driver reduces from.
        attach = getattr(self.comm.transport, "attach_rank_buffers", None)
        if attach is not None:
            self._grad_bufs = [list(attach(rank, bufs))
                               for rank, bufs in enumerate(self._grad_bufs)]
        self._replicas: list[STModel] | None = None
        self._rank_params: list[list] = [optimizer.params] * self.world_size
        self._rank_loaders = [self.train_loader] * self.world_size
        # Fabrics whose ranks own separate address spaces may always run
        # steps concurrently: the fork snapshot is the per-rank replica,
        # so not even a shared model can race.
        self._parallel = (self.world_size > 1 and getattr(
            self.comm.transport, "isolated_ranks", False))
        if model_factory is not None and self.world_size > 1:
            self._build_replicas(model_factory)

    # ------------------------------------------------------------------
    def _build_replicas(self, model_factory: Callable[[], STModel]) -> None:
        """Per-rank replicas whose parameter data aliases the shared model.

        Aliasing means the one optimizer step updates every replica at
        once (the moral equivalent of DDP's guarantee that replicas never
        diverge) while each replica accumulates gradients privately — the
        property that makes rank steps safe to run concurrently.
        """
        shared = self.model.parameters()
        replicas = [self.model]
        rank_params = [self.optimizer.params]
        for rank in range(1, self.world_size):
            rep = model_factory()
            rep_params = rep.parameters()
            if len(rep_params) != len(shared):
                raise CommunicatorError(
                    "model_factory built a different architecture "
                    f"({len(rep_params)} vs {len(shared)} parameters)")
            by_id = {}
            for sp, rp in zip(shared, rep_params):
                if not np.array_equal(sp.data, rp.data):
                    raise CommunicatorError(
                        f"rank {rank} replica initialised differently at "
                        f"{rp.name or 'a parameter'}; model_factory must "
                        f"be deterministic")
                rp.data = sp.data          # alias: optimizer updates all
                by_id[id(sp)] = rp
            try:
                rank_params.append([by_id[id(p)]
                                    for p in self.optimizer.params])
            except KeyError:
                raise CommunicatorError(
                    "optimizer params must come from the shared model "
                    "when using model_factory") from None
            replicas.append(rep)
        self._replicas = replicas
        self._rank_params = rank_params
        self._rank_loaders = [self.train_loader] + [
            clone_batch_source(self.train_loader)
            for _ in range(1, self.world_size)]
        self._parallel = True

    # ------------------------------------------------------------------
    def _default_step_time(self, batch: int) -> float:
        from repro.hardware.specs import A100_FP32_FLOPS
        return self.model.flops_per_snapshot() * batch / (A100_FP32_FLOPS * 0.25)

    def _default_batch_bytes(self, batch: int) -> int:
        x, y = self.train_loader.batch_at(np.arange(min(
            self.train_loader.batch_size, self.train_loader.num_snapshots)))
        per_snapshot = (x.nbytes + y.nbytes) / len(x)
        if self.strategy is DDPStrategy.GENERALIZED_INDEX:
            # A contiguous batch of B starts covers B + 2h - 1 raw entries:
            # ~2*horizon less volume than the windowed batch.
            h = x.shape[1]
            per_snapshot /= (2.0 * h)
        return int(per_snapshot * batch)

    def _charge_data_comm(self, batch: int) -> None:
        """Per-step data traffic for the active strategy."""
        if self.strategy is DDPStrategy.DIST_INDEX or self.world_size == 1:
            return
        remote_fraction = 1.0 - 1.0 / self.world_size
        per_rank = int(self.batch_bytes_fn(batch) * remote_fraction)
        self.comm.fetch_all(per_rank * self.world_size,
                            messages_per_rank=1, category="data")

    # ------------------------------------------------------------------
    def _microbatch_grads(self, rank: int, sel: np.ndarray) -> float:
        """One rank's microbatch gradient, packed into its bucket buffers.

        Returns the scalar loss; the gradient leaves through
        ``self._grad_bufs[rank]``.
        """
        model = self._replicas[rank] if self._replicas else self.model
        loader = self._rank_loaders[rank]
        params = self._rank_params[rank]
        x, y = loader.batch_at(sel)
        pred = model(Tensor(x))
        loss = self.loss_fn(pred, y[..., :1].astype(np.float32))
        model.zero_grad()
        loss.backward()
        if self.clip_norm:
            clip_grad_norm(params, self.clip_norm)
        self.bucketer.pack(params, self._grad_bufs[rank])
        return float(loss.item())

    def train_epoch(self, epoch: int) -> float:
        """One synchronized epoch across all ranks; returns mean loss.

        A trainer resumed mid-epoch (see :meth:`resume`) skips the steps
        the checkpoint already applied and folds their recorded losses
        into the epoch mean, so the resumed curve is bitwise identical
        to an uninterrupted run.
        """
        for m in self._replicas or [self.model]:
            m.train()
        plan = self.sampler.epoch_plan(epoch)
        steps = min(len(b) for b in plan)
        if steps == 0:
            raise CommunicatorError(
                "epoch plan has a rank with zero batches; reduce world size "
                "or batch size")
        start_step, losses = 0, []
        if self._resume_cursor is not None and self._resume_cursor[0] == epoch:
            _, start_step, losses = self._resume_cursor
            self._resume_cursor = None
        for step in range(start_step, steps):
            if self._begin_step is not None:
                self._begin_step(self.global_step)

            def rank_step(rank: int) -> float:
                sel = plan[rank][step]
                self._charge_rank_compute(rank, len(sel))
                return self._microbatch_grads(rank, sel)

            losses.extend(self.comm.run_ranks(rank_step,
                                              parallel=self._parallel))
            self._charge_data_comm(len(plan[0][step]))
            average_and_apply(self.comm, self.bucketer, self._grad_bufs,
                              [self.optimizer], category="gradient")
            self.global_step += 1
            if (self.checkpoint_every
                    and self.global_step % self.checkpoint_every == 0):
                self.save_training_checkpoint(
                    epoch=epoch, step=step + 1, losses=losses,
                    epoch_steps=steps)
        return float(np.mean(losses))

    def _charge_rank_compute(self, rank: int, batch: int) -> None:
        self.comm.advance_compute(rank, self.step_time_fn(batch))

    # ------------------------------------------------------------------
    # Checkpoint / resume (the fault-tolerance seam)
    # ------------------------------------------------------------------
    def save_training_checkpoint(self, path: str | None = None, *,
                                 epoch: int | None = None, step: int = 0,
                                 losses: list[float] | None = None,
                                 epoch_steps: int | None = None) -> str:
        """Atomically write a *resumable* checkpoint: model + optimizer
        slots plus the training cursor (epoch, step-in-epoch, the epoch's
        per-rank losses so far) and completed-epoch history.

        ``step`` is the number of steps of ``epoch`` already applied;
        everything needed to replay the rest of the run bitwise is in the
        archive — the samplers are pure functions of (seed, epoch), so no
        RNG state needs to survive.  ``epoch_steps`` (when known) records
        the epoch's total step count, which lets the elastic resharder
        distinguish an epoch-boundary cursor from a genuinely mid-epoch
        one.  The per-rank ``batch_size`` is recorded too: together with
        ``world_size`` it defines the *global batch*, the invariant
        :func:`repro.elastic.reshard_checkpoint` preserves when it remaps
        the cursor to a different world size.
        """
        from repro.training.checkpoint import save_checkpoint

        path = path or self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured or given")
        state = {
            "epoch": int(len(self.history) if epoch is None else epoch),
            "step": int(step),
            "global_step": int(self.global_step),
            "epoch_losses": [float(x) for x in (losses or [])],
            "world_size": int(self.world_size),
            "batch_size": int(self.train_loader.batch_size),
            "epoch_steps": None if epoch_steps is None else int(epoch_steps),
            "strategy": self.strategy.value,
            "shuffle": self.shuffle,
            "seed": self.seed,
            "history": [vars(r).copy() for r in self.history],
        }
        scaler = (self.scaler
                  if self.scaler is not None and self.scaler.fitted else None)
        save_checkpoint(path, self.model, self.optimizer,
                        epoch=state["epoch"],
                        extra={"training_state": state}, scaler=scaler)
        return path

    def resume(self, path: str | None = None) -> dict:
        """Restore a :meth:`save_training_checkpoint` archive in place.

        Validates that this trainer describes the *same run*: a
        different ``world_size``, ``strategy``, ``shuffle`` or ``seed``
        changes every gradient average or the data order itself, so a
        bitwise-identical continuation is impossible and the mismatch
        fails loudly here.  The *transport* may differ — ``sim`` and
        ``thread`` ranks train identical bits (pinned by the runtime
        suite), so a run checkpointed under one resumes under the other.

        Charges the parameter re-broadcast every real recovery performs
        (rank 0 restores, peers pull) under the ``"recovery"`` traffic
        category, then positions the trainer so the next :meth:`fit`
        continues mid-epoch.  Returns the checkpoint metadata.
        """
        from repro.training.checkpoint import load_checkpoint, \
            read_checkpoint_meta

        path = path or self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured or given")
        meta = read_checkpoint_meta(path)
        state = (meta.get("extra") or {}).get("training_state")
        if state is None:
            raise ValueError(
                f"{path} is not a resumable training checkpoint (no "
                f"training cursor); write it with save_training_checkpoint")
        if int(state["world_size"]) != self.world_size:
            raise ValueError(
                f"checkpoint was written by a world of "
                f"{state['world_size']} ranks but this trainer has "
                f"{self.world_size}: gradient averaging over a different "
                f"world changes every update, so a bitwise continuation "
                f"is impossible — rebuild the trainer with world_size="
                f"{state['world_size']}, or re-partition the checkpoint "
                f"to this world with repro.elastic.reshard_checkpoint "
                f"(preserves the global batch; 1e-6 continuation where "
                f"the shuffle allows)")
        for field_name, mine in (("strategy", self.strategy.value),
                                 ("shuffle", self.shuffle),
                                 ("seed", self.seed)):
            if state[field_name] != mine:
                raise ValueError(
                    f"checkpoint {field_name}={state[field_name]!r} does "
                    f"not match this trainer's {mine!r}; the data order "
                    f"diverges, so resuming cannot reproduce the run")
        ckpt_batch = state.get("batch_size")
        if (ckpt_batch is not None
                and int(ckpt_batch) != int(self.train_loader.batch_size)):
            raise ValueError(
                f"checkpoint cursor was cut at a per-rank batch of "
                f"{ckpt_batch} but this trainer's loader batches "
                f"{self.train_loader.batch_size}: step boundaries (and "
                f"the global batch of {int(ckpt_batch) * self.world_size}) "
                f"would shift, so the continuation cannot reproduce the "
                f"run — rebuild the loaders with batch_size={ckpt_batch}")
        load_checkpoint(path, self.model, self.optimizer)
        self.history = [DDPEpochRecord(**r) for r in state["history"]]
        self.global_step = int(state["global_step"])
        self._resume_cursor = (int(state["epoch"]), int(state["step"]),
                               [float(x) for x in state["epoch_losses"]])
        # Real recovery re-broadcasts the restored parameters from the
        # restoring rank to every peer before training continues.
        self.comm.transport.collective("broadcast", self._param_bytes,
                                       "recovery")
        return meta

    # ------------------------------------------------------------------
    def evaluate(self, loader=None, max_batches: int | None = None) -> float:
        """Distributed validation: ranks evaluate partitions, all-reduce.

        Mirrors the paper's note that validation accuracy uses AllReduce.
        Each rank contributes its ``(abs-error sum, unmasked count)`` pair
        and the sums are reduced, so the result equals the masked MAE over
        the concatenated snapshots regardless of how partition sizes or
        missing-data fractions vary across ranks (empty ranks contribute
        nothing instead of biasing the mean toward zero).
        """
        loader = loader or self.val_loader
        if loader is None:
            raise ValueError("no evaluation loader provided")
        for m in self._replicas or [self.model]:
            m.eval()
        n = loader.num_snapshots
        bounds = np.linspace(0, n, self.world_size + 1).astype(int)
        partials = []
        with no_grad():
            assert_inference_mode(self.model)
            for rank in range(self.world_size):
                sel = np.arange(bounds[rank], bounds[rank + 1])
                if len(sel) == 0:
                    partials.append(np.array([0.0, 0.0]))
                    continue
                if max_batches is not None:
                    sel = sel[: max_batches * loader.batch_size]
                x, y = loader.batch_at(sel)
                pred = self.model(Tensor(x)).data[..., 0]
                truth = y[..., 0]
                if self.scaler is not None:
                    pred = self.scaler.inverse_transform_channel(pred, 0)
                    truth = self.scaler.inverse_transform_channel(truth, 0)
                self._charge_rank_compute(rank, len(sel))
                abs_sum, count = masked_abs_error(pred, truth)
                partials.append(np.array([abs_sum, float(count)]))
        reduced = self.comm.allreduce(partials, op="sum", category="metric")
        total_abs, total_count = reduced[0]
        if total_count == 0:
            return float("nan")
        return float(total_abs / total_count)

    # ------------------------------------------------------------------
    def fit(self, epochs: int, *, scheduler=None,
            eval_max_batches: int | None = None,
            verbose: bool = False) -> list[DDPEpochRecord]:
        start_epoch = (self._resume_cursor[0]
                       if self._resume_cursor is not None else 0)
        for epoch in range(start_epoch, epochs):
            t0 = self.comm.now
            c0 = self.comm.elapsed_breakdown()
            loss = self.train_epoch(epoch)
            val = (self.evaluate(max_batches=eval_max_batches)
                   if self.val_loader is not None else float("nan"))
            c1 = self.comm.elapsed_breakdown()
            self.history.append(DDPEpochRecord(
                epoch=epoch, train_loss=loss, val_mae=val,
                sim_seconds=self.comm.now - t0,
                comm_seconds=c1["comm"] - c0["comm"],
                compute_seconds=c1["compute"] - c0["compute"]))
            if verbose:
                print(f"epoch {epoch:3d}  loss {loss:.4f}  "
                      f"val MAE {val:.4f}  "
                      f"({self.history[-1].sim_seconds * 1e3:.3f} sim-ms "
                      f"x{self.world_size} ranks)")
            if scheduler is not None:
                scheduler.step()
        return self.history

    def best_val_mae(self) -> float:
        vals = [r.val_mae for r in self.history if np.isfinite(r.val_mae)]
        return min(vals) if vals else float("nan")
