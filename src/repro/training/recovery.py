"""Crash-and-resume orchestration: keep training through rank failures.

Production DDP jobs survive hardware faults by checkpointing
periodically and relaunching from the last checkpoint when a rank dies.
:func:`train_with_recovery` is that relaunch loop, in process: build a
fresh trainer, resume it from the checkpoint (if one exists yet),
train, and on :class:`~repro.runtime.faults.RankFailure` start over —
carrying the set of already-fired fault events across restarts so an
injected crash does not refire on the replayed steps.

Because every component is deterministic — samplers are pure functions
of (seed, epoch), optimizer state is checkpointed exactly, and
collectives reduce in rank order — the recovered run's loss curve is
**bitwise identical** to an uninterrupted run; the chaos tier pins this
for all three data strategies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.runtime.faults import FaultyTransport, RankFailure
from repro.training.ddp import DDPEpochRecord, DDPTrainer


def _reshard_to_trainer(path: str, trainer: DDPTrainer, *,
                        verbose: bool = False) -> None:
    """Re-partition ``path`` to the trainer's world if they disagree."""
    from repro.elastic.reshard import reshard_checkpoint
    from repro.training.checkpoint import read_checkpoint_meta

    state = (read_checkpoint_meta(path).get("extra")
             or {}).get("training_state")
    if state is None or int(state["world_size"]) == trainer.world_size:
        return
    report = reshard_checkpoint(path, trainer.world_size)
    if verbose:
        print(f"recovery: {report.summary()}")


@dataclass
class RecoveryReport:
    """What the relaunch loop observed across a run's lifetime."""

    restarts: int = 0
    failures: list[dict] = field(default_factory=list)
    attempt_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Transport time summed over every attempt (aborted + final) —
        simulated seconds on a sim fabric, wall seconds on threads."""
        return float(sum(self.attempt_seconds))


def train_with_recovery(make_trainer: Callable[[], DDPTrainer],
                        epochs: int, *, max_restarts: int = 8,
                        elastic: bool = False,
                        verbose: bool = False
                        ) -> tuple[DDPTrainer, list[DDPEpochRecord],
                                   RecoveryReport]:
    """Run ``make_trainer().fit(epochs)`` to completion through crashes.

    Parameters
    ----------
    make_trainer:
        builds a *fresh* trainer — new model, optimizer and process
        group — configured with ``checkpoint_every``/``checkpoint_path``.
        Determinism contract: every call must produce identically
        initialised state (same seeds), or resumed curves cannot match.
    epochs:
        the fit budget, same meaning as :meth:`DDPTrainer.fit`.
    max_restarts:
        give up after this many relaunches — an MTBF so low that
        training cannot outrun it.  Exceeding the cap raises a loud
        ``RuntimeError`` that lists every fault event fired across the
        attempts (chained to the last :class:`RankFailure`), so a run
        killed by its own fault plan is diagnosable from the traceback
        alone.
    elastic:
        allow relaunches to come back with a *different world size* — a
        node lost for good, or capacity granted back mid-run.  When the
        fresh trainer's world differs from the checkpoint's, the
        checkpoint is re-partitioned in place through
        :func:`repro.elastic.reshard_checkpoint` (global batch
        preserved) before resuming; ``make_trainer`` must size its
        loaders so ``world x batch`` stays constant across calls.
        Without the flag a shrunken relaunch keeps failing loudly, as
        before.

    Returns ``(trainer, history, report)``: the surviving trainer, the
    full epoch history (identical to an uninterrupted run's), and the
    restart accounting.
    """
    fired: set[int] = set()
    report = RecoveryReport()
    while True:
        trainer = make_trainer()
        transport = trainer.comm.transport
        if isinstance(transport, FaultyTransport):
            transport.fired |= fired
        path = trainer.checkpoint_path
        if path and os.path.exists(path):
            if elastic:
                _reshard_to_trainer(path, trainer, verbose=verbose)
            trainer.resume(path)
        try:
            history = trainer.fit(epochs)
            report.attempt_seconds.append(trainer.comm.now)
            return trainer, history, report
        except RankFailure as failure:
            if isinstance(transport, FaultyTransport):
                fired |= transport.fired
            # Abandoned attempts must not leak fabric resources (shm
            # pools, listener sockets) across what may be many restarts.
            shutdown = getattr(transport, "shutdown", None)
            if shutdown is not None:
                shutdown()
            report.restarts += 1
            report.failures.append({"rank": failure.rank,
                                    "step": failure.step})
            report.attempt_seconds.append(trainer.comm.now)
            if verbose:
                print(f"recovery: {failure}; restart "
                      f"{report.restarts}/{max_restarts}")
            if report.restarts > max_restarts:
                events = "none recorded"
                if isinstance(transport, FaultyTransport):
                    events = ("; ".join(
                        transport.plan.events[i].encode()
                        for i in sorted(fired)) or "none recorded")
                raise RuntimeError(
                    f"training gave up after {report.restarts} restarts "
                    f"(max_restarts={max_restarts}); last failure: "
                    f"{failure}; fired fault events: {events}"
                ) from failure
