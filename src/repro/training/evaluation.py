"""Horizon-wise forecast evaluation.

Traffic papers (DCRNN, and everything in the PGT-I lineage) report errors
at 15/30/60-minute horizons separately — the further ahead, the harder.
This module computes MAE / RMSE / MAPE per forecast step in original
units, over any batch loader.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.models.base import STModel
from repro.preprocessing.scaler import StandardScaler
from repro.training.metrics import mape, masked_mae, rmse


@dataclass
class HorizonMetrics:
    """Per-step metrics: arrays of length ``horizon``."""

    mae: np.ndarray
    rmse: np.ndarray
    mape: np.ndarray
    interval_minutes: int | None = None

    def at_minutes(self, minutes: int) -> dict[str, float]:
        """Metrics at a lead time in minutes (needs ``interval_minutes``)."""
        if not self.interval_minutes:
            raise ValueError("interval_minutes unknown for this evaluation")
        step = minutes // self.interval_minutes - 1
        if not 0 <= step < len(self.mae):
            raise ValueError(f"{minutes} min is outside the {len(self.mae)}"
                             f"-step horizon")
        return {"mae": float(self.mae[step]), "rmse": float(self.rmse[step]),
                "mape": float(self.mape[step])}

    def degradation(self) -> float:
        """MAE ratio of the last step to the first (>= ~1 for sane models)."""
        return float(self.mae[-1] / max(self.mae[0], 1e-12))


def evaluate_by_horizon(model: STModel, loader, scaler: StandardScaler | None
                        = None, *, interval_minutes: int | None = None,
                        max_batches: int | None = None) -> HorizonMetrics:
    """Evaluate a model step-by-step over a loader's snapshots."""
    model.eval()
    preds, truths = [], []
    with no_grad():
        for i, (x, y) in enumerate(loader.batches()):
            if max_batches is not None and i >= max_batches:
                break
            p = model(Tensor(x)).data[..., 0]
            t = y[..., 0]
            if scaler is not None:
                p = scaler.inverse_transform_channel(p, 0)
                t = scaler.inverse_transform_channel(t, 0)  # fresh array
            else:
                # y is (a view of) the loader's reusable batch buffer and
                # gets overwritten next iteration; keep an owned copy.
                t = t.copy()
            preds.append(p)
            truths.append(t)
    if not preds:
        raise ValueError("loader produced no batches")
    pred = np.concatenate(preds, axis=0)   # [n, horizon, nodes]
    truth = np.concatenate(truths, axis=0)
    horizon = pred.shape[1]
    maes = np.array([masked_mae(pred[:, t], truth[:, t])
                     for t in range(horizon)])
    rmses = np.array([rmse(pred[:, t], truth[:, t]) for t in range(horizon)])
    mapes = np.array([mape(pred[:, t], truth[:, t]) for t in range(horizon)])
    return HorizonMetrics(mae=maes, rmse=rmses, mape=mapes,
                          interval_minutes=interval_minutes)
