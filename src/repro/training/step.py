"""Shared per-step update logic for every trainer.

The "average grads → clip → optimizer apply" tail of a training step was
copy-pasted (with small drift) across :class:`~repro.training.trainer.
Trainer`, :class:`~repro.training.ddp.DDPTrainer` and :class:`~repro.
training.replicated.ReplicatedDDPTrainer`.  It lives here once now, with
the exact historical operation order preserved:

- :func:`clip_and_step` — ``clip_grad_norm`` (if enabled) then
  ``optimizer.step()``, the single-device tail.
- :func:`average_and_apply` — bucketed mean all-reduce of per-rank
  gradients followed by per-optimizer unpack + step, the distributed
  tail shared by the shared-replica and per-rank-replica DDP trainers.

Op order is seed-identical to the pre-refactor code: gradients are
reduced elementwise over ranks in rank order, written back into the
optimizer's parameter gradients, and applied by the unchanged in-place
optimizers — a fixed-seed curve test pins this.
"""

from __future__ import annotations

import numpy as np

from repro.optim.optimizers import Optimizer, clip_grad_norm
from repro.runtime.buckets import GradientBucketer
from repro.runtime.process_group import ProcessGroup


def clip_and_step(optimizer: Optimizer, clip_norm: float | None) -> None:
    """Clip the global gradient norm (when enabled), then step.

    The shared tail of a local update; a falsy ``clip_norm`` (``None`` or
    ``0``) skips clipping, matching each trainer's historical default.
    """
    if clip_norm:
        clip_grad_norm(optimizer.params, clip_norm)
    optimizer.step()


def average_and_apply(pg: ProcessGroup, bucketer: GradientBucketer,
                      rank_buffers: list[list[np.ndarray]],
                      optimizers: list[Optimizer], *,
                      clip_norm: float | None = None,
                      category: str = "gradient") -> None:
    """Mean-all-reduce packed gradients, then apply on every optimizer.

    ``rank_buffers[r]`` is rank ``r``'s packed bucket set (see
    :meth:`GradientBucketer.pack`).  One all-reduce is issued per bucket;
    ``optimizers`` receive the reduced gradients in rank order — one
    optimizer (shared-replica DDP) consumes rank 0's copy, per-rank
    optimizers (replicated DDP) consume their own.
    """
    if len(rank_buffers) != pg.world_size:
        raise ValueError(f"expected bucket buffers for {pg.world_size} "
                         f"ranks, got {len(rank_buffers)}")
    reduced = [pg.allreduce([bufs[b] for bufs in rank_buffers],
                            op="mean", category=category)
               for b in range(bucketer.num_buckets)]
    for rank, opt in enumerate(optimizers):
        bucketer.unpack([reduced[b][rank]
                         for b in range(bucketer.num_buckets)], opt.params)
        clip_and_step(opt, clip_norm)
