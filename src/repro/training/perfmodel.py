"""Analytic performance model for full-scale (Polaris) training runs.

Real training in this repository runs on scaled-down synthetic data; the
paper's runtime results, however, are for the full PeMS family on A100
nodes.  This module extrapolates: analytic flop counts for each model
architecture, an efficiency-calibrated compute-time model, the
latency/bandwidth communication models from :mod:`repro.cluster`, and the
mechanistic memory simulators from :mod:`repro.preprocessing.memory_model`.

Calibration
-----------
Five constants are calibrated against the paper's own single-GPU
measurements (documented in EXPERIMENTS.md) and then *held fixed* across
every distributed prediction, so all scaling behaviour is out-of-sample:

- ``EFFICIENCY_PGT`` — fraction of A100 FP32 peak that PGT/PyG kernels
  achieve on large graphs (fit to the PeMS GPU-index runtime, Table 4).
- ``EFFICIENCY_PGT_SMALL`` / ``EFFICIENCY_PYTORCH_DCRNN`` — the same for
  mid-size graphs and for the loop-heavy reference DCRNN (fit to Table 2).
- ``PAGEABLE_H2D_BW`` — effective host-to-device bandwidth for per-batch
  pageable copies (fit to the index vs GPU-index runtime gap, Table 4).
- ``DASK_DISTRIBUTION_BW`` / ``DASK_FABRIC_BW0``/``DASK_FABRIC_EXP`` — the
  Dask data plane's effective serialisation-bound throughput (fit to the
  paper's DDP preprocessing plateau and the 2.16x/11.78x endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.costmodel import CommCostModel, PFSModel
from repro.cluster.topology import ClusterTopology
from repro.datasets.catalog import DatasetSpec
from repro.hardware.specs import (
    A100_FP32_FLOPS,
    DDR4_BW,
    PCIE_GEN4_BW,
    POLARIS_NODE,
)
from repro.preprocessing.windows import num_snapshots, split_bounds
from repro.runtime import ProcessGroup
from repro.utils.seeding import new_rng

# --- calibration constants (see module docstring / EXPERIMENTS.md) ---------
EFFICIENCY_PGT = 0.37
EFFICIENCY_PGT_SMALL = 0.25
EFFICIENCY_PYTORCH_DCRNN = 0.075
PAGEABLE_H2D_BW = 1.84e9
DASK_DISTRIBUTION_BW = 1.5e9
DASK_FABRIC_BW0 = 1.6e9
DASK_FABRIC_EXP = 0.27
PFS_EFFECTIVE_BW = 0.5e9
AVG_SENSOR_DEGREE = 8
ACTIVATION_FACTOR = 2.0  # fp32 units kept per (batch, step, node, hidden)
# Fixed per-epoch cost of the Dask-DDP control plane (epoch barriers,
# worker synchronisation, validation collectives) — the "fixed costs
# [that] constitute a larger proportion of the total runtime" behind the
# paper's 64/128-GPU scaling knee (§5.3.1).  Applies to every multi-worker
# strategy; single-GPU runs have no DDP layer.
EPOCH_FIXED_OVERHEAD = 3.7
# Fixed cost of one failure-recovery cycle: scheduler relaunch, worker
# re-spawn and NCCL re-initialisation before any state moves (order of a
# PBS requeue on Polaris).
RESTART_FIXED_OVERHEAD = 30.0
# fp32 units persisted per trainable parameter in a training checkpoint:
# the weights plus both Adam moment slots.
CHECKPOINT_STATE_FACTOR = 3


# ---------------------------------------------------------------------------
# Analytic model flop/parameter counts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModelPerf:
    """Cost descriptor of one architecture at full scale."""

    name: str
    snapshot_flops: float        # fwd+bwd flops for one (x, y) snapshot
    param_count: int
    hidden_dim: int
    efficiency: float = EFFICIENCY_PGT
    trainable_param_count: int | None = None  # frozen backbones reduce less

    @property
    def param_bytes(self) -> int:
        """fp32 gradient bytes the DDP all-reduce moves per step."""
        count = (self.param_count if self.trainable_param_count is None
                 else self.trainable_param_count)
        return count * 4


def dcgru_cell_flops(nodes: int, in_dim: int, hidden: int, *, k_hops: int = 2,
                     n_supports: int = 2,
                     avg_degree: float = AVG_SENSOR_DEGREE) -> float:
    """Forward flops of one DCGRU cell application (batch of one)."""
    cat = in_dim + hidden
    n_mat = 1 + n_supports * k_hops
    mix = 2.0 * nodes * n_mat * cat * (2 * hidden)      # gate conv
    mix += 2.0 * nodes * n_mat * cat * hidden           # candidate conv
    prop = 2.0 * (nodes * avg_degree) * cat * k_hops * n_supports * 2  # both convs
    return mix + prop


def dcgru_cell_params(in_dim: int, hidden: int, *, k_hops: int = 2,
                      n_supports: int = 2) -> int:
    cat = in_dim + hidden
    n_mat = 1 + n_supports * k_hops
    return (n_mat * cat * 2 * hidden + 2 * hidden
            + n_mat * cat * hidden + hidden)


def pgt_dcrnn_perf(nodes: int, horizon: int, features: int,
                   hidden: int = 64, *, efficiency: float = EFFICIENCY_PGT
                   ) -> ModelPerf:
    """PGT-DCRNN: one stepwise DCGRU layer + projection."""
    cell = dcgru_cell_flops(nodes, features, hidden)
    proj = 2.0 * nodes * hidden
    params = dcgru_cell_params(features, hidden) + hidden + 1
    return ModelPerf("pgt-dcrnn", 3.0 * horizon * (cell + proj), params,
                     hidden, efficiency)


def dcrnn_perf(nodes: int, horizon: int, features: int, hidden: int = 64,
               num_layers: int = 2, *,
               efficiency: float = EFFICIENCY_PYTORCH_DCRNN) -> ModelPerf:
    """Full encoder-decoder DCRNN (the PyTorch reference baseline)."""
    enc = dcgru_cell_flops(nodes, features, hidden)
    enc += (num_layers - 1) * dcgru_cell_flops(nodes, hidden, hidden)
    dec = dcgru_cell_flops(nodes, 1, hidden)
    dec += (num_layers - 1) * dcgru_cell_flops(nodes, hidden, hidden)
    proj = 2.0 * nodes * hidden
    params = (dcgru_cell_params(features, hidden)
              + (num_layers - 1) * dcgru_cell_params(hidden, hidden)
              + dcgru_cell_params(1, hidden)
              + (num_layers - 1) * dcgru_cell_params(hidden, hidden)
              + hidden + 1)
    return ModelPerf("dcrnn", 3.0 * horizon * (enc + dec + proj), params,
                     hidden, efficiency)


def stllm_perf(nodes: int, horizon: int, features: int, dim: int = 768,
               num_blocks: int = 12, unfrozen_blocks: int = 2, *,
               efficiency: float = EFFICIENCY_PGT) -> ModelPerf:
    """ST-LLM: node tokens through a GPT-2-sized partially-frozen backbone.

    Defaults approximate GPT-2 base (768-dim, 12 blocks).  Only the
    embeddings, head and ``unfrozen_blocks`` receive gradients, so the DDP
    all-reduce moves a small fraction of the 100M+ backbone parameters —
    which is why ST-LLM scales near-linearly in the paper's Figure 10.
    """
    per_block = (4 * 2 * nodes * dim * dim          # qkv+out projections
                 + 2 * 2 * nodes * nodes * dim      # attention scores+mix
                 + 2 * 2 * nodes * dim * 4 * dim)   # MLP
    proj = 2 * nodes * horizon * features * dim + 2 * nodes * dim * horizon
    block_params = 12 * dim * dim                   # qkv/out + 8d^2 MLP
    head_params = (nodes * dim + horizon * features * dim + dim * horizon)
    params = num_blocks * block_params + head_params
    trainable = min(unfrozen_blocks, num_blocks) * block_params + head_params
    return ModelPerf("st-llm", 3.0 * (num_blocks * per_block + proj),
                     params, dim, efficiency, trainable_param_count=trainable)


# ---------------------------------------------------------------------------
# Per-run simulation
# ---------------------------------------------------------------------------
@dataclass
class EpochBreakdown:
    """Simulated seconds per epoch, by component."""

    compute: float = 0.0
    h2d: float = 0.0
    data_comm: float = 0.0
    grad_comm: float = 0.0
    validation: float = 0.0
    framework: float = 0.0
    recovery: float = 0.0   # expected checkpoint + failure-recovery share

    @property
    def total(self) -> float:
        return (self.compute + self.h2d + self.data_comm + self.grad_comm
                + self.validation + self.framework + self.recovery)

    @property
    def comm(self) -> float:
        return self.data_comm + self.grad_comm


@dataclass
class RunSim:
    """A full simulated training run."""

    strategy: str
    world_size: int
    preprocess_seconds: float
    epoch: EpochBreakdown
    epochs: int

    @property
    def total_seconds(self) -> float:
        return self.preprocess_seconds + self.epochs * self.epoch.total

    @property
    def training_seconds(self) -> float:
        return self.epochs * self.epoch.total


STRATEGIES = ("standard", "index", "gpu-index", "baseline-ddp", "dist-index",
              "generalized-index")


class TrainingPerfModel:
    """Simulated runtimes for one (dataset, model, batch size) workload."""

    def __init__(self, spec: DatasetSpec, model: ModelPerf, batch_size: int,
                 *, dtype=np.float64, train_dtype=np.float32,
                 node=POLARIS_NODE, seed: int | str = 0):
        self.spec = spec
        self.model = model
        self.batch_size = int(batch_size)
        self.dtype = np.dtype(dtype)
        self.train_dtype = np.dtype(train_dtype)
        self.node = node
        self.seed = seed
        self.pfs = PFSModel(read_bw=PFS_EFFECTIVE_BW)
        n_snap = num_snapshots(spec.num_entries, spec.horizon)
        self.train_end, self.val_end = split_bounds(n_snap)
        self.n_snapshots = n_snap

    # -- shapes ----------------------------------------------------------
    @property
    def train_snapshots(self) -> int:
        return self.train_end

    @property
    def val_snapshots(self) -> int:
        return self.val_end - self.train_end

    def steps_per_epoch(self, world: int = 1) -> int:
        return max(self.train_snapshots // (self.batch_size * world), 1)

    def _windowed_batch_bytes(self, batch: int) -> int:
        """fp32 (x, y) batch as moved to the device each step."""
        return int(2 * batch * self.spec.horizon * self.spec.num_nodes
                   * self.spec.train_features * self.train_dtype.itemsize)

    def _windowed_train_bytes(self) -> int:
        """fp64 windowed training set (what baseline DDP spreads via Dask)."""
        return int(2 * self.train_snapshots * self.spec.horizon
                   * self.spec.num_nodes * self.spec.train_features
                   * self.dtype.itemsize)

    def _raw_range_bytes(self, batch: int) -> int:
        """Raw entries covering a contiguous batch of windows (index form)."""
        covered = batch + 2 * self.spec.horizon - 1
        return int(covered * self.spec.num_nodes * self.spec.train_features
                   * self.dtype.itemsize)

    # -- component times --------------------------------------------------
    def step_compute_seconds(self, batch: int | None = None) -> float:
        b = self.batch_size if batch is None else batch
        return (self.model.snapshot_flops * b
                / (A100_FP32_FLOPS * self.model.efficiency))

    def batch_h2d_seconds(self, batch: int | None = None) -> float:
        b = self.batch_size if batch is None else batch
        return self._windowed_batch_bytes(b) / PAGEABLE_H2D_BW

    def validation_seconds(self, world: int = 1) -> float:
        """Forward-only pass over the validation split, split across ranks."""
        per_rank = -(-self.val_snapshots // world)
        fwd = self.model.snapshot_flops / 3.0
        return per_rank * fwd / (A100_FP32_FLOPS * self.model.efficiency)

    def dask_fabric_bw(self, world: int) -> float:
        nodes = ClusterTopology(world, self.node).num_nodes
        return DASK_FABRIC_BW0 * nodes ** DASK_FABRIC_EXP

    # -- preprocessing ----------------------------------------------------
    def preprocess_seconds(self, strategy: str, world: int = 1,
                           *, seed: int | str | None = None) -> float:
        """Simulated preprocessing time for a strategy.

        Index strategies are I/O-bound (the paper's 11-40 s swings come
        from shared-PFS jitter); baseline DDP is bound by Dask's
        serialisation-rate distribution of the full windowed dataset.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        seed = self.seed if seed is None else seed
        raw = self.spec.raw_nbytes(self.dtype)
        aug = self.spec.augmented_nbytes(self.dtype)
        windowed = standard_windowed_bytes(self.spec, self.dtype)
        io = self.pfs.read_time(raw, seed=(seed, strategy, world),
                                parallel_readers=world)
        if strategy == "standard":
            return io + 3.0 * 2 * windowed / DDR4_BW
        if strategy == "index":
            return io + 3.0 * aug / DDR4_BW
        if strategy == "gpu-index":
            return io + raw / PCIE_GEN4_BW + 3.0 * aug / self.node.gpu_mem_bw
        if strategy == "dist-index":
            # Every worker reads and preprocesses locally (GPU-index by
            # default); time does not scale with the number of GPUs.
            return io + raw / PCIE_GEN4_BW + 3.0 * aug / self.node.gpu_mem_bw
        if strategy in ("baseline-ddp", "generalized-index"):
            # Baseline DDP scatters both windowed stacks (x and y);
            # generalized-index only the single augmented copy.
            volume = 2 * windowed if strategy == "baseline-ddp" else aug
            nodes = ClusterTopology(world, self.node).num_nodes
            swa = 2.0 * volume / (DDR4_BW * max(nodes, 1))
            distribute = volume / DASK_DISTRIBUTION_BW + 0.2 * world
            return io + swa + distribute
        raise AssertionError(strategy)

    # -- epochs -----------------------------------------------------------
    def epoch_process_group(self, strategy: str, world: int = 1,
                            *, include_validation: bool = True
                            ) -> ProcessGroup:
        """Charge one epoch's communication through a :class:`ProcessGroup`.

        Returns the group after accounting every collective and data-plane
        transfer a ``world``-rank epoch issues, split by traffic category
        exactly as the DDP trainers record it:

        - ``"gradient"`` — the per-step parameter all-reduce,
        - ``"metric"`` — the validation all-reduce,
        - ``"data"`` — on-demand batch fetches (strategy-dependent).

        ``pg.stats`` is the public per-category time/byte breakdown the
        scaling figures (7 and 9) consume; :meth:`epoch_breakdown` folds
        the same numbers into its coarse compute/comm split.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        steps = self.steps_per_epoch(world)
        topo = ClusterTopology(world, self.node)
        cost = CommCostModel(topo)
        pg = ProcessGroup.sim(world, cost)
        if world == 1:
            return pg
        grad_bytes = self.model.param_bytes
        pg.charge("gradient", steps * grad_bytes,
                  steps * cost.allreduce_time(grad_bytes), ops=steps)
        if include_validation:
            pg.charge("metric", 8, cost.allreduce_time(8))
        remote = 1.0 - 1.0 / world
        if strategy == "baseline-ddp":
            volume = self._windowed_train_bytes() * remote
            pg.charge("data", int(volume),
                      volume / self.dask_fabric_bw(world), ops=steps)
        elif strategy == "generalized-index":
            per_step = self._raw_range_bytes(self.batch_size) * world * remote
            pg.charge("data", int(steps * per_step),
                      steps * per_step / self.dask_fabric_bw(world),
                      ops=steps)
        return pg

    # -- fault tolerance --------------------------------------------------
    def checkpoint_bytes(self) -> int:
        """Bytes one training checkpoint persists (weights + Adam slots)."""
        return CHECKPOINT_STATE_FACTOR * self.model.param_bytes

    def checkpoint_seconds(self) -> float:
        """Writing one checkpoint to the shared PFS."""
        return self.checkpoint_bytes() / PFS_EFFECTIVE_BW

    def recovery_seconds(self, world: int = 1) -> float:
        """One failure-recovery cycle, *excluding* lost work: relaunch,
        checkpoint read-back, and the parameter re-broadcast from the
        restoring rank to every peer (the traffic ``DDPTrainer.resume``
        charges under the ``"recovery"`` category)."""
        cost = CommCostModel(ClusterTopology(world, self.node))
        return (RESTART_FIXED_OVERHEAD
                + self.checkpoint_seconds()
                + cost.broadcast_time(self.model.param_bytes))

    def reshard_seconds(self, world_from: int, world_to: int) -> float:
        """One live world-size change (elastic scaling): relaunch at the
        new world, rewrite the checkpoint cursor (a full-state persist to
        the PFS), read the archive back, and re-broadcast parameters
        across the *new* world — the cost :mod:`repro.elastic` makes the
        capacity planner weigh against the time saved at the new size."""
        if world_from < 1 or world_to < 1:
            raise ValueError(f"world sizes must be >= 1, got "
                             f"{world_from} -> {world_to}")
        cost = CommCostModel(ClusterTopology(world_to, self.node))
        return (RESTART_FIXED_OVERHEAD
                + self.checkpoint_seconds()                      # rewrite
                + self.checkpoint_bytes() / PFS_EFFECTIVE_BW     # read back
                + cost.broadcast_time(self.model.param_bytes))

    def sweep_worlds(self, strategy: str, worlds, epochs: int = 30, *,
                     include_validation: bool = True) -> list[RunSim]:
        """One :meth:`run` simulation per candidate world size, in the
        given order — the capacity planner's search space."""
        return [self.run(strategy, int(w), epochs,
                         include_validation=include_validation)
                for w in worlds]

    def recovery_overhead(self, strategy: str, world: int = 1, *,
                          mtbf_hours: float,
                          checkpoint_every_steps: int) -> dict:
        """Expected per-epoch fault-tolerance cost under a failure rate.

        The what-if analysis behind Figure-7/9-style MTBF sweeps: given a
        machine mean-time-between-failures and a checkpoint cadence, an
        epoch pays (a) the checkpoint writes themselves, and (b) per
        expected failure, one :meth:`recovery_seconds` cycle plus the
        replay of on average half a checkpoint interval of lost steps.
        Returns the pieces and the overhead as a fraction of the fault-
        free epoch.
        """
        if mtbf_hours <= 0:
            raise ValueError(f"mtbf_hours must be positive, got {mtbf_hours}")
        if checkpoint_every_steps < 1:
            raise ValueError(f"checkpoint_every_steps must be >= 1, "
                             f"got {checkpoint_every_steps}")
        base = self.epoch_breakdown(strategy, world,
                                    include_validation=False).total
        steps = self.steps_per_epoch(world)
        step_seconds = base / steps
        ckpt = (steps / checkpoint_every_steps) * self.checkpoint_seconds()
        failures = (base + ckpt) / (mtbf_hours * 3600.0)
        lost_work = 0.5 * checkpoint_every_steps * step_seconds
        per_failure = self.recovery_seconds(world) + lost_work
        recovery = ckpt + failures * per_failure
        return {
            "checkpoint_seconds_per_epoch": ckpt,
            "expected_failures_per_epoch": failures,
            "seconds_per_failure": per_failure,
            "lost_work_seconds_per_failure": lost_work,
            "recovery_seconds_per_epoch": recovery,
            "overhead_fraction": recovery / base,
        }

    def epoch_breakdown(self, strategy: str, world: int = 1,
                        *, include_validation: bool = True,
                        prefetch: bool = False,
                        mtbf_hours: float | None = None,
                        checkpoint_every_steps: int | None = None
                        ) -> EpochBreakdown:
        """Per-epoch simulated time for each strategy at ``world`` GPUs.

        ``prefetch`` models the paper's future-work idea (§7): overlap the
        next batch's data fetch with the current batch's compute, so only
        the fetch time *exceeding* compute remains exposed.

        Passing ``mtbf_hours`` (with a ``checkpoint_every_steps``
        cadence, default one checkpoint per epoch) adds the expected
        fault-tolerance share to the breakdown's ``recovery`` component;
        without it the breakdown is fault-free, bitwise unchanged from
        before recovery pricing existed.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        steps = self.steps_per_epoch(world)
        br = EpochBreakdown()
        br.compute = steps * self.step_compute_seconds()
        if include_validation:
            br.validation = self.validation_seconds(world)

        cpu_resident = strategy in ("standard", "index", "baseline-ddp",
                                    "generalized-index")
        if cpu_resident:
            br.h2d = steps * self.batch_h2d_seconds()

        if world > 1:
            br.framework = EPOCH_FIXED_OVERHEAD
            t = self.epoch_process_group(
                strategy, world,
                include_validation=include_validation).stats.time_by_category
            br.grad_comm = t.get("gradient", 0.0) + t.get("metric", 0.0)
            br.data_comm = t.get("data", 0.0)
            if prefetch and br.data_comm > 0:
                # Fetch of batch k+1 hides behind compute of batch k; only
                # the excess per-step fetch time stays on the critical path.
                overlappable = br.compute + br.h2d
                br.data_comm = max(0.0, br.data_comm - overlappable)
        if mtbf_hours is not None:
            cadence = (checkpoint_every_steps
                       if checkpoint_every_steps is not None
                       else self.steps_per_epoch(world))
            br.recovery = self.recovery_overhead(
                strategy, world, mtbf_hours=mtbf_hours,
                checkpoint_every_steps=cadence,
            )["recovery_seconds_per_epoch"]
        return br

    def run(self, strategy: str, world: int = 1, epochs: int = 30,
            *, include_validation: bool = True,
            seed: int | str | None = None) -> RunSim:
        return RunSim(
            strategy=strategy, world_size=world,
            preprocess_seconds=self.preprocess_seconds(strategy, world, seed=seed),
            epoch=self.epoch_breakdown(strategy, world,
                                       include_validation=include_validation),
            epochs=epochs)

    # -- training-time memory (device side) -------------------------------
    def gpu_training_bytes(self, *, data_resident: bool = False) -> int:
        """Steady-state device memory during training.

        Parameters + gradients + Adam moments (4x params), the live batch,
        and unrolled RNN activations; plus the full standardized dataset
        when ``data_resident`` (GPU-index-batching).
        """
        params = 4 * self.model.param_bytes
        batch = self._windowed_batch_bytes(self.batch_size)
        acts = int(self.batch_size * self.spec.horizon * self.spec.num_nodes
                   * self.model.hidden_dim * ACTIVATION_FACTOR
                   * self.train_dtype.itemsize)
        resident = self.spec.augmented_nbytes(self.dtype) if data_resident else 0
        return params + batch + acts + resident


def standard_windowed_bytes(spec: DatasetSpec, dtype=np.float64) -> int:
    """Bytes of one windowed (x or y) stack — half of eq. (1)."""
    return int(num_snapshots(spec.num_entries, spec.horizon) * spec.horizon
               * spec.num_nodes * spec.train_features * np.dtype(dtype).itemsize)
