"""Single-device training loop with history and timing.

Used for the single-GPU experiments (Tables 3/4/6, Figure 5): real numpy
training on (scaled) data.  The loss is computed on standardized values;
validation/test metrics are reported in original signal units by inverting
the scaler on the primary channel, as the DCRNN reference does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.batching.protocols import BatchSource, ensure_batch_source
from repro.batching.samplers import Sampler, GlobalShuffleSampler
from repro.models.base import STModel
from repro.models.dcrnn import DCRNN
from repro.nn.module import assert_inference_mode
from repro.optim.losses import l1_loss
from repro.optim.optimizers import Optimizer
from repro.preprocessing.scaler import StandardScaler
from repro.training.metrics import masked_abs_error
from repro.training.step import clip_and_step


@dataclass
class EpochRecord:
    """One epoch's outcomes."""

    epoch: int
    train_loss: float
    val_mae: float
    lr: float
    seconds: float


class Trainer:
    """Trains an :class:`~repro.models.base.STModel` on batch loaders.

    Parameters
    ----------
    model, optimizer: the usual pair; gradient clipping at ``clip_norm``.
    train_loader / val_loader: :class:`~repro.batching.protocols.BatchSource`
        implementations (either loader class works); validated here.
    scaler: inverse-transforms predictions for original-unit metrics.
    loss_fn: Tensor loss on standardized values (default L1).
    sampler: training-order sampler; defaults to global shuffling.
    """

    def __init__(self, model: STModel, optimizer: Optimizer,
                 train_loader: BatchSource,
                 val_loader: BatchSource | None = None, *,
                 scaler: StandardScaler | None = None,
                 loss_fn: Callable = l1_loss, clip_norm: float = 5.0,
                 sampler: Sampler | None = None, seed: int | str = 0):
        self.model = model
        self.optimizer = optimizer
        self.train_loader = ensure_batch_source(train_loader, "train_loader")
        self.val_loader = (None if val_loader is None
                           else ensure_batch_source(val_loader, "val_loader"))
        self.scaler = scaler
        self.loss_fn = loss_fn
        self.clip_norm = clip_norm
        self.sampler = sampler or GlobalShuffleSampler(
            train_loader.num_snapshots, train_loader.batch_size,
            world_size=1, seed=seed)
        self.history: list[EpochRecord] = []

    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimizer step; returns the scalar loss."""
        xt = Tensor(x)
        target = y[..., :1]
        if isinstance(self.model, DCRNN):
            pred = self.model(xt, targets=y)  # enables scheduled sampling
        else:
            pred = self.model(xt)
        loss = self.loss_fn(pred, target.astype(np.float32))
        self.optimizer.zero_grad()
        loss.backward()
        clip_and_step(self.optimizer, self.clip_norm)
        return float(loss.item())

    def train_epoch(self, epoch: int) -> float:
        """Train over one epoch plan; returns the mean batch loss."""
        self.model.train()
        plan = self.sampler.epoch_plan(epoch)[0]
        losses = []
        for sel in plan:
            if len(sel) < self.train_loader.batch_size:
                continue
            x, y = self.train_loader.batch_at(sel)
            losses.append(self.train_step(x, y))
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    def evaluate(self, loader=None, max_batches: int | None = None) -> float:
        """Masked MAE on original units over a loader's snapshots.

        Batches are weighted by their *unmasked* entry count, so the result
        equals the masked MAE over the concatenated snapshots even when the
        missing-data fraction varies across batches.
        """
        loader = loader or self.val_loader
        if loader is None:
            raise ValueError("no evaluation loader provided")
        self.model.eval()
        total_abs, total_count = 0.0, 0
        with no_grad():
            assert_inference_mode(self.model)
            for i, (x, y) in enumerate(loader.batches()):
                if max_batches is not None and i >= max_batches:
                    break
                pred = self.model(Tensor(x)).data[..., 0]
                truth = y[..., 0]
                if self.scaler is not None:
                    pred = self.scaler.inverse_transform_channel(pred, 0)
                    truth = self.scaler.inverse_transform_channel(truth, 0)
                abs_sum, count = masked_abs_error(pred, truth)
                total_abs += abs_sum
                total_count += count
        if total_count == 0:
            return float("nan")
        return total_abs / total_count

    # ------------------------------------------------------------------
    def fit(self, epochs: int, *, scheduler=None, verbose: bool = False,
            patience: int | None = None,
            checkpoint_path: str | None = None,
            checkpoint_every: int = 1) -> list[EpochRecord]:
        """Train for ``epochs`` epochs, recording loss/val-MAE history.

        Parameters
        ----------
        patience: early stopping — end training after this many epochs
            without a new best validation MAE (the DCRNN reference trains
            with patience 50).  Requires a validation loader.
        checkpoint_path / checkpoint_every: write a resumable checkpoint
            every N epochs; on a new validation best, also write
            ``<path>.best``.
        """
        if patience is not None and self.val_loader is None:
            raise ValueError("early stopping needs a validation loader")
        best = float("inf")
        since_best = 0
        start = len(self.history)
        for epoch in range(start, start + epochs):
            t0 = time.perf_counter()
            train_loss = self.train_epoch(epoch)
            val_mae = self.evaluate() if self.val_loader is not None else float("nan")
            dt = time.perf_counter() - t0
            self.history.append(EpochRecord(epoch, train_loss, val_mae,
                                            self.optimizer.lr, dt))
            if scheduler is not None:
                scheduler.step()
            if verbose:
                print(f"epoch {epoch:3d}  loss {train_loss:.4f}  "
                      f"val MAE {val_mae:.4f}  ({dt:.2f}s)")
            improved = np.isfinite(val_mae) and val_mae < best
            if improved:
                best = val_mae
                since_best = 0
            else:
                since_best += 1
            if checkpoint_path is not None:
                from repro.training.checkpoint import save_checkpoint
                if (epoch - start + 1) % checkpoint_every == 0:
                    save_checkpoint(checkpoint_path, self.model,
                                    self.optimizer, epoch=epoch)
                if improved:
                    save_checkpoint(checkpoint_path + ".best", self.model,
                                    self.optimizer, epoch=epoch,
                                    extra={"val_mae": float(val_mae)})
            if patience is not None and since_best > patience:
                if verbose:
                    print(f"early stop at epoch {epoch} "
                          f"(no improvement for {since_best} epochs)")
                break
        return self.history

    def best_val_mae(self) -> float:
        vals = [r.val_mae for r in self.history if np.isfinite(r.val_mae)]
        return min(vals) if vals else float("nan")
