"""Forecast-quality metrics (NumPy, computed in original signal units)."""

from __future__ import annotations

import numpy as np


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(pred) - np.asarray(target))))


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error (Table 6 reports test MSE)."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.mean(diff * diff))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.sqrt(mse(pred, target)))


def masked_abs_error(pred: np.ndarray, target: np.ndarray,
                     null_value: float = 0.0) -> tuple[float, int]:
    """Sum of absolute errors over unmasked entries, plus their count.

    The two-part form lets callers aggregate a correctly-weighted MAE
    across batches whose masked fractions differ: sum the sums, sum the
    counts, divide once.
    """
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = target != null_value
    count = int(np.count_nonzero(mask))
    if count == 0:
        return 0.0, 0
    return float(np.abs(pred[mask] - target[mask]).sum()), count


def masked_mae(pred: np.ndarray, target: np.ndarray,
               null_value: float = 0.0) -> float:
    """MAE over entries whose target is not ``null_value`` (missing data)."""
    total, count = masked_abs_error(pred, target, null_value)
    if count == 0:
        return 0.0
    return total / count


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-3) -> float:
    """Mean absolute percentage error over non-near-zero targets."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = np.abs(target) > eps
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs((pred[mask] - target[mask]) / target[mask])))
