"""Forecast-quality metrics (NumPy, computed in original signal units)."""

from __future__ import annotations

import numpy as np


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(pred) - np.asarray(target))))


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error (Table 6 reports test MSE)."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.mean(diff * diff))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.sqrt(mse(pred, target)))


def masked_mae(pred: np.ndarray, target: np.ndarray,
               null_value: float = 0.0) -> float:
    """MAE over entries whose target is not ``null_value`` (missing data)."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = target != null_value
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs(pred[mask] - target[mask])))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-3) -> float:
    """Mean absolute percentage error over non-near-zero targets."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    mask = np.abs(target) > eps
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs((pred[mask] - target[mask]) / target[mask])))
