"""Training loops: single-device and distributed-data-parallel."""

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.ddp import DDPStrategy, DDPTrainer
from repro.training.evaluation import HorizonMetrics, evaluate_by_horizon
from repro.training.metrics import (
    mae,
    mape,
    masked_abs_error,
    masked_mae,
    mse,
    rmse,
)
from repro.training.recovery import RecoveryReport, train_with_recovery
from repro.training.replicated import ReplicatedDDPTrainer
from repro.training.step import average_and_apply, clip_and_step
from repro.training.trainer import EpochRecord, Trainer

__all__ = [
    "mae",
    "mse",
    "rmse",
    "mape",
    "masked_mae",
    "masked_abs_error",
    "Trainer",
    "EpochRecord",
    "DDPTrainer",
    "DDPStrategy",
    "ReplicatedDDPTrainer",
    "clip_and_step",
    "average_and_apply",
    "save_checkpoint",
    "load_checkpoint",
    "RecoveryReport",
    "train_with_recovery",
    "evaluate_by_horizon",
    "HorizonMetrics",
]
