"""True per-rank-replica DDP (verification mode).

:class:`~repro.training.ddp.DDPTrainer` computes per-rank microbatch
gradients against one shared parameter set, which is mathematically
identical to DDP as long as replicas never diverge.  This module
implements the literal thing — one model replica per rank with its *own*
parameter storage and optimizer, gradients exchanged through the process
group — so the equivalence can be *verified* rather than assumed,
exactly like running real DDP with synchronisation checks enabled.

Gradient averaging and the optimizer tail go through the same
:func:`~repro.training.step.average_and_apply` helper (and the same
:class:`~repro.runtime.buckets.GradientBucketer`) as the production
trainer, so the verification covers the deployed code path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.batching.samplers import GlobalShuffleSampler
from repro.models.base import STModel
from repro.optim.losses import l1_loss
from repro.optim.optimizers import Adam
from repro.runtime.buckets import GradientBucketer
from repro.runtime.process_group import ProcessGroup, as_process_group
from repro.training.step import average_and_apply
from repro.utils.errors import CommunicatorError


class ReplicatedDDPTrainer:
    """DDP with one model replica and one optimizer per rank.

    ``model_factory`` must build identically-initialised models (same
    seed), mirroring DDP's initial parameter broadcast.
    """

    def __init__(self, model_factory: Callable[[], STModel],
                 comm: ProcessGroup, train_loader, *,
                 lr: float = 0.01, loss_fn: Callable = l1_loss,
                 seed: int | str = 0, sync_check: bool = True,
                 bucket_cap_mb: float = 25.0):
        self.comm = as_process_group(comm)
        self.world_size = self.comm.world_size
        self.replicas = [model_factory() for _ in range(self.world_size)]
        self._check_identical_init()
        self.optimizers = [Adam(m.parameters(), lr=lr) for m in self.replicas]
        self.train_loader = train_loader
        self.loss_fn = loss_fn
        self.sync_check = sync_check
        self.sampler = GlobalShuffleSampler(
            train_loader.num_snapshots, train_loader.batch_size,
            world_size=self.world_size, seed=seed)
        self.bucketer = GradientBucketer(self.optimizers[0].params,
                                         bucket_cap_mb=bucket_cap_mb)
        self._grad_bufs = [self.bucketer.make_buffers()
                           for _ in range(self.world_size)]

    def load_checkpoint_params(self, path: str) -> None:
        """Restore a training checkpoint's parameters into *every* replica.

        The verification-mode analogue of DDP's recovery broadcast: rank
        0 reads the archive, peers receive identical bits.  Checkpoint
        parameter arrays are world-independent, so an archive written at
        any world size — including one re-partitioned through
        :func:`repro.elastic.reshard_checkpoint` — loads into any replica
        count; :meth:`assert_replicas_in_sync` holds immediately after.
        """
        from repro.training.checkpoint import load_checkpoint

        for replica in self.replicas:
            load_checkpoint(path, replica)

    def _check_identical_init(self) -> None:
        ref = self.replicas[0].state_dict()
        for r, replica in enumerate(self.replicas[1:], start=1):
            for name, arr in replica.state_dict().items():
                if not np.array_equal(ref[name], arr):
                    raise CommunicatorError(
                        f"replica {r} initialised differently at {name!r}; "
                        f"model_factory must be deterministic")

    def _rank_grads(self, rank: int, sel: np.ndarray) -> float:
        """One replica's microbatch gradients, packed into its buffers."""
        model = self.replicas[rank]
        x, y = self.train_loader.batch_at(sel)
        pred = model(Tensor(x))
        loss = self.loss_fn(pred, y[..., :1].astype(np.float32))
        model.zero_grad()
        loss.backward()
        self.bucketer.pack(self.optimizers[rank].params,
                           self._grad_bufs[rank])
        return float(loss.item())

    def train_epoch(self, epoch: int) -> float:
        """One epoch of literal replicated DDP; returns the mean loss."""
        plan = self.sampler.epoch_plan(epoch)
        steps = min(len(b) for b in plan)
        losses = []
        for step in range(steps):
            for rank in range(self.world_size):
                losses.append(self._rank_grads(rank, plan[rank][step]))
            average_and_apply(self.comm, self.bucketer, self._grad_bufs,
                              self.optimizers, category="gradient")
            if self.sync_check:
                self.assert_replicas_in_sync()
        return float(np.mean(losses))

    def assert_replicas_in_sync(self, atol: float = 0.0) -> None:
        """Verify all replicas hold bit-identical parameters.

        With deterministic Adam on identical averaged gradients they must
        match exactly; any drift indicates a broken reduction.
        """
        ref = self.replicas[0].state_dict()
        for r, replica in enumerate(self.replicas[1:], start=1):
            for name, arr in replica.state_dict().items():
                if atol == 0.0:
                    ok = np.array_equal(ref[name], arr)
                else:
                    ok = np.allclose(ref[name], arr, atol=atol)
                if not ok:
                    raise CommunicatorError(
                        f"replica {r} diverged from replica 0 at {name!r}")
