"""Training checkpoints: save/restore model + optimizer + history.

Long PeMS runs on shared clusters need restartability; this module
serialises everything to a single ``.npz`` (portable, no pickle of code).

Checkpoints can be **self-describing**: pass ``spec=`` (the
:class:`~repro.api.spec.RunSpec` that produced the model) and ``scaler=``
(the fitted :class:`~repro.preprocessing.scaler.StandardScaler`) to
:func:`save_checkpoint` and the archive carries everything the serving
layer needs to rebuild the model and standardize live observations —
``repro.serving.ModelSession.from_checkpoint`` consumes exactly this.

Writes are atomic: the archive is staged through a ``tempfile`` in the
*target directory* (same filesystem, so the final ``os.replace`` is a
rename, never a copy) and readers can never observe a half-written file —
regardless of whether ``path`` already ends in ``.npz``.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from typing import Any

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizers import Adam, Optimizer, SGD
from repro.preprocessing.scaler import StandardScaler
from repro.utils.errors import CheckpointError


def save_checkpoint(path: str, model: Module, optimizer: Optimizer | None = None,
                    *, epoch: int = 0, extra: dict[str, Any] | None = None,
                    spec: Any = None,
                    scaler: StandardScaler | None = None) -> None:
    """Write model parameters (and optimizer slots) to ``path`` atomically.

    ``extra`` must be JSON-serialisable (stored in the archive's metadata).
    ``spec`` may be a ``RunSpec`` or a plain spec dict; ``scaler`` stores
    its fitted statistics as float64 arrays.  Both make the checkpoint
    self-describing for the serving layer.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    spec_dict = None
    if spec is not None:
        spec_dict = spec if isinstance(spec, dict) else spec.to_dict()
    meta: dict[str, Any] = {"epoch": int(epoch), "extra": extra or {},
                            "optimizer": None, "spec": spec_dict}
    if scaler is not None:
        if not scaler.fitted:
            raise ValueError("cannot embed an unfitted scaler in a checkpoint")
        arrays["scaler/mean"] = scaler.mean_
        arrays["scaler/std"] = scaler.std_
    if optimizer is not None:
        meta["optimizer"] = {"type": type(optimizer).__name__,
                             "lr": optimizer.lr,
                             "step_count": optimizer.step_count}
        for i, p in enumerate(optimizer.params):
            if isinstance(optimizer, Adam):
                if optimizer._m[i] is not None:
                    arrays[f"adam_m/{i}"] = optimizer._m[i]
                    arrays[f"adam_v/{i}"] = optimizer._v[i]
            elif isinstance(optimizer, SGD):
                if optimizer._velocity[i] is not None:
                    arrays[f"sgd_v/{i}"] = optimizer._velocity[i]
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    write_archive(path, arrays)


def write_archive(path: str, arrays: dict[str, np.ndarray]) -> None:
    """Atomically write a checkpoint archive of named arrays to ``path``.

    The seam :func:`save_checkpoint` and the elastic resharder share: the
    archive is staged through a ``tempfile`` in the destination directory
    (same filesystem, so the final ``os.replace`` is a rename) and readers
    can never observe a half-written file.  ``arrays`` must already carry
    its ``__meta__`` record; this function serialises exactly what it is
    given.
    """
    # Stage in the destination directory so os.replace is an atomic rename
    # on the same filesystem.  np.savez writes to the open file object
    # directly, so it cannot append ".npz" to the temp name behind our back.
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        # mkstemp creates 0600; widen to the umask-respecting default so
        # the staged rename does not silently tighten checkpoint
        # permissions (shared-cluster runs read each other's checkpoints).
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_archive(path: str) -> dict[str, np.ndarray]:
    """Materialise every member of a checkpoint archive eagerly.

    ``np.load`` is lazy: a truncated or bit-flipped member only explodes
    (zipfile/zlib/CRC internals) when that member is finally read, which
    may be deep inside the serving layer.  Forcing every array here turns
    any corruption into a :class:`~repro.utils.errors.CheckpointError`
    that names the offending path at the door.
    """
    try:
        with np.load(str(path)) as archive:
            return {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise CheckpointError(
            f"checkpoint {path!r} does not exist") from None
    except (OSError, EOFError, KeyError, ValueError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupted or truncated "
            f"({type(exc).__name__}: {exc})") from exc


def load_checkpoint(path: str, model: Module,
                    optimizer: Optimizer | None = None) -> dict[str, Any]:
    """Restore ``model`` (and ``optimizer``) in place; returns metadata.

    Raises :class:`~repro.utils.errors.CheckpointError` (naming ``path``)
    when the archive is missing, truncated, or not a checkpoint at all;
    model/archive *shape* mismatches still surface as their own errors.
    """
    arrays = _read_archive(path)
    meta = _meta_from(arrays, path)
    state = {key[len("param/"):]: value
             for key, value in arrays.items() if key.startswith("param/")}
    model.load_state_dict(state)
    if optimizer is not None:
        opt_meta = meta.get("optimizer")
        if opt_meta is None:
            raise ValueError(f"{path} holds no optimizer state")
        if opt_meta["type"] != type(optimizer).__name__:
            raise ValueError(
                f"checkpoint optimizer {opt_meta['type']} != "
                f"{type(optimizer).__name__}")
        optimizer.lr = float(opt_meta["lr"])
        optimizer.step_count = int(opt_meta["step_count"])
        for i in range(len(optimizer.params)):
            if isinstance(optimizer, Adam) and f"adam_m/{i}" in arrays:
                optimizer._m[i] = arrays[f"adam_m/{i}"].copy()
                optimizer._v[i] = arrays[f"adam_v/{i}"].copy()
            elif isinstance(optimizer, SGD) and f"sgd_v/{i}" in arrays:
                optimizer._velocity[i] = arrays[f"sgd_v/{i}"].copy()
    return meta


def _meta_from(arrays: dict[str, np.ndarray], path: str) -> dict[str, Any]:
    blob = arrays.get("__meta__")
    if blob is None:
        raise CheckpointError(
            f"checkpoint {path!r} carries no __meta__ record; not a "
            f"repro checkpoint (or one whose metadata was destroyed)")
    try:
        meta = json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} metadata is corrupted "
            f"({type(exc).__name__}: {exc})") from exc
    # Checkpoints written before specs were embedded lack the key entirely.
    meta.setdefault("spec", None)
    return meta


def read_checkpoint_meta(path: str) -> dict[str, Any]:
    """Metadata (epoch, extra, optimizer summary, embedded spec dict)
    without touching any model."""
    return _meta_from(_read_archive(path), path)


def read_checkpoint_scaler(path: str) -> StandardScaler | None:
    """The scaler embedded by ``save_checkpoint(..., scaler=...)``, if any."""
    arrays = _read_archive(path)
    if "scaler/mean" not in arrays:
        return None
    return StandardScaler(mean=arrays["scaler/mean"],
                          std=arrays["scaler/std"])
