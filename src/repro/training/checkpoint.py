"""Training checkpoints: save/restore model + optimizer + history.

Long PeMS runs on shared clusters need restartability; this module
serialises everything to a single ``.npz`` (portable, no pickle of code).
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizers import Adam, Optimizer, SGD


def save_checkpoint(path: str, model: Module, optimizer: Optimizer | None = None,
                    *, epoch: int = 0, extra: dict[str, Any] | None = None) -> None:
    """Write model parameters (and optimizer slots) to ``path``.

    ``extra`` must be JSON-serialisable (stored in the archive's metadata).
    """
    arrays: dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    meta: dict[str, Any] = {"epoch": int(epoch), "extra": extra or {},
                            "optimizer": None}
    if optimizer is not None:
        meta["optimizer"] = {"type": type(optimizer).__name__,
                             "lr": optimizer.lr,
                             "step_count": optimizer.step_count}
        for i, p in enumerate(optimizer.params):
            if isinstance(optimizer, Adam):
                if optimizer._m[i] is not None:
                    arrays[f"adam_m/{i}"] = optimizer._m[i]
                    arrays[f"adam_v/{i}"] = optimizer._v[i]
            elif isinstance(optimizer, SGD):
                if optimizer._velocity[i] is not None:
                    arrays[f"sgd_v/{i}"] = optimizer._velocity[i]
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    tmp = path + ".tmp"
    np.savez(tmp, **arrays)
    # numpy appends .npz to the temp name.
    os.replace(tmp + ".npz" if not tmp.endswith(".npz") else tmp, path)


def load_checkpoint(path: str, model: Module,
                    optimizer: Optimizer | None = None) -> dict[str, Any]:
    """Restore ``model`` (and ``optimizer``) in place; returns metadata."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        state = {key[len("param/"):]: archive[key]
                 for key in archive.files if key.startswith("param/")}
        model.load_state_dict(state)
        if optimizer is not None:
            opt_meta = meta.get("optimizer")
            if opt_meta is None:
                raise ValueError(f"{path} holds no optimizer state")
            if opt_meta["type"] != type(optimizer).__name__:
                raise ValueError(
                    f"checkpoint optimizer {opt_meta['type']} != "
                    f"{type(optimizer).__name__}")
            optimizer.lr = float(opt_meta["lr"])
            optimizer.step_count = int(opt_meta["step_count"])
            for i in range(len(optimizer.params)):
                if isinstance(optimizer, Adam) and f"adam_m/{i}" in archive:
                    optimizer._m[i] = archive[f"adam_m/{i}"].copy()
                    optimizer._v[i] = archive[f"adam_v/{i}"].copy()
                elif isinstance(optimizer, SGD) and f"sgd_v/{i}" in archive:
                    optimizer._velocity[i] = archive[f"sgd_v/{i}"].copy()
    return meta
