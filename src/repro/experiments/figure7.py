"""Figure 7: the scaling study — baseline DDP vs distributed-index-batching
on PeMS with 4-128 GPUs, split into computation and communication time.

Communication numbers come from the public ``ProcessGroup.stats``
traffic-category API (:meth:`TrainingPerfModel.epoch_process_group`):
each point carries the per-category second/byte breakdown
(``gradient`` / ``data`` / ``metric``) the simulated fabric recorded,
the same categories the DDP trainers emit at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import get_spec
from repro.profiling import RunReport
from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf

GPU_COUNTS = (4, 8, 16, 32, 64, 128)


@dataclass
class ScalingPoint:
    strategy: str
    gpus: int
    total_minutes: float
    compute_minutes: float
    comm_minutes: float
    preprocess_seconds: float
    #: per-category communication seconds (gradient / data / metric).
    comm_seconds_by_category: dict[str, float] = field(default_factory=dict)
    #: per-category communication bytes for one epoch.
    comm_bytes_by_category: dict[str, int] = field(default_factory=dict)


@dataclass
class Figure7Result:
    single_gpu_minutes: float
    single_gpu_training_minutes: float
    points: list[ScalingPoint]

    def by(self, strategy: str) -> dict[int, ScalingPoint]:
        return {p.gpus: p for p in self.points if p.strategy == strategy}

    def speedup_vs_ddp(self, gpus: int) -> float:
        return (self.by("baseline-ddp")[gpus].total_minutes
                / self.by("dist-index")[gpus].total_minutes)

    def speedup_vs_single(self, gpus: int) -> float:
        return self.single_gpu_minutes / self.by("dist-index")[gpus].total_minutes


def run_figure7(epochs: int = 30, batch_size: int = 64,
                gpu_counts: tuple[int, ...] = GPU_COUNTS) -> Figure7Result:
    spec = get_spec("pems")
    model = pgt_dcrnn_perf(spec.num_nodes, spec.horizon, spec.train_features)
    pm = TrainingPerfModel(spec, model, batch_size)
    single = pm.run("index", 1, epochs, seed=0)
    points = []
    for strategy in ("baseline-ddp", "dist-index"):
        for gpus in gpu_counts:
            run = pm.run(strategy, gpus, epochs, seed=0)
            e = run.epoch
            stats = pm.epoch_process_group(strategy, gpus).stats
            points.append(ScalingPoint(
                strategy=strategy, gpus=gpus,
                total_minutes=run.total_seconds / 60,
                compute_minutes=epochs * (e.compute + e.h2d + e.validation) / 60,
                comm_minutes=epochs * (e.comm + e.framework) / 60,
                preprocess_seconds=run.preprocess_seconds,
                comm_seconds_by_category=dict(stats.time_by_category),
                comm_bytes_by_category=dict(stats.bytes_by_category)))
    return Figure7Result(
        single_gpu_minutes=single.total_seconds / 60,
        single_gpu_training_minutes=single.training_seconds / 60,
        points=points)


def report(result: Figure7Result | None = None) -> RunReport:
    result = result if result is not None else run_figure7()
    rep = RunReport(
        "Figure 7: scaling study on PeMS (30 epochs; paper speedups: "
        "2.16x @4 GPUs, 11.78x @128 GPUs vs DDP)",
        ["GPUs", "DDP total (min)", "DDP comm (min)",
         "Dist-index total (min)", "Dist-index comm (min)",
         "Speedup vs DDP", "Speedup vs 1 GPU"])
    ddp = result.by("baseline-ddp")
    di = result.by("dist-index")
    for g in sorted(ddp):
        rep.add_row(g, f"{ddp[g].total_minutes:.1f}",
                    f"{ddp[g].comm_minutes:.1f}",
                    f"{di[g].total_minutes:.1f}",
                    f"{di[g].comm_minutes:.2f}",
                    f"{result.speedup_vs_ddp(g):.2f}x",
                    f"{result.speedup_vs_single(g):.1f}x")
    rep.meta["single_gpu_minutes"] = result.single_gpu_minutes
    return rep


if __name__ == "__main__":
    print(report())
