"""Table 2: single-epoch runtime and peak memory of DCRNN vs PGT-DCRNN on
PeMS-All-LA (batch size 32)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import get_spec
from repro.hardware.specs import polaris_host
from repro.preprocessing.memory_model import (
    simulate_dcrnn_loader,
    simulate_standard_pipeline,
)
from repro.profiling import RunReport
from repro.training.perfmodel import (
    EFFICIENCY_PGT_SMALL,
    TrainingPerfModel,
    dcrnn_perf,
    pgt_dcrnn_perf,
)
from repro.utils.sizes import GB


@dataclass
class Table2Row:
    model: str
    runtime_minutes: float
    peak_system_gb: float
    peak_gpu_gb: float


# Activation-residency multipliers over the base estimate (which keeps one
# hidden state per (batch, step, node)).  PGT-DCRNN additionally stores the
# concatenated diffusion-hop features of its single cell (~3x); the
# reference DCRNN keeps them for encoder+decoder x 2 layers across the
# whole unrolled sequence because its loop-based implementation holds every
# intermediate for backward (~45x) — this is where the paper's 24.84 GB vs
# 1.58 GB gap comes from.
ACT_MULTIPLIER = {"pgt-dcrnn": 3.0, "dcrnn": 45.0}


def run_table2(batch_size: int = 32) -> list[Table2Row]:
    spec = get_spec("pems-all-la")
    rows = []
    for name in ("dcrnn", "pgt-dcrnn"):
        if name == "dcrnn":
            model = dcrnn_perf(spec.num_nodes, spec.horizon, spec.train_features)
            mem_sim = simulate_dcrnn_loader
        else:
            model = pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                                   spec.train_features,
                                   efficiency=EFFICIENCY_PGT_SMALL)
            mem_sim = simulate_standard_pipeline
        pm = TrainingPerfModel(spec, model, batch_size)
        run = pm.run("standard", 1, 1, include_validation=False)
        host = polaris_host()
        mem_sim(spec, host)
        gpu_bytes = pm.gpu_training_bytes(data_resident=False)
        gpu_bytes *= ACT_MULTIPLIER[name]
        rows.append(Table2Row(model=name,
                              runtime_minutes=run.training_seconds / 60.0,
                              peak_system_gb=host.peak / GB,
                              peak_gpu_gb=gpu_bytes / GB))
    return rows


def report(rows: list[Table2Row] | None = None) -> RunReport:
    rows = rows if rows is not None else run_table2()
    rep = RunReport(
        "Table 2: single-epoch DCRNN vs PGT-DCRNN on PeMS-All-LA "
        "(paper: 68.48 min/371 GB/24.8 GB vs 4.48 min/260 GB/1.6 GB)",
        ["Model", "Runtime (min)", "Max System Mem (GB)", "Max GPU Mem (GB)"])
    for r in rows:
        rep.add_row(r.model, f"{r.runtime_minutes:.2f}",
                    f"{r.peak_system_gb:.2f}/512", f"{r.peak_gpu_gb:.2f}/40")
    return rep


if __name__ == "__main__":
    print(report())
