"""Figure 3: stage-by-stage data growth when preprocessing PeMS-All-LA."""

from __future__ import annotations

from repro.datasets import get_spec
from repro.preprocessing import figure3_stages
from repro.profiling import RunReport
from repro.utils.sizes import format_bytes

STAGE_LABELS = {
    "raw": "Raw file",
    "stage1_time_feature": "Stage 1: + time-of-day channel",
    "stage2_swa": "Stage 2: sliding-window analysis (x)",
    "stage3_xy_split": "Stage 3: x/y train-val-test sets",
}


def run_figure3(dataset: str = "pems-all-la") -> dict[str, int]:
    return figure3_stages(get_spec(dataset))


def report(stages: dict[str, int] | None = None) -> RunReport:
    stages = stages if stages is not None else run_figure3()
    rep = RunReport("Figure 3: data growth during PeMS-All-LA preprocessing",
                    ["Stage", "Size", "vs raw"])
    raw = stages["raw"]
    for key, label in STAGE_LABELS.items():
        rep.add_row(label, format_bytes(stages[key]),
                    f"{stages[key] / raw:.1f}x")
    return rep


if __name__ == "__main__":
    print(report())
