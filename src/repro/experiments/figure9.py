"""Figure 9: generalized-distributed-index-batching vs batch-shuffling DDP —
single-epoch runtime on PeMS with computation/communication split, plus the
aggregate memory comparison the paper quotes (53.28 GB vs 479.66 GB with
four workers).

Communication splits come from the public ``ProcessGroup.stats``
traffic-category API (gradient / data / metric), like Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import get_spec
from repro.preprocessing.memory_model import standard_preprocessed_nbytes
from repro.profiling import RunReport
from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf
from repro.utils.sizes import GB

GPU_COUNTS = (4, 8, 16, 32, 64, 128)


@dataclass
class Figure9Point:
    method: str                  # "ddp" or "index"
    gpus: int
    epoch_seconds: float
    compute_seconds: float
    comm_seconds: float
    #: per-category communication seconds (gradient / data / metric).
    comm_seconds_by_category: dict[str, float] = field(default_factory=dict)
    #: per-category communication bytes for one epoch.
    comm_bytes_by_category: dict[str, int] = field(default_factory=dict)


@dataclass
class Figure9Result:
    points: list[Figure9Point]
    ddp_total_memory_gb: float     # 4-worker aggregate footprints
    index_total_memory_gb: float

    def by(self, method: str) -> dict[int, Figure9Point]:
        return {p.gpus: p for p in self.points if p.method == method}

    def speedup(self, gpus: int) -> float:
        return self.by("ddp")[gpus].epoch_seconds / \
            self.by("index")[gpus].epoch_seconds


def _aggregate_memory_gb(spec, workers: int = 4) -> tuple[float, float]:
    """Sum of per-worker peaks (the paper's aggregate memory metric)."""
    item = 8
    windowed = standard_preprocessed_nbytes(
        spec.num_entries, spec.num_nodes, spec.train_features, spec.horizon)
    # Baseline DDP: the full windowed dataset spread over workers, plus a
    # standardisation scratch share per worker (~1/16 partition slack).
    ddp_total = windowed * (1.0 + 1.0 / 16.0)
    # Generalized-index: raw partitions + per-worker scratch + staging.
    aug = spec.num_entries * spec.num_nodes * spec.train_features * item
    index_total = aug * 2.0 + spec.raw_nbytes() * 0.5
    return ddp_total / GB, index_total / GB


def run_figure9(batch_size: int = 64,
                gpu_counts: tuple[int, ...] = GPU_COUNTS) -> Figure9Result:
    spec = get_spec("pems")
    model = pgt_dcrnn_perf(spec.num_nodes, spec.horizon, spec.train_features)
    pm = TrainingPerfModel(spec, model, batch_size)
    points = []
    for method, strategy in (("ddp", "baseline-ddp"),
                             ("index", "generalized-index")):
        for gpus in gpu_counts:
            e = pm.epoch_breakdown(strategy, gpus, include_validation=False)
            stats = pm.epoch_process_group(strategy, gpus,
                                           include_validation=False).stats
            points.append(Figure9Point(
                method=method, gpus=gpus, epoch_seconds=e.total,
                compute_seconds=e.compute + e.h2d,
                comm_seconds=e.comm + e.framework,
                comm_seconds_by_category=dict(stats.time_by_category),
                comm_bytes_by_category=dict(stats.bytes_by_category)))
    ddp_mem, idx_mem = _aggregate_memory_gb(spec)
    return Figure9Result(points=points, ddp_total_memory_gb=ddp_mem,
                         index_total_memory_gb=idx_mem)


def report(result: Figure9Result | None = None) -> RunReport:
    result = result if result is not None else run_figure9()
    rep = RunReport(
        "Figure 9: batch-shuffling epoch runtime, DDP vs "
        "generalized-distributed-index-batching "
        "(paper DDP: 303 s @4 -> 231 s @128; index up to 2.28x faster)",
        ["GPUs", "DDP epoch (s)", "DDP comm (s)", "Index epoch (s)",
         "Index comm (s)", "Speedup"])
    ddp, idx = result.by("ddp"), result.by("index")
    for g in sorted(ddp):
        rep.add_row(g, f"{ddp[g].epoch_seconds:.1f}",
                    f"{ddp[g].comm_seconds:.1f}",
                    f"{idx[g].epoch_seconds:.1f}",
                    f"{idx[g].comm_seconds:.2f}",
                    f"{result.speedup(g):.2f}x")
    rep.meta["memory_gb"] = (result.ddp_total_memory_gb,
                             result.index_total_memory_gb)
    return rep


if __name__ == "__main__":
    r = run_figure9()
    print(report(r))
    print(f"4-worker aggregate memory: DDP {r.ddp_total_memory_gb:.1f} GB "
          f"(paper 479.66), index {r.index_total_memory_gb:.1f} GB "
          f"(paper 53.28)")
