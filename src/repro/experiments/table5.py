"""Table 5: global shuffling vs local batch-level shuffling (PeMS-BAY).

Real distributed training at 4/8/16 workers under both shuffle regimes;
the paper finds batch-level shuffling matches global shuffling's accuracy,
which justifies generalized-distributed-index-batching's locality
optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.experiments.config import Scale, get_scale
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.profiling import RunReport
from repro.training import DDPStrategy, DDPTrainer


@dataclass
class ShufflingResult:
    shuffle: str
    gpus: int
    best_val_mae: float


def run_table5(scale: str | Scale = "tiny", seed: int = 0,
               gpu_counts: tuple[int, ...] = (4, 8, 16)
               ) -> list[ShufflingResult]:
    scale = get_scale(scale)
    ds = load_dataset("pems-bay", nodes=scale.nodes, entries=scale.entries,
                      seed=seed)
    horizon = scale.horizon or ds.spec.horizon
    idx = IndexDataset.from_dataset(ds, horizon=horizon)
    supports = dual_random_walk_supports(ds.graph.weights)

    results = []
    for shuffle in ("global", "batch"):
        for world in gpu_counts:
            model = PGTDCRNN(supports, horizon, 2,
                             hidden_dim=scale.hidden_dim, seed=seed)
            trainer = DDPTrainer(
                model, Adam(model.parameters(), lr=0.01),
                SimCommunicator(world),
                IndexBatchLoader(idx, "train", scale.batch_size),
                IndexBatchLoader(idx, "val", scale.batch_size),
                strategy=DDPStrategy.DIST_INDEX, shuffle=shuffle,
                scaler=idx.scaler, seed=seed)
            trainer.fit(scale.epochs)
            results.append(ShufflingResult(shuffle, world,
                                           trainer.best_val_mae()))
    return results


def report(results: list[ShufflingResult] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    results = results if results is not None else run_table5(scale)
    rep = RunReport(
        "Table 5: optimal validation MAE, global vs local batch shuffling",
        ["Shuffling", "GPUs", "Best Val MAE"])
    for r in results:
        rep.add_row(r.shuffle, r.gpus, f"{r.best_val_mae:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
