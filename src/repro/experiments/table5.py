"""Table 5: global shuffling vs local batch-level shuffling (PeMS-BAY).

Real distributed training at 4/8/16 workers under both shuffle regimes;
the paper finds batch-level shuffling matches global shuffling's accuracy,
which justifies generalized-distributed-index-batching's locality
optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import api
from repro.api import RunSpec, Scale, get_scale
from repro.profiling import RunReport


@dataclass
class ShufflingResult:
    shuffle: str
    gpus: int
    best_val_mae: float


def run_table5(scale: str | Scale = "tiny", seed: int = 0,
               gpu_counts: tuple[int, ...] = (4, 8, 16)
               ) -> list[ShufflingResult]:
    scale = get_scale(scale)
    results = []
    for shuffle in ("global", "batch"):
        for world in gpu_counts:
            spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                           batching="index", scale=api.resolve_name(scale),
                           seed=seed, strategy="dist-index",
                           world_size=world, shuffle=shuffle)
            result = api.run(spec, scale=scale)
            results.append(ShufflingResult(shuffle, world,
                                           result.best_val_mae))
    return results


def report(results: list[ShufflingResult] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    results = results if results is not None else run_table5(scale)
    rep = RunReport(
        "Table 5: optimal validation MAE, global vs local batch shuffling",
        ["Shuffling", "GPUs", "Best Val MAE"])
    for r in results:
        rep.add_row(r.shuffle, r.gpus, f"{r.best_val_mae:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
