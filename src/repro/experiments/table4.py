"""Table 4 + Figure 6: single-GPU PeMS training — index-batching vs
GPU-index-batching (runtime, CPU/GPU memory), plus the standard pipeline's
OOM trace for Figure 6.

All numbers come from the calibrated full-scale performance model and the
mechanistic memory simulators (PeMS does not fit in any real machine here,
which is precisely the paper's point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import get_spec
from repro.hardware.memory import MemorySpace
from repro.hardware.specs import polaris_host
from repro.preprocessing.memory_model import (
    simulate_gpu_index_pipeline,
    simulate_index_pipeline,
    simulate_standard_pipeline,
)
from repro.profiling import RunReport
from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf
from repro.utils.errors import OutOfMemoryError
from repro.utils.sizes import GB


@dataclass
class Table4Row:
    implementation: str
    runtime_minutes: float
    cpu_peak_gb: float
    gpu_peak_gb: float


@dataclass
class Figure6Trace:
    implementation: str
    trace: list[tuple[float, int]]
    peak: int
    oom: bool


def _perf_model(batch_size: int = 64) -> TrainingPerfModel:
    spec = get_spec("pems")
    model = pgt_dcrnn_perf(spec.num_nodes, spec.horizon, spec.train_features)
    return TrainingPerfModel(spec, model, batch_size)


def run_table4(epochs: int = 30, batch_size: int = 64) -> list[Table4Row]:
    spec = get_spec("pems")
    pm = _perf_model(batch_size)
    rows = []

    # Index-batching: data stays in host RAM; batches cross PCIe each step.
    host = polaris_host()
    foot = simulate_index_pipeline(spec, host)
    run = pm.run("index", 1, epochs, seed=0)
    rows.append(Table4Row(
        "index-batching", run.total_seconds / 60, host.peak / GB,
        pm.gpu_training_bytes(data_resident=False) / GB))

    # GPU-index-batching: one transfer, everything resident on device.
    host2 = polaris_host()
    gpu = MemorySpace("gpu", capacity=40 * GB)
    simulate_gpu_index_pipeline(spec, host2, gpu)
    run2 = pm.run("gpu-index", 1, epochs, seed=0)
    gpu_total = gpu.in_use + pm.gpu_training_bytes(data_resident=False)
    rows.append(Table4Row(
        "gpu-index-batching", run2.total_seconds / 60, host2.peak / GB,
        gpu_total / GB))
    return rows


def run_figure6() -> list[Figure6Trace]:
    """Host-memory traces for PGT (OOM), index and GPU-index on PeMS."""
    spec = get_spec("pems")
    traces = []

    space = polaris_host()
    oom = False
    try:
        simulate_standard_pipeline(spec, space)
    except OutOfMemoryError:
        oom = True
    traces.append(Figure6Trace("pgt-standard", space.usage_trace(),
                               space.peak, oom))

    space = polaris_host()
    simulate_index_pipeline(spec, space)
    traces.append(Figure6Trace("pgt-index-batching", space.usage_trace(),
                               space.peak, False))

    host = polaris_host()
    gpu = MemorySpace("gpu", capacity=40 * GB)
    simulate_gpu_index_pipeline(spec, host, gpu)
    traces.append(Figure6Trace("pgt-gpu-index-batching", host.usage_trace(),
                               host.peak, False))
    return traces


def report(rows: list[Table4Row] | None = None) -> RunReport:
    rows = rows if rows is not None else run_table4()
    rep = RunReport(
        "Table 4: single-GPU PeMS training "
        "(paper: 333.58 min/45.84 GB/5.50 GB vs 290.65 min/18.20 GB/18.60 GB)",
        ["Implementation", "Runtime (min)", "CPU Mem (GB)", "GPU Mem (GB)"])
    for r in rows:
        rep.add_row(r.implementation, f"{r.runtime_minutes:.2f}",
                    f"{r.cpu_peak_gb:.2f}", f"{r.gpu_peak_gb:.2f}")
    return rep


if __name__ == "__main__":
    print(report())
    for t in run_figure6():
        print(f"figure6 {t.implementation}: peak {t.peak / GB:.1f} GB "
              f"{'OOM' if t.oom else ''}")
