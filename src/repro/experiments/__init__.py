"""Experiment harness: one module per table and figure of the paper.

Every module exposes a ``run_*`` function returning a structured result
dataclass plus a ``report()`` method (or function) rendering the
paper-style table.  Benchmarks under ``benchmarks/`` call these functions
and assert the paper's qualitative shapes; the CLI
(``python -m repro.experiments <id>``) prints them.

Two execution modes appear:

- *real*: actual numpy training on scaled-down synthetic datasets
  (accuracy results: Tables 3/5/6, Figures 5/8).
- *simulated*: mechanistic memory replay + the calibrated analytic
  performance model at full PeMS scale (runtime/memory results:
  Tables 1/2/4, Figures 2/3/6/7/9/10).
"""

from repro.experiments import config

__all__ = ["config"]
