"""Ablations for the design choices and future-work items DESIGN.md lists.

1. **Prefetching** (paper §7: "implement prefetching ... could help reduce
   the communication overhead of the distributed strategies") — simulated
   at full PeMS scale: baseline DDP epoch time with and without overlapping
   the next batch's fetch behind compute.
2. **Graph partitioning + index-batching** (paper §7: "investigate the
   integration of index-batching with graph partitioning, potentially
   yielding further speedups at a potential cost to accuracy") — real
   training: a full-graph model vs independent per-partition models on the
   spectral partitions of the sensor graph.
3. **Shuffle strategy** sweep (global vs local vs batch) on one dataset —
   the design choice behind Table 5, extended with the *local* mode the
   paper cites as accuracy-harmful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.batching import IndexBatchLoader
from repro.datasets import get_spec, load_dataset
from repro.experiments.config import Scale, get_scale
from repro.graph import dual_random_walk_supports, partition_graph
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.profiling import RunReport
from repro.training import Trainer
from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf


# ---------------------------------------------------------------------------
# 1. Prefetch ablation (simulated)
# ---------------------------------------------------------------------------
@dataclass
class PrefetchPoint:
    gpus: int
    epoch_plain: float
    epoch_prefetch: float

    @property
    def saving(self) -> float:
        return 1.0 - self.epoch_prefetch / self.epoch_plain


def run_prefetch_ablation(gpu_counts: tuple[int, ...] = (4, 16, 64)
                          ) -> list[PrefetchPoint]:
    spec = get_spec("pems")
    pm = TrainingPerfModel(
        spec, pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                             spec.train_features), 64)
    out = []
    for gpus in gpu_counts:
        plain = pm.epoch_breakdown("baseline-ddp", gpus,
                                   include_validation=False)
        pref = pm.epoch_breakdown("baseline-ddp", gpus,
                                  include_validation=False, prefetch=True)
        out.append(PrefetchPoint(gpus, plain.total, pref.total))
    return out


# ---------------------------------------------------------------------------
# 2. Partitioning ablation (real)
# ---------------------------------------------------------------------------
@dataclass
class PartitioningResult:
    mode: str                 # "full-graph" or "partitioned-N"
    num_parts: int
    val_mae: float
    train_seconds: float
    model_flops_per_snapshot: float


def run_partitioning_ablation(scale: str | Scale = "tiny", seed: int = 0,
                              num_parts: int = 4) -> list[PartitioningResult]:
    scale = get_scale(scale)
    ds = load_dataset("pems-bay", nodes=scale.nodes, entries=scale.entries,
                      seed=seed)
    horizon = scale.horizon or ds.spec.horizon
    idx = IndexDataset.from_dataset(ds, horizon=horizon)
    results = []

    # Full graph baseline.
    supports = dual_random_walk_supports(ds.graph.weights)
    model = PGTDCRNN(supports, horizon, 2, hidden_dim=scale.hidden_dim,
                     seed=seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01),
                      IndexBatchLoader(idx, "train", scale.batch_size),
                      IndexBatchLoader(idx, "val", scale.batch_size),
                      scaler=idx.scaler, seed=seed)
    t0 = time.perf_counter()
    trainer.fit(scale.epochs)
    results.append(PartitioningResult(
        "full-graph", 1, trainer.best_val_mae(), time.perf_counter() - t0,
        model.flops_per_snapshot()))

    # Partitioned: independent models on disconnected subgraphs.  Cross-
    # partition edges are cut — the accuracy cost the paper warns about.
    assignment = partition_graph(ds.graph.weights, num_parts)
    maes, total_seconds, total_flops = [], 0.0, 0.0
    for part in range(num_parts):
        nodes = np.flatnonzero(assignment == part)
        if len(nodes) < 2:
            continue
        sub_weights = ds.graph.weights[nodes][:, nodes].tocsr()
        sub_supports = dual_random_walk_supports(sub_weights)
        sub_model = PGTDCRNN(sub_supports, horizon, 2,
                             hidden_dim=scale.hidden_dim,
                             seed=f"{seed}/part{part}")

        sub_idx = IndexDataset(
            data=np.ascontiguousarray(idx.data[:, nodes]),
            starts=idx.starts, horizon=idx.horizon, scaler=idx.scaler,
            train_end=idx.train_end, val_end=idx.val_end)
        sub_trainer = Trainer(
            sub_model, Adam(sub_model.parameters(), lr=0.01),
            IndexBatchLoader(sub_idx, "train", scale.batch_size),
            IndexBatchLoader(sub_idx, "val", scale.batch_size),
            scaler=idx.scaler, seed=seed)
        t0 = time.perf_counter()
        sub_trainer.fit(scale.epochs)
        total_seconds += time.perf_counter() - t0
        total_flops += sub_model.flops_per_snapshot()
        maes.append((sub_trainer.best_val_mae(), len(nodes)))
    weighted = sum(m * n for m, n in maes) / sum(n for _, n in maes)
    results.append(PartitioningResult(
        f"partitioned-{num_parts}", num_parts, weighted, total_seconds,
        total_flops))
    return results


# ---------------------------------------------------------------------------
# 3. Shuffle-strategy sweep (real)
# ---------------------------------------------------------------------------
@dataclass
class ShuffleSweepResult:
    shuffle: str
    val_mae: float


def run_shuffle_sweep(scale: str | Scale = "tiny", seed: int = 0,
                      world: int = 4) -> list[ShuffleSweepResult]:
    from repro import api
    from repro.api import RunSpec

    scale = get_scale(scale)
    out = []
    for shuffle in ("global", "local", "batch"):
        spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                       batching="index", scale=api.resolve_name(scale),
                       seed=seed, strategy="dist-index", world_size=world,
                       shuffle=shuffle)
        result = api.run(spec, scale=scale)
        out.append(ShuffleSweepResult(shuffle, result.best_val_mae))
    return out


def report(scale: str | Scale = "tiny") -> RunReport:
    rep = RunReport("Ablations (prefetch sim / partitioning real)",
                    ["Ablation", "Setting", "Metric", "Value"])
    for p in run_prefetch_ablation():
        rep.add_row("prefetch", f"{p.gpus} GPUs", "epoch saving",
                    f"{p.saving:.1%}")
    for r in run_partitioning_ablation(scale):
        rep.add_row("partitioning", r.mode, "val MAE", f"{r.val_mae:.4f}")
    for s in run_shuffle_sweep(scale):
        rep.add_row("shuffle", s.shuffle, "val MAE", f"{s.val_mae:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
