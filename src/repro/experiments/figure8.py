"""Figure 8: training/validation MAE as GPU count grows.

Real distributed training on a scaled PeMS stand-in.  With per-worker
batch size fixed, more GPUs mean a larger global batch and fewer optimizer
steps per epoch, degrading the MAE reached in a fixed epoch budget — the
effect the paper reports, largely attributable to global batch size.  The
ablation also runs the linear LR-scaling mitigation (§5.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import api
from repro.api import RunSpec, Scale, get_scale
from repro.optim import scale_lr_linear
from repro.profiling import RunReport


@dataclass
class AccuracyPoint:
    gpus: int
    lr: float
    lr_scaled: bool
    best_val_mae: float
    final_train_loss: float
    val_curve: list[float] = field(default_factory=list)


def run_figure8(scale: str | Scale = "tiny", seed: int = 0,
                gpu_counts: tuple[int, ...] = (1, 2, 4, 8),
                base_lr: float = 0.01,
                with_lr_scaling: bool = True) -> list[AccuracyPoint]:
    scale = get_scale(scale)

    def train(world: int, lr: float, scaled: bool) -> AccuracyPoint:
        spec = RunSpec(dataset="pems", model="pgt-dcrnn", batching="index",
                       scale=api.resolve_name(scale), seed=seed, lr=lr,
                       strategy="dist-index", world_size=world)
        result = api.run(spec, scale=scale)
        return AccuracyPoint(
            gpus=world, lr=lr, lr_scaled=scaled,
            best_val_mae=result.best_val_mae,
            final_train_loss=result.final_train_loss,
            val_curve=result.val_curve)

    points = [train(w, base_lr, False) for w in gpu_counts]
    if with_lr_scaling:
        biggest = gpu_counts[-1]
        points.append(train(biggest, scale_lr_linear(base_lr, biggest), True))
    return points


def report(points: list[AccuracyPoint] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    points = points if points is not None else run_figure8(scale)
    rep = RunReport(
        "Figure 8: validation MAE vs GPU count (global-batch effect)",
        ["GPUs", "LR", "LR scaled?", "Best Val MAE", "Final Train Loss"])
    for p in points:
        rep.add_row(p.gpus, f"{p.lr:.4f}", "yes" if p.lr_scaled else "no",
                    f"{p.best_val_mae:.4f}", f"{p.final_train_loss:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
