"""CLI: regenerate any paper table or figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments figure7
    python -m repro.experiments table3 --scale small
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    figure2,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

SIMULATED = {
    "table1": lambda a: table1.report(),
    "figure2": lambda a: figure2.report(),
    "table2": lambda a: table2.report(),
    "figure3": lambda a: figure3.report(),
    "table4": lambda a: table4.report(),
    "figure7": lambda a: figure7.report(),
    "figure9": lambda a: figure9.report(),
    "figure10": lambda a: figure10.report(),
}

REAL = {
    "table3": lambda a: table3.report(scale=a.scale),
    "figure5": lambda a: table3.report(scale=a.scale),  # same run as table 3
    "figure8": lambda a: figure8.report(scale=a.scale),
    "table5": lambda a: table5.report(scale=a.scale),
    "table6": lambda a: table6.report(scale=a.scale),
    "ablations": lambda a: ablations.report(scale=a.scale),
}

ALL = {**SIMULATED, **REAL}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate PGT-I paper tables and figures.")
    parser.add_argument("experiment", choices=sorted(ALL) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"],
                        help="working scale for real-training experiments")
    args = parser.parse_args(argv)

    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(ALL[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
