"""Scale presets for the real-training experiments.

The presets now live in :mod:`repro.api.scales` (the ``RunSpec`` pipeline
validates scale names against the same table); this module re-exports them
so existing imports — ``from repro.experiments.config import Scale`` —
keep working.
"""

from repro.api.scales import (  # noqa: F401
    MEDIUM,
    SCALES,
    SMALL,
    TINY,
    Scale,
    get_scale,
    register_scale,
)

__all__ = ["Scale", "TINY", "SMALL", "MEDIUM", "SCALES", "get_scale",
           "register_scale"]
