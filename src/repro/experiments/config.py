"""Scale presets for the real-training experiments.

The paper trains on real PeMS-family data with hundreds to thousands of
sensors for 30-100 epochs; the repository's real-training experiments use
scaled-down synthetic datasets so they complete in seconds to minutes.
``Scale`` collects the knobs; the *shape* conclusions (who wins, by what
factor) are scale-invariant because both batching modes consume literally
identical snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Working sizes for a real-training experiment."""

    name: str
    nodes: int
    entries: int
    epochs: int
    hidden_dim: int
    batch_size: int
    horizon: int | None = None  # None: use the dataset's catalog horizon


#: Fast enough for CI / pytest-benchmark runs (seconds per experiment).
TINY = Scale("tiny", nodes=8, entries=260, epochs=4, hidden_dim=8,
             batch_size=8, horizon=4)

#: A few minutes per experiment; smoother convergence curves.
SMALL = Scale("small", nodes=24, entries=1200, epochs=12, hidden_dim=16,
              batch_size=16, horizon=12)

#: The closest practical approximation of the paper's setups on a laptop.
MEDIUM = Scale("medium", nodes=64, entries=4000, epochs=30, hidden_dim=32,
               batch_size=32, horizon=12)

SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM)}


def get_scale(name: str | Scale) -> Scale:
    if isinstance(name, Scale):
        return name
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(SCALES)}")
    return SCALES[name]
