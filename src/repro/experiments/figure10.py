"""Figure 10: ST-LLM distributed-index-batching scaling on PeMS-BAY.

Two layers, matching the paper's setup as closely as practical:

- a *simulated* full-scale scaling curve (ST-LLM at GPT-2-ish size on the
  real PeMS-BAY shapes) — the runtime result in the figure;
- an optional *real* scaled-down ST-LLM DDP run verifying that the model
  actually trains under distributed-index-batching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import api
from repro.api import RunSpec, Scale, get_scale
from repro.datasets import get_spec
from repro.profiling import RunReport
from repro.training.perfmodel import TrainingPerfModel, stllm_perf

GPU_COUNTS = (1, 4, 8, 16, 32)


@dataclass
class STLLMPoint:
    gpus: int
    total_minutes: float
    preprocess_seconds: float


def run_figure10(epochs: int = 30, batch_size: int = 64,
                 gpu_counts: tuple[int, ...] = GPU_COUNTS) -> list[STLLMPoint]:
    """Simulated full-scale ST-LLM scaling on PeMS-BAY."""
    spec = get_spec("pems-bay")
    model = stllm_perf(spec.num_nodes, spec.horizon, spec.train_features)
    pm = TrainingPerfModel(spec, model, batch_size)
    points = []
    for gpus in gpu_counts:
        strategy = "gpu-index" if gpus == 1 else "dist-index"
        run = pm.run(strategy, gpus, epochs, seed=0)
        points.append(STLLMPoint(gpus=gpus,
                                 total_minutes=run.total_seconds / 60,
                                 preprocess_seconds=run.preprocess_seconds))
    return points


@dataclass
class STLLMTrainResult:
    gpus: int
    final_train_loss: float
    best_val_mae: float


def run_figure10_real(scale: str | Scale = "tiny", seed: int = 0,
                      gpu_counts: tuple[int, ...] = (1, 4)
                      ) -> list[STLLMTrainResult]:
    """Real scaled-down ST-LLM training under distributed-index-batching."""
    scale = get_scale(scale)
    out = []
    for world in gpu_counts:
        spec = RunSpec(dataset="pems-bay", model="st-llm", batching="index",
                       scale=api.resolve_name(scale), seed=seed, lr=0.005,
                       strategy="dist-index", world_size=world)
        result = api.run(spec, scale=scale)
        out.append(STLLMTrainResult(gpus=world,
                                    final_train_loss=result.final_train_loss,
                                    best_val_mae=result.best_val_mae))
    return out


def report(points: list[STLLMPoint] | None = None) -> RunReport:
    points = points if points is not None else run_figure10()
    rep = RunReport(
        "Figure 10: ST-LLM distributed-index-batching scaling on PeMS-BAY",
        ["GPUs", "Total (min)", "Preprocess (s)", "Speedup vs 1 GPU"])
    base = points[0].total_minutes
    for p in points:
        rep.add_row(p.gpus, f"{p.total_minutes:.1f}",
                    f"{p.preprocess_seconds:.2f}",
                    f"{base / p.total_minutes:.2f}x")
    return rep


if __name__ == "__main__":
    print(report())
