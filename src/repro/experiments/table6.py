"""Table 6: A3T-GCN with and without index-batching on METR-LA —
runtime, CPU memory, test MSE (the broader-applicability study, §5.5)."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.batching import IndexBatchLoader, StandardBatchLoader
from repro.datasets import load_dataset
from repro.experiments.config import Scale, get_scale
from repro.hardware.memory import MemorySpace
from repro.models import A3TGCN
from repro.optim import Adam
from repro.preprocessing import IndexDataset, standard_preprocess
from repro.profiling import RunReport
from repro.training import Trainer, mse
from repro.utils.sizes import MB

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
import numpy as np


@dataclass
class Table6Row:
    mode: str
    runtime_seconds: float
    peak_bytes: int
    test_mse: float


def _test_mse(model, loader, scaler) -> float:
    """Standardized-scale MSE on the test split (as ST-LLM reports)."""
    model.eval()
    errs, weights = [], []
    with no_grad():
        for x, y in loader.batches():
            pred = model(Tensor(x)).data[..., 0]
            errs.append(mse(pred, y[..., 0]))
            weights.append(pred.size)
    return float(np.average(errs, weights=weights))


def run_table6(scale: str | Scale = "tiny", seed: int = 0) -> list[Table6Row]:
    scale = get_scale(scale)
    rows = []
    for mode in ("base", "index"):
        ds = load_dataset("metr-la", nodes=scale.nodes, entries=scale.entries,
                          seed=seed)
        horizon = scale.horizon or ds.spec.horizon
        space = MemorySpace(f"a3tgcn:{mode}")
        t0 = time.perf_counter()
        if mode == "base":
            pre = standard_preprocess(ds, horizon=horizon, space=space)
            train = StandardBatchLoader(pre, "train", scale.batch_size)
            val = StandardBatchLoader(pre, "val", scale.batch_size)
            test = StandardBatchLoader(pre, "test", scale.batch_size)
            scaler = pre.scaler
        else:
            idx = IndexDataset.from_dataset(ds, horizon=horizon, space=space)
            train = IndexBatchLoader(idx, "train", scale.batch_size)
            val = IndexBatchLoader(idx, "val", scale.batch_size)
            test = IndexBatchLoader(idx, "test", scale.batch_size)
            scaler = idx.scaler
        model = A3TGCN(ds.graph.weights, horizon, 2,
                       hidden_dim=scale.hidden_dim, seed=seed)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), train,
                          val, scaler=scaler, seed=seed)
        trainer.fit(scale.epochs)
        runtime = time.perf_counter() - t0
        rows.append(Table6Row(mode=mode, runtime_seconds=runtime,
                              peak_bytes=space.peak,
                              test_mse=_test_mse(model, test, scaler)))
    return rows


def report(rows: list[Table6Row] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    rows = rows if rows is not None else run_table6(scale)
    rep = RunReport(
        "Table 6: A3T-GCN base vs index-batching on METR-LA stand-in "
        "(paper: 1041.95 s/2426 MB/0.5436 vs 1050.80 s/1233 MB/0.5427)",
        ["Implementation", "Runtime (s)", "CPU Mem (MB)", "Test MSE"])
    for r in rows:
        rep.add_row(r.mode, f"{r.runtime_seconds:.2f}",
                    f"{r.peak_bytes / MB:.2f}", f"{r.test_mse:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
