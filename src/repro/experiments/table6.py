"""Table 6: A3T-GCN with and without index-batching on METR-LA —
runtime, CPU memory, test MSE (the broader-applicability study, §5.5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro import api
from repro.api import RunSpec, Scale, get_scale
from repro.profiling import RunReport
from repro.training import mse
from repro.utils.sizes import MB

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
import numpy as np


@dataclass
class Table6Row:
    mode: str
    runtime_seconds: float
    peak_bytes: int
    test_mse: float


def _test_mse(model, loader, scaler) -> float:
    """Standardized-scale MSE on the test split (as ST-LLM reports)."""
    model.eval()
    errs, weights = [], []
    with no_grad():
        for x, y in loader.batches():
            pred = model(Tensor(x)).data[..., 0]
            errs.append(mse(pred, y[..., 0]))
            weights.append(pred.size)
    return float(np.average(errs, weights=weights))


def run_table6(scale: str | Scale = "tiny", seed: int = 0) -> list[Table6Row]:
    scale = get_scale(scale)
    rows = []
    for mode in ("base", "index"):
        spec = RunSpec(dataset="metr-la", model="a3tgcn", batching=mode,
                       scale=api.resolve_name(scale), seed=seed)
        result = api.run(spec, scale=scale)
        art = result.artifacts
        rows.append(Table6Row(
            mode=mode, runtime_seconds=result.runtime_seconds,
            peak_bytes=result.peak_bytes,
            test_mse=_test_mse(art.model, art.loaders.test,
                               art.loaders.scaler)))
    return rows


def report(rows: list[Table6Row] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    rows = rows if rows is not None else run_table6(scale)
    rep = RunReport(
        "Table 6: A3T-GCN base vs index-batching on METR-LA stand-in "
        "(paper: 1041.95 s/2426 MB/0.5436 vs 1050.80 s/1233 MB/0.5427)",
        ["Implementation", "Runtime (s)", "CPU Mem (MB)", "Test MSE"])
    for r in rows:
        rep.add_row(r.mode, f"{r.runtime_seconds:.2f}",
                    f"{r.peak_bytes / MB:.2f}", f"{r.test_mse:.4f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
