"""Table 3 + Figure 5: base vs index-batching on Chickenpox / Windmill /
PeMS-BAY — runtime, accuracy and peak memory, with convergence curves.

This experiment runs *real* training twice per dataset (standard batching
and index-batching) on scaled-down synthetic data.  The paper's claims:
identical accuracy and runtime (<1% difference) with large memory
reductions on the bigger datasets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.batching import IndexBatchLoader, StandardBatchLoader
from repro.datasets import load_dataset
from repro.experiments.config import Scale, get_scale
from repro.graph import dual_random_walk_supports
from repro.hardware.memory import MemorySpace
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset, standard_preprocess
from repro.profiling import RunReport
from repro.training import Trainer
from repro.utils.sizes import MB

DATASETS = ("chickenpox-hungary", "windmill-large", "pems-bay")


@dataclass
class BatchingRunResult:
    dataset: str
    mode: str                        # "base" or "index"
    runtime_seconds: float
    best_val_mae: float
    peak_bytes: int
    val_curve: list[float] = field(default_factory=list)


def _train_once(dataset_name: str, mode: str, scale: Scale,
                seed: int = 0) -> BatchingRunResult:
    ds = load_dataset(dataset_name, nodes=scale.nodes, entries=scale.entries,
                      seed=seed)
    horizon = scale.horizon or ds.spec.horizon
    space = MemorySpace(f"{dataset_name}:{mode}")
    t0 = time.perf_counter()
    if mode == "base":
        pre = standard_preprocess(ds, horizon=horizon, space=space)
        train = StandardBatchLoader(pre, "train", scale.batch_size)
        val = StandardBatchLoader(pre, "val", scale.batch_size)
        scaler = pre.scaler
    elif mode == "index":
        idx = IndexDataset.from_dataset(ds, horizon=horizon, space=space)
        train = IndexBatchLoader(idx, "train", scale.batch_size)
        val = IndexBatchLoader(idx, "val", scale.batch_size)
        scaler = idx.scaler
    else:
        raise ValueError(f"unknown mode {mode!r}")

    supports = dual_random_walk_supports(ds.graph.weights)
    in_features = 2 if ds.spec.domain == "traffic" else 1
    model = PGTDCRNN(supports, horizon, in_features,
                     hidden_dim=scale.hidden_dim, seed=seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), train, val,
                      scaler=scaler, seed=seed)
    history = trainer.fit(scale.epochs)
    runtime = time.perf_counter() - t0
    return BatchingRunResult(
        dataset=dataset_name, mode=mode, runtime_seconds=runtime,
        best_val_mae=trainer.best_val_mae(), peak_bytes=space.peak,
        val_curve=[h.val_mae for h in history])


def run_table3(scale: str | Scale = "tiny", seed: int = 0,
               datasets: tuple[str, ...] = DATASETS
               ) -> list[BatchingRunResult]:
    """Both batching modes on every Table-3 dataset (also Figure 5 data)."""
    scale = get_scale(scale)
    results = []
    for name in datasets:
        for mode in ("base", "index"):
            results.append(_train_once(name, mode, scale, seed))
    return results


def report(results: list[BatchingRunResult] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    results = results if results is not None else run_table3(scale)
    rep = RunReport(
        "Table 3: base vs index-batching (scaled synthetic stand-ins)",
        ["Run", "Runtime (s)", "Best Val MAE", "Peak Mem (MB)"])
    for r in results:
        rep.add_row(f"{r.mode}-{r.dataset}", f"{r.runtime_seconds:.2f}",
                    f"{r.best_val_mae:.4f}", f"{r.peak_bytes / MB:.2f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
