"""Table 3 + Figure 5: base vs index-batching on Chickenpox / Windmill /
PeMS-BAY — runtime, accuracy and peak memory, with convergence curves.

This experiment runs *real* training twice per dataset (standard batching
and index-batching) on scaled-down synthetic data.  The paper's claims:
identical accuracy and runtime (<1% difference) with large memory
reductions on the bigger datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import api
from repro.api import RunSpec, Scale, get_scale
from repro.profiling import RunReport
from repro.utils.sizes import MB

DATASETS = ("chickenpox-hungary", "windmill-large", "pems-bay")


@dataclass
class BatchingRunResult:
    dataset: str
    mode: str                        # "base" or "index"
    runtime_seconds: float
    best_val_mae: float
    peak_bytes: int
    val_curve: list[float] = field(default_factory=list)


def _train_once(dataset_name: str, mode: str, scale: Scale,
                seed: int = 0) -> BatchingRunResult:
    spec = RunSpec(dataset=dataset_name, model="pgt-dcrnn", batching=mode,
                   scale=api.resolve_name(scale), seed=seed)
    result = api.run(spec, scale=scale)
    return BatchingRunResult(
        dataset=dataset_name, mode=mode,
        runtime_seconds=result.runtime_seconds,
        best_val_mae=result.best_val_mae, peak_bytes=result.peak_bytes,
        val_curve=result.val_curve)


def run_table3(scale: str | Scale = "tiny", seed: int = 0,
               datasets: tuple[str, ...] = DATASETS
               ) -> list[BatchingRunResult]:
    """Both batching modes on every Table-3 dataset (also Figure 5 data)."""
    scale = get_scale(scale)
    results = []
    for name in datasets:
        for mode in ("base", "index"):
            results.append(_train_once(name, mode, scale, seed))
    return results


def report(results: list[BatchingRunResult] | None = None,
           scale: str | Scale = "tiny") -> RunReport:
    results = results if results is not None else run_table3(scale)
    rep = RunReport(
        "Table 3: base vs index-batching (scaled synthetic stand-ins)",
        ["Run", "Runtime (s)", "Best Val MAE", "Peak Mem (MB)"])
    for r in results:
        rep.add_row(f"{r.mode}-{r.dataset}", f"{r.runtime_seconds:.2f}",
                    f"{r.best_val_mae:.4f}", f"{r.peak_bytes / MB:.2f}")
    return rep


if __name__ == "__main__":
    print(report(scale="small"))
