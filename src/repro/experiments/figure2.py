"""Figure 2: system-memory traces of DCRNN vs PGT-DCRNN on PeMS-All-LA
and PeMS, including the OOM crashes at full PeMS scale."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import get_spec
from repro.hardware.specs import polaris_host
from repro.preprocessing.memory_model import (
    simulate_dcrnn_loader,
    simulate_standard_pipeline,
)
from repro.profiling import RunReport
from repro.utils.errors import OutOfMemoryError
from repro.utils.sizes import GB, format_bytes


@dataclass
class MemoryTrace:
    """One (model, dataset) curve of Figure 2."""

    model: str
    dataset: str
    trace: list[tuple[float, int]]   # (event index, bytes in use)
    peak: int
    oom: bool


def _simulate(model: str, dataset: str) -> MemoryTrace:
    space = polaris_host()
    spec = get_spec(dataset)
    sim = simulate_dcrnn_loader if model == "dcrnn" else simulate_standard_pipeline
    oom = False
    try:
        sim(spec, space)
    except OutOfMemoryError:
        oom = True
    return MemoryTrace(model=model, dataset=dataset,
                       trace=space.usage_trace(), peak=space.peak, oom=oom)


def run_figure2() -> list[MemoryTrace]:
    """All four curves: {DCRNN, PGT-DCRNN} x {PeMS-All-LA, PeMS}."""
    return [
        _simulate(model, dataset)
        for model in ("dcrnn", "pgt-dcrnn")
        for dataset in ("pems-all-la", "pems")
    ]


def report(traces: list[MemoryTrace] | None = None) -> RunReport:
    traces = traces if traces is not None else run_figure2()
    rep = RunReport(
        "Figure 2: memory during preprocessing/training (512 GB node limit)",
        ["Model", "Dataset", "Peak", "Outcome"])
    for t in traces:
        rep.add_row(t.model, t.dataset, format_bytes(t.peak),
                    "OOM ERROR" if t.oom else "fits")
    rep.meta["limit"] = 512 * GB
    return rep


if __name__ == "__main__":
    print(report())
