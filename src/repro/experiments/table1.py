"""Table 1: dataset sizes before and after standard preprocessing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import CATALOG, DatasetSpec
from repro.preprocessing.memory_model import table1_sizes
from repro.profiling import RunReport
from repro.utils.sizes import format_bytes


@dataclass
class Table1Row:
    spec: DatasetSpec
    before_bytes: int
    after_bytes: int

    @property
    def growth_factor(self) -> float:
        return self.after_bytes / self.before_bytes


def run_table1() -> list[Table1Row]:
    """Compute every catalog row of the paper's Table 1."""
    rows = []
    for spec in CATALOG.values():
        before, after = table1_sizes(spec)
        rows.append(Table1Row(spec, before, after))
    return rows


def report(rows: list[Table1Row] | None = None) -> RunReport:
    rows = rows if rows is not None else run_table1()
    rep = RunReport(
        "Table 1: dataset sizes before/after preprocessing (float64)",
        ["Dataset", "Type", "Nodes", "Entries", "Size Before", "Size After",
         "Growth"])
    for r in rows:
        rep.add_row(r.spec.name, r.spec.domain, r.spec.num_nodes,
                    r.spec.num_entries, format_bytes(r.before_bytes),
                    format_bytes(r.after_bytes), f"{r.growth_factor:.1f}x")
    return rep


if __name__ == "__main__":
    print(report())
