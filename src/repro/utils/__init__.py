"""Shared utilities: seeding, sizes, validation, errors."""

from repro.utils.errors import (
    CommunicatorError,
    OutOfMemoryError,
    ReproError,
    ShapeError,
)
from repro.utils.seeding import derive_seed, new_rng, seed_everything
from repro.utils.sizes import format_bytes, GB, KB, MB, TB

__all__ = [
    "CommunicatorError",
    "OutOfMemoryError",
    "ReproError",
    "ShapeError",
    "derive_seed",
    "new_rng",
    "seed_everything",
    "format_bytes",
    "KB",
    "MB",
    "GB",
    "TB",
]
