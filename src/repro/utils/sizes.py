"""Byte-size constants and human-readable formatting."""

from __future__ import annotations

KB = 1024
MB = 1024**2
GB = 1024**3
TB = 1024**4

_UNITS = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]


def format_bytes(n: int | float) -> str:
    """Format a byte count the way the paper's tables do (e.g. ``'2.54 GB'``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in _UNITS:
        if n >= unit:
            return f"{sign}{n / unit:.2f} {name}"
    return f"{sign}{n:.0f} B"
