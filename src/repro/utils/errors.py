"""Exception hierarchy used across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError, ValueError):
    """An array had an incompatible or invalid shape."""


class OutOfMemoryError(ReproError, MemoryError):
    """A simulated memory space exceeded its capacity.

    Mirrors the OOM crashes the paper reports when standard preprocessing of
    PeMS exceeds a Polaris node's 512 GB of RAM (paper Fig. 2 / Fig. 6).
    """

    def __init__(self, message: str, *, space: str = "", requested: int = 0,
                 capacity: int = 0, in_use: int = 0):
        super().__init__(message)
        self.space = space
        self.requested = requested
        self.capacity = capacity
        self.in_use = in_use


class CommunicatorError(ReproError, RuntimeError):
    """A collective or point-to-point operation was used incorrectly."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file could not be written or read back.

    Raised instead of leaking raw NumPy/zipfile internals when an ``.npz``
    archive is corrupted, truncated, or not a checkpoint at all; the
    message always names the offending path.
    """


class ReshardError(ReproError, ValueError):
    """A checkpoint could not be re-partitioned to a new world size.

    Raised by :func:`repro.elastic.reshard_checkpoint` when the
    transformation would be unsound (global batch does not divide, the
    cursor is mid-epoch under a partition-dependent shuffle, or the
    archive is not a resumable training checkpoint) — never silently
    approximated.
    """


class SessionFailure(ReproError, RuntimeError):
    """A serving session died mid-dispatch (injected or real).

    The serving resilience layer (:mod:`repro.serving.resilience`)
    catches this at the gateway: the failed batch's requests are retried,
    degraded, or failed explicitly — never silently dropped.
    """
