"""Deterministic seeding helpers.

All stochastic components (data generation, parameter init, shuffling,
dropout) draw from ``numpy.random.Generator`` instances produced here, so a
single seed reproduces an entire experiment, and per-rank / per-component
streams are independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

_GLOBAL_SEED: int | None = None


def seed_everything(seed: int) -> None:
    """Set the process-wide base seed used by :func:`new_rng` defaults."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed % (2**32))


def global_seed() -> int:
    """Return the base seed (0 when :func:`seed_everything` was never called)."""
    return 0 if _GLOBAL_SEED is None else _GLOBAL_SEED


def derive_seed(*components: object, base: int | None = None) -> int:
    """Derive a stable 63-bit seed from a base seed plus string components.

    Independent streams (e.g. one per rank, per epoch) should derive their
    seeds from the same base with distinguishing components, never by adding
    small integers to the base (which creates correlated streams).
    """
    if base is None:
        base = global_seed()
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base)).encode())
    for c in components:
        h.update(b"\x1f")
        h.update(str(c).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def new_rng(*components: object, base: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(*components, base=base))
