"""ST-LLM: spatial-temporal token embeddings + a GPT-2-style transformer.

Liu et al. (2024) encode each node's input window as a token, add spatial
and temporal embeddings, and run the tokens through a (partially frozen)
GPT-2.  The paper's Figure 10 scales this model with
distributed-index-batching on PeMS-BAY — possible because ST-LLM consumes
exactly the same sequence-to-sequence batches.

We build the same architecture at configurable size: a per-node window
projection, learned spatial + time-of-day embeddings, ``num_blocks``
pre-norm transformer blocks (optionally frozen, mirroring the frozen
pretrained backbone), and a regression head over the output horizon.
Tokens attend over the *node* axis, giving spatial mixing.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.models.base import STModel
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module, Parameter
from repro.utils.seeding import new_rng


class TransformerBlock(Module):
    """Pre-norm transformer block (GPT-2 style)."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: int = 4,
                 dropout: float = 0.0, *, seed_name: str = "block"):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, seed_name=f"{seed_name}.attn")
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, mlp_ratio * dim, seed_name=f"{seed_name}.fc1")
        self.fc2 = Linear(mlp_ratio * dim, dim, seed_name=f"{seed_name}.fc2")
        self.drop = Dropout(dropout, seed_name=f"{seed_name}.drop")

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        h = self.fc2(self.fc1(self.ln2(x)).relu())
        return x + self.drop(h)


class STLLM(STModel):
    """Token-embedding transformer for spatiotemporal forecasting."""

    def __init__(self, num_nodes: int, horizon: int, in_features: int,
                 dim: int = 64, num_heads: int = 4, num_blocks: int = 2,
                 frozen_blocks: int = 0, dropout: float = 0.0,
                 *, seed: int | str = 0):
        super().__init__()
        if frozen_blocks > num_blocks:
            raise ValueError("frozen_blocks cannot exceed num_blocks")
        self.horizon = horizon
        self.num_nodes = num_nodes
        self.in_features = in_features
        self.dim = dim
        rng = new_rng("model", "stllm", seed)
        # Each node's flattened input window becomes one token.
        self.input_proj = Linear(horizon * in_features, dim,
                                 seed_name=f"stllm{seed}.proj")
        self.spatial_emb = Parameter(
            (rng.standard_normal((num_nodes, dim)) * 0.02).astype(np.float32))
        self.temporal_proj = Linear(horizon, dim, seed_name=f"stllm{seed}.time")
        self.blocks = [
            TransformerBlock(dim, num_heads, dropout=dropout,
                             seed_name=f"stllm{seed}.block{i}")
            for i in range(num_blocks)
        ]
        # Freeze the first `frozen_blocks` blocks (pretrained-backbone
        # analogue): their parameters receive no gradient updates.
        for block in self.blocks[:frozen_blocks]:
            for p in block.parameters():
                p.requires_grad = False
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, horizon, seed_name=f"stllm{seed}.head")

    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        batch = x.shape[0]
        # [B, h, N, F] -> tokens [B, N, h*F]
        tokens = x.transpose(0, 2, 1, 3).reshape(batch, self.num_nodes,
                                                 self.horizon * self.in_features)
        emb = self.input_proj(tokens) + self.spatial_emb
        # Time-of-day context from the last feature channel, node-averaged.
        if self.in_features > 1:
            tod = x[:, :, :, self.in_features - 1].mean(axis=2)  # [B, h]
            emb = emb + self.temporal_proj(tod).reshape(batch, 1, self.dim)
        h = emb
        for block in self.blocks:
            h = block(h)
        h = self.ln_f(h)
        out = self.head(h)  # [B, N, horizon]
        return out.transpose(0, 2, 1).reshape(batch, self.horizon,
                                              self.num_nodes, 1)

    def flops_per_snapshot(self) -> float:
        n, d = self.num_nodes, self.dim
        per_block = 4 * 2 * n * d * d + 2 * 2 * n * n * d + 2 * 2 * n * d * 4 * d
        total = len(self.blocks) * per_block + 2 * n * self.horizon * (
            self.in_features * self.dim + self.dim)
        return 3.0 * total
