"""A3T-GCN: Attention Temporal Graph Convolutional Network (Zhu et al. 2020).

T-GCN hidden states over the input sequence are combined by a learned
global temporal-attention weighting; the context vector feeds a regression
head that emits the whole output sequence at once.  This is the model of
the paper's broader-applicability study (Table 6), integrated with
index-batching exactly like DCRNN because it consumes the same
sequence-to-sequence batches.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.graph.supports import symmetric_normalized_adjacency
from repro.models.base import STModel
from repro.models.tgcn import TGCNCell
from repro.nn.layers import Linear
from repro.nn.module import Module


class A3TGCN(STModel):
    """Attention-pooled T-GCN for multi-step forecasting."""

    def __init__(self, weights: sp.spmatrix, horizon: int, in_features: int,
                 hidden_dim: int = 32, attention_dim: int = 16,
                 *, seed: int | str = 0):
        super().__init__()
        self.horizon = horizon
        self.num_nodes = weights.shape[0]
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        support = symmetric_normalized_adjacency(weights)
        self.cell = TGCNCell(support, in_features, hidden_dim,
                             seed_name=f"a3tgcn{seed}.cell")
        # Global attention over time: score each hidden state.
        self.attn_hidden = Linear(hidden_dim, attention_dim,
                                  seed_name=f"a3tgcn{seed}.attn1")
        self.attn_score = Linear(attention_dim, 1,
                                 seed_name=f"a3tgcn{seed}.attn2")
        self.head = Linear(hidden_dim, horizon, seed_name=f"a3tgcn{seed}.head")

    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        batch = x.shape[0]
        h = self.cell.init_hidden(batch)
        states = []
        for t in range(self.horizon):
            h = self.cell(x[:, t], h)
            states.append(h)
        seq = F.stack(states, axis=1)                 # [B, T, N, H]
        scores = self.attn_score(self.attn_hidden(seq).tanh())  # [B, T, N, 1]
        weights = F.softmax(scores, axis=1)
        context = (seq * weights).sum(axis=1)         # [B, N, H]
        out = self.head(context)                      # [B, N, horizon]
        return out.transpose(0, 2, 1).reshape(batch, self.horizon,
                                              self.num_nodes, 1)
