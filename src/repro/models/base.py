"""Shared model interface and cost descriptors."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.errors import ShapeError


class STModel(Module):
    """Base class for sequence-to-sequence spatiotemporal models.

    ``forward(x)`` takes ``[batch, horizon, nodes, features]`` and returns
    ``[batch, horizon, nodes, 1]`` predictions of the primary channel.
    """

    horizon: int
    num_nodes: int
    in_features: int

    def check_input(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ShapeError(f"expected [batch, horizon, nodes, features], "
                             f"got shape {x.shape}")
        if x.shape[1] != self.horizon:
            raise ShapeError(f"model horizon {self.horizon} != input {x.shape[1]}")
        if x.shape[2] != self.num_nodes:
            raise ShapeError(f"model nodes {self.num_nodes} != input {x.shape[2]}")
        if x.shape[3] != self.in_features:
            raise ShapeError(f"model features {self.in_features} != input {x.shape[3]}")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """NumPy in, NumPy out, no grad (evaluation helper)."""
        from repro.autograd.grad_mode import no_grad
        with no_grad():
            out = self.forward(Tensor(x))
        return out.data

    def flops_per_snapshot(self) -> float:
        """Approximate forward+backward flops for one snapshot.

        Used by the analytic cost model to extrapolate step times to
        full-scale shapes.  Subclasses override with model-specific counts;
        the default derives from parameter count (dense lower bound).
        """
        return 6.0 * self.num_parameters() * self.horizon
