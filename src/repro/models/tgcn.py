"""T-GCN: graph convolution + GRU (Zhao et al. 2020), the backbone of A3T-GCN."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.graph.supports import symmetric_normalized_adjacency
from repro.models.base import STModel
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.rnn import gru_cell_step
from repro.utils.seeding import new_rng


class GraphConv(Module):
    """One-hop GCN layer ``sigma(A_hat X W + b)`` without the nonlinearity."""

    def __init__(self, support: sp.spmatrix, in_dim: int, out_dim: int,
                 *, seed_name: str = "gcn"):
        super().__init__()
        self.support = support.tocsr()
        rng = new_rng("nn", seed_name, in_dim, out_dim)
        self.weight = Parameter(glorot_uniform(rng, in_dim, out_dim))
        self.bias = Parameter(zeros_((out_dim,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.sparse_matmul(self.support, x) @ self.weight + self.bias


class TGCNCell(Module):
    """GRU cell whose input transform is a graph convolution."""

    def __init__(self, support: sp.spmatrix, in_dim: int, hidden_dim: int,
                 *, seed_name: str = "tgcn"):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_nodes = support.shape[0]
        self.gates = GraphConv(support, in_dim + hidden_dim, 2 * hidden_dim,
                               seed_name=f"{seed_name}.gates")
        self.gates.bias.data[:] = 1.0
        self.candidate = GraphConv(support, in_dim + hidden_dim, hidden_dim,
                                   seed_name=f"{seed_name}.cand")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return gru_cell_step(self.gates, self.candidate, x, h,
                             self.hidden_dim)

    def init_hidden(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.num_nodes, self.hidden_dim),
                               dtype=np.float32))


class TGCN(STModel):
    """Stepwise T-GCN emitting one prediction per input step."""

    def __init__(self, weights: sp.spmatrix, horizon: int, in_features: int,
                 hidden_dim: int = 64, *, seed: int | str = 0):
        super().__init__()
        self.horizon = horizon
        self.num_nodes = weights.shape[0]
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        support = symmetric_normalized_adjacency(weights)
        self.cell = TGCNCell(support, in_features, hidden_dim,
                             seed_name=f"tgcn{seed}.cell")
        self.proj = Linear(hidden_dim, 1, seed_name=f"tgcn{seed}.proj")

    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        h = self.cell.init_hidden(x.shape[0])
        outputs = []
        for t in range(self.horizon):
            h = self.cell(x[:, t], h)
            outputs.append(self.proj(h))
        return F.stack(outputs, axis=1)
