"""Spatiotemporal forecasting models.

Every model maps an input sequence ``[batch, horizon, nodes, features]`` to
a prediction sequence ``[batch, horizon, nodes, 1]`` (the primary signal
channel), matching the paper's sequence-to-sequence formulation.
"""

from repro.models.base import STModel
from repro.models.dconv import DiffusionConv
from repro.models.dcrnn import DCGRUCell, DCRNN
from repro.models.pgt_dcrnn import PGTDCRNN
from repro.models.tgcn import TGCNCell, TGCN
from repro.models.a3tgcn import A3TGCN
from repro.models.stgcn import STGCN
from repro.models.stllm import STLLM

__all__ = [
    "STModel",
    "DiffusionConv",
    "DCGRUCell",
    "DCRNN",
    "PGTDCRNN",
    "TGCNCell",
    "TGCN",
    "A3TGCN",
    "STGCN",
    "STLLM",
]
