"""PGT-DCRNN: the lightweight PGT variant of DCRNN (paper §3).

The paper's case study modifies PGT's DCRNN layer to support batching and
*stepwise* sequence-to-sequence prediction: a single spatiotemporal
diffusion-convolution recurrent layer maintains a hidden state across the
input sequence and emits an output at every step, "producing a prediction
sequence of equal length to the input".  No encoder-decoder, no scheduled
sampling — that is exactly why it is ~15x faster than the full DCRNN while
remaining a faithful diffusion-convolution model.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.models.base import STModel
from repro.models.dcrnn import DCGRUCell
from repro.nn.layers import Linear


class PGTDCRNN(STModel):
    """Single-layer stepwise DCRNN as implemented in PGT + this paper."""

    def __init__(self, supports: list[sp.spmatrix], horizon: int,
                 in_features: int, hidden_dim: int = 64, k_hops: int = 2,
                 *, seed: int | str = 0):
        super().__init__()
        self.horizon = horizon
        self.num_nodes = supports[0].shape[0]
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        self.cell = DCGRUCell(supports, in_features, hidden_dim, k_hops,
                              seed_name=f"pgtdcrnn{seed}.cell")
        self.proj = Linear(hidden_dim, 1, seed_name=f"pgtdcrnn{seed}.proj")

    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        batch = x.shape[0]
        h = self.cell.init_hidden(batch)
        outputs = []
        for t in range(self.horizon):
            h = self.cell(x[:, t], h)
            outputs.append(self.proj(h))
        return F.stack(outputs, axis=1)

    def flops_per_snapshot(self) -> float:
        per_step = self.cell.flops(1) + 2.0 * self.num_nodes * self.hidden_dim
        return 3.0 * self.horizon * per_step
