"""Diffusion convolution (Li et al. 2018), the spatial operator of DCRNN.

For supports ``{P_s}`` (forward/backward random-walk matrices) and diffusion
order ``K``, the layer computes

    out = concat_k,s( P_s^k X ) W + b

i.e. features are propagated 0..K hops along each diffusion direction and
the concatenated hop features are mixed by a dense map.  The number of
concatenated blocks is ``1 + S*K`` (identity hop counted once).

Two execution paths compute identical math:

- the **fused** path (default) records a single autograd node per call.
  Hops are written straight into slices of one node-major
  ``[nodes, batch, num_matrices * in_dim]`` block (no Python list, no
  ``concat``, no split-copy backward), sparse products run through the
  prepared-CSR kernel into rotating scratch buffers that persist across
  steps, and the backward scatters gradients through per-hop views of the
  same block.
- the **naive** path composes the public autograd ops exactly as the seed
  implementation did.  It exists as the parity reference: tests assert
  both paths agree to float tolerance in both dtypes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.autograd import functional as F
from repro.autograd.grad_mode import is_grad_enabled
from repro.autograd.sparse_kernels import prepared_csr
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.module import Module, Parameter
from repro.utils.errors import ShapeError
from repro.utils.seeding import new_rng


class _Scratch:
    """Per-(batch, dtype) persistent buffers for one DiffusionConv."""

    __slots__ = ("x0", "ping", "pong", "gout", "gcat", "gx", "gw", "gb",
                 "cat_eval")

    def __init__(self, n: int, b: int, f: int, m: int, o: int, dtype):
        self.x0 = np.empty((n, b, f), dtype)      # hop-0 input, node-major
        self.ping = np.empty((n, b, f), dtype)    # rotating hop buffers
        self.pong = np.empty((n, b, f), dtype)
        self.gout = np.empty((n, b, o), dtype)    # transposed output grad
        self.gcat = np.empty((n, b, m * f), dtype)
        self.gx = np.empty((n, b, f), dtype)      # accumulated input grad
        self.gw = np.empty((m * f, o), dtype)
        self.gb = np.empty((o,), dtype)
        self.cat_eval = None                      # lazy: no-grad forward only


class DiffusionConv(Module):
    """K-hop diffusion convolution over ``[batch, nodes, in_dim]`` inputs."""

    #: Class-wide switch so tests can force the naive reference path.
    fused_default: bool = True

    def __init__(self, supports: list[sp.spmatrix], in_dim: int, out_dim: int,
                 k_hops: int = 2, *, seed_name: str = "dconv",
                 fused: bool | None = None):
        super().__init__()
        if k_hops < 0:
            raise ValueError("k_hops must be >= 0")
        if not supports:
            raise ValueError("need at least one support matrix")
        self.supports = [s.tocsr() for s in supports]
        n = self.supports[0].shape[0]
        for s in self.supports:
            if s.shape != (n, n):
                raise ShapeError("all supports must be square and same size")
        self.num_nodes = n
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.k_hops = k_hops
        self.fused = fused
        self.num_matrices = 1 + len(self.supports) * k_hops
        rng = new_rng("nn", seed_name, in_dim, out_dim, k_hops)
        self.weight = Parameter(
            glorot_uniform(rng, self.num_matrices * in_dim, out_dim))
        self.bias = Parameter(zeros_((out_dim,)))
        self._scratch: dict[tuple, _Scratch] = {}

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.num_nodes or x.shape[2] != self.in_dim:
            raise ShapeError(f"expected [batch, {self.num_nodes}, {self.in_dim}], "
                             f"got {x.shape}")
        fused = self.fused if self.fused is not None else self.fused_default
        return self._forward_fused(x) if fused else self._forward_naive(x)

    def _forward_naive(self, x: Tensor) -> Tensor:
        """Reference composition of public autograd ops (seed semantics)."""
        hops = [x]
        for support in self.supports:
            xk = x
            for _ in range(self.k_hops):
                xk = F.sparse_matmul(support, xk)
                hops.append(xk)
        cat = F.concat(hops, axis=-1)  # [batch, nodes, num_matrices * in_dim]
        return cat @ self.weight + self.bias

    # ------------------------------------------------------------------
    def _get_scratch(self, b: int, dtype: np.dtype) -> _Scratch:
        key = (b, dtype.str)
        scr = self._scratch.get(key)
        if scr is None:
            if len(self._scratch) > 8:  # distinct batch sizes are rare
                self._scratch.clear()
            scr = _Scratch(self.num_nodes, b, self.in_dim,
                           self.num_matrices, self.out_dim, dtype)
            self._scratch[key] = scr
        return scr

    def _forward_fused(self, x: Tensor) -> Tensor:
        b, n, f = x.shape
        m, o, k = self.num_matrices, self.out_dim, self.k_hops
        dtype = x.dtype
        prepared = [prepared_csr(s, dtype) for s in self.supports]
        scr = self._get_scratch(b, dtype)
        rg = is_grad_enabled() and (x.requires_grad or
                                    self.weight.requires_grad or
                                    self.bias.requires_grad)

        # The hop block is consumed by backward (it is the GEMM input whose
        # transpose produces the weight gradient), so it must be owned per
        # call when gradients are on; in no-grad mode one persistent buffer
        # is reused instead.
        if rg:
            cat = np.empty((n, b, m * f), dtype)
        else:
            if scr.cat_eval is None:
                scr.cat_eval = np.empty((n, b, m * f), dtype)
            cat = scr.cat_eval

        backend = kernels.active_backend()
        np.copyto(scr.x0, x.data.transpose(1, 0, 2))
        cat[:, :, :f] = scr.x0
        x0_flat = scr.x0.reshape(n, b * f)
        col = f
        if k:
            for P in prepared:
                backend.diffusion_hops(P, x0_flat, cat, col, f, k,
                                       scr.ping, scr.pong)
                col += k * f

        cat2 = cat.reshape(n * b, m * f)
        out2 = np.empty((n * b, o), dtype)
        np.matmul(cat2, self.weight.data, out=out2)
        out2 += self.bias.data
        out = x._make(out2.reshape(n, b, o).transpose(1, 0, 2),
                      (x, self.weight, self.bias))
        if out.requires_grad:
            weight, bias = self.weight, self.bias

            def _bw(g: np.ndarray) -> None:
                np.copyto(scr.gout, g.transpose(1, 0, 2))
                g2 = scr.gout.reshape(n * b, o)
                if weight.requires_grad:
                    np.matmul(cat2.T, g2, out=scr.gw)
                    weight._accumulate(scr.gw)
                if bias.requires_grad:
                    np.sum(g2, axis=0, out=scr.gb)
                    bias._accumulate(scr.gb)
                if x.requires_grad:
                    gcat = scr.gcat
                    np.matmul(g2, weight.data.T, out=gcat.reshape(n * b, m * f))
                    np.copyto(scr.gx, gcat[:, :, :f])  # identity hop
                    col = f
                    for P in (prepared if k else ()):
                        # Chain the per-hop gradients back down:
                        # acc_k = g_k;  acc_{j} = P^T acc_{j+1} + g_j;
                        # input grad += P^T acc_1.
                        backend.diffusion_backward(P.T, gcat, col, f, k,
                                                   scr.gx, scr.ping, scr.pong)
                        col += k * f
                    x._accumulate(scr.gx.transpose(1, 0, 2))

            out._backward = _bw
        return out

    def flops(self, batch: int) -> float:
        """Forward flops for a batch (sparse propagation + dense mix)."""
        nnz = sum(s.nnz for s in self.supports)
        prop = 2.0 * batch * nnz * self.in_dim * self.k_hops
        mix = 2.0 * batch * self.num_nodes * self.num_matrices * self.in_dim * self.out_dim
        return prop + mix
