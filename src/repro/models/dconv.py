"""Diffusion convolution (Li et al. 2018), the spatial operator of DCRNN.

For supports ``{P_s}`` (forward/backward random-walk matrices) and diffusion
order ``K``, the layer computes

    out = concat_k,s( P_s^k X ) W + b

i.e. features are propagated 0..K hops along each diffusion direction and
the concatenated hop features are mixed by a dense map.  The number of
concatenated blocks is ``1 + S*K`` (identity hop counted once).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.module import Module, Parameter
from repro.utils.errors import ShapeError
from repro.utils.seeding import new_rng


class DiffusionConv(Module):
    """K-hop diffusion convolution over ``[batch, nodes, in_dim]`` inputs."""

    def __init__(self, supports: list[sp.spmatrix], in_dim: int, out_dim: int,
                 k_hops: int = 2, *, seed_name: str = "dconv"):
        super().__init__()
        if k_hops < 0:
            raise ValueError("k_hops must be >= 0")
        if not supports:
            raise ValueError("need at least one support matrix")
        self.supports = [s.tocsr() for s in supports]
        n = self.supports[0].shape[0]
        for s in self.supports:
            if s.shape != (n, n):
                raise ShapeError("all supports must be square and same size")
        self.num_nodes = n
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.k_hops = k_hops
        self.num_matrices = 1 + len(self.supports) * k_hops
        rng = new_rng("nn", seed_name, in_dim, out_dim, k_hops)
        self.weight = Parameter(
            glorot_uniform(rng, self.num_matrices * in_dim, out_dim))
        self.bias = Parameter(zeros_((out_dim,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.num_nodes or x.shape[2] != self.in_dim:
            raise ShapeError(f"expected [batch, {self.num_nodes}, {self.in_dim}], "
                             f"got {x.shape}")
        hops = [x]
        for support in self.supports:
            xk = x
            for _ in range(self.k_hops):
                xk = F.sparse_matmul(support, xk)
                hops.append(xk)
        cat = F.concat(hops, axis=-1)  # [batch, nodes, num_matrices * in_dim]
        return cat @ self.weight + self.bias

    def flops(self, batch: int) -> float:
        """Forward flops for a batch (sparse propagation + dense mix)."""
        nnz = sum(s.nnz for s in self.supports)
        prop = 2.0 * batch * nnz * self.in_dim * self.k_hops
        mix = 2.0 * batch * self.num_nodes * self.num_matrices * self.in_dim * self.out_dim
        return prop + mix
