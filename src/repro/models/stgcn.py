"""STGCN: Spatio-Temporal Graph Convolutional Network (Yu et al., IJCAI-18).

One of the benchmark ST-GNNs the paper cites ([68]).  Unlike the
RNN-based models, STGCN is fully convolutional: gated temporal
convolutions (GLU) sandwich a Chebyshev-polynomial spatial convolution in
each "ST-Conv block".  It consumes the same ``[B, horizon, N, F]``
sequence-to-sequence batches, so index-batching applies unchanged —
another instance of the paper's broader-applicability argument.

Temporal convolutions are implemented as window-unfold + dense map, which
keeps the whole model inside the existing autograd op set.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.graph.supports import chebyshev_supports
from repro.models.base import STModel
from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module
from repro.utils.errors import ShapeError


class TemporalGatedConv(Module):
    """1-D causal-width convolution over time with GLU gating.

    Input ``[B, T, N, C_in]`` -> output ``[B, T - kernel + 1, N, C_out]``:
    each output step sees ``kernel`` consecutive input steps; the doubled
    channel output is split into value and gate halves (GLU).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 *, seed_name: str = "tconv"):
        super().__init__()
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.out_channels = out_channels
        self.lin = Linear(kernel * in_channels, 2 * out_channels,
                          seed_name=seed_name)
        # Residual projection when channel counts differ.
        self.residual = (Linear(in_channels, out_channels, bias=False,
                                seed_name=f"{seed_name}.res")
                         if in_channels != out_channels else None)

    def forward(self, x: Tensor) -> Tensor:
        t = x.shape[1]
        k = self.kernel
        if t < k:
            raise ShapeError(f"sequence length {t} shorter than kernel {k}")
        windows = F.concat([x[:, i: t - k + 1 + i] for i in range(k)],
                           axis=-1)                       # [B, T', N, k*C]
        h = self.lin(windows)
        value = h[..., : self.out_channels]
        gate = h[..., self.out_channels:]
        res = x[:, k - 1:]                                 # align residual
        if self.residual is not None:
            res = self.residual(res)
        return (value + res) * gate.sigmoid()              # gated + skip


class ChebGraphConv(Module):
    """Chebyshev spatial convolution over ``[B, T, N, C]`` tensors."""

    def __init__(self, weights: sp.spmatrix, in_channels: int,
                 out_channels: int, k: int = 3, *, seed_name: str = "cheb"):
        super().__init__()
        self.supports = chebyshev_supports(weights, k)
        self.lin = Linear(k * in_channels, out_channels, seed_name=seed_name)

    def forward(self, x: Tensor) -> Tensor:
        b, t, n, c = x.shape
        flat = x.reshape(b * t, n, c)
        hops = [F.sparse_matmul(s, flat) for s in self.supports]
        mixed = self.lin(F.concat(hops, axis=-1))
        return mixed.reshape(b, t, n, mixed.shape[-1]).relu()


class STConvBlock(Module):
    """Temporal GLU -> Chebyshev spatial conv -> temporal GLU -> LayerNorm."""

    def __init__(self, weights: sp.spmatrix, in_channels: int,
                 spatial_channels: int, out_channels: int, *,
                 kernel: int = 3, cheb_k: int = 3, seed_name: str = "block"):
        super().__init__()
        self.tconv1 = TemporalGatedConv(in_channels, spatial_channels,
                                        kernel, seed_name=f"{seed_name}.t1")
        self.sconv = ChebGraphConv(weights, spatial_channels,
                                   spatial_channels, cheb_k,
                                   seed_name=f"{seed_name}.s")
        self.tconv2 = TemporalGatedConv(spatial_channels, out_channels,
                                        kernel, seed_name=f"{seed_name}.t2")
        self.norm = LayerNorm(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return self.norm(self.tconv2(self.sconv(self.tconv1(x))))

    def shrink(self) -> int:
        """Time steps consumed by the two temporal convolutions."""
        return (self.tconv1.kernel - 1) + (self.tconv2.kernel - 1)


class STGCN(STModel):
    """Two ST-Conv blocks plus an output head emitting the full horizon."""

    def __init__(self, weights: sp.spmatrix, horizon: int, in_features: int,
                 channels: int = 32, spatial_channels: int = 16,
                 kernel: int = 3, cheb_k: int = 3, *, seed: int | str = 0):
        super().__init__()
        self.horizon = horizon
        self.num_nodes = weights.shape[0]
        self.in_features = in_features
        self.block1 = STConvBlock(weights, in_features, spatial_channels,
                                  channels, kernel=kernel, cheb_k=cheb_k,
                                  seed_name=f"stgcn{seed}.b1")
        self.block2 = STConvBlock(weights, channels, spatial_channels,
                                  channels, kernel=kernel, cheb_k=cheb_k,
                                  seed_name=f"stgcn{seed}.b2")
        remaining = horizon - self.block1.shrink() - self.block2.shrink()
        if remaining < 1:
            raise ShapeError(
                f"horizon {horizon} too short for kernel {kernel}: "
                f"{4 * (kernel - 1)} steps are consumed by the 4 temporal "
                f"convolutions")
        self.head = Linear(remaining * channels, horizon,
                           seed_name=f"stgcn{seed}.head")
        self._remaining = remaining
        self._channels = channels

    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        batch = x.shape[0]
        h = self.block2(self.block1(x))        # [B, T', N, C]
        h = h.transpose(0, 2, 1, 3).reshape(batch, self.num_nodes,
                                            self._remaining * self._channels)
        out = self.head(h)                     # [B, N, horizon]
        return out.transpose(0, 2, 1).reshape(batch, self.horizon,
                                              self.num_nodes, 1)
