"""DCRNN: Diffusion Convolutional Recurrent Neural Network (Li et al. 2018).

The full model the paper benchmarks as its PyTorch baseline: a GRU whose
matmuls are replaced by diffusion convolutions (:class:`DCGRUCell`), wired
as a sequence-to-sequence encoder-decoder.  The decoder rolls forward with
scheduled sampling during training (probability of using the ground truth
decays with global step) and feeds back its own predictions at inference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.models.base import STModel
from repro.models.dconv import DiffusionConv
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.rnn import gru_cell_step
from repro.utils.seeding import new_rng


class DCGRUCell(Module):
    """GRU cell with diffusion-convolution gates over ``[B, N, dim]`` states."""

    def __init__(self, supports: list[sp.spmatrix], in_dim: int,
                 hidden_dim: int, k_hops: int = 2, *, seed_name: str = "dcgru"):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_nodes = supports[0].shape[0]
        self.gates = DiffusionConv(supports, in_dim + hidden_dim,
                                   2 * hidden_dim, k_hops,
                                   seed_name=f"{seed_name}.gates")
        # Bias gates toward "keep state" at init (standard GRU trick).
        self.gates.bias.data[:] = 1.0
        self.candidate = DiffusionConv(supports, in_dim + hidden_dim,
                                       hidden_dim, k_hops,
                                       seed_name=f"{seed_name}.cand")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return gru_cell_step(self.gates, self.candidate, x, h,
                             self.hidden_dim)

    def init_hidden(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.num_nodes, self.hidden_dim),
                               dtype=np.float32))

    def flops(self, batch: int) -> float:
        return self.gates.flops(batch) + self.candidate.flops(batch)


class DCRNN(STModel):
    """Encoder-decoder DCRNN for sequence-to-sequence forecasting.

    Parameters mirror the reference implementation: ``num_layers`` stacked
    DCGRU cells in both encoder and decoder, diffusion order ``k_hops``,
    scheduled sampling controlled by ``cl_decay_steps`` (curriculum
    learning decay; 0 disables teacher forcing entirely).
    """

    def __init__(self, supports: list[sp.spmatrix], horizon: int,
                 in_features: int, hidden_dim: int = 64, num_layers: int = 2,
                 k_hops: int = 2, cl_decay_steps: int = 1000,
                 *, seed: int | str = 0):
        super().__init__()
        self.horizon = horizon
        self.num_nodes = supports[0].shape[0]
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.cl_decay_steps = cl_decay_steps
        self.global_step = 0
        self._rng = new_rng("model", "dcrnn", seed)

        self.encoder = [
            DCGRUCell(supports, in_features if i == 0 else hidden_dim,
                      hidden_dim, k_hops, seed_name=f"dcrnn{seed}.enc{i}")
            for i in range(num_layers)
        ]
        # Decoder input is the previous prediction (1 channel).
        self.decoder = [
            DCGRUCell(supports, 1 if i == 0 else hidden_dim,
                      hidden_dim, k_hops, seed_name=f"dcrnn{seed}.dec{i}")
            for i in range(num_layers)
        ]
        self.proj = Linear(hidden_dim, 1, seed_name=f"dcrnn{seed}.proj")

    # -- scheduled sampling --------------------------------------------
    def _teacher_forcing_prob(self) -> float:
        if self.cl_decay_steps <= 0:
            return 0.0
        k = float(self.cl_decay_steps)
        return k / (k + np.exp(self.global_step / k))

    def forward(self, x: Tensor, targets: np.ndarray | None = None) -> Tensor:
        """``x``: [B, h, N, F]; optional ``targets`` [B, h, N, >=1] enable
        scheduled sampling during training."""
        self.check_input(x)
        batch = x.shape[0]
        # Encode.
        hidden = [cell.init_hidden(batch) for cell in self.encoder]
        for t in range(self.horizon):
            inp = x[:, t]
            for i, cell in enumerate(self.encoder):
                hidden[i] = cell(inp, hidden[i])
                inp = hidden[i]
        # Decode with GO symbol.
        dec_hidden = hidden
        go = Tensor(np.zeros((batch, self.num_nodes, 1), dtype=np.float32))
        outputs = []
        prev = go
        use_tf = (self.training and targets is not None)
        tf_prob = self._teacher_forcing_prob() if use_tf else 0.0
        for t in range(self.horizon):
            inp = prev
            for i, cell in enumerate(self.decoder):
                dec_hidden[i] = cell(inp, dec_hidden[i])
                inp = dec_hidden[i]
            step_out = self.proj(inp)  # [B, N, 1]
            outputs.append(step_out)
            if use_tf and self._rng.random() < tf_prob:
                prev = Tensor(np.ascontiguousarray(targets[:, t, :, :1],
                                                   dtype=np.float32))
            else:
                prev = step_out
        if self.training:
            self.global_step += 1
        return F.stack(outputs, axis=1)  # [B, h, N, 1]

    def flops_per_snapshot(self) -> float:
        enc = sum(c.flops(1) for c in self.encoder)
        dec = sum(c.flops(1) for c in self.decoder)
        proj = 2.0 * self.num_nodes * self.hidden_dim
        # x3 for backward pass (standard 2x backward + 1x forward rule).
        return 3.0 * self.horizon * (enc + dec + proj)
