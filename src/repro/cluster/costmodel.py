"""Latency-bandwidth (alpha-beta) communication and I/O cost models.

These models produce the *simulated* runtimes of the scaling experiments.
Collectives follow the standard ring-algorithm formulas; the shared
parallel filesystem adds the jitter the paper observed (preprocessing times
"ranging from 11 seconds to 32 seconds ... regardless of the number of
workers", §5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.hardware.specs import (
    NVLINK_BW,
    PFS_JITTER,
    PFS_READ_BW,
    SLINGSHOT_BW,
    SLINGSHOT_LATENCY,
)
from repro.utils.seeding import new_rng


@dataclass
class CommCostModel:
    """Time models for the collective operations DDP training issues.

    Intra-node traffic uses NVLink; anything spanning nodes uses the
    Slingshot NIC.  ``fabric_aggregate_bw`` caps the *total* simultaneous
    data-plane traffic — on-demand batch fetches from all workers contend
    for the same bisection/PFS bandwidth, which is why baseline DDP's
    communication time barely improves with more workers (Fig. 7, left).
    """

    topology: ClusterTopology
    alpha: float = SLINGSHOT_LATENCY
    beta_inter: float = SLINGSHOT_BW
    beta_intra: float = NVLINK_BW
    fabric_aggregate_bw: float = 4 * SLINGSHOT_BW

    def _beta(self) -> float:
        return self.beta_inter if self.topology.spans_nodes() else self.beta_intra

    def _alpha(self) -> float:
        # NVLink latency is ~2 orders smaller; modelled as alpha/10.
        return self.alpha if self.topology.spans_nodes() else self.alpha / 10.0

    def p2p_time(self, nbytes: int, same_node: bool = False) -> float:
        """One point-to-point message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        beta = self.beta_intra if same_node else self.beta_inter
        alpha = self.alpha / 10.0 if same_node else self.alpha
        return alpha + nbytes / beta

    def allreduce_time(self, nbytes: int) -> float:
        """Ring allreduce: ``2(p-1) alpha + 2 (p-1)/p n/beta``."""
        p = self.topology.world_size
        if p == 1 or nbytes == 0:
            return 0.0
        return (2 * (p - 1) * self._alpha()
                + 2 * (p - 1) / p * nbytes / self._beta())

    def reduce_scatter_time(self, nbytes: int) -> float:
        """Ring reduce-scatter: ``(p-1) alpha + (p-1)/p n/beta``.

        Exactly half an allreduce — the ring algorithm's first phase.
        """
        p = self.topology.world_size
        if p == 1 or nbytes == 0:
            return 0.0
        return ((p - 1) * self._alpha()
                + (p - 1) / p * nbytes / self._beta())

    def broadcast_time(self, nbytes: int) -> float:
        """Binomial-tree broadcast: ``ceil(log2 p) (alpha + n/beta)``."""
        p = self.topology.world_size
        if p == 1 or nbytes == 0:
            return 0.0
        rounds = int(np.ceil(np.log2(p)))
        return rounds * (self._alpha() + nbytes / self._beta())

    def allgather_time(self, nbytes_per_rank: int) -> float:
        """Ring allgather of ``nbytes_per_rank`` from each rank."""
        p = self.topology.world_size
        if p == 1 or nbytes_per_rank == 0:
            return 0.0
        return (p - 1) * (self._alpha() + nbytes_per_rank / self._beta())

    def contended_fetch_time(self, total_bytes_all_ranks: int,
                             messages: int = 1) -> float:
        """On-demand data-plane fetches issued by all ranks at once.

        The aggregate volume shares ``fabric_aggregate_bw``; per-message
        latency is charged once per message per rank.
        """
        if total_bytes_all_ranks < 0:
            raise ValueError("bytes must be non-negative")
        return (messages * self.alpha
                + total_bytes_all_ranks / self.fabric_aggregate_bw)


def queueing_latency(service_seconds: float, utilization: float) -> float:
    """Mean residence time of an M/M/1-style server: ``service / (1 -
    rho)``.  Past saturation (``rho >= 1``) the queue grows without
    bound, so the projection is ``inf`` — which is exactly the signal
    the capacity planner uses to rule a fleet size out."""
    if service_seconds < 0:
        raise ValueError("service_seconds must be non-negative")
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    if utilization >= 1.0:
        return float("inf")
    return service_seconds / (1.0 - utilization)


def gpu_seconds(world: int, seconds: float) -> float:
    """Accelerator-seconds a ``world``-rank run bills for ``seconds`` of
    wall time — the cost axis that makes a faster-but-wider run
    comparable to a slower-but-narrower one."""
    if world < 1:
        raise ValueError(f"world must be >= 1, got {world}")
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    return float(world) * float(seconds)


@dataclass
class PFSModel:
    """Shared parallel-filesystem reads with load jitter."""

    read_bw: float = PFS_READ_BW
    jitter: float = PFS_JITTER

    def read_time(self, nbytes: int, *, seed: int | str = 0,
                  parallel_readers: int = 1) -> float:
        """Seconds to read ``nbytes``; jitter is deterministic in ``seed``.

        Reads from many ranks of the same file are broadcast-friendly
        (collective read), so ``parallel_readers`` only mildly degrades
        effective bandwidth (log contention).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        rng = new_rng("pfs", seed)
        base = nbytes / self.read_bw
        contention = 1.0 + 0.15 * np.log2(max(parallel_readers, 1))
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * contention * max(factor, 0.05)
