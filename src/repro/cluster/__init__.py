"""Cluster topology and communication/IO cost models (Polaris profile)."""

from repro.cluster.topology import ClusterTopology
from repro.cluster.costmodel import CommCostModel, PFSModel

__all__ = ["ClusterTopology", "CommCostModel", "PFSModel"]
