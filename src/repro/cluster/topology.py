"""Mapping ranks onto nodes and GPUs.

The paper's scaling study assigns 4 workers per Polaris node (one per
A100); 4, 8, 16, 32, 64 and 128 GPUs correspond to 1, 2, 4, 8, 16 and 32
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import NodeSpec, POLARIS_NODE


@dataclass(frozen=True)
class ClusterTopology:
    """World-size ranks laid out densely over identical nodes."""

    world_size: int
    node: NodeSpec = POLARIS_NODE

    def __post_init__(self):
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node

    @property
    def num_nodes(self) -> int:
        return -(-self.world_size // self.gpus_per_node)  # ceil division

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range [0, {self.world_size})")
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        return rank % self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def spans_nodes(self) -> bool:
        """True when communication must cross the Slingshot fabric."""
        return self.num_nodes > 1
