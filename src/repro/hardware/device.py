"""Devices and host<->device transfer links."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory import MemorySpace
from repro.profiling.clock import SimClock


@dataclass
class TransferLink:
    """A latency/bandwidth link (PCIe, NVLink, or network NIC).

    ``time(nbytes)`` is the classic alpha-beta model: latency plus
    bytes over bandwidth.
    """

    bandwidth: float            # bytes / second
    latency: float = 0.0        # seconds per message

    def time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


class Device:
    """A compute device: a memory space plus compute/transfer rates.

    ``kind`` is ``"cpu"`` or ``"gpu"``.  The flops figure is *effective*
    throughput used by the analytic cost model, not peak datasheet flops;
    experiment harnesses calibrate an efficiency factor against real
    measured numpy step times.
    """

    def __init__(self, name: str, kind: str, memory: MemorySpace,
                 flops: float, mem_bw: float,
                 link_to_host: TransferLink | None = None,
                 clock: SimClock | None = None):
        if kind not in ("cpu", "gpu"):
            raise ValueError(f"unknown device kind {kind!r}")
        self.name = name
        self.kind = kind
        self.memory = memory
        self.flops = flops
        self.mem_bw = mem_bw
        self.link_to_host = link_to_host
        self.clock = clock or memory.clock or SimClock()

    def compute_time(self, flops: float, efficiency: float = 0.25) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / (self.flops * efficiency)

    def copy_time(self, nbytes: int) -> float:
        """Seconds for an on-device memory copy (read + write)."""
        return 2.0 * nbytes / self.mem_bw

    def transfer_in_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from the host into this device."""
        if self.link_to_host is None:
            return 0.0
        return self.link_to_host.time(nbytes)

    def __repr__(self) -> str:
        return f"Device({self.name!r}, kind={self.kind!r})"
