"""Hardware constants for the simulated Polaris substrate.

Polaris (paper §3.1): per node one 2.8 GHz AMD EPYC Milan 7543P (32 cores),
512 GB DDR4, four NVIDIA A100-40GB, HPE Slingshot-11 interconnect
(Dragonfly, ~25 GB/s injection per NIC, ~2 us latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.sizes import GB

# --- device-level constants ------------------------------------------------
A100_40GB = 40 * GB
A100_FP32_FLOPS = 19.5e12          # non-tensor-core FP32 peak
A100_HBM_BW = 1.555e12             # bytes/s
EPYC_MILAN_NODE_RAM = 512 * GB
EPYC_MILAN_FLOPS = 2.2e12          # 32 cores x AVX2 FP64-ish effective
DDR4_BW = 190e9                    # bytes/s (8 channels)
PCIE_GEN4_BW = 25e9                # bytes/s effective host<->device
PCIE_LATENCY = 10e-6               # seconds per transfer

# --- interconnect / filesystem ---------------------------------------------
SLINGSHOT_BW = 25e9                # bytes/s per NIC
SLINGSHOT_LATENCY = 2e-6           # seconds
NVLINK_BW = 300e9                  # intra-node GPU<->GPU aggregate per pair
PFS_READ_BW = 10e9                 # shared Lustre, nominal
PFS_JITTER = 0.6                   # +/- fraction of nominal time (paper §5.3.1
                                   # reports 11-40 s swings due to shared I/O)


@dataclass(frozen=True)
class NodeSpec:
    """One compute node's resources."""

    name: str
    gpus_per_node: int
    gpu_memory: int
    node_ram: int
    gpu_flops: float
    cpu_flops: float
    gpu_mem_bw: float
    cpu_mem_bw: float
    h2d_bw: float
    h2d_latency: float


POLARIS_NODE = NodeSpec(
    name="polaris",
    gpus_per_node=4,
    gpu_memory=A100_40GB,
    node_ram=EPYC_MILAN_NODE_RAM,
    gpu_flops=A100_FP32_FLOPS,
    cpu_flops=EPYC_MILAN_FLOPS,
    gpu_mem_bw=A100_HBM_BW,
    cpu_mem_bw=DDR4_BW,
    h2d_bw=PCIE_GEN4_BW,
    h2d_latency=PCIE_LATENCY,
)


def polaris_host(clock=None, baseline: int = 2 * GB):
    """A Polaris node's 512 GB host RAM as a MemorySpace.

    ``baseline`` approximates the resident interpreter + framework +
    OS share that psutil measurements include.
    """
    from repro.hardware.memory import MemorySpace
    return MemorySpace("polaris:ram", capacity=POLARIS_NODE.node_ram,
                       clock=clock, baseline=baseline)


def polaris_gpu(index: int = 0, clock=None, baseline: int = 0):
    """One A100's 40 GB HBM as a MemorySpace."""
    from repro.hardware.memory import MemorySpace
    return MemorySpace(f"polaris:gpu{index}", capacity=POLARIS_NODE.gpu_memory,
                       clock=clock, baseline=baseline)
