"""Byte-exact memory-space accounting with OOM faults and timelines.

A :class:`MemorySpace` stands in for a node's DDR4 or a GPU's HBM.  Both
the *mechanistic* full-scale pipeline simulations (which never allocate
real arrays) and the *real* small-scale pipelines (which do) record their
allocations here, so one accounting layer produces the paper's memory
traces (Figures 2 and 6) and peak columns (Tables 2, 3, 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.profiling.clock import SimClock
from repro.utils.errors import OutOfMemoryError
from repro.utils.sizes import format_bytes


@dataclass(frozen=True)
class Allocation:
    """Handle to a live allocation; pass back to :meth:`MemorySpace.free`."""

    alloc_id: int
    label: str
    nbytes: int


@dataclass(frozen=True)
class MemoryEvent:
    """One timeline entry: usage after an alloc (+) or free (-)."""

    time: float
    label: str
    delta: int
    in_use: int


class MemorySpace:
    """A capacity-limited memory pool with peak tracking.

    Parameters
    ----------
    name: e.g. ``"node0:ram"`` or ``"gpu0:hbm"``.
    capacity: bytes; ``None`` means unlimited (useful in unit tests).
    clock: timestamps for the usage timeline (optional).
    baseline: bytes considered permanently resident (OS + interpreter +
        framework); the paper's psutil measurements include this, so the
        experiment harness sets a small baseline for comparability.
    """

    def __init__(self, name: str, capacity: int | None = None,
                 clock: SimClock | None = None, baseline: int = 0):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        if baseline < 0 or (capacity is not None and baseline > capacity):
            raise ValueError("baseline must be within [0, capacity]")
        self.name = name
        self.capacity = capacity
        self.clock = clock
        self.baseline = int(baseline)
        self.in_use = int(baseline)
        self.peak = int(baseline)
        self.events: list[MemoryEvent] = []
        self._live: dict[int, Allocation] = {}
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else float(len(self.events))

    def allocate(self, label: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes``; raises :class:`OutOfMemoryError` on overflow."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.capacity is not None and self.in_use + nbytes > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: allocating {format_bytes(nbytes)} for "
                f"{label!r} exceeds capacity {format_bytes(self.capacity)} "
                f"(in use: {format_bytes(self.in_use)})",
                space=self.name, requested=nbytes,
                capacity=self.capacity, in_use=self.in_use)
        alloc = Allocation(next(self._ids), label, nbytes)
        self._live[alloc.alloc_id] = alloc
        self.in_use += nbytes
        self.peak = max(self.peak, self.in_use)
        self.events.append(MemoryEvent(self._now(), label, nbytes, self.in_use))
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation (double-free raises)."""
        if alloc.alloc_id not in self._live:
            raise KeyError(f"{self.name}: double free of {alloc.label!r}")
        del self._live[alloc.alloc_id]
        self.in_use -= alloc.nbytes
        self.events.append(MemoryEvent(self._now(), alloc.label,
                                       -alloc.nbytes, self.in_use))

    # ------------------------------------------------------------------
    @property
    def available(self) -> int | None:
        return None if self.capacity is None else self.capacity - self.in_use

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def usage_trace(self) -> list[tuple[float, int]]:
        """(time, bytes-in-use) pairs, one per event."""
        return [(e.time, e.in_use) for e in self.events]

    def would_fit(self, nbytes: int) -> bool:
        return self.capacity is None or self.in_use + nbytes <= self.capacity

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else format_bytes(self.capacity)
        return (f"MemorySpace({self.name!r}, in_use={format_bytes(self.in_use)}, "
                f"peak={format_bytes(self.peak)}, capacity={cap})")
