"""Simulated hardware: memory spaces, devices and transfer links.

The paper's results are peak-memory and runtime numbers on ALCF Polaris
(4x NVIDIA A100-40GB + 512 GB DDR4 per node).  We model the relevant
hardware behaviour: byte-exact memory accounting with OOM faults, and
latency/bandwidth cost models for host-device transfers.
:func:`usable_cores` is the one exception — it introspects the machine
the code is *actually* running on, for transport pool sizing and the
distributed benchmark's speedup gates.
"""

from repro.hardware.cores import usable_cores
from repro.hardware.memory import Allocation, MemoryEvent, MemorySpace
from repro.hardware.device import Device, TransferLink
from repro.hardware.specs import (
    A100_40GB,
    EPYC_MILAN_NODE_RAM,
    PCIE_GEN4_BW,
    POLARIS_NODE,
    NodeSpec,
    polaris_gpu,
    polaris_host,
)

__all__ = [
    "MemorySpace",
    "MemoryEvent",
    "Allocation",
    "Device",
    "TransferLink",
    "NodeSpec",
    "POLARIS_NODE",
    "A100_40GB",
    "EPYC_MILAN_NODE_RAM",
    "PCIE_GEN4_BW",
    "polaris_gpu",
    "polaris_host",
    "usable_cores",
]
