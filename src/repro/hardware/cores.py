"""Real-hardware introspection: how much parallelism this box offers.

Everything else in :mod:`repro.hardware` models the *paper's* hardware
(simulated Polaris nodes); this module asks about the machine the code
is actually running on, which the parallel transports and the
distributed benchmark need to size pools and interpret speedups.
"""

from __future__ import annotations

import os


def usable_cores() -> int:
    """CPU cores this process may actually run on.

    ``os.cpu_count()`` reports the machine's cores, but containers and
    batch schedulers routinely pin processes to a subset; sizing a rank
    pool or gating a wall-clock speedup claim on the machine total then
    over-commits (or over-promises).  Prefer the scheduling affinity
    mask when the platform exposes one, fall back to the machine count,
    and never report less than one.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux / restricted platforms
        return max(1, os.cpu_count() or 1)
