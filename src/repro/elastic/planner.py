"""Capacity planning: pick world/shard counts from budgets, analytically.

The elastic pieces need setpoints: how many ranks should a training run
relaunch with, and between which fleet sizes should the serving
autoscaler move?  This module answers both from the repository's
existing analytic models instead of inventing new ones —
:class:`~repro.training.perfmodel.TrainingPerfModel` prices training
epochs (and :meth:`reshard_seconds` prices the world change itself),
and :func:`~repro.cluster.costmodel.queueing_latency` projects serving
latency from utilization.

Both planners are deliberately conservative pickers, not optimizers:
they sweep a small candidate ladder (powers of two — the graph
partitioner's constraint, and the autoscaler's double/halve steps) and
return the *smallest* size that meets the budget, because the cost axis
(:func:`~repro.cluster.costmodel.gpu_seconds`) always grows with size
while the benefit saturates at the scaling knee the paper measures.
Every candidate's numbers ride along in ``sweep`` so a caller (or the
elastic bench) can audit the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.costmodel import gpu_seconds, queueing_latency
from repro.elastic.autoscaler import AutoscalerPolicy
from repro.training.perfmodel import TrainingPerfModel

POW2_WORLDS = (1, 2, 4, 8, 16, 32, 64, 128)


# ---------------------------------------------------------------------------
# Training: world size from an epoch / total-runtime budget
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TrainingPlan:
    """A chosen world size and the evidence behind it."""

    world_size: int
    strategy: str
    epochs: int
    epoch_seconds: float        # simulated, at the chosen world
    total_seconds: float        # preprocess + epochs, at the chosen world
    gpu_seconds: float          # world x total — the cost of the choice
    meets_budget: bool          # False: no candidate met it; this is the
                                # fastest available
    sweep: tuple                # (world, epoch_s, total_s, gpu_s) per candidate

    def summary(self) -> str:
        verdict = "meets budget" if self.meets_budget else "BEST EFFORT"
        return (f"train at world={self.world_size} ({self.strategy}): "
                f"{self.epoch_seconds:.1f} s/epoch, "
                f"{self.total_seconds:.0f} s total, "
                f"{self.gpu_seconds:.0f} GPU-s [{verdict}]")


def plan_training(perf: TrainingPerfModel, *, strategy: str,
                  epochs: int = 30,
                  epoch_budget_seconds: float | None = None,
                  total_budget_seconds: float | None = None,
                  worlds: tuple[int, ...] = POW2_WORLDS) -> TrainingPlan:
    """The smallest world size whose simulated run fits the budget(s).

    At least one of ``epoch_budget_seconds`` / ``total_budget_seconds``
    must be given; when both are, a candidate must satisfy both.  If no
    candidate fits, the plan falls back to the fastest candidate by
    total time and says so via ``meets_budget=False`` — a planner must
    answer, loudly, not refuse.
    """
    if epoch_budget_seconds is None and total_budget_seconds is None:
        raise ValueError("give epoch_budget_seconds and/or "
                         "total_budget_seconds; a plan needs a budget")
    candidates = sorted(int(w) for w in worlds)
    if not candidates or candidates[0] < 1:
        raise ValueError(f"worlds must be positive, got {worlds}")
    sims = perf.sweep_worlds(strategy, candidates, epochs)
    sweep = tuple(
        (w, sim.epoch.total, sim.total_seconds,
         gpu_seconds(w, sim.total_seconds))
        for w, sim in zip(candidates, sims))
    chosen = None
    for row in sweep:
        w, epoch_s, total_s, _ = row
        ok = ((epoch_budget_seconds is None
               or epoch_s <= epoch_budget_seconds)
              and (total_budget_seconds is None
                   or total_s <= total_budget_seconds))
        if ok:
            chosen = row
            break
    meets = chosen is not None
    if chosen is None:
        chosen = min(sweep, key=lambda row: row[2])
    w, epoch_s, total_s, gs = chosen
    return TrainingPlan(world_size=w, strategy=strategy, epochs=int(epochs),
                        epoch_seconds=epoch_s, total_seconds=total_s,
                        gpu_seconds=gs, meets_budget=meets, sweep=sweep)


# ---------------------------------------------------------------------------
# Serving: shard count from a traffic / latency budget
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServingPlan:
    """A chosen fleet size and the queueing projection behind it."""

    shards: int
    traffic_qps: float
    slo_p99: float
    batch: int                  # assumed coalesced batch per dispatch
    service_seconds: float      # per-batch service time at this fleet
    utilization: float          # offered batch-work / capacity
    projected_latency: float    # queueing residence time per batch
    meets_slo: bool
    sweep: tuple                # (shards, rho, projected) per candidate

    def summary(self) -> str:
        verdict = "meets SLO" if self.meets_slo else "BEST EFFORT"
        proj = ("inf" if self.projected_latency == float("inf")
                else f"{self.projected_latency * 1e3:.2f} ms")
        return (f"serve at {self.shards} shard(s): rho="
                f"{self.utilization:.2f}, projected latency {proj} vs SLO "
                f"{self.slo_p99 * 1e3:.2f} ms [{verdict}]")


def plan_serving(*, traffic_qps: float, slo_p99: float,
                 service_time: Callable[[int, int], float],
                 max_batch: int = 8,
                 shard_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
                 max_utilization: float = 0.85) -> ServingPlan:
    """The smallest fleet holding ``slo_p99`` under ``traffic_qps``.

    ``service_time(batch, shards)`` prices one dispatch — pass the same
    model the service runs with (e.g. the two-argument form of
    :func:`~repro.elastic.autoscaler.shard_scaled_service_time`'s
    closure).  The projection assumes full coalescing (dispatches of
    ``max_batch``) and an M/M/1-style queue: utilization is
    ``(traffic / batch) x service``, projected latency is
    :func:`queueing_latency`, and a candidate qualifies when the
    projection fits the SLO at utilization below ``max_utilization``
    (headroom for burstiness the mean-value model cannot see).  If no
    candidate qualifies, the largest fleet is returned with
    ``meets_slo=False``.
    """
    if traffic_qps <= 0:
        raise ValueError(f"traffic_qps must be positive, got {traffic_qps}")
    if slo_p99 <= 0:
        raise ValueError(f"slo_p99 must be positive, got {slo_p99}")
    if not 0 < max_utilization < 1:
        raise ValueError(f"max_utilization must be in (0, 1), "
                         f"got {max_utilization}")
    batch = int(max_batch)
    dispatch_rate = traffic_qps / batch
    candidates = sorted(int(s) for s in shard_counts)
    sweep = []
    chosen = None
    for s in candidates:
        svc = float(service_time(batch, s))
        rho = dispatch_rate * svc
        projected = queueing_latency(svc, rho)
        sweep.append((s, svc, rho, projected))
        if (chosen is None and rho <= max_utilization
                and projected <= slo_p99):
            chosen = sweep[-1]
    meets = chosen is not None
    if chosen is None:
        chosen = sweep[-1]
    s, svc, rho, projected = chosen
    return ServingPlan(shards=s, traffic_qps=float(traffic_qps),
                       slo_p99=float(slo_p99), batch=batch,
                       service_seconds=svc, utilization=rho,
                       projected_latency=projected, meets_slo=meets,
                       sweep=tuple(sweep))


def autoscaler_setpoints(*, low_qps: float, peak_qps: float, slo_p99: float,
                         service_time: Callable[[int, int], float],
                         max_batch: int = 8,
                         shard_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
                         max_utilization: float = 0.85,
                         **policy_kwargs) -> AutoscalerPolicy:
    """Derive an :class:`AutoscalerPolicy` from a traffic envelope.

    Plans the quiet-hours floor (``low_qps``) and the peak ceiling
    (``peak_qps``) with :func:`plan_serving` and uses them as the
    autoscaler's ``min_shards``/``max_shards`` — the fleet never burns
    capacity below what quiet traffic needs nor chases load beyond what
    the peak plan says can help.  Extra keyword arguments pass through
    to the policy (thresholds, cooldown, transition cost).
    """
    low = plan_serving(traffic_qps=low_qps, slo_p99=slo_p99,
                       service_time=service_time, max_batch=max_batch,
                       shard_counts=shard_counts,
                       max_utilization=max_utilization)
    peak = plan_serving(traffic_qps=peak_qps, slo_p99=slo_p99,
                        service_time=service_time, max_batch=max_batch,
                        shard_counts=shard_counts,
                        max_utilization=max_utilization)
    return AutoscalerPolicy(slo_p99=float(slo_p99),
                            min_shards=low.shards,
                            max_shards=max(low.shards, peak.shards),
                            **policy_kwargs)
