"""Checkpoint resharding: resume a training run at a different world size.

A :meth:`~repro.training.ddp.DDPTrainer.save_training_checkpoint` archive
is pinned to the world that wrote it — ``resume()`` refuses any other.
:func:`reshard_checkpoint` makes the world-size change a *supported
transformation* instead: it rewrites the archive's training cursor for a
new world while preserving the **global batch** (``world x per-rank
batch``), so every global step after the reshard covers exactly the
sample set it would have covered at the old world.

What moves, and what the guarantees are
---------------------------------------
- **Parameters, optimizer slots, scaler stats** are copied *bitwise*.
  This repository's DDP keeps full (replicated, not ZeRO-sharded)
  optimizer state on every rank, so "re-partitioning the slots" to W'
  ranks is a lossless replicate — the per-rank broadcast is charged at
  resume time under the ``"recovery"`` traffic category.
- **The data-strategy cursor** (``epoch``, ``step``, the partial epoch's
  loss entries) is remapped.  Steps count *global* steps, which the
  preserved global batch makes world-invariant, so ``epoch``/``step``/
  ``global_step`` transfer unchanged.  A partial epoch's recorded loss
  entries are per-(rank, step) microbatch means; resuming at a new world
  would mix entry sizes and skew the epoch mean, so they are reweighted
  to ``step * new_world`` entries of their exact mean — the resumed
  epoch's recorded ``train_loss`` stays the covered-sample mean.
- **Bitwise where the strategy allows:** resharding W -> W' -> W and
  resuming at W from an epoch-boundary cursor replays the remaining run
  bit-identically to an uninterrupted one (nothing numeric was touched),
  for all three DDP strategies on every transport.
- **1e-6 elsewhere:** under a *global* shuffle (``BASELINE_DDP`` and
  ``DIST_INDEX``) the epoch permutation is world-independent and dealt
  round-robin, so a resumed W' run walks the same global-batch sample
  sets as a fresh W' run — the curves match to ~1e-6 (gradient averaging
  regroups floating-point sums across ranks, nothing more).
- **Accuracy-level for partition-dependent shuffles:** ``batch`` and
  ``local`` shuffles key their RNG streams on (rank, partition), so a
  W-trained prefix cannot replay a fresh-W' data order at any tolerance.
  Resharding is still sound *at epoch boundaries* (subsequent epochs use
  the new world's own deterministic plan); the continuation is pinned
  deterministic, and matches a fresh run at accuracy level — the paper's
  Table 5 argument that batch shuffling converges equivalently.  A
  mid-epoch cursor under these shuffles is refused loudly: the epoch
  prefix was walked in an order the new world cannot reconstruct.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.training.checkpoint import _read_archive, write_archive
from repro.utils.errors import CheckpointError, ReshardError

#: Shuffles whose epoch plans cover world-invariant sample sets per
#: global step (permutation drawn once per epoch, dealt round-robin).
WORLD_INVARIANT_SHUFFLES = ("global",)


@dataclass(frozen=True)
class ReshardReport:
    """What one checkpoint reshard did."""

    path: str                   # archive the resharded state landed in
    source_path: str
    old_world: int
    new_world: int
    old_batch: int              # per-rank microbatch before
    new_batch: int              # per-rank microbatch after
    global_batch: int           # the preserved invariant
    epoch: int                  # cursor epoch (unchanged)
    step: int                   # cursor step-in-epoch (unchanged)
    midepoch: bool              # cursor sits strictly inside an epoch
    shuffle: str
    strategy: str
    param_bytes: int            # model parameter bytes copied bitwise
    slot_bytes: int             # optimizer slot bytes copied bitwise
    seconds: float              # wall time of the rewrite

    def summary(self) -> str:
        return (f"reshard {self.old_world}->{self.new_world} ranks "
                f"(batch {self.old_batch}->{self.new_batch}, global "
                f"{self.global_batch}) at epoch {self.epoch} step "
                f"{self.step}: {self.param_bytes + self.slot_bytes} state "
                f"bytes in {self.seconds * 1e3:.1f} ms")


def _training_state(arrays: dict[str, np.ndarray], path: str) -> tuple[dict, dict]:
    """Decode ``(meta, training_state)`` or raise :class:`ReshardError`."""
    blob = arrays.get("__meta__")
    if blob is None:
        raise CheckpointError(
            f"checkpoint {path!r} carries no __meta__ record; not a "
            f"repro checkpoint (or one whose metadata was destroyed)")
    try:
        meta = json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} metadata is corrupted "
            f"({type(exc).__name__}: {exc})") from exc
    state = (meta.get("extra") or {}).get("training_state")
    if state is None:
        raise ReshardError(
            f"{path} is not a resumable training checkpoint (no training "
            f"cursor); only archives written by save_training_checkpoint "
            f"can be resharded")
    return meta, state


def reshard_checkpoint(path: str, new_world_size: int,
                       out_path: str | None = None, *,
                       batch_size: int | None = None) -> ReshardReport:
    """Rewrite a resumable checkpoint for ``new_world_size`` ranks.

    Parameters
    ----------
    path:
        a :meth:`DDPTrainer.save_training_checkpoint` archive.
    new_world_size:
        the target rank count.  The global batch must divide evenly:
        ``new_batch = old_world * old_batch / new_world`` must be a
        positive integer, or the reshard is refused.
    out_path:
        where the resharded archive lands; defaults to rewriting
        ``path`` in place (atomically — a crash mid-reshard leaves the
        original intact).
    batch_size:
        per-rank batch of the *writing* run, for legacy archives that
        predate the recorded ``batch_size`` field.  Ignored (but
        validated) when the archive records its own.

    Returns a :class:`ReshardReport`.  Raises :class:`ReshardError` when
    the transformation would be unsound; the original archive is never
    modified on failure.
    """
    t0 = time.perf_counter()
    new_world = int(new_world_size)
    if new_world < 1:
        raise ReshardError(f"new world size must be >= 1, got {new_world}")
    arrays = _read_archive(path)
    meta, state = _training_state(arrays, path)

    old_world = int(state["world_size"])
    old_batch = state.get("batch_size")
    if old_batch is None:
        if batch_size is None:
            raise ReshardError(
                f"{path} predates recorded batch sizes; pass batch_size= "
                f"(the per-rank batch of the run that wrote it) so the "
                f"global batch can be preserved")
        old_batch = int(batch_size)
    else:
        old_batch = int(old_batch)
        if batch_size is not None and int(batch_size) != old_batch:
            raise ReshardError(
                f"batch_size={batch_size} contradicts the archive's "
                f"recorded per-rank batch of {old_batch}")
    if old_batch < 1:
        raise ReshardError(f"per-rank batch must be >= 1, got {old_batch}")

    global_batch = old_world * old_batch
    if global_batch % new_world:
        raise ReshardError(
            f"global batch {global_batch} (= {old_world} ranks x "
            f"{old_batch} per rank) does not divide over {new_world} "
            f"ranks; pick a world size that divides it so every global "
            f"step keeps covering the same sample set")
    new_batch = global_batch // new_world

    step = int(state.get("step", 0))
    epoch_steps = state.get("epoch_steps")
    epoch_complete = epoch_steps is not None and step == int(epoch_steps)
    midepoch = step > 0 and not epoch_complete
    shuffle = state.get("shuffle", "global")
    losses = [float(x) for x in state.get("epoch_losses", [])]

    if new_world != old_world and midepoch:
        if shuffle not in WORLD_INVARIANT_SHUFFLES:
            raise ReshardError(
                f"cursor sits mid-epoch (step {step}"
                + (f" of {epoch_steps}" if epoch_steps is not None else "")
                + f") under shuffle={shuffle!r}, whose per-rank order "
                f"depends on the partition: a {new_world}-rank world "
                f"cannot reconstruct the walked prefix.  Reshard from an "
                f"epoch-boundary checkpoint (checkpoint_every a multiple "
                f"of the epoch's steps, or the end-of-run save) instead")
        # Mid-epoch global-shuffle cursors transfer: the step covers the
        # same global-batch slice of the epoch permutation at any world.
        # Reweight the partial epoch's recorded losses to new-world entry
        # counts so the finished epoch's mean stays the sample mean (old
        # entries average old_batch samples each; the continuation will
        # append new_batch-sized entries).
        if losses:
            losses = [float(np.mean(losses))] * (step * new_world)

    new_state = dict(state)
    new_state["world_size"] = new_world
    new_state["batch_size"] = new_batch
    new_state["epoch_losses"] = losses
    meta = dict(meta)
    extra = dict(meta.get("extra") or {})
    extra["training_state"] = new_state
    history = list(extra.get("reshard_history", []))
    history.append({"from_world": old_world, "to_world": new_world,
                    "epoch": int(state.get("epoch", 0)), "step": step})
    extra["reshard_history"] = history
    meta["extra"] = extra

    out = dict(arrays)
    out["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    target = out_path or path
    write_archive(target, out)

    param_bytes = sum(int(v.nbytes) for k, v in arrays.items()
                      if k.startswith("param/"))
    slot_bytes = sum(int(v.nbytes) for k, v in arrays.items()
                     if k.startswith(("adam_m/", "adam_v/", "sgd_v/")))
    return ReshardReport(
        path=str(target), source_path=str(path),
        old_world=old_world, new_world=new_world,
        old_batch=old_batch, new_batch=new_batch,
        global_batch=global_batch,
        epoch=int(state.get("epoch", 0)), step=step, midepoch=midepoch,
        shuffle=shuffle, strategy=str(state.get("strategy", "")),
        param_bytes=param_bytes, slot_bytes=slot_bytes,
        seconds=time.perf_counter() - t0)


def read_reshard_history(path: str) -> list[dict[str, Any]]:
    """Every reshard the archive has been through, oldest first."""
    arrays = _read_archive(path)
    meta, _ = _training_state(arrays, path)
    return list((meta.get("extra") or {}).get("reshard_history", []))
