"""Elastic scale: live world-size resharding, autoscaling, planning.

Three pieces that let the reproduction's training and serving stacks
change size *while holding their determinism contracts*:

- :mod:`repro.elastic.reshard` — rewrite a training checkpoint for a
  new world size, preserving the global batch so the continuation
  matches a fresh run at the new world where the data strategy allows.
- :mod:`repro.elastic.autoscaler` — a p99-SLO control loop over
  :meth:`~repro.serving.sharding.ShardedSession.scale_to`, plus the
  deterministic trace runner the elastic bench drives.
- :mod:`repro.elastic.planner` — capacity plans (world and shard
  counts) from the analytic perf/cost models, feeding the autoscaler
  its setpoints.
"""

from repro.elastic.autoscaler import (
    AutoscaleEvent,
    AutoscalerPolicy,
    ElasticRunReport,
    ShardAutoscaler,
    run_autoscaled_trace,
    shard_scaled_service_time,
)
from repro.elastic.planner import (
    ServingPlan,
    TrainingPlan,
    autoscaler_setpoints,
    plan_serving,
    plan_training,
)
from repro.elastic.reshard import (
    WORLD_INVARIANT_SHUFFLES,
    ReshardReport,
    read_reshard_history,
    reshard_checkpoint,
)

__all__ = [
    "AutoscaleEvent",
    "AutoscalerPolicy",
    "ElasticRunReport",
    "ReshardReport",
    "ServingPlan",
    "ShardAutoscaler",
    "TrainingPlan",
    "WORLD_INVARIANT_SHUFFLES",
    "autoscaler_setpoints",
    "plan_serving",
    "plan_training",
    "read_reshard_history",
    "reshard_checkpoint",
    "run_autoscaled_trace",
    "shard_scaled_service_time",
]
