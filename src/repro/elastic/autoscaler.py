"""Serving autoscaler: resize the shard fleet to hold a p99 SLO.

The control loop is deliberately boring — the well-understood
double/halve policy with hysteresis and a cooldown — because the point
of this module is not a novel controller but a *verifiable* one: every
input is a :class:`~repro.serving.loadgen.LoadReport` measured on the
service's :class:`~repro.serving.service.ManualClock`, every action is a
:meth:`~repro.serving.sharding.ShardedSession.scale_to` call, and the
whole trace (latencies, decisions, membership changes) is a pure
function of (seed, policy, traffic), so tests and the elastic bench can
pin it bit-for-bit.

Control theory in one paragraph: the watched signal is the last tick's
p99 latency relative to the SLO.  Above ``scale_up_at`` x SLO the fleet
doubles (the partitioner wants powers of two anyway, and doubling beats
increments when queueing has already collapsed — latency past capacity
grows without bound, not linearly).  Below ``scale_down_at`` x SLO it
halves; the wide dead band between the thresholds is the hysteresis
that keeps a fleet serving near-SLO traffic from flapping.  A cooldown
blocks back-to-back resizes so each decision observes traffic served by
the fleet it created, and every resize charges ``transition_seconds``
onto the serving clock — membership changes are not free, and the SLO
accounting must see their cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.serving.loadgen import LoadGenerator, LoadReport
from repro.serving.service import ForecastService, ManualClock


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Setpoints for the double/halve control loop.

    ``min_shards``/``max_shards`` bound the fleet and should be powers
    of two (the graph partitioner's constraint); the capacity planner's
    :func:`~repro.elastic.planner.autoscaler_setpoints` derives them
    from traffic budgets.
    """

    slo_p99: float                      # the latency objective, seconds
    min_shards: int = 1
    max_shards: int = 8
    scale_up_at: float = 1.0            # p99 > slo * this -> double
    scale_down_at: float = 0.45         # p99 < slo * this -> halve
    cooldown_seconds: float = 0.0       # min clock time between resizes
    transition_seconds: float = 0.02    # clock cost charged per resize

    def __post_init__(self):
        if self.slo_p99 <= 0:
            raise ValueError(f"slo_p99 must be positive, got {self.slo_p99}")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"[{self.min_shards}, {self.max_shards}]")
        if self.scale_down_at >= self.scale_up_at:
            raise ValueError(
                f"scale_down_at ({self.scale_down_at}) must sit below "
                f"scale_up_at ({self.scale_up_at}) — the gap is the "
                f"hysteresis band that prevents flapping")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One control decision that resized the fleet."""

    at: float               # service clock when the resize ran
    from_shards: int
    to_shards: int
    p99: float              # the observed p99 that triggered it
    reason: str


class ShardAutoscaler:
    """Watches load reports, resizes a :class:`ShardedSession`.

    The autoscaler never measures anything itself: callers feed it the
    :class:`LoadReport` of each completed traffic tick (the natural
    control interval) via :meth:`observe`, and it either acts through
    ``session.scale_to`` or holds.  Decisions land in :attr:`events`.
    """

    def __init__(self, session: Any, policy: AutoscalerPolicy,
                 clock: ManualClock):
        self.session = session
        self.policy = policy
        self.clock = clock
        self.events: list[AutoscaleEvent] = []
        self._last_scale_at: float | None = None

    @property
    def shards(self) -> int:
        return int(self.session.num_shards)

    def desired_shards(self, p99: float) -> tuple[int, str] | None:
        """The (target, reason) the policy wants for an observed p99, or
        ``None`` to hold.  Pure — no cooldown, no side effects."""
        pol = self.policy
        if not np.isfinite(p99):
            return None
        shards = self.shards
        if p99 > pol.slo_p99 * pol.scale_up_at:
            target = shards * 2
            if target > pol.max_shards:
                return None
            return target, (f"p99 {p99 * 1e3:.2f} ms > "
                            f"{pol.scale_up_at:g} x SLO "
                            f"{pol.slo_p99 * 1e3:.2f} ms")
        if p99 < pol.slo_p99 * pol.scale_down_at:
            target = shards // 2
            if target < pol.min_shards:
                return None
            return target, (f"p99 {p99 * 1e3:.2f} ms < "
                            f"{pol.scale_down_at:g} x SLO "
                            f"{pol.slo_p99 * 1e3:.2f} ms")
        return None

    def observe(self, report: LoadReport) -> AutoscaleEvent | None:
        """Feed one tick's load report; maybe resize the fleet."""
        return self.observe_p99(float(report.latency_p99))

    def observe_p99(self, p99: float) -> AutoscaleEvent | None:
        in_cooldown = (
            self._last_scale_at is not None
            and self.clock.now - self._last_scale_at
            < self.policy.cooldown_seconds)
        if in_cooldown:
            return None
        want = self.desired_shards(p99)
        if want is None:
            return None
        target, reason = want
        before = self.shards
        self.session.scale_to(target)
        # Membership changes cost real time (re-partition, store replay,
        # connection churn); charge it where the latency accounting lives.
        self.clock.advance(self.policy.transition_seconds)
        self._last_scale_at = self.clock.now
        event = AutoscaleEvent(at=self.clock.now, from_shards=before,
                               to_shards=target, p99=p99, reason=reason)
        self.events.append(event)
        return event


def shard_scaled_service_time(session: Any, *, base: float,
                              per_item: float) -> Callable[[int], float]:
    """A synthetic per-batch service-time model whose capacity tracks the
    *live* shard count: a batch of ``n`` costs ``(base + per_item * n) /
    num_shards`` seconds.  The closure reads ``session.num_shards`` at
    every dispatch, so an autoscaler resize changes service times from
    the next batch on — deterministically, which is what lets the
    elastic bench pin whole scale-up/down traces bitwise."""
    def service_time(n: int) -> float:
        return (base + per_item * n) / max(int(session.num_shards), 1)
    return service_time


@dataclass
class ElasticRunReport:
    """One autoscaled traffic trace, tick by tick."""

    slo_p99: float
    ticks: list[dict] = field(default_factory=list)
    events: list[AutoscaleEvent] = field(default_factory=list)
    convergence_seconds: list[float] = field(default_factory=list)

    @property
    def shards_path(self) -> list[int]:
        """Fleet size after each tick's control decision."""
        return [t["shards_after"] for t in self.ticks]

    @property
    def requests(self) -> int:
        return sum(t["requests"] for t in self.ticks)

    @property
    def deadline_misses(self) -> int:
        return sum(t["deadline_misses"] for t in self.ticks)

    @property
    def slo_compliance(self) -> float:
        """Request-level: the fraction of requests answered inside the
        SLO deadline, across the whole trace (transitions included)."""
        total = self.requests
        return 1.0 - self.deadline_misses / total if total else 1.0

    def summary(self) -> str:
        sizes: list[int] = []
        for s in self.shards_path:       # collapse runs: 2,2,4,4,2 -> 2,4,2
            if not sizes or sizes[-1] != s:
                sizes.append(s)
        path = "->".join(str(s) for s in sizes)
        conv = (", convergence " + "/".join(
            f"{c * 1e3:.1f} ms" for c in self.convergence_seconds)
            if self.convergence_seconds else "")
        return (f"{len(self.ticks)} ticks, shards {path}, "
                f"{self.requests} requests, SLO compliance "
                f"{self.slo_compliance:.1%}{conv}")


def run_autoscaled_trace(service: ForecastService, windows: np.ndarray,
                         autoscaler: ShardAutoscaler,
                         segments: list[tuple[float, int]], *,
                         seed: int = 0, tick_requests: int = 40,
                         deadline: float | None = None) -> ElasticRunReport:
    """Drive an autoscaled service through a traffic trace.

    ``segments`` is a list of ``(rate_qps, ticks)`` phases — e.g.
    ``[(low, 4), (high, 6), (low, 4)]`` is the canonical scale-up-then-
    down demo.  Each tick runs one seeded open-loop burst of
    ``tick_requests`` requests at the phase's rate (uniform arrivals, so
    rate changes are sharp edges), stamps every request with the SLO as
    its deadline (override with ``deadline``), then feeds the tick's
    report to the autoscaler.  One :class:`LoadGenerator` spans the whole
    trace, so the request stream is a single seeded sequence.

    Convergence accounting: for every autoscale event, the report
    records the clock time from the resize to the end of the first
    subsequent tick whose p99 meets the SLO (``inf`` if the trace ends
    first) — the bench's scale-up/scale-down convergence numbers.
    """
    if deadline is None:
        deadline = autoscaler.policy.slo_p99
    gen = LoadGenerator(service, windows, seed=seed)
    report = ElasticRunReport(slo_p99=autoscaler.policy.slo_p99)
    tick = 0
    for rate_qps, ticks in segments:
        for _ in range(int(ticks)):
            before = autoscaler.shards
            lr = gen.open_loop(requests=int(tick_requests),
                               rate_qps=float(rate_qps), arrival="uniform",
                               deadline=deadline,
                               scenario=f"tick-{tick}")
            event = autoscaler.observe(lr)
            report.ticks.append({
                "tick": tick, "rate_qps": float(rate_qps),
                "shards_before": before, "shards_after": autoscaler.shards,
                "p99": float(lr.latency_p99),
                "requests": int(lr.requests),
                "deadline_misses": int(lr.deadline_misses),
                "end_at": float(gen.clock.now),
                "scaled": event is not None,
            })
            tick += 1
    report.events = list(autoscaler.events)
    for ev in report.events:
        conv = float("inf")
        for t in report.ticks:
            if t["end_at"] >= ev.at and t["p99"] <= report.slo_p99:
                conv = t["end_at"] - ev.at
                break
        report.convergence_seconds.append(conv)
    return report
