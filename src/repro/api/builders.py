"""Default registry entries: the paper's models, batching modes, datasets
and optimizers, wired as uniform builder functions.

Model builders receive a :class:`ModelContext` (graph, diffusion supports,
horizon, feature count, width, seed) and return a ready
:class:`~repro.models.base.STModel`.  Batching builders turn a raw dataset
into a :class:`LoaderBundle` of train/val/test :class:`BatchSource`\\ s plus
the fitted scaler — the six-step wiring every experiment module used to
repeat by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.registry import BATCHINGS, DATASETS, MODELS, OPTIMIZERS
from repro.batching.loaders import IndexBatchLoader, StandardBatchLoader
from repro.datasets.base import SpatioTemporalDataset
from repro.datasets.catalog import CATALOG
from repro.datasets.loaders import load_dataset
from repro.hardware.memory import MemorySpace
from repro.models import A3TGCN, DCRNN, PGTDCRNN, STGCN, STLLM, TGCN
from repro.optim import Adam, SGD
from repro.preprocessing.index_batching import IndexDataset
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.standard import standard_preprocess


# ---------------------------------------------------------------------------
# Contexts the builders consume
# ---------------------------------------------------------------------------
#: Diffusion supports memo, keyed by graph identity.  Each value keeps a
#: strong reference to its graph, so an id can never be recycled while its
#: entry is alive; bounded FIFO like the runner's dataset cache.
_SUPPORTS_CACHE: dict[int, tuple[Any, list]] = {}
_SUPPORTS_CACHE_MAX = 8


def _supports_for(graph) -> list:
    entry = _SUPPORTS_CACHE.get(id(graph))
    if entry is not None and entry[0] is graph:
        return entry[1]
    from repro.graph.supports import dual_random_walk_supports
    if len(_SUPPORTS_CACHE) >= _SUPPORTS_CACHE_MAX:
        _SUPPORTS_CACHE.pop(next(iter(_SUPPORTS_CACHE)))
    supports = dual_random_walk_supports(graph.weights)
    _SUPPORTS_CACHE[id(graph)] = (graph, supports)
    return supports


@dataclass
class ModelContext:
    """Everything a model builder may need, derived from spec + dataset.

    Diffusion supports are computed on first access — only the
    DCRNN-family builders need them, and they are O(nodes²) to build —
    and memoized per graph, so sweep points over one cached dataset
    share a single supports construction.
    """

    graph: Any                       # repro.graph.adjacency.SensorGraph
    horizon: int
    in_features: int
    hidden_dim: int
    seed: int | str
    _supports: list | None = None

    @property
    def supports(self) -> list:
        """Dual random-walk diffusion supports for ``graph`` (cached)."""
        if self._supports is None:
            self._supports = _supports_for(self.graph)
        return self._supports


@dataclass
class LoaderBundle:
    """Train/val/test batch sources plus the scaler that standardized them."""

    train: Any
    val: Any
    test: Any
    scaler: StandardScaler


def default_in_features(dataset: SpatioTemporalDataset) -> int:
    """Model input width for a dataset: raw channels plus the time-of-day
    channel traffic preprocessing appends (paper Algorithm 1, step 1)."""
    extra = 1 if dataset.spec.domain == "traffic" else 0
    return dataset.raw_features + extra


# ---------------------------------------------------------------------------
# Models
# ---------------------------------------------------------------------------
@MODELS.register("dcrnn")
def _build_dcrnn(ctx: ModelContext):
    return DCRNN(ctx.supports, ctx.horizon, ctx.in_features,
                 hidden_dim=ctx.hidden_dim, num_layers=2, seed=ctx.seed)


@MODELS.register("pgt-dcrnn")
def _build_pgt_dcrnn(ctx: ModelContext):
    return PGTDCRNN(ctx.supports, ctx.horizon, ctx.in_features,
                    hidden_dim=ctx.hidden_dim, seed=ctx.seed)


@MODELS.register("tgcn")
def _build_tgcn(ctx: ModelContext):
    return TGCN(ctx.graph.weights, ctx.horizon, ctx.in_features,
                hidden_dim=ctx.hidden_dim, seed=ctx.seed)


@MODELS.register("a3tgcn")
def _build_a3tgcn(ctx: ModelContext):
    return A3TGCN(ctx.graph.weights, ctx.horizon, ctx.in_features,
                  hidden_dim=ctx.hidden_dim, seed=ctx.seed)


@MODELS.register("stgcn")
def _build_stgcn(ctx: ModelContext):
    # Four temporal convolutions each consume kernel-1 steps; pick the
    # largest standard kernel the horizon can afford.
    kernel = max(1, min(3, (ctx.horizon - 1) // 4 + 1))
    return STGCN(ctx.graph.weights, ctx.horizon, ctx.in_features,
                 channels=ctx.hidden_dim,
                 spatial_channels=max(ctx.hidden_dim // 2, 1),
                 kernel=kernel, seed=ctx.seed)


@MODELS.register("st-llm")
def _build_stllm(ctx: ModelContext):
    return STLLM(ctx.graph.num_nodes, ctx.horizon, ctx.in_features,
                 dim=4 * ctx.hidden_dim, num_heads=2, num_blocks=2,
                 frozen_blocks=1, seed=ctx.seed)


# ---------------------------------------------------------------------------
# Batching modes
# ---------------------------------------------------------------------------
@BATCHINGS.register("base")
def _build_standard_loaders(ds: SpatioTemporalDataset, horizon: int,
                            batch_size: int,
                            space: MemorySpace | None = None) -> LoaderBundle:
    """The memory-hungry baseline: fully materialised window stacks."""
    pre = standard_preprocess(ds, horizon=horizon, space=space)
    return LoaderBundle(
        train=StandardBatchLoader(pre, "train", batch_size),
        val=StandardBatchLoader(pre, "val", batch_size),
        test=StandardBatchLoader(pre, "test", batch_size),
        scaler=pre.scaler)


@BATCHINGS.register("index")
def _build_index_loaders(ds: SpatioTemporalDataset, horizon: int,
                         batch_size: int,
                         space: MemorySpace | None = None) -> LoaderBundle:
    """Index-batching: one data copy + window-start indices (paper §4.1).

    The standardized copy is stored at training dtype (float32), so every
    gather lands directly in the loaders' reusable batch buffers with no
    per-batch cast and the resident data footprint halves.
    """
    idx = IndexDataset.from_dataset(ds, horizon=horizon, space=space,
                                    store_dtype=np.float32)
    return LoaderBundle(
        train=IndexBatchLoader(idx, "train", batch_size),
        val=IndexBatchLoader(idx, "val", batch_size),
        test=IndexBatchLoader(idx, "test", batch_size),
        scaler=idx.scaler)


@BATCHINGS.register("index-f16")
def _build_index_f16_loaders(ds: SpatioTemporalDataset, horizon: int,
                             batch_size: int,
                             space: MemorySpace | None = None) -> LoaderBundle:
    """Index-batching with mixed-precision storage (float16 store).

    The standardized copy is held in float16 — half the ``"index"`` mode's
    resident footprint, compounding the paper's headline memory win — while
    compute stays float32: each gather lands in the loader's float16 block
    and is cast once into its float32 batch buffer, so the model sees
    float32 everywhere and only storage precision (and hence the values'
    ~3 decimal digits) changes.
    """
    idx = IndexDataset.from_dataset(ds, horizon=horizon, space=space,
                                    store_dtype="float16")
    return LoaderBundle(
        train=IndexBatchLoader(idx, "train", batch_size),
        val=IndexBatchLoader(idx, "val", batch_size),
        test=IndexBatchLoader(idx, "test", batch_size),
        scaler=idx.scaler)


# ---------------------------------------------------------------------------
# Datasets: every catalog entry, served by its synthetic generator
# ---------------------------------------------------------------------------
def _dataset_builder(name: str):
    def build(*, nodes: int | None = None, entries: int | None = None,
              seed: int | str = 0) -> SpatioTemporalDataset:
        return load_dataset(name, nodes=nodes, entries=entries, seed=seed)
    build.__name__ = f"load_{name.replace('-', '_')}"
    return build


for _name in CATALOG:
    DATASETS.register(_name, _dataset_builder(_name))


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------
@OPTIMIZERS.register("adam")
def _build_adam(params, lr: float):
    return Adam(params, lr=lr)


@OPTIMIZERS.register("sgd")
def _build_sgd(params, lr: float):
    return SGD(params, lr=lr, momentum=0.9)
