"""``repro.api``: the declarative experiment pipeline.

The single public entry point for every training scenario in the
reproduction.  Describe a run with a :class:`RunSpec` (registry keys +
plain scalars), execute it with :func:`run`, get a uniform
:class:`RunResult` back::

    from repro.api import RunSpec, run

    result = run(RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                         batching="index", scale="tiny"))
    print(result.best_val_mae, result.peak_bytes)

Components are discoverable and extensible through the registries::

    from repro.api import MODELS, list_models

    list_models()                # ['a3tgcn', 'dcrnn', 'pgt-dcrnn', ...]

    @MODELS.register("my-model")
    def _build(ctx):             # ctx: ModelContext
        return MyModel(ctx.supports, ctx.horizon, ctx.in_features)

Loaders handed to the trainers satisfy the :class:`BatchSource` protocol
(``batch_at`` / ``batches`` / ``num_snapshots`` / ``batch_size``).

Trained artifacts go online through :func:`serve` — a checkpoint path,
``RunResult`` or spec becomes a micro-batching
:class:`~repro.serving.service.ForecastService`, with server topologies
(``local`` / ``sharded`` / ``gateway``) resolved through the
:data:`SERVERS` registry.  :func:`build_gateway` assembles the
multi-tenant front door over several named deployments at once.
"""

from repro.api.registry import (
    BATCHINGS,
    DATASETS,
    MODELS,
    OPTIMIZERS,
    Registry,
    list_batchings,
    list_datasets,
    list_models,
    list_optimizers,
)
from repro.api.scales import (
    MEDIUM,
    SCALES,
    SMALL,
    TINY,
    Scale,
    get_scale,
    register_scale,
    resolve_name,
)
from repro.api import builders as _builders  # populate default registries
from repro.api.builders import LoaderBundle, ModelContext, default_in_features
from repro.api.spec import RunSpec, SHUFFLES, STRATEGIES, TRANSPORTS
from repro.api.runner import RunArtifacts, RunResult, run
from repro.api.serving import (
    SERVERS,
    build_gateway,
    list_servers,
    restore_checkpoint,
    serve,
    session_source,
)
from repro.batching.protocols import BatchSource, ensure_batch_source

__all__ = [
    "Registry",
    "MODELS",
    "BATCHINGS",
    "DATASETS",
    "OPTIMIZERS",
    "list_models",
    "list_batchings",
    "list_datasets",
    "list_optimizers",
    "Scale",
    "SCALES",
    "TINY",
    "SMALL",
    "MEDIUM",
    "get_scale",
    "register_scale",
    "resolve_name",
    "ModelContext",
    "LoaderBundle",
    "RunSpec",
    "STRATEGIES",
    "SHUFFLES",
    "TRANSPORTS",
    "RunResult",
    "RunArtifacts",
    "run",
    "SERVERS",
    "list_servers",
    "serve",
    "build_gateway",
    "session_source",
    "restore_checkpoint",
    "default_in_features",
    "BatchSource",
    "ensure_batch_source",
]
