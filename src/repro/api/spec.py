"""``RunSpec``: one frozen, serializable description of a training run.

A spec names *what* to run — dataset, model, batching mode, scale preset,
distribution strategy — entirely through registry keys and plain scalars,
so any run can be reconstructed from a dict (config file, CLI args, sweep
grid) and two specs compare equal iff they describe the same experiment.
Validation happens at construction: every key is checked against its
registry so a typo fails before any data is generated.

Reconstruction is guaranteed for keys in the default registries.  A spec
that names a custom component (an ad-hoc scale via
:func:`~repro.api.scales.resolve_name`, a model registered at runtime)
needs that registration replayed before ``from_dict`` in a fresh process
— registries are process-local.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass, fields

from repro.api import registry
from repro.api.scales import SCALES

#: Distribution strategies the executor understands.  ``single`` runs the
#: plain :class:`~repro.training.trainer.Trainer`; the rest map onto
#: :class:`~repro.training.ddp.DDPTrainer` strategies over the simulated
#: communicator.
STRATEGIES = ("single", "baseline-ddp", "dist-index", "generalized-index")

#: Shuffle modes accepted by the DDP sampler layer.
SHUFFLES = ("global", "local", "batch")

#: Rank-execution transports for distributed strategies: ``sim`` runs
#: ranks sequentially with simulated time and byte accounting;
#: ``thread`` runs one real thread per rank; ``process`` forks one real
#: interpreter per rank with a zero-copy shared-memory data plane;
#: ``socket`` forks ranks that report over TCP length-prefixed frames.
#: All four train bitwise-identical curves.
TRANSPORTS = ("sim", "thread", "process", "socket")


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one training run.

    Attributes
    ----------
    dataset / model / batching / optimizer:
        registry keys (see ``repro.api.list_datasets()`` etc.).
    scale:
        name of a registered :class:`~repro.api.scales.Scale` preset.
    seed:
        master seed for data generation, model init and shuffling.
    lr:
        optimizer learning rate.
    strategy:
        one of :data:`STRATEGIES`; non-``single`` strategies train over
        ``world_size`` ranks.
    world_size:
        rank count (must be 1 for ``single``).
    transport:
        one of :data:`TRANSPORTS`; how distributed ranks execute
        (``sim`` = sequential + simulated cost accounting, ``thread`` =
        one real thread per rank, ``process`` = forked interpreters over
        shared memory, ``socket`` = forked interpreters over TCP).  Must
        stay ``sim`` for ``single``.
    shuffle:
        DDP shuffle mode override (``None`` = the strategy's default).
    epochs:
        override of the scale preset's epoch budget (``None`` = preset).
    backend:
        compute-kernel backend for the training hot path: ``"auto"``
        (the process default — numpy unless ``REPRO_KERNEL_BACKEND``
        says otherwise) or a name from
        :func:`repro.kernels.available_backends`.  The numpy backend is
        bit-exact with the seed implementation; compiled backends are
        parity-gated at 1e-6.
    faults:
        optional chaos schedule: a tuple of encoded
        :class:`~repro.runtime.faults.FaultEvent` strings (e.g.
        ``("rank_crash:step=3,rank=1",)`` — the
        :meth:`~repro.runtime.faults.FaultPlan.to_spec` form).  The
        executor injects the plan through a
        :class:`~repro.runtime.faults.FaultyTransport` and trains with
        checkpoint/restart recovery, so the run completes with the same
        curve as a fault-free run.  Requires a distributed strategy.
    """

    dataset: str
    model: str = "pgt-dcrnn"
    batching: str = "index"
    scale: str = "tiny"
    seed: int = 0
    optimizer: str = "adam"
    lr: float = 0.01
    strategy: str = "single"
    world_size: int = 1
    shuffle: str | None = None
    epochs: int | None = None
    transport: str = "sim"
    faults: tuple | None = None
    backend: str = "auto"

    # ------------------------------------------------------------------
    def __post_init__(self):
        if self.dataset not in registry.DATASETS:
            raise KeyError(f"unknown dataset {self.dataset!r}; registered: "
                           f"{registry.list_datasets()}")
        if self.model not in registry.MODELS:
            raise KeyError(f"unknown model {self.model!r}; registered: "
                           f"{registry.list_models()}")
        if self.batching not in registry.BATCHINGS:
            raise KeyError(f"unknown batching {self.batching!r}; registered: "
                           f"{registry.list_batchings()}")
        if self.optimizer not in registry.OPTIMIZERS:
            raise KeyError(f"unknown optimizer {self.optimizer!r}; "
                           f"registered: {registry.list_optimizers()}")
        if self.scale not in SCALES:
            raise KeyError(f"unknown scale {self.scale!r}; options: "
                           f"{sorted(SCALES)}")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, "
                             f"got {self.strategy!r}")
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.strategy == "single" and self.world_size != 1:
            raise ValueError("strategy 'single' requires world_size == 1; "
                             "pick a distributed strategy for multi-rank runs")
        if self.shuffle is not None and self.shuffle not in SHUFFLES:
            raise ValueError(f"shuffle must be one of {SHUFFLES} or None, "
                             f"got {self.shuffle!r}")
        if self.strategy == "single" and self.shuffle is not None:
            raise ValueError("shuffle only applies to distributed "
                             "strategies; strategy 'single' always uses "
                             "global shuffling")
        if self.epochs is not None and self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, "
                             f"got {self.transport!r}")
        if self.strategy == "single" and self.transport != "sim":
            raise ValueError("strategy 'single' has no rank execution to "
                             "distribute; transport must stay 'sim'")
        if self.backend != "auto":
            from repro import kernels

            kernels.get_backend(self.backend)  # loud on unknown/unavailable
        if self.faults is not None:
            # Normalise (JSON round-trips tuples as lists) then validate
            # by actually parsing the plan — a typo'd event fails here,
            # before any data is generated.
            from repro.runtime.faults import FaultPlan

            object.__setattr__(self, "faults", tuple(self.faults))
            if self.strategy == "single":
                raise ValueError(
                    "fault injection rides on the DDP recovery path; pick "
                    "a distributed strategy (or drop faults)")
            plan = FaultPlan.from_spec(self.faults, seed=self.seed)
            for ev in plan.events:
                if (ev.kind in ("rank_crash", "straggler")
                        and ev.rank >= self.world_size):
                    raise ValueError(
                        f"fault event {ev.encode()!r} targets rank "
                        f"{ev.rank} but world_size is {self.world_size}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-scalar dict; ``RunSpec.from_dict`` round-trips it."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        """Reconstruct a spec, rejecting unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise KeyError(f"unknown RunSpec fields {unknown}; "
                           f"known: {sorted(known)}")
        return cls(**d)

    def replace(self, **changes) -> "RunSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
