"""Scale presets for the real-training experiment pipeline.

The paper trains on real PeMS-family data with hundreds to thousands of
sensors for 30-100 epochs; this repository's real-training runs use
scaled-down synthetic datasets so they complete in seconds to minutes.
``Scale`` collects the knobs; the *shape* conclusions (who wins, by what
factor) are scale-invariant because both batching modes consume literally
identical snapshots.

``RunSpec.scale`` refers to presets by name so specs stay serializable;
:func:`register_scale` adds custom presets to the lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Working sizes for a real-training experiment."""

    name: str
    nodes: int
    entries: int
    epochs: int
    hidden_dim: int
    batch_size: int
    horizon: int | None = None  # None: use the dataset's catalog horizon


#: Fast enough for CI / pytest-benchmark runs (seconds per experiment).
TINY = Scale("tiny", nodes=8, entries=260, epochs=4, hidden_dim=8,
             batch_size=8, horizon=4)

#: A few minutes per experiment; smoother convergence curves.
SMALL = Scale("small", nodes=24, entries=1200, epochs=12, hidden_dim=16,
              batch_size=16, horizon=12)

#: The closest practical approximation of the paper's setups on a laptop.
MEDIUM = Scale("medium", nodes=64, entries=4000, epochs=30, hidden_dim=32,
               batch_size=32, horizon=12)

SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM)}

#: Names whose definitions must never change underneath existing specs.
_BUILTIN_NAMES = frozenset(SCALES)


def register_scale(scale: Scale, *, overwrite: bool = False) -> Scale:
    """Make a custom preset resolvable by ``scale.name``."""
    if scale.name in SCALES and not overwrite:
        raise ValueError(f"scale {scale.name!r} is already registered")
    SCALES[scale.name] = scale
    return scale


def resolve_name(scale: Scale) -> str:
    """A name usable in a ``RunSpec``: registers the preset if it is new.

    Experiment helpers accept ad-hoc :class:`Scale` objects; this keeps
    those runs describable by a serializable spec.  Ad-hoc names are
    last-write-wins so iterate-and-rerun workflows (tweak the preset,
    call the experiment again) keep working; only a builtin preset name
    (``tiny``/``small``/``medium``) with different settings is rejected,
    since redefining those would corrupt every later default run.

    The registration is process-local: a spec naming an ad-hoc scale
    needs ``resolve_name`` (or :func:`register_scale`) replayed before
    ``RunSpec.from_dict`` in a fresh process.
    """
    existing = SCALES.get(scale.name)
    if existing is not None and existing != scale and \
            scale.name in _BUILTIN_NAMES:
        raise ValueError(
            f"scale name {scale.name!r} is a builtin preset with different "
            f"settings; rename the custom Scale so specs stay reproducible")
    SCALES[scale.name] = scale
    return scale.name


def get_scale(name: str | Scale) -> Scale:
    if isinstance(name, Scale):
        return name
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(SCALES)}")
    return SCALES[name]
