"""String-keyed registries behind the ``repro.api`` experiment pipeline.

Every component a :class:`~repro.api.spec.RunSpec` names — model, batching
strategy, dataset, optimizer — lives in a :class:`Registry` and is resolved
by key at run time.  Adding a new scenario therefore means registering one
builder function instead of editing every experiment module::

    from repro.api import MODELS

    @MODELS.register("my-model")
    def _build(ctx):
        return MyModel(ctx.supports, ctx.horizon, ctx.in_features)

Unknown keys raise :class:`KeyError` listing the registered alternatives,
so typos fail loudly at spec-validation time rather than mid-training.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


class Registry:
    """A named mapping from string keys to registered objects."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any = None, *,
                 overwrite: bool = False) -> Callable[[Any], Any] | Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``@registry.register("key")`` registers the decorated object and
        returns it unchanged.  Re-registration raises unless
        ``overwrite=True`` (tests and downstream extensions use that to
        swap implementations).
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} key must be a non-empty string, "
                             f"got {name!r}")

        def _add(target: Any) -> Any:
            if name in self._entries and not overwrite:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"overwrite=True to replace it")
            self._entries[name] = target
            return target

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: "
                f"{self.names()}") from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


#: The four registries the executor resolves a RunSpec against.
MODELS = Registry("model")
BATCHINGS = Registry("batching")
DATASETS = Registry("dataset")
OPTIMIZERS = Registry("optimizer")


def list_models() -> list[str]:
    """Keys accepted by ``RunSpec.model``."""
    return MODELS.names()


def list_batchings() -> list[str]:
    """Keys accepted by ``RunSpec.batching``."""
    return BATCHINGS.names()


def list_datasets() -> list[str]:
    """Keys accepted by ``RunSpec.dataset``."""
    return DATASETS.names()


def list_optimizers() -> list[str]:
    """Keys accepted by ``RunSpec.optimizer``."""
    return OPTIMIZERS.names()
