"""The ``run(spec)`` executor: one entry point for every training scenario.

Assembles dataset → loaders → model → optimizer → trainer purely from the
registries a :class:`~repro.api.spec.RunSpec` names, trains, and returns a
uniform :class:`RunResult` (curves, best validation MAE, wall-clock runtime
of preprocessing + training, peak bytes charged to the run's memory space).
Every experiment module and example routes through here; hand-wired
pipelines only remain where an experiment measures something ``run`` cannot
express (e.g. the OOM traces of the full-scale memory simulations).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro import kernels
from repro.api.builders import LoaderBundle, ModelContext, default_in_features
from repro.api.registry import BATCHINGS, DATASETS, MODELS, OPTIMIZERS
from repro.api.scales import Scale, get_scale
from repro.api.spec import RunSpec
from repro.hardware.memory import MemorySpace
from repro.runtime import (
    FaultPlan,
    FaultyTransport,
    ProcessGroup,
    ProcessTransport,
    SimTransport,
    SocketTransport,
    ThreadTransport,
)
from repro.training.ddp import DDPStrategy, DDPTrainer
from repro.training.recovery import train_with_recovery
from repro.training.trainer import Trainer

_DDP_STRATEGIES = {
    "baseline-ddp": DDPStrategy.BASELINE_DDP,
    "dist-index": DDPStrategy.DIST_INDEX,
    "generalized-index": DDPStrategy.GENERALIZED_INDEX,
}

#: Generated datasets, keyed by (builder, nodes, entries, seed).  Generation
#: is deterministic and both preprocessing pipelines copy before writing,
#: so sweeps (table5, figure8, ...) share one dataset per grid instead of
#: regenerating identical arrays for every point.  Keying on the builder
#: object (not just the name) means a registry overwrite naturally misses
#: the cache instead of serving data from the replaced builder.
_DATASET_CACHE: dict[tuple, Any] = {}
_DATASET_CACHE_MAX = 8


def _load_cached_dataset(name: str, nodes: int, entries: int,
                         seed: int | str):
    builder = DATASETS.get(name)
    key = (builder, nodes, entries, seed)
    if key not in _DATASET_CACHE:
        if len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
        _DATASET_CACHE[key] = builder(nodes=nodes, entries=entries, seed=seed)
    return _DATASET_CACHE[key]


@dataclass
class RunArtifacts:
    """Live objects a finished run leaves behind for further analysis."""

    dataset: Any
    loaders: LoaderBundle
    model: Any
    optimizer: Any
    trainer: Any
    context: ModelContext


@dataclass
class RunResult:
    """Uniform outcome of one :func:`run` call.

    ``artifacts`` holds the trained model, loaders, scaler and trainer for
    follow-up evaluation (test metrics, forecasting, comm-traffic stats);
    it is excluded from :meth:`to_dict`, which keeps only plain scalars.
    """

    spec: RunSpec
    epochs_run: int
    train_curve: list[float]
    val_curve: list[float]
    best_val_mae: float
    runtime_seconds: float
    peak_bytes: int
    restarts: int = 0  # failure-recovery relaunches (0 for fault-free runs)
    artifacts: RunArtifacts = field(repr=False, compare=False, default=None)

    @property
    def final_train_loss(self) -> float:
        return self.train_curve[-1] if self.train_curve else float("nan")

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "epochs_run": self.epochs_run,
            "train_curve": list(self.train_curve),
            "val_curve": list(self.val_curve),
            "best_val_mae": self.best_val_mae,
            "runtime_seconds": self.runtime_seconds,
            "peak_bytes": self.peak_bytes,
            "restarts": self.restarts,
        }


def run(spec: RunSpec, *, scale: Scale | None = None,
        space: MemorySpace | None = None, verbose: bool = False) -> RunResult:
    """Execute one training scenario described by ``spec``.

    Parameters
    ----------
    spec:
        the declarative run description; all component keys are resolved
        through the ``repro.api`` registries.
    scale:
        escape hatch for a custom (unregistered) :class:`Scale` object;
        when given it overrides the preset named by ``spec.scale``.
    space:
        memory space charged by preprocessing (defaults to a fresh
        unbounded space named after the run).
    """
    if not isinstance(spec, RunSpec):
        raise TypeError(f"expected RunSpec, got {type(spec).__name__}; "
                        f"build one with RunSpec(...) or RunSpec.from_dict")
    scale = get_scale(spec.scale) if scale is None else scale
    ds = _load_cached_dataset(spec.dataset, scale.nodes, scale.entries,
                              spec.seed)
    horizon = scale.horizon or ds.spec.horizon
    space = space if space is not None else MemorySpace(
        f"{spec.dataset}:{spec.batching}")

    # Runtime covers preprocessing + training, matching the paper's
    # end-to-end comparisons (Table 3 measures both stages together).
    t0 = time.perf_counter()
    bundle: LoaderBundle = BATCHINGS.get(spec.batching)(
        ds, horizon, scale.batch_size, space)

    ctx = ModelContext(graph=ds.graph, horizon=horizon,
                       in_features=default_in_features(ds),
                       hidden_dim=scale.hidden_dim, seed=spec.seed)
    epochs = spec.epochs if spec.epochs is not None else scale.epochs
    restarts = 0
    # Model construction and training dispatch through the kernel backend
    # the spec names ("auto" keeps the process default, i.e. numpy unless
    # REPRO_KERNEL_BACKEND overrides it).
    with kernels.use_backend(spec.backend):
        if spec.strategy == "single":
            model = MODELS.get(spec.model)(ctx)
            trainable = [p for p in model.parameters() if p.requires_grad]
            optimizer = OPTIMIZERS.get(spec.optimizer)(trainable, spec.lr)
            trainer = Trainer(model, optimizer, bundle.train, bundle.val,
                              scaler=bundle.scaler, seed=spec.seed)
            history = trainer.fit(epochs, verbose=verbose)
        elif spec.faults:
            # Chaos scenario: inject the scheduled faults through a
            # FaultyTransport and train with checkpoint/restart recovery.
            # Every restart rebuilds model + optimizer from the seed and
            # resumes from the last per-step checkpoint, so the finished
            # curve is bitwise identical to a fault-free run.
            trainer, history, report = _run_with_faults(
                spec, ctx, bundle, epochs, verbose=verbose)
            model, optimizer = trainer.model, trainer.optimizer
            restarts = report.restarts
        else:
            trainer = _build_ddp_trainer(spec, ctx, bundle)
            model, optimizer = trainer.model, trainer.optimizer
            history = trainer.fit(epochs, verbose=verbose)
    runtime = time.perf_counter() - t0

    return RunResult(
        spec=spec,
        epochs_run=len(history),
        train_curve=[h.train_loss for h in history],
        val_curve=[h.val_mae for h in history],
        best_val_mae=trainer.best_val_mae(),
        runtime_seconds=runtime,
        peak_bytes=space.peak,
        restarts=restarts,
        artifacts=RunArtifacts(dataset=ds, loaders=bundle, model=model,
                               optimizer=optimizer, trainer=trainer,
                               context=ctx))


def _build_ddp_trainer(spec: RunSpec, ctx: ModelContext,
                       bundle: LoaderBundle, *,
                       plan: FaultPlan | None = None,
                       checkpoint_path: str | None = None) -> DDPTrainer:
    """One distributed trainer wired exactly as ``spec`` describes.

    The single construction point for both the fault-free path and every
    relaunch attempt of the fault path: model + optimizer built from the
    seed, the transport chosen by ``spec.transport`` ('sim' = sequential
    ranks with simulated cost accounting; 'thread' = one real thread per
    rank on per-rank replicas — the model builder is deterministic in
    the seed, so replicas initialise identically; 'process' / 'socket' =
    one forked interpreter per rank, where the fork snapshot is the
    replica), optionally wrapped in a :class:`FaultyTransport` and
    configured for per-step checkpointing.
    """
    model = MODELS.get(spec.model)(ctx)
    trainable = [p for p in model.parameters() if p.requires_grad]
    optimizer = OPTIMIZERS.get(spec.optimizer)(trainable, spec.lr)
    factory = None
    if spec.transport == "thread":
        base = ThreadTransport(spec.world_size)
        factory = lambda: MODELS.get(spec.model)(ctx)  # noqa: E731
    elif spec.transport == "process":
        base = ProcessTransport(spec.world_size)
    elif spec.transport == "socket":
        base = SocketTransport(spec.world_size)
    else:
        base = SimTransport(spec.world_size)
    transport = base if plan is None else FaultyTransport(base, plan)
    return DDPTrainer(
        model, optimizer, ProcessGroup(transport), bundle.train, bundle.val,
        strategy=_DDP_STRATEGIES[spec.strategy], shuffle=spec.shuffle,
        scaler=bundle.scaler, seed=spec.seed, model_factory=factory,
        checkpoint_every=1 if checkpoint_path else None,
        checkpoint_path=checkpoint_path)


def _run_with_faults(spec: RunSpec, ctx: ModelContext, bundle: LoaderBundle,
                     epochs: int, *, verbose: bool = False):
    """Distributed training under an injected fault plan.

    Builds a fresh trainer per attempt (the recovery contract: model,
    optimizer and process group are relaunch state, only the checkpoint
    survives) and hands the relaunch loop to
    :func:`~repro.training.recovery.train_with_recovery`.  Checkpoints
    land in a private temp directory, every step — maximal coverage for
    the tiny scales ``run`` executes at; cadence-sensitive recovery
    costs are the fault benchmark's job.
    """
    plan = FaultPlan.from_spec(spec.faults, seed=spec.seed)
    ckpt_dir = tempfile.mkdtemp(prefix="repro-faults-")
    ckpt = os.path.join(ckpt_dir, "recovery.npz")
    try:
        return train_with_recovery(
            lambda: _build_ddp_trainer(spec, ctx, bundle, plan=plan,
                                       checkpoint_path=ckpt),
            epochs, verbose=verbose)
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)
