"""``serve(...)``: the declarative entry point into the serving subsystem.

Training's counterpart to :func:`repro.api.runner.run`: point it at a
trained artifact — a **self-describing checkpoint** path, a finished
:class:`~repro.api.runner.RunResult`, or a :class:`~repro.api.spec.RunSpec`
(trained on the spot) — and get a ready
:class:`~repro.serving.service.ForecastService` back::

    from repro.api import RunSpec, run, serve

    result = run(RunSpec(dataset="pems-bay", scale="tiny"))
    svc = serve(result)                       # local single-worker session
    svc = serve("ckpt.npz", server="sharded", num_shards=4)

Server topologies live in the :data:`SERVERS` registry (``local`` /
``sharded`` / ``gateway`` by default), so alternative request paths
register exactly like models and datasets do.  The multi-deployment
front door is :func:`build_gateway`::

    gw = build_gateway({"bay": "ckpt_a.npz", "la": "ckpt_b.npz"},
                       tenants=["ops", "research"], cache_ttl=30.0)
    gw.request("key-ops", "bay", window)
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.api.builders import ModelContext, default_in_features
from repro.kernels.precision import resolve_store_dtype
from repro.api.registry import MODELS, Registry
from repro.api.scales import get_scale
from repro.api.spec import RunSpec
from repro.serving.cache import FeatureStore
from repro.serving.gateway import Gateway
from repro.serving.service import ForecastService
from repro.serving.session import ModelSession
from repro.serving.sharding import ShardedSession

#: Server topologies resolvable by ``serve(..., server=<key>)``.
SERVERS = Registry("server")


def list_servers() -> list[str]:
    """Keys accepted by ``serve``'s ``server`` argument."""
    return SERVERS.names()


@SERVERS.register("local")
def _build_local_session(model, scaler, dataset, spec, *, max_batch: int = 32,
                         store_capacity: int | None = None,
                         store_dtype="float32",
                         **_ignored) -> ModelSession:
    """Single-worker session with an attached sliding-window store.

    ``store_dtype`` sets the feature-store ring precision
    (``"float16"`` halves the resident serving footprint; compute stays
    float32 — windows materialise into the session's float32 staging
    buffers).
    """
    # Chaos knobs only make sense with shard workers to kill; swallowing
    # them here would report a vacuously perfect fault-free "chaos" run.
    for knob in ("fault_plan", "num_standby"):
        if _ignored.get(knob):
            raise ValueError(f"{knob} requires server='sharded'; the local "
                             f"session has no workers to fail over")
    session = ModelSession(model, scaler, spec=spec, max_batch=max_batch)
    if scaler is not None and dataset is not None:
        session.attach_store(FeatureStore.for_dataset(
            dataset, scaler,
            capacity=store_capacity or 4 * session.horizon,
            dtype=resolve_store_dtype(store_dtype) or np.float32))
    return session


@SERVERS.register("sharded")
def _build_sharded_session(model, scaler, dataset, spec, *,
                           max_batch: int = 32, num_shards: int = 2,
                           receptive_hops: int | None = None,
                           store_capacity: int | None = None,
                           store_dtype="float32",
                           num_standby: int = 0, fault_plan=None,
                           **_ignored) -> ShardedSession:
    """Partitioned multi-worker session with halo-exchange accounting.

    ``num_standby`` spare replicas and a ``fault_plan`` (scheduled
    ``worker_crash`` events) flow straight into the session's failover
    machinery — ``serve(result, server="sharded", num_standby=1,
    fault_plan=plan)`` is the chaos-serving entry point.
    """
    if dataset is None:
        raise ValueError("sharded serving needs the sensor graph; serve a "
                         "RunResult or a spec-embedding checkpoint")
    return ShardedSession(model, scaler, dataset.graph,
                          num_shards=num_shards, spec=spec,
                          max_batch=max_batch, receptive_hops=receptive_hops,
                          store_capacity=store_capacity,
                          store_dtype=store_dtype,
                          num_standby=num_standby, fault_plan=fault_plan,
                          add_time_feature=dataset.spec.domain == "traffic")


def restore_checkpoint(path: str) -> tuple[Any, Any, RunSpec, Any]:
    """Rebuild ``(model, scaler, spec, dataset)`` from a self-describing
    checkpoint.

    The checkpoint must have been written with
    ``save_checkpoint(..., spec=...)``; dataset generation is
    deterministic in the spec's seed, so the sensor graph (and therefore
    the diffusion supports) match the training run exactly.
    """
    from repro.api.runner import _load_cached_dataset
    from repro.training.checkpoint import (
        load_checkpoint, read_checkpoint_meta, read_checkpoint_scaler)

    meta = read_checkpoint_meta(path)
    if meta.get("spec") is None:
        raise ValueError(
            f"{path} is not self-describing: it was saved without "
            f"spec=...; re-save with save_checkpoint(..., spec=run_spec)")
    spec = RunSpec.from_dict(meta["spec"])
    scale = get_scale(spec.scale)
    # Shares the runner's dataset cache: serve(ckpt) right after
    # run(spec) reuses the already-generated dataset + sensor graph.
    ds = _load_cached_dataset(spec.dataset, scale.nodes, scale.entries,
                              spec.seed)
    horizon = scale.horizon or ds.spec.horizon
    ctx = ModelContext(graph=ds.graph, horizon=horizon,
                       in_features=default_in_features(ds),
                       hidden_dim=scale.hidden_dim, seed=spec.seed)
    model = MODELS.get(spec.model)(ctx)
    load_checkpoint(path, model)
    return model, read_checkpoint_scaler(path), spec, ds


def serve(source: Any, *, server: str = "local", max_batch: int = 32,
          max_wait: float = 0.005, clock: Callable[[], float] | None = None,
          service_time: Callable[[int], float] | None = None,
          **server_kwargs) -> ForecastService | Gateway:
    """Build a :class:`ForecastService` from a trained artifact.

    With ``server="gateway"`` the result is a single-deployment
    :class:`~repro.serving.gateway.Gateway` instead (which wires its own
    queues and clock, so no ``ForecastService`` wrapper applies).

    Parameters
    ----------
    source:
        a checkpoint path (``str``), a finished
        :class:`~repro.api.runner.RunResult`, or a
        :class:`~repro.api.spec.RunSpec` (which is trained first via
        :func:`~repro.api.runner.run` — convenient, but expensive).
    server:
        :data:`SERVERS` key choosing the session topology
        (``local`` / ``sharded``).
    max_batch / max_wait:
        micro-batching knobs: coalesce up to ``max_batch`` requests but
        never hold one longer than ``max_wait`` seconds.
    clock / service_time:
        forwarded to :class:`ForecastService` (explicit simulated time and
        a synthetic service-time model; both default to honest wall-clock
        measurement on a :class:`~repro.serving.service.ManualClock`).
    server_kwargs:
        extra knobs for the server builder (``num_shards``,
        ``receptive_hops``, ``store_capacity``, ...).
    """
    from repro.api.runner import RunResult, run

    if isinstance(source, RunSpec):
        source = run(source)
    if isinstance(source, RunResult):
        art = source.artifacts
        if art is None:
            raise ValueError("RunResult carries no artifacts; serve the "
                             "checkpoint it saved instead")
        model, scaler, spec, ds = (art.model, art.loaders.scaler,
                                   source.spec, art.dataset)
    elif isinstance(source, str):
        model, scaler, spec, ds = restore_checkpoint(source)
    else:
        raise TypeError(
            f"serve() takes a checkpoint path, RunSpec or RunResult, got "
            f"{type(source).__name__}")

    if server == "gateway":
        # The gateway owns its own queue/clock wiring, so the knobs that
        # would normally configure the ForecastService wrapper flow into
        # the builder instead.
        server_kwargs.setdefault("max_wait", max_wait)
        server_kwargs.setdefault("clock", clock)
        server_kwargs.setdefault("service_time", service_time)
    built = SERVERS.get(server)(model, scaler, ds, spec,
                                max_batch=max_batch, **server_kwargs)
    if isinstance(built, Gateway):
        return built
    return ForecastService(built, max_wait=max_wait, clock=clock,
                           service_time=service_time)


@SERVERS.register("gateway")
def _build_gateway_server(model, scaler, dataset, spec, *,
                          max_batch: int = 32, max_wait: float = 0.005,
                          clock=None, service_time=None,
                          deployment: str = "default", version: str = "v1",
                          tenants=None, cache_ttl: float | None = None,
                          cache_entries: int = 1024,
                          max_queue_depth: int = 256,
                          ewma_alpha: float = 0.2,
                          default_deadline: float | None = None,
                          store_capacity: int | None = None,
                          resilience=None, fault_plan=None,
                          **session_kwargs) -> Gateway:
    """Single-deployment gateway: ``serve(src, server="gateway")``.

    Wraps the local session in a :class:`Gateway` with one deployment
    (named ``deployment``, pinned at ``version``) and a ``default``
    tenant (API key ``key-default``) unless ``tenants`` names others.
    Multi-deployment gateways are built with :func:`build_gateway`.
    ``resilience`` / ``fault_plan`` configure the self-healing layer —
    gateway-kind fault events target the deployment by name.
    """
    session = _build_local_session(model, scaler, dataset, spec,
                                   max_batch=max_batch, **session_kwargs)
    gw = Gateway(clock=clock, max_batch=max_batch, max_wait=max_wait,
                 service_time=service_time, cache_ttl=cache_ttl,
                 cache_entries=cache_entries,
                 max_queue_depth=max_queue_depth, ewma_alpha=ewma_alpha,
                 default_deadline=default_deadline,
                 store_capacity=store_capacity,
                 resilience=resilience, fault_plan=fault_plan)
    gw.add_deployment(deployment, session, version=version)
    for tenant in _normalise_tenants(tenants):
        gw.add_tenant(**tenant)
    return gw


def _normalise_tenants(tenants) -> list[dict]:
    """``None`` / names / dicts -> ``add_tenant`` keyword dicts."""
    if tenants is None:
        return [{"tenant_id": "default"}]
    out = []
    for tenant in tenants:
        if isinstance(tenant, str):
            out.append({"tenant_id": tenant})
        elif isinstance(tenant, dict):
            if "tenant_id" not in tenant:
                raise ValueError(f"tenant dict needs a 'tenant_id': {tenant}")
            out.append(dict(tenant))
        else:
            raise TypeError(f"tenant must be a name or dict, got "
                            f"{type(tenant).__name__}")
    return out


def session_source(source: Any, *, server: str = "local",
                   max_batch: int = 32,
                   **server_kwargs) -> Callable[[], Any]:
    """Zero-arg session factory over any ``serve``-able artifact.

    The returned callable resolves ``source`` (checkpoint path, RunSpec,
    RunResult, or an already-built session) through the :data:`SERVERS`
    builder on first call — which is what makes ``state="cold"``
    deployments and blue-green :meth:`Gateway.swap` lazy: nothing is
    trained or restored until the deployment actually activates.
    """
    if server == "gateway":
        raise ValueError("session_source builds backend sessions; "
                         "'gateway' is not a backend")

    def build():
        from repro.api.runner import RunResult, run

        src = source
        if hasattr(src, "predict"):       # already a live session
            return src
        if isinstance(src, RunSpec):
            src = run(src)
        if isinstance(src, RunResult):
            art = src.artifacts
            if art is None:
                raise ValueError("RunResult carries no artifacts; point "
                                 "the deployment at its checkpoint instead")
            model, scaler, spec, ds = (art.model, art.loaders.scaler,
                                       src.spec, art.dataset)
        elif isinstance(src, str):
            model, scaler, spec, ds = restore_checkpoint(src)
        else:
            raise TypeError(f"cannot build a session from "
                            f"{type(src).__name__}")
        return SERVERS.get(server)(model, scaler, ds, spec,
                                   max_batch=max_batch, **server_kwargs)

    return build


def build_gateway(sources: dict[str, Any], *, tenants=None,
                  server: str = "local", clock=None,
                  max_batch: int = 8, max_wait: float = 0.005,
                  service_time: Callable[[int], float] | None = None,
                  cache_ttl: float | None = None, cache_entries: int = 1024,
                  max_queue_depth: int = 256, ewma_alpha: float = 0.2,
                  default_deadline: float | None = None,
                  store_capacity: int | None = None,
                  versions: dict[str, str] | None = None,
                  states: dict[str, str] | None = None,
                  fallbacks: dict[str, str] | None = None,
                  resilience=None, fault_plan=None,
                  **server_kwargs) -> Gateway:
    """Build a multi-tenant :class:`Gateway` over named deployments.

    Parameters
    ----------
    sources:
        ``{deployment_name: source}`` where each source is anything
        ``serve`` accepts (checkpoint path / RunSpec / RunResult) or an
        already-built session.  Each resolves lazily through
        :func:`session_source`, so ``states={"name": "cold"}`` replicas
        cost nothing until warmed.
    tenants:
        tenant names or ``add_tenant`` keyword dicts (``tenant_id``,
        ``api_key``, ``rate_qps``, ``burst``).  Defaults to a single
        ``default`` tenant with key ``key-default``.
    server:
        backend topology per deployment (``local`` / ``sharded``);
        ``server_kwargs`` flow into that builder (``num_shards``, ...).
    versions / states:
        optional per-deployment version pins (default ``v1``) and
        ``warm``/``cold`` start states (default ``warm``).
    fallbacks:
        optional ``{deployment: fallback_deployment}`` degradation
        routes — when a deployment's circuit opens, requests that miss
        the stale cache are served by the named fallback.
    resilience / fault_plan:
        a :class:`~repro.serving.resilience.ResiliencePolicy` and a
        :class:`~repro.runtime.faults.FaultPlan` whose serving events
        (``session_crash`` / ``session_straggler`` /
        ``store_corruption``) target deployments by name — the chaos
        entry point for the gateway, mirroring ``serve(...,
        server="sharded", fault_plan=...)`` for shard workers.
    remaining keywords:
        gateway knobs, forwarded to :class:`Gateway` (micro-batching,
        result-cache TTL, admission depth, default deadline).
    """
    if not sources:
        raise ValueError("build_gateway needs at least one deployment")
    for name, target in (fallbacks or {}).items():
        if name not in sources or target not in sources:
            raise ValueError(
                f"fallback route {name!r} -> {target!r} names an unknown "
                f"deployment; available: {sorted(sources)}")
        if name == target:
            raise ValueError(f"deployment {name!r} cannot be its own "
                             f"fallback")
    gw = Gateway(clock=clock, max_batch=max_batch, max_wait=max_wait,
                 service_time=service_time, cache_ttl=cache_ttl,
                 cache_entries=cache_entries,
                 max_queue_depth=max_queue_depth, ewma_alpha=ewma_alpha,
                 default_deadline=default_deadline,
                 store_capacity=store_capacity,
                 resilience=resilience, fault_plan=fault_plan)
    for name, source in sources.items():
        gw.add_deployment(
            name,
            session_source(source, server=server, max_batch=max_batch,
                           **server_kwargs),
            version=(versions or {}).get(name, "v1"),
            state=(states or {}).get(name, "warm"),
            fallback=(fallbacks or {}).get(name))
    for tenant in _normalise_tenants(tenants):
        gw.add_tenant(**tenant)
    return gw
